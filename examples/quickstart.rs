//! Quickstart: compare Lobster against the three baselines on a small
//! single-node configuration and print the paper's headline metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lobster_repro::core::{models, policy_by_name};
use lobster_repro::data::imagenet_1k;
use lobster_repro::metrics::{fmt_pct, fmt_secs, fmt_speedup, Table};
use lobster_repro::pipeline::{ClusterSim, ConfigBuilder};

fn main() {
    // 1/256 of ImageNet-1K with a proportionally scaled 40 GB/256 cache:
    // every ratio the policies see matches the paper's environment.
    let scale = 256u32;
    let cache = (40u64 << 30) / scale as u64;

    println!("Lobster quickstart — ResNet-50, 1 node x 8 GPUs, ImageNet-1K (1/{scale})\n");

    let mut table = Table::new(["loader", "epoch time", "speedup", "hit ratio", "gpu util"]);
    let mut pytorch_epoch = None;
    for name in ["pytorch", "dali", "nopfs", "lobster"] {
        let cfg = ConfigBuilder::new()
            .nodes(1)
            .gpus_per_node(8)
            .cache_bytes(cache)
            .model(models::resnet50())
            .epochs(3)
            .dataset(imagenet_1k(scale, 42))
            .build();
        let policy = policy_by_name(name).expect("known policy");
        let (report, _) = ClusterSim::new(cfg, policy).run();
        let epoch = report.mean_epoch_s();
        let base = *pytorch_epoch.get_or_insert(epoch);
        table.row([
            name.to_string(),
            fmt_secs(epoch),
            fmt_speedup(base / epoch),
            fmt_pct(report.mean_hit_ratio()),
            fmt_pct(report.mean_gpu_utilization()),
        ]);
    }
    print!("{}", table.render());
    println!("\nPaper shape: PyTorch < DALI < NoPFS < Lobster on every column.");
}
