//! Live multi-threaded engine demo: real loader/preprocessing threads move
//! real bytes through the multi-queue pipeline, with the adaptive
//! controller re-assigning loader workers by measured queue pressure —
//! compare against a static assignment.
//!
//! ```sh
//! cargo run --release --example live_engine
//! cargo run --release --example live_engine -- --elastic
//! ```
//!
//! With `--elastic` a third run merges the loader and preprocessing pools
//! into one elastic pool (DESIGN.md §11): the controller flips worker
//! roles at tick boundaries as the §4.1 regression tracks a mid-run
//! work-factor step.

use lobster_repro::data::{Dataset, SizeDistribution};
use lobster_repro::metrics::{fmt_pct, Instruments, Summary, Table};
use lobster_repro::runtime::{expected_integrity, run_with, EngineConfig, SyntheticStore};
use std::sync::Arc;
use std::time::Duration;

fn store() -> Arc<SyntheticStore> {
    let dataset = Dataset::generate(
        "live-demo",
        512,
        SizeDistribution::Uniform {
            lo: 8_000,
            hi: 64_000,
        },
        11,
    );
    // Simulated PFS: 300µs/request + 100 MB/s.
    Arc::new(SyntheticStore::new(
        dataset,
        Duration::from_micros(300),
        100e6,
    ))
}

fn main() {
    let elastic_mode = std::env::args().any(|a| a == "--elastic");
    println!("Live engine — 4 consumers, 4 loaders, 2 preprocessing workers, 2 epochs\n");
    let mut table = Table::new([
        "mode",
        "p50 iter",
        "p95 iter",
        "hit ratio",
        "fetches",
        "integrity",
    ]);
    let mut adaptive_ins = None;
    for adaptive in [false, true] {
        let cfg = EngineConfig {
            consumers: 4,
            batch_size: 8,
            loader_threads: 4,
            preproc_threads: 2,
            cache_bytes: 32 << 20,
            work_factor: 2,
            train: Duration::from_millis(3),
            adaptive,
            epochs: 2,
            seed: 42,
            retry: Default::default(),
            ..EngineConfig::default()
        };
        let s = store();
        let expected = expected_integrity(s.dataset(), &cfg);
        // Observe the adaptive run: trace buffer + counters + decision log.
        let ins = if adaptive {
            Instruments::enabled()
        } else {
            Instruments::disabled()
        };
        let report = run_with(s, cfg, ins.clone());
        if adaptive {
            adaptive_ins = Some(ins);
        }
        let mut iters = Summary::new();
        iters.record_all(report.iteration_secs.iter().copied());
        table.row([
            if adaptive {
                "adaptive (lobster)"
            } else {
                "static pools"
            }
            .to_string(),
            format!("{:.1}ms", iters.percentile(50.0) * 1e3),
            format!("{:.1}ms", iters.percentile(95.0) * 1e3),
            fmt_pct(report.hit_ratio),
            report.store_fetches.to_string(),
            if report.integrity == expected {
                "ok".into()
            } else {
                "CORRUPT".to_string()
            },
        ]);
    }
    if elastic_mode {
        // Elastic pool: the same 6 workers, but the preproc↔loader split
        // is re-rolled at tick boundaries while preprocessing gets 8×
        // heavier halfway through the run.
        let cfg = EngineConfig {
            consumers: 4,
            batch_size: 8,
            loader_threads: 4,
            preproc_threads: 2,
            cache_bytes: 32 << 20,
            work_factor: 2,
            work_factor_step: Some((16, 16)),
            train: Duration::from_millis(3),
            adaptive: true,
            elastic: true,
            epochs: 2,
            seed: 42,
            retry: Default::default(),
            ..EngineConfig::default()
        };
        let s = store();
        let expected = expected_integrity(s.dataset(), &cfg);
        let report = run_with(s, cfg, Instruments::enabled());
        let mut iters = Summary::new();
        iters.record_all(report.iteration_secs.iter().copied());
        let flips: usize = report.role_flips.iter().map(|d| d.flipped.len()).sum();
        let max_preproc = report
            .role_flips
            .iter()
            .map(|d| d.preproc_after)
            .max()
            .unwrap_or(0);
        table.row([
            format!("elastic pool ({flips} flips, peak {max_preproc}P)"),
            format!("{:.1}ms", iters.percentile(50.0) * 1e3),
            format!("{:.1}ms", iters.percentile(95.0) * 1e3),
            fmt_pct(report.hit_ratio),
            report.store_fetches.to_string(),
            if report.integrity == expected {
                "ok".into()
            } else {
                "CORRUPT".to_string()
            },
        ]);
    }

    print!("{}", table.render());
    println!("\nEvery delivered byte is verified against the canonical sample stream.");

    let ins = adaptive_ins.expect("adaptive run instruments");
    println!("\n-- adaptive run, metrics snapshot --");
    print!("{}", ins.metrics_snapshot().to_text());
    println!(
        "controller decisions: {} (trace events: {})",
        ins.decisions().len(),
        ins.tracer().buffer().map_or(0, |b| b.len()),
    );
    let path = std::env::temp_dir().join("live_engine_trace.json");
    if let Some(json) = ins.chrome_trace_json() {
        if std::fs::write(&path, json).is_ok() {
            println!(
                "trace -> {} (open in https://ui.perfetto.dev)",
                path.display()
            );
        }
    }
}
