//! The §4.5 workflow: precompute a thread-management + prefetch plan
//! offline, serialize it, and have the online interpreter replay it —
//! then see what happens to a frozen plan when the cluster misbehaves.
//!
//! ```sh
//! cargo run --release --example offline_plan
//! ```

use lobster_repro::core::LobsterPolicy;
use lobster_repro::data::imagenet_1k;
use lobster_repro::metrics::{fmt_secs, Table};
use lobster_repro::pipeline::{precompute_plan, ClusterSim, ConfigBuilder, PlannedPolicy};
use lobster_repro::storage::SlowdownProfile;

fn main() {
    let scale = 256u32;
    let make_cfg = || {
        ConfigBuilder::new()
            .nodes(2)
            .gpus_per_node(8)
            .cache_bytes((40u64 << 30) / scale as u64)
            .epochs(3)
            .dataset(imagenet_1k(scale, 42))
            .build()
    };

    println!("Offline planning (paper §4.5) — 2 nodes x 8 GPUs, ImageNet-1K (1/{scale})\n");

    // Offline component: run the planning simulation and record the plan.
    let (plan, predicted) = precompute_plan(make_cfg(), Box::new(LobsterPolicy::full()));
    let json = serde_json_len(&plan);
    println!(
        "plan: {} iterations x {} nodes, {} KiB serialized, predicted epoch {}",
        plan.len(),
        plan.nodes,
        json / 1024,
        fmt_secs(predicted.mean_epoch_s()),
    );

    // Online component: interpret the plan.
    let (replayed, _) =
        ClusterSim::new(make_cfg(), Box::new(PlannedPolicy::new(plan.clone()))).run();

    // Perturbed cluster: node 1 loses half its I/O speed after planning.
    let perturb = || {
        let mut c = make_cfg();
        c.node_slowdown = SlowdownProfile::constants(&[1.0, 2.0]);
        c
    };
    let (frozen, _) = ClusterSim::new(perturb(), Box::new(PlannedPolicy::new(plan))).run();
    let (adaptive, _) = ClusterSim::new(perturb(), Box::new(LobsterPolicy::full())).run();

    let mut t = Table::new(["run", "epoch time"]);
    t.row([
        "planned (offline prediction)",
        &fmt_secs(predicted.mean_epoch_s()),
    ]);
    t.row(["replayed online", &fmt_secs(replayed.mean_epoch_s())]);
    t.row([
        "frozen plan, degraded node",
        &fmt_secs(frozen.mean_epoch_s()),
    ]);
    t.row([
        "adaptive re-planning, degraded node",
        &fmt_secs(adaptive.mean_epoch_s()),
    ]);
    print!("{}", t.render());
    println!("\nThe replay matches the prediction exactly (deterministic environment).");
    println!("Under perturbation both degrade; the adaptive policy re-plans every iteration");
    println!("and never does worse than the frozen plan — the re-planning-frequency");
    println!("trade-off the paper discusses in §4.1.");
}

fn serde_json_len(v: &lobster_repro::pipeline::TrainingPlan) -> usize {
    serde_json::to_string(v).map(|s| s.len()).unwrap_or(0)
}
