//! Distributed-training scenario: scale a ResNet-50 + ImageNet-22K job from
//! 1 to 8 nodes (8 GPUs each) and watch where each loader's time goes —
//! the scenario motivating the paper's introduction (science datasets that
//! dwarf any single node's memory).
//!
//! ```sh
//! cargo run --release --example distributed_training
//! ```

use lobster_repro::core::{models, policy_by_name};
use lobster_repro::data::imagenet_22k;
use lobster_repro::metrics::{fmt_pct, fmt_secs, Table};
use lobster_repro::pipeline::{ClusterSim, ConfigBuilder};

fn main() {
    let scale = 256u32;
    let cache = (40u64 << 30) / scale as u64;
    println!("Distributed training — ResNet-50, ImageNet-22K (1/{scale}), 8 GPUs/node\n");

    for nodes in [1usize, 2, 4, 8] {
        println!("== {nodes} node(s), {} GPUs ==", nodes * 8);
        let mut table = Table::new([
            "loader",
            "epoch",
            "local hits",
            "remote hits",
            "miss",
            "imbalanced",
        ]);
        for name in ["pytorch", "nopfs", "lobster"] {
            let cfg = ConfigBuilder::new()
                .nodes(nodes)
                .gpus_per_node(8)
                .cache_bytes(cache)
                .model(models::resnet50())
                .epochs(3)
                .dataset(imagenet_22k(scale, 42))
                .build();
            let (report, _) = ClusterSim::new(cfg, policy_by_name(name).unwrap()).run();
            let steady = report.steady_epochs();
            let (mut local, mut remote, mut miss) = (0u64, 0u64, 0u64);
            for e in steady {
                local += e.local_hits;
                remote += e.remote_hits;
                miss += e.misses;
            }
            let total = (local + remote + miss).max(1) as f64;
            table.row([
                name.to_string(),
                fmt_secs(report.mean_epoch_s()),
                fmt_pct(local as f64 / total),
                fmt_pct(remote as f64 / total),
                fmt_pct(miss as f64 / total),
                fmt_pct(report.imbalance_fraction()),
            ]);
        }
        print!("{}", table.render());
        println!();
    }
    println!("Note how the distributed cache (NoPFS, Lobster) converts PFS misses into");
    println!("remote hits as nodes are added, while PyTorch keeps paying the PFS price.");
}
