//! Extending the library: implement your own `LoaderPolicy` and run it
//! against the built-in systems. The example policy is a "greedy oracle"
//! that gives *all* loading threads to whichever GPU has the most expensive
//! queue — a plausible-sounding heuristic that the evaluation shows is
//! worse than Lobster's balanced assignment.
//!
//! ```sh
//! cargo run --release --example custom_policy
//! ```

use lobster_repro::core::{
    models, policy_by_name, CachingStrategy, LoaderPolicy, NodePlan, PlanContext,
};
use lobster_repro::data::imagenet_1k;
use lobster_repro::metrics::{fmt_pct, fmt_secs, Table};
use lobster_repro::pipeline::{ClusterSim, ConfigBuilder};

/// Winner-takes-all: every loading thread goes to the most loaded GPU.
struct GreedyPolicy;

impl LoaderPolicy for GreedyPolicy {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn caching(&self) -> CachingStrategy {
        CachingStrategy::ReuseAware
    }

    fn plan(&mut self, ctx: &PlanContext<'_>) -> NodePlan {
        let gpus = ctx.gpus();
        let preproc = ctx.governor.optimal_threads(ctx.mean_sample_bytes);
        let budget = ctx.total_threads.saturating_sub(preproc).max(gpus as u32);
        let costs = ctx.queue_cost_secs();
        let worst = costs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(g, _)| g)
            .unwrap_or(0);
        // One thread each so nobody starves; the rest pile onto the worst.
        let mut load = vec![1u32; gpus];
        load[worst] = budget.saturating_sub(gpus as u32 - 1).max(1);
        NodePlan {
            preproc_threads: preproc,
            load_threads: load,
            prefetch: true,
            prefetch_lookahead: 64,
        }
    }
}

fn main() {
    println!("Custom policy — winner-takes-all vs Lobster, 1 node x 8 GPUs, ImageNet-1K\n");
    let scale = 256u32;
    let run = |policy: Box<dyn LoaderPolicy>| {
        let cfg = ConfigBuilder::new()
            .nodes(1)
            .gpus_per_node(8)
            .cache_bytes((40u64 << 30) / scale as u64)
            .model(models::resnet50())
            .epochs(3)
            .dataset(imagenet_1k(scale, 42))
            .build();
        ClusterSim::new(cfg, policy).run().0
    };

    let mut table = Table::new(["policy", "epoch", "imbalanced", "hit ratio"]);
    for report in [
        run(Box::new(GreedyPolicy)),
        run(policy_by_name("lobster").unwrap()),
    ] {
        table.row([
            report.policy.clone(),
            fmt_secs(report.mean_epoch_s()),
            fmt_pct(report.imbalance_fraction()),
            fmt_pct(report.mean_hit_ratio()),
        ]);
    }
    print!("{}", table.render());
    println!("\nStarving seven GPUs to feed one creates the very stragglers it tried to fix;");
    println!("Algorithm 1's balanced search wins.");
}
