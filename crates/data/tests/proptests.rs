//! Property tests for the data substrate: schedules are permutation
//! partitions, the oracle matches a naive recomputation on arbitrary
//! topologies, and dataset statistics behave.

use lobster_data::{Dataset, EpochSchedule, NodeOracle, SampleId, ScheduleSpec, SizeDistribution};
use proptest::prelude::*;
use std::collections::HashSet;

fn spec_strategy() -> impl Strategy<Value = ScheduleSpec> {
    (1usize..4, 1usize..4, 1usize..8, 64usize..512, any::<u64>()).prop_map(
        |(nodes, gpus, batch, len, seed)| ScheduleSpec {
            nodes,
            gpus_per_node: gpus,
            batch_size: batch,
            dataset_len: len,
            seed,
        },
    )
}

proptest! {
    /// Every epoch schedule is a duplicate-free sub-permutation of the
    /// dataset covering exactly I × |B| × W samples.
    #[test]
    fn schedule_is_duplicate_free_partition(spec in spec_strategy(), epoch in 0u64..4) {
        prop_assume!(spec.iterations_per_epoch() > 0);
        let s = EpochSchedule::generate(spec, epoch);
        let all = s.all_accesses();
        prop_assert_eq!(
            all.len(),
            spec.iterations_per_epoch() * spec.batch_size * spec.world_size()
        );
        let distinct: HashSet<SampleId> = all.iter().copied().collect();
        prop_assert_eq!(distinct.len(), all.len(), "duplicate sample within an epoch");
        for &id in all {
            prop_assert!((id.0 as usize) < spec.dataset_len);
        }
    }

    /// Batches and node views are consistent slices of the same layout.
    #[test]
    fn batches_tile_node_iterations(spec in spec_strategy()) {
        prop_assume!(spec.iterations_per_epoch() > 0);
        let s = EpochSchedule::generate(spec, 1);
        for h in 0..s.iterations().min(4) {
            for node in 0..spec.nodes {
                let mut cat = Vec::new();
                for gpu in 0..spec.gpus_per_node {
                    cat.extend_from_slice(s.batch(h, node, gpu));
                }
                prop_assert_eq!(s.node_iteration(h, node), cat.as_slice());
            }
        }
    }

    /// The oracle's next-use answer equals a naive scan of the schedule, at
    /// every cursor position, for arbitrary topologies.
    #[test]
    fn oracle_matches_naive_scan(spec in spec_strategy(), node_pick in any::<usize>()) {
        prop_assume!(spec.iterations_per_epoch() > 0);
        let node = node_pick % spec.nodes;
        let e0 = EpochSchedule::generate(spec, 0);
        let e1 = EpochSchedule::generate(spec, 1);
        let mut oracle = NodeOracle::build(node, &[&e0, &e1], 0);
        let iters = e0.iterations();

        // Probe a handful of samples at a handful of cursor positions.
        let probes: Vec<SampleId> =
            (0..spec.dataset_len.min(16)).map(|i| SampleId(i as u32)).collect();
        for step in 0..(2 * iters).min(12) {
            for &p in &probes {
                let naive = {
                    let mut found = None;
                    'scan: for (gi, e) in [(0usize, &e0), (1, &e1)] {
                        for h in 0..iters {
                            let global = gi * iters + h;
                            if global >= step && e.node_iteration(h, node).contains(&p) {
                                found = Some(global as u64);
                                break 'scan;
                            }
                        }
                    }
                    found
                };
                let got = oracle.future_of(p).map(|f| f.next_iteration);
                prop_assert_eq!(got, naive, "sample {:?} at step {}", p, step);
            }
            oracle.advance();
        }
    }

    /// Remaining-use counts equal the number of future occurrences.
    #[test]
    fn oracle_remaining_counts_match(spec in spec_strategy()) {
        prop_assume!(spec.iterations_per_epoch() > 0);
        let e0 = EpochSchedule::generate(spec, 0);
        let e1 = EpochSchedule::generate(spec, 1);
        let oracle = NodeOracle::build(0, &[&e0, &e1], 0);
        let iters = e0.iterations();
        for i in 0..spec.dataset_len.min(24) {
            let p = SampleId(i as u32);
            let naive: u32 = [&e0, &e1]
                .iter()
                .map(|e| {
                    (0..iters)
                        .filter(|&h| e.node_iteration(h, 0).contains(&p))
                        .count() as u32
                })
                .sum();
            let got = oracle.future_of(p).map(|f| f.remaining_uses).unwrap_or(0);
            prop_assert_eq!(got, naive);
        }
    }

    /// Dataset generation: totals equal the sum of parts; sizes respect
    /// distribution bounds.
    #[test]
    fn dataset_totals_are_consistent(
        n in 1usize..2_000,
        lo in 1u64..1_000,
        span in 1u64..1_000,
        seed in any::<u64>(),
    ) {
        let d = Dataset::generate("p", n, SizeDistribution::Uniform { lo, hi: lo + span }, seed);
        let sum: u64 = (0..n as u32).map(|i| d.size_of(SampleId(i))).sum();
        prop_assert_eq!(sum, d.total_bytes());
        for i in 0..n as u32 {
            let s = d.size_of(SampleId(i));
            prop_assert!(s >= lo && s < lo + span.max(1) + 1);
        }
    }
}
