//! # lobster-data
//!
//! Synthetic datasets, deterministic distributed shuffling, and the
//! future-access oracle for the Lobster reproduction.
//!
//! * [`dataset`] — sample-size tables matching ImageNet-1K/22K statistics.
//! * [`schedule`] — seeded per-epoch shuffles with PyTorch
//!   `DistributedSampler` partitioning (the deterministic access pattern
//!   both NoPFS and Lobster exploit).
//! * [`oracle`] — per-node reuse-distance / reuse-count oracle over a
//!   sliding window of epochs (paper §4.4).
//! * [`workload`] — the seeded workload scenario layer (DESIGN.md §15):
//!   Zipf popularity, heavy-tailed sizes, bimodal preprocessing cost,
//!   growing datasets, and per-node compute drift as pure functions of
//!   `(seed, spec)`.

pub mod dataset;
pub mod oracle;
pub mod partition;
pub mod schedule;
pub mod workload;

pub use dataset::{imagenet_1k, imagenet_22k, Dataset, SampleId, SizeDistribution};
pub use oracle::{FutureUse, NodeOracle};
pub use partition::{generate_node_local, PartitionScheme};
pub use schedule::{EpochSchedule, ScheduleSpec};
pub use workload::{generate_access, AccessPattern, WorkloadFamily, WorkloadSpec};
