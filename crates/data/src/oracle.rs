//! The future-access oracle: reuse distances and reuse counts.
//!
//! Because the shuffle is seeded, "we can determine, at each moment during
//! training, (1) how many times each training sample will be reused by all
//! GPUs until the end of training; (2) the minimum reuse distance of each
//! training sample across all GPUs" (paper §4.4). This module materializes
//! exactly that knowledge for one node over a sliding window of upcoming
//! epochs.
//!
//! The representation is the classic compact one: the node's access stream
//! (all its GPUs' batches, iteration by iteration) plus a `next_use_pos`
//! array computed with one reverse sweep, and a live map from sample to its
//! next stream position that is advanced as iterations complete. Memory is
//! O(window accesses), not O(|D| × epochs).

use crate::dataset::SampleId;
use crate::schedule::EpochSchedule;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

const NONE: u32 = u32::MAX;

/// Statistics of one sample's future, as seen from the oracle's cursor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FutureUse {
    /// Global iteration index of the next access on this node.
    pub next_iteration: u64,
    /// Number of accesses remaining within the oracle window (the paper's
    /// "reuse count until the end of training", bounded by the window).
    pub remaining_uses: u32,
}

/// Future-access oracle for a single node.
#[derive(Debug, Clone)]
pub struct NodeOracle {
    node: usize,
    /// Concatenated access stream over the window, grouped by iteration.
    stream: Vec<SampleId>,
    /// CSR offsets: iteration `k` (window-relative) owns
    /// `stream[iter_offsets[k]..iter_offsets[k+1]]`.
    iter_offsets: Vec<u32>,
    /// For each stream position, the next position of the same sample
    /// (or `NONE`).
    next_use_pos: Vec<u32>,
    /// Live view: sample → its next unconsumed stream position.
    next_of: HashMap<u32, u32>,
    /// Live view: sample → accesses remaining in the window.
    remaining: HashMap<u32, u32>,
    /// Window-relative index of the first unconsumed iteration.
    cursor: usize,
    /// Global iteration index corresponding to window-relative 0.
    base_iteration: u64,
}

impl NodeOracle {
    /// Build an oracle for `node` over `window` (consecutive epochs, in
    /// order). `base_iteration` is the global index of the window's first
    /// iteration.
    pub fn build(node: usize, window: &[&EpochSchedule], base_iteration: u64) -> NodeOracle {
        assert!(!window.is_empty(), "oracle needs at least one epoch");
        let spec = window[0].spec();
        let per_iter = spec.gpus_per_node * spec.batch_size;
        let total_iters: usize = window.iter().map(|e| e.iterations()).sum();
        let mut stream = Vec::with_capacity(total_iters * per_iter);
        let mut iter_offsets = Vec::with_capacity(total_iters + 1);
        iter_offsets.push(0u32);
        for epoch in window {
            debug_assert_eq!(epoch.spec(), spec, "window epochs must share a spec");
            for h in 0..epoch.iterations() {
                stream.extend_from_slice(epoch.node_iteration(h, node));
                iter_offsets.push(stream.len() as u32);
            }
        }

        // Reverse sweep: next occurrence of each sample after each position.
        let mut next_use_pos = vec![NONE; stream.len()];
        let mut last_seen: HashMap<u32, u32> = HashMap::new();
        for p in (0..stream.len()).rev() {
            let s = stream[p].0;
            let e = last_seen.entry(s).or_insert(NONE);
            next_use_pos[p] = *e;
            *e = p as u32;
        }
        // After the sweep, `last_seen` maps each sample to its *first*
        // occurrence: exactly the initial live view.
        let next_of = last_seen;

        let mut remaining: HashMap<u32, u32> = HashMap::with_capacity(next_of.len());
        for s in &stream {
            *remaining.entry(s.0).or_insert(0) += 1;
        }

        NodeOracle {
            node,
            stream,
            iter_offsets,
            next_use_pos,
            next_of,
            remaining,
            cursor: 0,
            base_iteration,
        }
    }

    /// Which node this oracle describes.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Global iteration index of the first unconsumed iteration.
    pub fn current_iteration(&self) -> u64 {
        self.base_iteration + self.cursor as u64
    }

    /// Number of iterations covered by the window.
    pub fn window_iterations(&self) -> usize {
        self.iter_offsets.len() - 1
    }

    /// True once every iteration in the window has been consumed.
    pub fn exhausted(&self) -> bool {
        self.cursor >= self.window_iterations()
    }

    /// Window-relative iteration containing stream position `p`.
    fn iter_of_pos(&self, p: u32) -> usize {
        // partition_point returns the count of offsets ≤ p, i.e. the
        // iteration index + 1.
        self.iter_offsets.partition_point(|&off| off <= p) - 1
    }

    /// The future of `sample` as seen from the cursor, or `None` if it is
    /// not accessed again on this node within the window.
    pub fn future_of(&self, sample: SampleId) -> Option<FutureUse> {
        let &pos = self.next_of.get(&sample.0)?;
        if pos == NONE {
            return None;
        }
        let next_iteration = self.base_iteration + self.iter_of_pos(pos) as u64;
        let remaining_uses = self.remaining.get(&sample.0).copied().unwrap_or(0);
        Some(FutureUse {
            next_iteration,
            remaining_uses,
        })
    }

    /// Reuse distance of `sample` measured from global iteration `from`:
    /// `next_iteration − from`, or `None` if never reused in the window.
    pub fn reuse_distance_from(&self, sample: SampleId, from: u64) -> Option<u64> {
        self.future_of(sample)
            .map(|f| f.next_iteration.saturating_sub(from))
    }

    /// Samples accessed by this node during the window-relative iteration
    /// that is `lookahead` iterations past the cursor (0 = next to run).
    pub fn upcoming_iteration(&self, lookahead: usize) -> &[SampleId] {
        let k = self.cursor + lookahead;
        if k >= self.window_iterations() {
            return &[];
        }
        let a = self.iter_offsets[k] as usize;
        let b = self.iter_offsets[k + 1] as usize;
        &self.stream[a..b]
    }

    /// Consume the next iteration: updates every touched sample's next-use
    /// position and remaining count. Returns the consumed slice bounds.
    pub fn advance(&mut self) {
        assert!(!self.exhausted(), "advancing an exhausted oracle");
        let a = self.iter_offsets[self.cursor] as usize;
        let b = self.iter_offsets[self.cursor + 1] as usize;
        for p in a..b {
            let s = self.stream[p].0;
            let next = self.next_use_pos[p];
            if next == NONE {
                self.next_of.remove(&s);
            } else {
                self.next_of.insert(s, next);
            }
            if let Some(c) = self.remaining.get_mut(&s) {
                *c -= 1;
                if *c == 0 {
                    self.remaining.remove(&s);
                }
            }
        }
        self.cursor += 1;
    }

    /// All reuse distances observed in the window (gap in iterations between
    /// consecutive accesses of the same sample on this node). This is the
    /// data behind the paper's Figure 4 histogram.
    pub fn reuse_distances(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for p in 0..self.stream.len() {
            let next = self.next_use_pos[p];
            if next != NONE {
                let d = self.iter_of_pos(next) as u64 - self.iter_of_pos(p as u32) as u64;
                out.push(d);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ScheduleSpec;

    fn spec(dataset_len: usize) -> ScheduleSpec {
        ScheduleSpec {
            nodes: 2,
            gpus_per_node: 2,
            batch_size: 2,
            dataset_len,
            seed: 77,
        }
    }

    fn two_epoch_oracle(dataset_len: usize, node: usize) -> (NodeOracle, Vec<EpochSchedule>) {
        let s = spec(dataset_len);
        let e0 = EpochSchedule::generate(s, 0);
        let e1 = EpochSchedule::generate(s, 1);
        let oracle = NodeOracle::build(node, &[&e0, &e1], 0);
        (oracle, vec![e0, e1])
    }

    /// Naive recomputation of the next use of `sample` at cursor `from_iter`.
    fn naive_next_use(
        epochs: &[EpochSchedule],
        node: usize,
        sample: SampleId,
        from_iter: usize,
    ) -> Option<usize> {
        let iters = epochs[0].iterations();
        let mut global = 0usize;
        for e in epochs {
            for h in 0..iters {
                if global >= from_iter && e.node_iteration(h, node).contains(&sample) {
                    return Some(global);
                }
                global += 1;
            }
        }
        None
    }

    #[test]
    fn future_matches_naive_recomputation_at_start() {
        let (oracle, epochs) = two_epoch_oracle(64, 0);
        for id in 0..64u32 {
            let s = SampleId(id);
            let got = oracle.future_of(s).map(|f| f.next_iteration as usize);
            let want = naive_next_use(&epochs, 0, s, 0);
            assert_eq!(got, want, "sample {id}");
        }
    }

    #[test]
    fn future_matches_naive_after_advancing() {
        let (mut oracle, epochs) = two_epoch_oracle(64, 1);
        for step in 0..oracle.window_iterations() {
            for id in 0..64u32 {
                let s = SampleId(id);
                let got = oracle.future_of(s).map(|f| f.next_iteration as usize);
                let want = naive_next_use(&epochs, 1, s, step);
                assert_eq!(got, want, "sample {id} at step {step}");
            }
            oracle.advance();
        }
        assert!(oracle.exhausted());
    }

    #[test]
    fn remaining_uses_counts_down() {
        let (mut oracle, _eps) = two_epoch_oracle(32, 0);
        // Each sample lands on a node once per epoch at most; with 2 epochs,
        // remaining_uses starts at ≤ 2 and strictly decreases on access.
        let sample = oracle.upcoming_iteration(0)[0];
        let before = oracle.future_of(sample).unwrap().remaining_uses;
        assert!(before >= 1);
        oracle.advance();
        let after = oracle
            .future_of(sample)
            .map(|f| f.remaining_uses)
            .unwrap_or(0);
        assert_eq!(after, before - 1);
    }

    #[test]
    fn upcoming_iteration_matches_schedule() {
        let s = spec(64);
        let e0 = EpochSchedule::generate(s, 0);
        let e1 = EpochSchedule::generate(s, 1);
        let mut oracle = NodeOracle::build(0, &[&e0, &e1], 0);
        let iters = e0.iterations();
        for h in 0..iters {
            assert_eq!(oracle.upcoming_iteration(0), e0.node_iteration(h, 0));
            oracle.advance();
        }
        // Cursor now at epoch 1.
        assert_eq!(oracle.upcoming_iteration(0), e1.node_iteration(0, 0));
        assert_eq!(oracle.current_iteration(), iters as u64);
    }

    #[test]
    fn lookahead_beyond_window_is_empty() {
        let (oracle, _eps) = two_epoch_oracle(32, 0);
        assert!(oracle.upcoming_iteration(10_000).is_empty());
    }

    #[test]
    fn reuse_distances_are_positive_and_bounded() {
        let (oracle, _eps) = two_epoch_oracle(128, 0);
        let dists = oracle.reuse_distances();
        assert!(!dists.is_empty(), "two epochs must create reuse");
        let max_iters = oracle.window_iterations() as u64;
        for d in dists {
            assert!(d >= 1 && d < max_iters, "distance {d} out of range");
        }
    }

    #[test]
    fn base_iteration_offsets_global_indices() {
        let s = spec(64);
        let e0 = EpochSchedule::generate(s, 5);
        let oracle = NodeOracle::build(0, &[&e0], 500);
        assert_eq!(oracle.current_iteration(), 500);
        let sample = oracle.upcoming_iteration(0)[0];
        assert_eq!(oracle.future_of(sample).unwrap().next_iteration, 500);
        assert_eq!(oracle.reuse_distance_from(sample, 500), Some(0));
    }

    #[test]
    fn single_epoch_samples_used_once_have_no_future_after_advance() {
        let s = spec(32);
        let e0 = EpochSchedule::generate(s, 0);
        let mut oracle = NodeOracle::build(0, &[&e0], 0);
        let first = oracle.upcoming_iteration(0).to_vec();
        oracle.advance();
        for sm in first {
            // Within one epoch each sample is accessed exactly once.
            assert!(oracle.future_of(sm).is_none(), "{sm:?} should be done");
        }
    }
}
