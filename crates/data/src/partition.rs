//! Sampling-partition schemes.
//!
//! The paper's environment shuffles globally (PyTorch `DistributedSampler`
//! semantics — every sample may land on any rank each epoch), and notes
//! that determinism can be arranged "by fixing the pseudorandom number
//! generator seed of each node such that it is a function of a fixed seed
//! and the node id". Large-scale practice also uses **node-local
//! shuffling**: the dataset is sharded across nodes once, and each node
//! reshuffles only its own shard each epoch. The two schemes put very
//! different pressure on the cache — under local shuffling a sample's
//! on-node reuse distance is exactly one epoch, so even a recency cache
//! covering the shard achieves near-perfect hits — at the cost of
//! statistical mixing.
//!
//! [`EpochSchedule::generate`](crate::schedule::EpochSchedule::generate) is
//! the global scheme; [`generate_node_local`] is the sharded scheme, with
//! the same `(iteration, node, gpu) → batch` interface.

use crate::dataset::SampleId;
use crate::schedule::{EpochSchedule, ScheduleSpec};
use lobster_sim::{derive_seed, Xoshiro256StarStar};

/// How an epoch's samples are assigned to ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionScheme {
    /// One global shuffle per epoch, strided across ranks (PyTorch
    /// `DistributedSampler`; the paper's setting).
    GlobalShuffle,
    /// Static shard per node, reshuffled locally each epoch with a
    /// node-specific seed (`derive_seed(seed ⊕ node, epoch)`).
    NodeLocalShuffle,
}

/// Generate an epoch schedule under the chosen scheme.
pub fn generate(spec: ScheduleSpec, epoch: u64, scheme: PartitionScheme) -> EpochSchedule {
    match scheme {
        PartitionScheme::GlobalShuffle => EpochSchedule::generate(spec, epoch),
        PartitionScheme::NodeLocalShuffle => generate_node_local(spec, epoch),
    }
}

/// Node-local shuffling: node `i` permanently owns the contiguous shard
/// `[i·⌈|D|/N⌉, …)` and reshuffles it with its own per-epoch seed. The
/// result is repackaged through the standard [`EpochSchedule`] layout so
/// all consumers (oracle, executor) work unchanged.
pub fn generate_node_local(spec: ScheduleSpec, epoch: u64) -> EpochSchedule {
    let nodes = spec.nodes;
    let shard = spec.dataset_len.div_ceil(nodes);
    let iters = spec.iterations_per_epoch();
    assert!(iters > 0, "dataset too small for even one iteration");
    let per_node_iter = spec.gpus_per_node * spec.batch_size;

    // Per-node shuffled shard streams.
    let mut streams: Vec<Vec<SampleId>> = Vec::with_capacity(nodes);
    for node in 0..nodes {
        let lo = (node * shard).min(spec.dataset_len);
        let hi = ((node + 1) * shard).min(spec.dataset_len);
        let mut ids: Vec<SampleId> = (lo as u32..hi as u32).map(SampleId).collect();
        let node_seed = derive_seed(
            spec.seed ^ (node as u64).wrapping_mul(0x9E3779B97F4A7C15),
            epoch,
        );
        let mut rng = Xoshiro256StarStar::seed_from_u64(node_seed);
        rng.shuffle(&mut ids);
        assert!(
            ids.len() >= iters * per_node_iter,
            "shard of node {node} too small: {} < {}",
            ids.len(),
            iters * per_node_iter
        );
        streams.push(ids);
    }

    // Repackage into the standard layout: iteration h, node i, gpu j gets
    // the next |B| samples of node i's stream.
    let mut order = Vec::with_capacity(iters * per_node_iter * nodes);
    for h in 0..iters {
        for stream in &streams {
            let base = h * per_node_iter;
            order.extend_from_slice(&stream[base..base + per_node_iter]);
        }
    }
    EpochSchedule::from_order(spec, epoch, order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn spec() -> ScheduleSpec {
        ScheduleSpec {
            nodes: 2,
            gpus_per_node: 2,
            batch_size: 4,
            dataset_len: 128,
            seed: 5,
        }
    }

    #[test]
    fn node_local_keeps_samples_on_their_shard() {
        let s = generate_node_local(spec(), 3);
        let shard = 64u32; // 128 / 2
        for h in 0..s.iterations() {
            for &id in s.node_iteration(h, 0) {
                assert!(id.0 < shard, "node 0 saw foreign sample {id:?}");
            }
            for &id in s.node_iteration(h, 1) {
                assert!(id.0 >= shard, "node 1 saw foreign sample {id:?}");
            }
        }
    }

    #[test]
    fn node_local_is_duplicate_free_per_epoch() {
        let s = generate_node_local(spec(), 0);
        let seen: HashSet<_> = s.all_accesses().iter().copied().collect();
        assert_eq!(seen.len(), s.all_accesses().len());
    }

    #[test]
    fn node_local_reshuffles_between_epochs_but_keeps_shards() {
        let a = generate_node_local(spec(), 0);
        let b = generate_node_local(spec(), 1);
        assert_ne!(a.all_accesses(), b.all_accesses(), "epochs must differ");
        // But each node's *set* of samples is identical across epochs.
        for node in 0..2 {
            let set = |s: &EpochSchedule| -> HashSet<SampleId> {
                (0..s.iterations())
                    .flat_map(|h| s.node_iteration(h, node).to_vec())
                    .collect()
            };
            assert_eq!(set(&a), set(&b), "node {node} shard changed across epochs");
        }
    }

    #[test]
    fn global_shuffle_moves_samples_across_nodes() {
        let a = generate(spec(), 0, PartitionScheme::GlobalShuffle);
        let b = generate(spec(), 1, PartitionScheme::GlobalShuffle);
        let node0 = |s: &EpochSchedule| -> HashSet<SampleId> {
            (0..s.iterations())
                .flat_map(|h| s.node_iteration(h, 0).to_vec())
                .collect()
        };
        assert_ne!(
            node0(&a),
            node0(&b),
            "global shuffle must migrate samples across epochs"
        );
    }

    #[test]
    fn both_schemes_share_the_layout_contract() {
        for scheme in [
            PartitionScheme::GlobalShuffle,
            PartitionScheme::NodeLocalShuffle,
        ] {
            let s = generate(spec(), 2, scheme);
            for h in 0..s.iterations() {
                for node in 0..2 {
                    let mut cat = Vec::new();
                    for gpu in 0..2 {
                        assert_eq!(s.batch(h, node, gpu).len(), 4);
                        cat.extend_from_slice(s.batch(h, node, gpu));
                    }
                    assert_eq!(s.node_iteration(h, node), cat.as_slice());
                }
            }
        }
    }

    #[test]
    fn node_local_is_deterministic() {
        let a = generate_node_local(spec(), 7);
        let b = generate_node_local(spec(), 7);
        assert_eq!(a.all_accesses(), b.all_accesses());
    }
}
