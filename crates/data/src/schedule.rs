//! Deterministic distributed sampling schedule.
//!
//! Data-parallel training shuffles the full sample index list once per epoch
//! with a seeded PRNG and partitions it across ranks (paper §2: "the seed of
//! the pseudo-random number generator is known in advance [so] the I/O
//! access pattern ... can be made fully deterministic"). We mirror PyTorch's
//! `DistributedSampler` semantics: rank `r` of `W` takes indices
//! `perm[r], perm[r+W], perm[r+2W], …` and groups consecutive ones into
//! mini-batches of `|B|`.

use crate::dataset::SampleId;
use lobster_sim::{derive_seed, Xoshiro256StarStar};
use serde::{Deserialize, Serialize};

/// Topology and sampling parameters for one training job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleSpec {
    /// Number of compute nodes `N`.
    pub nodes: usize,
    /// GPUs per node `M`.
    pub gpus_per_node: usize,
    /// Mini-batch size per GPU `|B|`.
    pub batch_size: usize,
    /// Number of samples in the dataset `|D|`.
    pub dataset_len: usize,
    /// Base shuffle seed; epoch `e` uses `derive_seed(seed, e)`.
    pub seed: u64,
}

impl ScheduleSpec {
    /// Total number of ranks (GPUs) `N × M`.
    #[inline]
    pub fn world_size(&self) -> usize {
        self.nodes * self.gpus_per_node
    }

    /// Iterations per epoch `I = ⌊|D| / (|B|·N·M)⌋` (the trailing partial
    /// iteration is dropped, as the paper's formulation allows).
    #[inline]
    pub fn iterations_per_epoch(&self) -> usize {
        self.dataset_len / (self.batch_size * self.world_size())
    }

    /// Global rank of GPU `g` on node `n`.
    #[inline]
    pub fn rank(&self, node: usize, gpu: usize) -> usize {
        debug_assert!(node < self.nodes && gpu < self.gpus_per_node);
        node * self.gpus_per_node + gpu
    }

    /// Samples consumed per iteration across the whole cluster.
    #[inline]
    pub fn samples_per_iteration(&self) -> usize {
        self.batch_size * self.world_size()
    }
}

/// The fully materialized access schedule for one epoch: who reads which
/// sample at which iteration. This is the "foreknowledge" that deterministic
/// prefetching (NoPFS, Lobster) exploits.
#[derive(Debug, Clone)]
pub struct EpochSchedule {
    spec: ScheduleSpec,
    epoch: u64,
    /// The shuffled permutation, truncated to `I × |B| × W` entries and laid
    /// out so that rank `r`, iteration `h` is the contiguous slice
    /// `[(h·W + r)·|B| .. (h·W + r + 1)·|B|)`... see `batch()` for the exact
    /// indexing. Contiguity makes batch access allocation-free.
    order: Vec<SampleId>,
}

impl EpochSchedule {
    /// Build a schedule from a pre-laid-out access order (used by the
    /// alternative partition schemes in [`crate::partition`]). `order` must
    /// follow the standard layout:
    /// `order[(h·W + rank)·|B| + b]` is rank `rank`'s `b`-th sample of
    /// iteration `h`.
    pub fn from_order(spec: ScheduleSpec, epoch: u64, order: Vec<SampleId>) -> EpochSchedule {
        let expect = spec.iterations_per_epoch() * spec.batch_size * spec.world_size();
        assert_eq!(order.len(), expect, "order length must match the layout");
        EpochSchedule { spec, epoch, order }
    }

    /// Build the schedule for `epoch` by shuffling `0..|D|` with the epoch
    /// seed and partitioning across ranks.
    pub fn generate(spec: ScheduleSpec, epoch: u64) -> EpochSchedule {
        let world = spec.world_size();
        assert!(world > 0 && spec.batch_size > 0, "degenerate schedule spec");
        let iters = spec.iterations_per_epoch();
        assert!(iters > 0, "dataset too small for even one iteration");
        let mut perm: Vec<u32> = (0..spec.dataset_len as u32).collect();
        let mut rng = Xoshiro256StarStar::seed_from_u64(derive_seed(spec.seed, epoch));
        rng.shuffle(&mut perm);

        // DistributedSampler semantics: rank r's k-th sample is
        // perm[k*W + r]. Re-lay it out batch-contiguously:
        // order[((h*W)+r)*B + b] = perm[(h*B + b)*W + r].
        let used = iters * spec.batch_size * world;
        let mut order = Vec::with_capacity(used);
        for h in 0..iters {
            for r in 0..world {
                for b in 0..spec.batch_size {
                    let k = h * spec.batch_size + b; // rank-local position
                    order.push(SampleId(perm[k * world + r]));
                }
            }
        }
        EpochSchedule { spec, epoch, order }
    }

    /// The spec this schedule was generated from.
    #[inline]
    pub fn spec(&self) -> &ScheduleSpec {
        &self.spec
    }

    /// Epoch number this schedule covers.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Iterations in this epoch.
    #[inline]
    pub fn iterations(&self) -> usize {
        self.spec.iterations_per_epoch()
    }

    /// Mini-batch `B^{h,i,j}` for iteration `h`, node `i`, GPU `j`.
    pub fn batch(&self, iteration: usize, node: usize, gpu: usize) -> &[SampleId] {
        let r = self.spec.rank(node, gpu);
        let w = self.spec.world_size();
        let b = self.spec.batch_size;
        let start = (iteration * w + r) * b;
        &self.order[start..start + b]
    }

    /// All samples accessed by any GPU of `node` during `iteration`
    /// (`B^{h}` restricted to node `i`): the concatenation of its GPUs'
    /// batches, in GPU order.
    pub fn node_iteration(&self, iteration: usize, node: usize) -> &[SampleId] {
        let w = self.spec.world_size();
        let b = self.spec.batch_size;
        let first_rank = self.spec.rank(node, 0);
        let start = (iteration * w + first_rank) * b;
        let len = self.spec.gpus_per_node * b;
        &self.order[start..start + len]
    }

    /// Every access in the epoch in (iteration, rank, batch-position) order.
    pub fn all_accesses(&self) -> &[SampleId] {
        &self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ScheduleSpec {
        ScheduleSpec {
            nodes: 2,
            gpus_per_node: 2,
            batch_size: 4,
            dataset_len: 103,
            seed: 9,
        }
    }

    #[test]
    fn iterations_drop_partial_batch() {
        let s = spec();
        // 103 / (4 * 4) = 6 full iterations, 7 samples dropped.
        assert_eq!(s.iterations_per_epoch(), 6);
        assert_eq!(s.samples_per_iteration(), 16);
    }

    #[test]
    fn schedule_is_deterministic_per_epoch() {
        let a = EpochSchedule::generate(spec(), 0);
        let b = EpochSchedule::generate(spec(), 0);
        let c = EpochSchedule::generate(spec(), 1);
        assert_eq!(a.all_accesses(), b.all_accesses());
        assert_ne!(a.all_accesses(), c.all_accesses());
    }

    #[test]
    fn no_sample_repeats_within_an_epoch() {
        let s = EpochSchedule::generate(spec(), 3);
        let mut seen = std::collections::HashSet::new();
        for &id in s.all_accesses() {
            assert!(
                seen.insert(id),
                "sample {id:?} scheduled twice in one epoch"
            );
        }
        assert_eq!(seen.len(), 96); // 6 iters × 16 samples
    }

    #[test]
    fn batches_partition_each_iteration() {
        let s = EpochSchedule::generate(spec(), 0);
        for h in 0..s.iterations() {
            let mut via_batches: Vec<SampleId> = Vec::new();
            for n in 0..2 {
                for g in 0..2 {
                    via_batches.extend_from_slice(s.batch(h, n, g));
                }
            }
            let direct: Vec<SampleId> = s.all_accesses()[h * 16..(h + 1) * 16].to_vec();
            assert_eq!(via_batches, direct);
        }
    }

    #[test]
    fn node_iteration_concatenates_gpu_batches() {
        let s = EpochSchedule::generate(spec(), 0);
        for h in 0..s.iterations() {
            for n in 0..2 {
                let mut cat: Vec<SampleId> = Vec::new();
                cat.extend_from_slice(s.batch(h, n, 0));
                cat.extend_from_slice(s.batch(h, n, 1));
                assert_eq!(s.node_iteration(h, n), cat.as_slice());
            }
        }
    }

    #[test]
    fn rank_layout_matches_distributed_sampler() {
        // With batch 1 the k-th batch of rank r must be perm[k*W + r]:
        // verify rank-striding by reconstructing the permutation prefix.
        let spec = ScheduleSpec {
            nodes: 1,
            gpus_per_node: 4,
            batch_size: 1,
            dataset_len: 16,
            seed: 5,
        };
        let s = EpochSchedule::generate(spec, 0);
        // Iteration h's union across ranks must equal perm[h*4..(h+1)*4].
        let mut perm: Vec<u32> = (0..16).collect();
        let mut rng = Xoshiro256StarStar::seed_from_u64(derive_seed(5, 0));
        rng.shuffle(&mut perm);
        for h in 0..4 {
            let got: Vec<u32> = (0..4).map(|g| s.batch(h, 0, g)[0].0).collect();
            assert_eq!(got, perm[h * 4..(h + 1) * 4].to_vec());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut s1 = spec();
        s1.seed = 1;
        let mut s2 = spec();
        s2.seed = 2;
        assert_ne!(
            EpochSchedule::generate(s1, 0).all_accesses(),
            EpochSchedule::generate(s2, 0).all_accesses()
        );
    }
}
