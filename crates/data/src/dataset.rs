//! Synthetic training-dataset models.
//!
//! The paper trains on ImageNet-1K (1,281,167 samples, 135 GB) and
//! ImageNet-22K (14,197,103 samples, 1.3 TB). Neither dataset is available
//! here — and neither is needed: every quantity the I/O pipeline cares about
//! is a function of the *number* of samples, their *sizes*, and the *access
//! order*. This module generates size tables that match the papers' reported
//! cardinalities, total sizes, and size ranges, deterministically from a
//! seed.

use lobster_sim::Xoshiro256StarStar;
use serde::{Deserialize, Serialize};

/// Index of a training sample within its dataset. Dense, starting at 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SampleId(pub u32);

impl SampleId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Distribution of per-sample sizes in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SizeDistribution {
    /// Every sample has the same size.
    Constant { bytes: u64 },
    /// Uniform in `[lo, hi)`.
    Uniform { lo: u64, hi: u64 },
    /// Log-normal with the given parameters of the underlying normal
    /// (sizes in bytes), clamped to `[min, max]`. JPEG-compressed image
    /// sizes are classically log-normal.
    LogNormal {
        mu: f64,
        sigma: f64,
        min: u64,
        max: u64,
    },
}

impl SizeDistribution {
    /// Draw one size.
    pub fn sample(&self, rng: &mut Xoshiro256StarStar) -> u64 {
        match *self {
            SizeDistribution::Constant { bytes } => bytes,
            SizeDistribution::Uniform { lo, hi } => rng.range_u64(lo, hi.max(lo + 1)),
            SizeDistribution::LogNormal {
                mu,
                sigma,
                min,
                max,
            } => {
                let v = rng.lognormal(mu, sigma);
                (v as u64).clamp(min, max)
            }
        }
    }
}

/// Static description of a dataset: how many samples, how big each one is,
/// and (optionally) how expensive each one is to preprocess.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Human-readable name used in reports ("imagenet-1k" etc.).
    pub name: String,
    /// Per-sample sizes in bytes, indexed by [`SampleId`].
    sizes: Vec<u32>,
    /// Cached sum of `sizes`.
    total_bytes: u64,
    /// Per-sample preprocessing cost multipliers, indexed by [`SampleId`].
    /// `None` means every sample costs 1× (the classic vision workload);
    /// serialized documents from before the workload layer deserialize to
    /// that default (the stand-in serde maps an absent field to `None`).
    costs: Option<Vec<u32>>,
    /// Cached `Σ size_i · cost_i` ("work bytes"); `None` for unit-cost
    /// datasets, where it equals `total_bytes` exactly.
    total_work_bytes: Option<u64>,
}

impl Dataset {
    /// Generate a dataset of `n` samples with the given size distribution,
    /// deterministically from `seed`.
    pub fn generate(name: &str, n: usize, dist: SizeDistribution, seed: u64) -> Dataset {
        assert!(n > 0, "a dataset needs at least one sample");
        assert!(n <= u32::MAX as usize, "sample ids are u32");
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let mut sizes = Vec::with_capacity(n);
        let mut total = 0u64;
        for _ in 0..n {
            let s = dist.sample(&mut rng).min(u32::MAX as u64) as u32;
            // Zero-byte samples break nothing but are physically meaningless.
            let s = s.max(1);
            sizes.push(s);
            total += s as u64;
        }
        Dataset {
            name: name.to_string(),
            sizes,
            total_bytes: total,
            costs: None,
            total_work_bytes: None,
        }
    }

    /// Attach per-sample preprocessing cost multipliers (one per sample,
    /// clamped to ≥ 1). A sample of size `s` and cost `c` contributes
    /// `s · c` "work bytes" to preprocessing while still moving `s` bytes
    /// through storage and cache.
    pub fn with_costs(mut self, costs: Vec<u32>) -> Dataset {
        assert_eq!(
            costs.len(),
            self.sizes.len(),
            "need exactly one cost per sample"
        );
        let costs: Vec<u32> = costs.into_iter().map(|c| c.max(1)).collect();
        self.total_work_bytes = Some(
            self.sizes
                .iter()
                .zip(&costs)
                .map(|(&s, &c)| s as u64 * c as u64)
                .sum(),
        );
        self.costs = Some(costs);
        self
    }

    /// Whether any sample carries a non-unit preprocessing cost.
    #[inline]
    pub fn has_costs(&self) -> bool {
        self.costs.is_some()
    }

    /// Preprocessing cost multiplier of sample `id` (1 for classic
    /// unit-cost datasets).
    #[inline]
    pub fn cost_of(&self, id: SampleId) -> u32 {
        match &self.costs {
            None => 1,
            Some(costs) => costs[id.index()],
        }
    }

    /// Preprocessing work of sample `id` in byte-equivalents:
    /// `size_i · cost_i`.
    #[inline]
    pub fn work_bytes_of(&self, id: SampleId) -> u64 {
        self.size_of(id) * self.cost_of(id) as u64
    }

    /// Total preprocessing work `Σ size_i · cost_i`. Equals
    /// [`total_bytes`](Dataset::total_bytes) for unit-cost datasets.
    #[inline]
    pub fn total_work_bytes(&self) -> u64 {
        self.total_work_bytes.unwrap_or(self.total_bytes)
    }

    /// Mean per-sample preprocessing work in byte-equivalents. For a
    /// unit-cost dataset this is exactly
    /// [`mean_sample_bytes`](Dataset::mean_sample_bytes).
    pub fn mean_work_bytes(&self) -> f64 {
        self.total_work_bytes() as f64 / self.len() as f64
    }

    /// The `q`‰ (per-mille, nearest-rank) quantile of per-sample work
    /// bytes. `work_quantile_bytes(500)` is the median; `(900)` is p90.
    pub fn work_quantile_bytes(&self, q_permille: u32) -> f64 {
        let mut work: Vec<u64> = (0..self.len() as u32)
            .map(|i| self.work_bytes_of(SampleId(i)))
            .collect();
        work.sort_unstable();
        let q = q_permille.min(1000) as usize;
        let rank = (q * work.len()).div_ceil(1000).max(1) - 1;
        work[rank.min(work.len() - 1)] as f64
    }

    /// Number of samples `|D|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Size in bytes of sample `id` (`s_i` in the paper's notation).
    #[inline]
    pub fn size_of(&self, id: SampleId) -> u64 {
        self.sizes[id.index()] as u64
    }

    /// Total dataset size `S = Σ s_i`.
    #[inline]
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Mean sample size in bytes.
    pub fn mean_sample_bytes(&self) -> f64 {
        self.total_bytes as f64 / self.len() as f64
    }

    /// Sum of sizes of a batch of samples.
    pub fn batch_bytes(&self, batch: &[SampleId]) -> u64 {
        batch.iter().map(|&s| self.size_of(s)).sum()
    }
}

/// Preset matching ImageNet-1K (1.28 M samples, ≈135 GB, ≈105 KB mean,
/// log-normal sizes). `scale` divides the sample count: `scale = 1` is the
/// paper's full dataset; experiments on small machines use e.g. `scale = 16`
/// with the cache scaled by the same factor, which preserves every ratio the
/// policies see.
pub fn imagenet_1k(scale: u32, seed: u64) -> Dataset {
    let n = (1_281_167 / scale.max(1) as usize).max(1);
    // median ≈ 90 KB, sigma 0.55 → mean ≈ 105 KB → total ≈ 135 GB at scale 1.
    let dist = SizeDistribution::LogNormal {
        mu: (90_000f64).ln(),
        sigma: 0.55,
        min: 4_096,
        max: 4_000_000,
    };
    Dataset::generate(&format!("imagenet-1k/{scale}"), n, dist, seed)
}

/// Preset matching ImageNet-22K (14.2 M samples, ≈1.3 TB; the paper reports
/// "most" samples between 10 KB and 50 KB with a heavy tail giving a ≈92 KB
/// mean). See [`imagenet_1k`] for the meaning of `scale`.
pub fn imagenet_22k(scale: u32, seed: u64) -> Dataset {
    let n = (14_197_103 / scale.max(1) as usize).max(1);
    // median 30 KB, sigma 1.5 → mean ≈ 92 KB → total ≈ 1.3 TB at scale 1.
    let dist = SizeDistribution::LogNormal {
        mu: (30_000f64).ln(),
        sigma: 1.5,
        min: 2_048,
        max: 8_000_000,
    };
    Dataset::generate(&format!("imagenet-22k/{scale}"), n, dist, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic() {
        let a = Dataset::generate("t", 1000, SizeDistribution::Uniform { lo: 10, hi: 20 }, 1);
        let b = Dataset::generate("t", 1000, SizeDistribution::Uniform { lo: 10, hi: 20 }, 1);
        let c = Dataset::generate("t", 1000, SizeDistribution::Uniform { lo: 10, hi: 20 }, 2);
        assert_eq!(a.total_bytes(), b.total_bytes());
        assert_ne!(a.total_bytes(), c.total_bytes());
        for i in 0..1000 {
            assert_eq!(a.size_of(SampleId(i)), b.size_of(SampleId(i)));
        }
    }

    #[test]
    fn constant_distribution_is_exact() {
        let d = Dataset::generate("c", 100, SizeDistribution::Constant { bytes: 1234 }, 0);
        assert_eq!(d.total_bytes(), 123_400);
        assert_eq!(d.mean_sample_bytes(), 1234.0);
        assert_eq!(d.size_of(SampleId(99)), 1234);
    }

    #[test]
    fn uniform_sizes_in_bounds() {
        let d = Dataset::generate(
            "u",
            10_000,
            SizeDistribution::Uniform { lo: 100, hi: 200 },
            7,
        );
        for i in 0..10_000u32 {
            let s = d.size_of(SampleId(i));
            assert!((100..200).contains(&s), "size {s} out of range");
        }
    }

    #[test]
    fn imagenet_1k_preset_matches_paper_statistics() {
        // Scaled 1/64 to keep the test fast; statistics are scale-free.
        let d = imagenet_1k(64, 42);
        assert_eq!(d.len(), 1_281_167 / 64);
        let mean = d.mean_sample_bytes();
        // Paper: 135 GB / 1.28 M ≈ 105 KB. Accept ±15%.
        assert!((90_000.0..125_000.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn imagenet_22k_preset_matches_paper_statistics() {
        let d = imagenet_22k(256, 42);
        assert_eq!(d.len(), 14_197_103 / 256);
        let mean = d.mean_sample_bytes();
        // Paper: 1.3 TB / 14.2 M ≈ 92 KB. Heavy-tailed, so accept ±25%.
        assert!((69_000.0..115_000.0).contains(&mean), "mean {mean}");
        // "most with an image size of between 10 KB and 50 KB": the median
        // must sit in that range even though the mean is pulled up.
        let mut sizes: Vec<u64> = (0..d.len() as u32)
            .map(|i| d.size_of(SampleId(i)))
            .collect();
        sizes.sort_unstable();
        let median = sizes[sizes.len() / 2];
        assert!((10_000..50_000).contains(&median), "median {median}");
    }

    #[test]
    fn unit_cost_dataset_keeps_legacy_work_accounting() {
        let d = Dataset::generate("c", 100, SizeDistribution::Constant { bytes: 1234 }, 0);
        assert!(!d.has_costs());
        assert_eq!(d.cost_of(SampleId(7)), 1);
        assert_eq!(d.work_bytes_of(SampleId(7)), 1234);
        assert_eq!(d.total_work_bytes(), d.total_bytes());
        // Bit-identical, not just approximately equal: executors feed this
        // straight into the elastic controller's memoized fit.
        assert_eq!(
            d.mean_work_bytes().to_bits(),
            d.mean_sample_bytes().to_bits()
        );
    }

    #[test]
    fn costs_scale_work_but_not_storage_bytes() {
        let d = Dataset::generate("c", 4, SizeDistribution::Constant { bytes: 100 }, 0)
            .with_costs(vec![1, 1, 1, 17]);
        assert!(d.has_costs());
        assert_eq!(d.total_bytes(), 400, "storage bytes unchanged");
        assert_eq!(d.total_work_bytes(), 300 + 1700);
        assert_eq!(d.work_bytes_of(SampleId(3)), 1700);
        assert_eq!(d.mean_work_bytes(), 500.0);
    }

    #[test]
    fn costs_survive_serde_and_legacy_json_defaults_to_unit() {
        let d = Dataset::generate("c", 3, SizeDistribution::Constant { bytes: 10 }, 0)
            .with_costs(vec![2, 4, 8]);
        let json = serde_json::to_string(&d).unwrap();
        let back: Dataset = serde_json::from_str(&json).unwrap();
        assert_eq!(back.total_work_bytes(), d.total_work_bytes());
        assert_eq!(back.cost_of(SampleId(2)), 8);

        // A pre-cost document has no `costs` field at all.
        let legacy = r#"{"name":"old","sizes":[5,6],"total_bytes":11}"#;
        let old: Dataset = serde_json::from_str(legacy).unwrap();
        assert!(!old.has_costs());
        assert_eq!(old.total_work_bytes(), 11);
    }

    #[test]
    fn work_quantile_is_nearest_rank() {
        // 10 samples of size 100; one costs 50×.
        let mut costs = vec![1u32; 10];
        costs[4] = 50;
        let d = Dataset::generate("q", 10, SizeDistribution::Constant { bytes: 100 }, 0)
            .with_costs(costs);
        assert_eq!(d.work_quantile_bytes(500), 100.0, "median is a fast sample");
        assert_eq!(
            d.work_quantile_bytes(900),
            100.0,
            "p90 rank 9/10 still fast"
        );
        assert_eq!(d.work_quantile_bytes(1000), 5000.0, "max is the slow one");
        // Degenerate ranks clamp instead of panicking.
        assert_eq!(d.work_quantile_bytes(0), 100.0);
    }

    #[test]
    fn zero_costs_clamp_to_one() {
        let d = Dataset::generate("z", 2, SizeDistribution::Constant { bytes: 10 }, 0)
            .with_costs(vec![0, 3]);
        assert_eq!(d.cost_of(SampleId(0)), 1);
        assert_eq!(d.total_work_bytes(), 10 + 30);
    }

    #[test]
    fn batch_bytes_sums_members() {
        let d = Dataset::generate("b", 10, SizeDistribution::Constant { bytes: 5 }, 0);
        let batch = [SampleId(0), SampleId(3), SampleId(9)];
        assert_eq!(d.batch_bytes(&batch), 15);
    }

    #[test]
    fn sizes_never_zero() {
        let d = Dataset::generate(
            "z",
            1000,
            SizeDistribution::LogNormal {
                mu: 0.0,
                sigma: 0.1,
                min: 0,
                max: 10,
            },
            3,
        );
        for i in 0..1000u32 {
            assert!(d.size_of(SampleId(i)) >= 1);
        }
    }
}
