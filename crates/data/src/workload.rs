//! The workload scenario layer (DESIGN.md §15).
//!
//! Every experiment so far replayed one workload shape: fixed-cardinality
//! vision epochs with near-uniform sample sizes and unit per-sample
//! preprocessing cost. This module generalizes the *inputs* of the whole
//! pipeline — sample sizes, per-sample preprocessing costs, and the access
//! pattern — into a seeded, declarative [`WorkloadSpec`] with five
//! families:
//!
//! * **zipf** — Zipf-skewed sample popularity, drawn with replacement:
//!   a few samples dominate every epoch (web-scale click/rank data).
//! * **heavy-tail** — log-normal sample sizes with a large σ, the shape of
//!   NLP token-length distributions: most documents are short, a long tail
//!   is enormous.
//! * **bimodal** — a fast/slow per-sample preprocessing cost mixture
//!   (MinatoLoader's motivating observation): a fraction of samples costs
//!   a large multiple of the rest.
//! * **growing** — an online/growing dataset that admits new samples at
//!   epoch boundaries; epoch `e` shuffles only the admitted prefix.
//! * **drift** — heterogeneous-node compute drift: node `i` ramps toward a
//!   per-node slowdown factor over the run ("Semi-Dynamic Load
//!   Balancing"'s non-dedicated clusters).
//!
//! **Determinism contract:** everything here is a pure function of
//! `(seed, spec)` — same seed and spec produce byte-identical size tables,
//! cost tables, and per-epoch access orders, on every executor. Generators
//! only use [`Xoshiro256StarStar`] streams derived with [`derive_seed`]
//! and salted per purpose, so adding a family never perturbs another.
//!
//! Skew enters the paper's model unchanged: Eq. 1's tier times use the
//! *actual* batch bytes of the scheduled samples, Eq. 3's gap emerges from
//! per-node byte/work imbalance, and Algorithm 1 plus the elastic
//! controller see per-sample *work* (`size · cost`) through
//! [`Dataset::work_bytes_of`].

use crate::dataset::{Dataset, SampleId, SizeDistribution};
use crate::partition::{self, PartitionScheme};
use crate::schedule::{EpochSchedule, ScheduleSpec};
use lobster_sim::{derive_seed, Xoshiro256StarStar};
use serde::{Deserialize, Serialize};

/// Seed salts: one RNG stream per generator purpose, so the draw of one
/// table never shifts another.
const SALT_POPULARITY: u64 = 0x5A1F_0001;
const SALT_ZIPF_DRAW: u64 = 0x5A1F_0002;
const SALT_COSTS: u64 = 0x5A1F_0003;
const SALT_GROWING: u64 = 0x5A1F_0004;

/// How an epoch's sample accesses are ordered. [`EpochShuffle`]
/// (`AccessPattern::EpochShuffle`) is the paper's `DistributedSampler`;
/// the other patterns repackage their orders through
/// [`EpochSchedule::from_order`] so every consumer (oracle, executors,
/// conformance) works unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Every sample exactly once per epoch (the paper's setting).
    #[default]
    EpochShuffle,
    /// Draw every slot i.i.d. with replacement from a Zipf(`s`)
    /// popularity law; rank `r` has weight `(r+1)^-s`, and ranks map to
    /// sample ids through a seed-fixed permutation so the *same* samples
    /// stay popular across epochs.
    ZipfReplacement { s: f64 },
    /// Epoch `e` shuffles only the admitted prefix of the id space:
    /// `admitted(e) = ⌈len · min(1, initial + growth·e)⌉`. Admission is
    /// monotone and changes only at epoch boundaries; the shuffled prefix
    /// is cycled to fill the epoch's fixed slot count.
    GrowingPrefix { initial: f64, growth: f64 },
}

impl AccessPattern {
    /// Samples admitted under this pattern at `epoch` (the full dataset
    /// except for [`AccessPattern::GrowingPrefix`]). Monotone in `epoch`.
    pub fn admitted_len(self, dataset_len: usize, epoch: u64) -> usize {
        match self {
            AccessPattern::GrowingPrefix { initial, growth } => {
                let frac = (initial + growth * epoch as f64).clamp(0.0, 1.0);
                ((dataset_len as f64 * frac).ceil() as usize).clamp(1, dataset_len)
            }
            _ => dataset_len,
        }
    }
}

/// Generate the epoch schedule for any access pattern. The
/// [`PartitionScheme`] applies only to [`AccessPattern::EpochShuffle`]
/// (the other patterns define their own global orders).
pub fn generate_access(
    spec: ScheduleSpec,
    epoch: u64,
    scheme: PartitionScheme,
    pattern: AccessPattern,
) -> EpochSchedule {
    match pattern {
        AccessPattern::EpochShuffle => partition::generate(spec, epoch, scheme),
        AccessPattern::ZipfReplacement { s } => generate_zipf(spec, epoch, s),
        AccessPattern::GrowingPrefix { initial, growth } => {
            generate_growing(spec, epoch, initial, growth)
        }
    }
}

/// Unnormalized Zipf cumulative weights over `n` ranks.
fn zipf_cumulative(n: usize, s: f64) -> Vec<f64> {
    let mut cum = Vec::with_capacity(n);
    let mut total = 0.0;
    for r in 0..n {
        total += ((r + 1) as f64).powf(-s);
        cum.push(total);
    }
    cum
}

fn generate_zipf(spec: ScheduleSpec, epoch: u64, s: f64) -> EpochSchedule {
    let n = spec.dataset_len;
    // Popularity ranks → ids: fixed across epochs (derived from the base
    // seed only), so caches see a stable hot set.
    let mut ids: Vec<SampleId> = (0..n as u32).map(SampleId).collect();
    let mut pop_rng =
        Xoshiro256StarStar::seed_from_u64(derive_seed(spec.seed ^ SALT_POPULARITY, 0));
    pop_rng.shuffle(&mut ids);

    let cum = zipf_cumulative(n, s);
    let total = *cum.last().expect("non-empty dataset");
    let slots = spec.iterations_per_epoch() * spec.samples_per_iteration();
    let mut rng = Xoshiro256StarStar::seed_from_u64(derive_seed(spec.seed ^ SALT_ZIPF_DRAW, epoch));
    let mut order = Vec::with_capacity(slots);
    for _ in 0..slots {
        let u = rng.next_f64() * total;
        let rank = cum.partition_point(|&c| c < u).min(n - 1);
        order.push(ids[rank]);
    }
    EpochSchedule::from_order(spec, epoch, order)
}

fn generate_growing(spec: ScheduleSpec, epoch: u64, initial: f64, growth: f64) -> EpochSchedule {
    let pattern = AccessPattern::GrowingPrefix { initial, growth };
    let admitted = pattern.admitted_len(spec.dataset_len, epoch);
    let mut ids: Vec<SampleId> = (0..admitted as u32).map(SampleId).collect();
    let mut rng = Xoshiro256StarStar::seed_from_u64(derive_seed(spec.seed ^ SALT_GROWING, epoch));
    rng.shuffle(&mut ids);
    let slots = spec.iterations_per_epoch() * spec.samples_per_iteration();
    let order: Vec<SampleId> = (0..slots).map(|i| ids[i % admitted]).collect();
    EpochSchedule::from_order(spec, epoch, order)
}

/// One of the five workload families, with its shape parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WorkloadFamily {
    /// Zipf-skewed popularity, accessed with replacement (exponent `s`).
    ZipfSkew { s: f64 },
    /// Heavy-tailed (log-normal) sample sizes: `median_bytes` is the
    /// median document size, `sigma` the log-space standard deviation.
    HeavyTail { median_bytes: u64, sigma: f64 },
    /// A `slow_frac` fraction of samples costs `slow_cost`× to
    /// preprocess; the rest cost 1×.
    BimodalCost { slow_frac: f64, slow_cost: u32 },
    /// Online dataset: epoch `e` admits the `initial + e·growth` prefix
    /// fraction (clamped to 1), new samples appearing only at epoch
    /// boundaries.
    Growing { initial: f64, growth: f64 },
    /// Node `i` of `N` ramps toward slowdown factor
    /// `1 + peak · i/(N−1)` over the run (node 0 stays nominal).
    Drift { peak: f64 },
}

impl WorkloadFamily {
    /// The CLI family token.
    pub fn token(self) -> &'static str {
        match self {
            WorkloadFamily::ZipfSkew { .. } => "zipf",
            WorkloadFamily::HeavyTail { .. } => "heavy-tail",
            WorkloadFamily::BimodalCost { .. } => "bimodal",
            WorkloadFamily::Growing { .. } => "growing",
            WorkloadFamily::Drift { .. } => "drift",
        }
    }
}

/// A complete seeded workload scenario: family + dataset cardinality.
/// Compiles into the existing machinery via [`WorkloadSpec::dataset`]
/// (sizes + costs), [`WorkloadSpec::access`] (the epoch order), and
/// [`WorkloadSpec::drift_ramp`] (per-node compute drift).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    pub family: WorkloadFamily,
    /// Dataset cardinality `|D|`.
    pub samples: usize,
}

impl WorkloadSpec {
    /// Default parameters for a family token, at `samples` cardinality.
    pub fn default_for(token: &str, samples: usize) -> Option<WorkloadSpec> {
        let family = match token {
            "zipf" => WorkloadFamily::ZipfSkew { s: 1.1 },
            "heavy-tail" => WorkloadFamily::HeavyTail {
                median_bytes: 2_048,
                sigma: 1.6,
            },
            "bimodal" => WorkloadFamily::BimodalCost {
                slow_frac: 0.125,
                slow_cost: 16,
            },
            "growing" => WorkloadFamily::Growing {
                initial: 0.5,
                growth: 0.25,
            },
            "drift" => WorkloadFamily::Drift { peak: 2.0 },
            _ => return None,
        };
        Some(WorkloadSpec { family, samples })
    }

    /// All five families with their default parameters — the smoke matrix.
    pub fn all_families(samples: usize) -> Vec<WorkloadSpec> {
        ["zipf", "heavy-tail", "bimodal", "growing", "drift"]
            .iter()
            .map(|t| WorkloadSpec::default_for(t, samples).expect("known token"))
            .collect()
    }

    /// Parse the `--workload` grammar: `family[:k=v,k=v,...]`.
    ///
    /// ```text
    /// zipf                     zipf:s=1.3,samples=1024
    /// heavy-tail:median=4096,sigma=1.8
    /// bimodal:slow-frac=0.25,slow-cost=32
    /// growing:initial=0.4,growth=0.2
    /// drift:peak=3.0
    /// ```
    pub fn parse(text: &str) -> Result<WorkloadSpec, String> {
        let (token, params) = match text.split_once(':') {
            Some((t, p)) => (t, p),
            None => (text, ""),
        };
        let mut spec = WorkloadSpec::default_for(token, 512).ok_or_else(|| {
            format!("unknown workload family {token:?} (want zipf, heavy-tail, bimodal, growing, or drift)")
        })?;
        for kv in params.split(',').filter(|s| !s.is_empty()) {
            let (key, value) = kv
                .split_once('=')
                .ok_or_else(|| format!("workload parameter {kv:?} is not k=v"))?;
            let fval = || -> Result<f64, String> {
                value
                    .parse::<f64>()
                    .map_err(|_| format!("workload parameter {key}={value:?} is not a number"))
                    .and_then(|v| {
                        if v.is_finite() {
                            Ok(v)
                        } else {
                            Err(format!("workload parameter {key}={value:?} is not finite"))
                        }
                    })
            };
            let uval = || -> Result<u64, String> {
                value
                    .parse::<u64>()
                    .map_err(|_| format!("workload parameter {key}={value:?} is not an integer"))
            };
            match (&mut spec.family, key) {
                (_, "samples") => spec.samples = uval()?.max(1) as usize,
                (WorkloadFamily::ZipfSkew { s }, "s") => *s = fval()?.max(0.0),
                (WorkloadFamily::HeavyTail { median_bytes, .. }, "median") => {
                    *median_bytes = uval()?.max(1)
                }
                (WorkloadFamily::HeavyTail { sigma, .. }, "sigma") => *sigma = fval()?.max(0.0),
                (WorkloadFamily::BimodalCost { slow_frac, .. }, "slow-frac") => {
                    *slow_frac = fval()?.clamp(0.0, 1.0)
                }
                (WorkloadFamily::BimodalCost { slow_cost, .. }, "slow-cost") => {
                    *slow_cost = uval()?.clamp(1, u32::MAX as u64) as u32
                }
                (WorkloadFamily::Growing { initial, .. }, "initial") => {
                    *initial = fval()?.clamp(0.0, 1.0)
                }
                (WorkloadFamily::Growing { growth, .. }, "growth") => {
                    *growth = fval()?.clamp(0.0, 1.0)
                }
                (WorkloadFamily::Drift { peak }, "peak") => *peak = fval()?.max(0.0),
                (_, other) => {
                    return Err(format!(
                        "workload family {:?} has no parameter {other:?}",
                        token
                    ))
                }
            }
        }
        Ok(spec)
    }

    /// Human-readable label, also valid `parse` input.
    pub fn label(&self) -> String {
        match self.family {
            WorkloadFamily::ZipfSkew { s } => {
                format!("zipf:s={s},samples={}", self.samples)
            }
            WorkloadFamily::HeavyTail {
                median_bytes,
                sigma,
            } => {
                format!(
                    "heavy-tail:median={median_bytes},sigma={sigma},samples={}",
                    self.samples
                )
            }
            WorkloadFamily::BimodalCost {
                slow_frac,
                slow_cost,
            } => format!(
                "bimodal:slow-frac={slow_frac},slow-cost={slow_cost},samples={}",
                self.samples
            ),
            WorkloadFamily::Growing { initial, growth } => {
                format!(
                    "growing:initial={initial},growth={growth},samples={}",
                    self.samples
                )
            }
            WorkloadFamily::Drift { peak } => {
                format!("drift:peak={peak},samples={}", self.samples)
            }
        }
    }

    /// Compile the size + cost tables: a pure function of `(seed, self)`.
    pub fn dataset(&self, seed: u64) -> Dataset {
        let name = format!("workload-{}", self.family.token());
        match self.family {
            WorkloadFamily::HeavyTail {
                median_bytes,
                sigma,
            } => Dataset::generate(
                &name,
                self.samples,
                SizeDistribution::LogNormal {
                    mu: (median_bytes.max(1) as f64).ln(),
                    sigma,
                    min: 64,
                    max: 1 << 24,
                },
                seed,
            ),
            WorkloadFamily::BimodalCost {
                slow_frac,
                slow_cost,
            } => {
                let base = Dataset::generate(
                    &name,
                    self.samples,
                    SizeDistribution::Uniform {
                        lo: 8_192,
                        hi: 16_384,
                    },
                    seed,
                );
                let mut rng = Xoshiro256StarStar::seed_from_u64(derive_seed(seed ^ SALT_COSTS, 0));
                let costs: Vec<u32> = (0..self.samples)
                    .map(|_| {
                        if rng.next_f64() < slow_frac {
                            slow_cost.max(1)
                        } else {
                            1
                        }
                    })
                    .collect();
                base.with_costs(costs)
            }
            // The remaining families keep vision-like sizes; their novelty
            // is in the access order or the node environment.
            WorkloadFamily::ZipfSkew { .. }
            | WorkloadFamily::Growing { .. }
            | WorkloadFamily::Drift { .. } => Dataset::generate(
                &name,
                self.samples,
                SizeDistribution::Uniform {
                    lo: 8_192,
                    hi: 32_768,
                },
                seed,
            ),
        }
    }

    /// The access pattern this family imposes on the epoch schedule.
    pub fn access(&self) -> AccessPattern {
        match self.family {
            WorkloadFamily::ZipfSkew { s } => AccessPattern::ZipfReplacement { s },
            WorkloadFamily::Growing { initial, growth } => {
                AccessPattern::GrowingPrefix { initial, growth }
            }
            _ => AccessPattern::EpochShuffle,
        }
    }

    /// Per-node compute-drift ramps `(node, from_factor, to_factor)` for a
    /// `nodes`-node cluster, empty unless this is the drift family. The
    /// caller maps these onto its slowdown machinery (e.g.
    /// `SlowdownProfile::Ramp` over the run length).
    pub fn drift_ramp(&self, nodes: usize) -> Vec<(usize, f64, f64)> {
        match self.family {
            WorkloadFamily::Drift { peak } if nodes > 1 => (1..nodes)
                .map(|i| {
                    let share = i as f64 / (nodes - 1) as f64;
                    (i, 1.0, 1.0 + peak * share)
                })
                .collect(),
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    fn spec(len: usize) -> ScheduleSpec {
        ScheduleSpec {
            nodes: 2,
            gpus_per_node: 2,
            batch_size: 4,
            dataset_len: len,
            seed: 9,
        }
    }

    #[test]
    fn parse_round_trips_every_family_label() {
        for w in WorkloadSpec::all_families(256) {
            let back = WorkloadSpec::parse(&w.label()).expect("label parses");
            assert_eq!(back, w, "{}", w.label());
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(WorkloadSpec::parse("imagenet").is_err());
        assert!(WorkloadSpec::parse("zipf:s").is_err());
        assert!(WorkloadSpec::parse("zipf:s=abc").is_err());
        assert!(WorkloadSpec::parse("zipf:peak=2").is_err(), "wrong family");
        assert!(WorkloadSpec::parse("bimodal:slow-cost=nope").is_err());
    }

    #[test]
    fn parse_applies_parameters() {
        let w = WorkloadSpec::parse("bimodal:slow-frac=0.25,slow-cost=32,samples=64").unwrap();
        assert_eq!(
            w.family,
            WorkloadFamily::BimodalCost {
                slow_frac: 0.25,
                slow_cost: 32
            }
        );
        assert_eq!(w.samples, 64);
    }

    #[test]
    fn zipf_schedule_is_deterministic_and_skewed() {
        let s = generate_zipf(spec(128), 0, 1.2);
        let t = generate_zipf(spec(128), 0, 1.2);
        assert_eq!(s.all_accesses(), t.all_accesses());

        // Skew: the most popular sample must appear far above the uniform
        // expectation (slots / n = 1).
        let mut counts: HashMap<SampleId, usize> = HashMap::new();
        for &id in s.all_accesses() {
            *counts.entry(id).or_default() += 1;
        }
        let max = counts.values().copied().max().unwrap();
        assert!(max >= 4, "hottest sample seen {max}× — no skew?");
    }

    #[test]
    fn zipf_popularity_is_stable_across_epochs() {
        // The hottest samples of epoch 0 must stay hot in epoch 1 (the
        // rank→id permutation is epoch-independent).
        let hot = |epoch: u64| -> SampleId {
            let s = generate_zipf(spec(128), epoch, 1.4);
            let mut counts: HashMap<SampleId, usize> = HashMap::new();
            for &id in s.all_accesses() {
                *counts.entry(id).or_default() += 1;
            }
            counts
                .into_iter()
                .max_by_key(|&(id, c)| (c, std::cmp::Reverse(id)))
                .unwrap()
                .0
        };
        assert_eq!(hot(0), hot(1));
    }

    #[test]
    fn growing_admission_is_monotone_and_epoch_aligned() {
        let pattern = AccessPattern::GrowingPrefix {
            initial: 0.5,
            growth: 0.25,
        };
        let mut prev = 0;
        for epoch in 0..6 {
            let admitted = pattern.admitted_len(128, epoch);
            assert!(admitted >= prev, "admission must be monotone");
            prev = admitted;
            let s = generate_growing(spec(128), epoch, 0.5, 0.25);
            // Epoch alignment: no scheduled access may exceed the prefix
            // admitted at this epoch.
            for &id in s.all_accesses() {
                assert!(
                    id.index() < admitted,
                    "epoch {epoch} scheduled unadmitted sample {id:?}"
                );
            }
        }
        assert_eq!(prev, 128, "eventually the whole dataset is admitted");
    }

    #[test]
    fn growing_new_samples_appear_after_admission() {
        // A sample beyond the initial prefix must be absent in epoch 0 and
        // present once its prefix is admitted.
        let seen = |epoch: u64, id: u32| -> bool {
            generate_growing(spec(128), epoch, 0.5, 0.25)
                .all_accesses()
                .contains(&SampleId(id))
        };
        assert!(!seen(0, 100), "sample 100 not yet admitted at epoch 0");
        assert!(
            seen(2, 100),
            "sample 100 admitted by epoch 2 (fraction 1.0)"
        );
    }

    #[test]
    fn access_layout_contract_holds_for_every_pattern() {
        for pattern in [
            AccessPattern::EpochShuffle,
            AccessPattern::ZipfReplacement { s: 1.1 },
            AccessPattern::GrowingPrefix {
                initial: 0.5,
                growth: 0.5,
            },
        ] {
            let s = generate_access(spec(128), 1, PartitionScheme::GlobalShuffle, pattern);
            for h in 0..s.iterations() {
                for node in 0..2 {
                    let mut cat = Vec::new();
                    for gpu in 0..2 {
                        assert_eq!(s.batch(h, node, gpu).len(), 4);
                        cat.extend_from_slice(s.batch(h, node, gpu));
                    }
                    assert_eq!(s.node_iteration(h, node), cat.as_slice());
                }
            }
        }
    }

    #[test]
    fn bimodal_costs_match_the_mixture_fraction() {
        let w = WorkloadSpec::parse("bimodal:slow-frac=0.2,slow-cost=16,samples=4000").unwrap();
        let d = w.dataset(7);
        let slow = (0..4000u32)
            .filter(|&i| d.cost_of(SampleId(i)) == 16)
            .count();
        let frac = slow as f64 / 4000.0;
        assert!(
            (0.15..=0.25).contains(&frac),
            "empirical slow fraction {frac} vs spec 0.2"
        );
        // Only the two modes exist.
        assert!((0..4000u32).all(|i| matches!(d.cost_of(SampleId(i)), 1 | 16)));
    }

    #[test]
    fn heavy_tail_sizes_are_heavy_tailed() {
        let w = WorkloadSpec::parse("heavy-tail:median=2048,sigma=1.6,samples=4000").unwrap();
        let d = w.dataset(3);
        let mut sizes: Vec<u64> = (0..4000u32).map(|i| d.size_of(SampleId(i))).collect();
        sizes.sort_unstable();
        let median = sizes[2000];
        let p99 = sizes[3960];
        assert!(
            (1_000..4_200).contains(&(median as i64)),
            "median {median} far from spec 2048"
        );
        // σ=1.6 log-normal: p99 ≈ median · e^(2.33σ) ≈ 41× the median.
        assert!(
            p99 > median * 10,
            "p99 {p99} not heavy-tailed vs median {median}"
        );
        // The mean must sit well above the median — the tail dominates.
        assert!(d.mean_sample_bytes() > 1.5 * median as f64);
    }

    #[test]
    fn drift_ramp_spans_the_cluster() {
        let w = WorkloadSpec::parse("drift:peak=2.0").unwrap();
        let ramps = w.drift_ramp(3);
        assert_eq!(ramps.len(), 2, "node 0 stays nominal");
        assert_eq!(ramps[0], (1, 1.0, 2.0));
        assert_eq!(ramps[1], (2, 1.0, 3.0));
        assert!(w.drift_ramp(1).is_empty());
        let other = WorkloadSpec::parse("zipf").unwrap();
        assert!(other.drift_ramp(4).is_empty());
    }

    proptest! {
        #[test]
        fn same_seed_same_tables(seed in 0u64..1000, idx in 0usize..5) {
            let w = WorkloadSpec::all_families(64)[idx];
            let a = w.dataset(seed);
            let b = w.dataset(seed);
            prop_assert_eq!(a.total_bytes(), b.total_bytes());
            prop_assert_eq!(a.total_work_bytes(), b.total_work_bytes());
            for i in 0..64u32 {
                prop_assert_eq!(a.size_of(SampleId(i)), b.size_of(SampleId(i)));
                prop_assert_eq!(a.cost_of(SampleId(i)), b.cost_of(SampleId(i)));
            }
        }

        #[test]
        fn access_orders_are_pure_functions_of_seed_and_spec(
            seed in 0u64..500, epoch in 0u64..4, idx in 0usize..5
        ) {
            let w = WorkloadSpec::all_families(128)[idx];
            let mut s = spec(128);
            s.seed = seed;
            let a = generate_access(s, epoch, PartitionScheme::GlobalShuffle, w.access());
            let b = generate_access(s, epoch, PartitionScheme::GlobalShuffle, w.access());
            prop_assert_eq!(a.all_accesses(), b.all_accesses());
        }

        #[test]
        fn zipf_tail_matches_the_exponent(s_x10 in 8u32..20) {
            // Empirical check on the generator's own law: with weights
            // (r+1)^-s the top rank's expected share is 1/H_n(s); accept
            // a generous tolerance band since one epoch is a small sample.
            let s = s_x10 as f64 / 10.0;
            let sched = generate_zipf(spec(256), 0, s);
            let mut counts: HashMap<SampleId, usize> = HashMap::new();
            for &id in sched.all_accesses() {
                *counts.entry(id).or_default() += 1;
            }
            let slots = sched.all_accesses().len() as f64;
            let max = *counts.values().max().unwrap() as f64;
            let h: f64 = (1..=256).map(|r| (r as f64).powf(-s)).sum();
            let expected_top = slots / h;
            prop_assert!(
                max > expected_top * 0.4 && max < expected_top * 2.5,
                "top-rank share {} vs expected {}", max, expected_top
            );
        }

        #[test]
        fn growing_admission_monotone_for_any_params(
            initial in 0.0f64..1.0, growth in 0.0f64..0.5, len in 16usize..512
        ) {
            let pattern = AccessPattern::GrowingPrefix { initial, growth };
            let mut prev = 0;
            for epoch in 0..8 {
                let admitted = pattern.admitted_len(len, epoch);
                prop_assert!(admitted >= 1 && admitted <= len);
                prop_assert!(admitted >= prev);
                prev = admitted;
            }
        }
    }
}
