//! Comparable observables of a pipeline execution.
//!
//! Three independent executions of the same Lobster semantics coexist in
//! this repo — the analytical [`crate::ClusterSim`], the event-driven
//! conformance DES, and the live threaded engine. This module defines the
//! *invariant observables* they are all required to agree on: per-GPU tier
//! splits, the eviction-victim sequence (with causes), Algorithm-1 decision
//! records, prefetch volumes, the delivered-sample multiset per epoch, and
//! the barrier timeline. The types are plain data so any executor can fill
//! them and any checker can diff them; the comparison itself lives in
//! `lobster-conformance`.

use lobster_core::elastic::ElasticDecision;
use lobster_core::{EvictCause, PlanDecision};
use serde::{Deserialize, Serialize};

/// Why a sample left a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvictReason {
    /// §4.4 reuse-count sweep: zero remaining uses on the node.
    ReuseCount,
    /// §4.4 reuse-distance sweep: next reuse beyond the `2I − h` horizon.
    ReuseDistance,
    /// Displaced by an insert into a full cache (demand or prefetch).
    Capacity,
}

impl From<EvictCause> for EvictReason {
    fn from(c: EvictCause) -> EvictReason {
        match c {
            EvictCause::ReuseCount => EvictReason::ReuseCount,
            EvictCause::ReuseDistance => EvictReason::ReuseDistance,
        }
    }
}

/// One eviction, in execution order within its iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvictionEvent {
    /// Node whose cache dropped the sample.
    pub node: u32,
    /// The evicted sample id.
    pub sample: u64,
    pub reason: EvictReason,
}

/// One Algorithm-1 (or controller) solve, as an executor-neutral record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionObservable {
    pub node: u32,
    pub queue_loads: Vec<f64>,
    pub predicted_cost: Vec<f64>,
    pub threads_before: Vec<u32>,
    pub threads_after: Vec<u32>,
    pub gap_s: f64,
    pub evals: u32,
    pub converged: bool,
}

impl DecisionObservable {
    pub fn from_plan(node: usize, d: &PlanDecision) -> DecisionObservable {
        DecisionObservable {
            node: node as u32,
            queue_loads: d.queue_loads.clone(),
            predicted_cost: d.predicted_cost.clone(),
            threads_before: d.threads_before.clone(),
            threads_after: d.threads_after.clone(),
            gap_s: d.gap_s,
            evals: d.evals,
            converged: d.converged,
        }
    }
}

/// One elastic worker-pool controller tick, as an executor-neutral record.
///
/// The elastic controller's decisions are pure functions of deterministic
/// inputs (tick index, mean sample bytes, work factor, batch size,
/// `T_train`), so every executor that runs the same controller over the
/// same configuration must produce the *identical* sequence — role flips
/// are compared exactly, not within a tolerance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoleFlipObservable {
    /// Controller tick (== global iteration the decision applies to).
    pub tick: u64,
    /// Preprocessing-role workers before the tick.
    pub preproc_before: u32,
    /// Preprocessing-role workers after the tick.
    pub preproc_after: u32,
    /// Per-queue loader assignment after the tick (Algorithm 1 output).
    pub loader_queues: Vec<u32>,
    /// Worker indices whose role changed this tick.
    pub flipped: Vec<u32>,
}

impl RoleFlipObservable {
    pub fn from_decision(d: &ElasticDecision) -> RoleFlipObservable {
        RoleFlipObservable {
            tick: d.tick,
            preproc_before: d.preproc_before,
            preproc_after: d.preproc_after,
            loader_queues: d.loader_queues.clone(),
            flipped: d.flipped.clone(),
        }
    }
}

/// One cluster-membership transition, as an executor-neutral record.
///
/// The crash/rejoin timeline is a pure function of the compiled
/// [`lobster_storage::FaultPlan`] (tick-indexed, seed-pure), so every
/// executor that runs the same configuration must produce the *identical*
/// sequence — membership transitions are compared exactly, like role
/// flips, not within a tolerance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MembershipObservable {
    /// Tick (== global iteration) at whose boundary the transition landed.
    pub tick: u64,
    /// The node whose membership changed.
    pub node: u32,
    /// True for a crash, false for a rejoin.
    pub crashed: bool,
}

impl MembershipObservable {
    pub fn from_event(e: &lobster_storage::MembershipEvent) -> Self {
        MembershipObservable {
            tick: e.tick,
            node: e.node,
            crashed: e.transition == lobster_storage::MembershipTransition::Crashed,
        }
    }
}

/// Everything observable about one cluster iteration.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IterationObservables {
    /// Global iteration index (across epochs).
    pub iteration: u64,
    /// Per global GPU: demand accesses by tier `[local, remote, pfs]`,
    /// classified against the cache/directory state at iteration start.
    pub tier_counts: Vec<[u64; 3]>,
    /// Evictions in execution order: per node, demand-capacity victims,
    /// then the §4.4 sweep victims, then prefetch-capacity victims.
    pub evictions: Vec<EvictionEvent>,
    /// Algorithm-1 decisions drained from the policy, in node order.
    pub decisions: Vec<DecisionObservable>,
    /// Samples prefetched this iteration, per node.
    pub prefetched: Vec<u64>,
    /// Elastic worker-pool controller ticks this iteration (empty when the
    /// run is not elastic). Compared exactly across executors.
    pub role_flips: Vec<RoleFlipObservable>,
    /// Cluster-membership transitions applied at this iteration's boundary
    /// (empty without a crash schedule). Compared exactly across executors.
    pub membership: Vec<MembershipObservable>,
    /// Per global GPU `T_L + T_P`, seconds.
    pub pipe_s: Vec<f64>,
    /// Per global GPU training-start time, absolute seconds.
    pub starts_s: Vec<f64>,
    /// Barrier-completion time of this iteration, absolute seconds.
    pub barrier_s: f64,
}

/// Observables of a whole run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunObservables {
    pub iterations: Vec<IterationObservables>,
    /// Per epoch: the sorted multiset of delivered sample ids.
    pub delivered: Vec<Vec<u64>>,
    /// Demand accesses served by the local cache, whole run.
    pub local_hits: u64,
    /// Demand accesses served by a remote node's cache, whole run.
    pub remote_hits: u64,
    /// Demand accesses that reached the PFS, whole run.
    pub misses: u64,
    /// Samples prefetched ahead of use, whole run.
    pub prefetched: u64,
    /// Online detector firings over the run's per-tick telemetry frames,
    /// in emission order. The frames are built from the same deterministic
    /// timing recurrence every executor computes and the detectors use
    /// integer arithmetic only, so — like membership — the sequence is
    /// compared *exactly* across executors, not within a tolerance.
    pub anomalies: Vec<lobster_metrics::Anomaly>,
}

impl RunObservables {
    /// Total demand accesses (== fetches; hits + misses must account for
    /// every one).
    pub fn demand_accesses(&self) -> u64 {
        self.local_hits + self.remote_hits + self.misses
    }

    /// The whole run's membership-transition sequence, flattened in tick
    /// order — the exact-equality conformance observable of DESIGN.md §13.
    pub fn membership_sequence(&self) -> Vec<MembershipObservable> {
        self.iterations
            .iter()
            .flat_map(|it| it.membership.iter().copied())
            .collect()
    }

    /// Sum of per-GPU tier counts across all iterations, `[local, remote,
    /// pfs]` — must equal the hit counters exactly.
    pub fn tier_totals(&self) -> [u64; 3] {
        let mut t = [0u64; 3];
        for it in &self.iterations {
            for gpu in &it.tier_counts {
                for k in 0..3 {
                    t[k] += gpu[k];
                }
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_totals_sum_over_gpus_and_iterations() {
        let obs = RunObservables {
            iterations: vec![
                IterationObservables {
                    tier_counts: vec![[1, 2, 3], [4, 5, 6]],
                    ..Default::default()
                },
                IterationObservables {
                    tier_counts: vec![[10, 0, 0], [0, 10, 0]],
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        assert_eq!(obs.tier_totals(), [15, 17, 9]);
    }

    #[test]
    fn evict_reason_maps_from_cause() {
        assert_eq!(
            EvictReason::from(EvictCause::ReuseCount),
            EvictReason::ReuseCount
        );
        assert_eq!(
            EvictReason::from(EvictCause::ReuseDistance),
            EvictReason::ReuseDistance
        );
    }
}
