//! Experiment configuration: everything needed to reproduce one evaluation
//! run (cluster topology, storage model, dataset, DNN workload, seeds).

use lobster_core::{ClusterSpec, ModelProfile, PreprocGovernor, PreprocModel, WorkEstimate};
use lobster_data::{AccessPattern, Dataset, PartitionScheme, ScheduleSpec};
use lobster_storage::{CrashSpec, FaultConfigError, FaultSpec, SlowdownProfile, StorageModel};

/// Elastic worker-pool rule for the simulators, mirroring the live
/// engine's `--elastic` mode: a pool of `workers` whose loader/preproc
/// split is re-planned each iteration by `lobster_core::ElasticController`
/// from the same deterministic inputs the engine uses (tick, mean sample
/// bytes, work factor, batch samples, `T_train`) — so the role-flip
/// decision sequences of engine, ClusterSim, and the conformance DES can
/// be compared exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElasticSimConfig {
    /// Pool size per node (loaders + preprocessing workers).
    pub workers: u32,
    /// Workers starting in the preprocessing role.
    pub initial_preproc: u32,
    /// Baseline preprocessing work factor (1 = nominal).
    pub work_factor: u32,
    /// Mid-run step: from global iteration `.0`, the work factor becomes
    /// `.1` (the Figure 6 "preprocessing cost grows" scenario).
    pub work_factor_step: Option<(u64, u32)>,
    /// Force one loader↔preproc swap on otherwise-quiet ticks (test knob).
    pub churn: bool,
    /// Freeze the controller at its initial split (the never-steal mutant
    /// and the static baseline in the elastic-vs-static experiment).
    pub frozen: bool,
    /// Per-sample work estimate fed to the controller (mean, or a
    /// quantile for heavy-tailed / bimodal preprocessing costs —
    /// DESIGN.md §15).
    pub estimate: WorkEstimate,
}

impl ElasticSimConfig {
    /// A pool of `workers` with a quarter starting in the preprocessing
    /// role (at least one), nominal work factor, no churn.
    pub fn for_pool(workers: u32) -> ElasticSimConfig {
        ElasticSimConfig {
            workers,
            initial_preproc: (workers / 4).max(1),
            work_factor: 1,
            work_factor_step: None,
            churn: false,
            frozen: false,
            estimate: WorkEstimate::Mean,
        }
    }

    /// The preprocessing work factor in effect at global iteration `iter`.
    pub fn work_factor_at(&self, iter: u64) -> u32 {
        match self.work_factor_step {
            Some((at, wf)) if iter >= at => wf,
            _ => self.work_factor,
        }
    }
}

/// One training-run configuration.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Topology and per-node resources.
    pub cluster: ClusterSpec,
    /// Storage-tier throughput curves.
    pub storage: StorageModel,
    /// Ground-truth preprocessing cost model (what the cluster "actually"
    /// does; the governor only ever sees measurements of it).
    pub preproc: PreprocModel,
    /// The DNN workload (supplies `T_train`).
    pub model: ModelProfile,
    /// The training dataset.
    pub dataset: Dataset,
    /// Epochs to simulate.
    pub epochs: u64,
    /// Base shuffle seed.
    pub seed: u64,
    /// Gradient-allreduce cost added to every iteration barrier, seconds.
    pub allreduce_s: f64,
    /// An iteration "exhibits load imbalance" when the spread of per-GPU
    /// pipeline times exceeds this fraction of `T_train` (Figure 8's
    /// counting rule).
    pub imbalance_fraction: f64,
    /// How many iterations ahead the deterministic prefetcher may look.
    pub prefetch_lookahead: usize,
    /// Fault injection: per-node, time-varying I/O slowdown profiles
    /// applied to every load time on that node (missing entries = nominal).
    /// Evaluated at the simulator's current time, so a node can degrade
    /// mid-run (step), oscillate (flap), or drift (ramp). DESIGN.md §8.
    pub node_slowdown: Vec<SlowdownProfile>,
    /// Non-fatal configuration problems the builder repaired (e.g. a
    /// slowdown factor < 1 clamped to nominal). Surfaced so runs are not
    /// silently different from what the caller asked for.
    pub config_warnings: Vec<String>,
    /// Distributed-cache topology extension (§2 mentions "alternatives to
    /// distributed caching like for example KV-stores"): when true, each
    /// sample has a hash-owner node and fetched samples are cached at their
    /// owner instead of locally (Cerebro/DeepIO-style partitioning).
    pub kv_partitioned: bool,
    /// How epochs are partitioned across ranks (global shuffle — the
    /// paper's setting — or node-local shard shuffling).
    pub partition: PartitionScheme,
    /// How the per-epoch sample order is drawn before partitioning
    /// (epoch shuffle, Zipf-with-replacement, growing prefix —
    /// DESIGN.md §15).
    pub access: AccessPattern,
    /// Elastic worker-pool rule (None = the classic static/adaptive
    /// thread-count planning path).
    pub elastic: Option<ElasticSimConfig>,
    /// Scheduled whole-node crashes and rejoins (tick-indexed, so the
    /// membership timeline is a pure function of configuration —
    /// DESIGN.md §13).
    pub crashes: Vec<CrashSpec>,
}

impl ExperimentConfig {
    /// The I/O slowdown multiplier for `node` at simulated time `t_s`
    /// (1.0 = nominal for nodes without a profile).
    pub fn slowdown_at(&self, node: usize, t_s: f64) -> f64 {
        self.node_slowdown
            .get(node)
            .map_or(1.0, |p| p.factor_at(t_s))
    }

    /// The worst-case slowdown any node ever reaches (≥ 1.0).
    pub fn peak_slowdown(&self) -> f64 {
        self.node_slowdown
            .iter()
            .map(SlowdownProfile::peak)
            .fold(1.0, f64::max)
    }

    /// The schedule spec implied by this configuration.
    pub fn schedule_spec(&self) -> ScheduleSpec {
        ScheduleSpec {
            nodes: self.cluster.nodes,
            gpus_per_node: self.cluster.gpus_per_node,
            batch_size: self.cluster.batch_size,
            dataset_len: self.dataset.len(),
            seed: self.seed,
        }
    }

    /// Iterations per epoch `I`.
    pub fn iterations_per_epoch(&self) -> usize {
        self.cluster.iterations_per_epoch(self.dataset.len())
    }

    /// Compile the crash schedule into a membership-only [`FaultPlan`]
    /// (panics on an invalid schedule — the builder validated it already).
    pub fn crash_plan(&self) -> lobster_storage::FaultPlan {
        FaultSpec {
            crashes: self.crashes.clone(),
            seed: self.seed,
            ..FaultSpec::default()
        }
        .compile()
        .expect("builder-validated crash schedule compiles")
    }

    /// Calibrate a preprocessing governor against the ground-truth model —
    /// the paper's offline profiling phase. The portfolio covers the size
    /// range of both ImageNet variants.
    pub fn calibrated_governor(&self) -> PreprocGovernor {
        let sizes = [10_000u64, 30_000, 60_000, 105_000, 200_000, 500_000];
        let max_threads = self.cluster.pipeline_threads.clamp(8, 16);
        let truth = self.preproc.clone();
        PreprocGovernor::calibrate(&sizes, max_threads, 1e-9, |b, t| {
            truth.per_sample_secs(b, t)
        })
    }
}

/// Builder with the paper's defaults; experiments override what they sweep.
#[derive(Debug, Clone)]
pub struct ConfigBuilder {
    nodes: usize,
    gpus_per_node: usize,
    cache_bytes: u64,
    pipeline_threads: u32,
    batch_size: usize,
    model: ModelProfile,
    dataset: Option<Dataset>,
    epochs: u64,
    seed: u64,
    node_slowdown: Vec<SlowdownProfile>,
    warnings: Vec<String>,
    kv_partitioned: bool,
    partition: PartitionScheme,
    access: AccessPattern,
    elastic: Option<ElasticSimConfig>,
    crashes: Vec<CrashSpec>,
}

impl ConfigBuilder {
    /// Paper defaults: 1 node × 8 GPUs, 40 GB cache, 32 pipeline threads,
    /// batch 32, ResNet-50.
    pub fn new() -> ConfigBuilder {
        ConfigBuilder {
            nodes: 1,
            gpus_per_node: 8,
            cache_bytes: 40 << 30,
            pipeline_threads: 32,
            batch_size: 32,
            model: lobster_core::models::resnet50(),
            dataset: None,
            epochs: 3,
            seed: 42,
            node_slowdown: Vec::new(),
            warnings: Vec::new(),
            kv_partitioned: false,
            partition: PartitionScheme::GlobalShuffle,
            access: AccessPattern::EpochShuffle,
            elastic: None,
            crashes: Vec::new(),
        }
    }

    pub fn nodes(mut self, n: usize) -> Self {
        self.nodes = n;
        self
    }

    pub fn gpus_per_node(mut self, m: usize) -> Self {
        self.gpus_per_node = m;
        self
    }

    pub fn cache_bytes(mut self, b: u64) -> Self {
        self.cache_bytes = b;
        self
    }

    pub fn pipeline_threads(mut self, t: u32) -> Self {
        self.pipeline_threads = t;
        self
    }

    pub fn batch_size(mut self, b: usize) -> Self {
        self.batch_size = b;
        self
    }

    pub fn model(mut self, m: ModelProfile) -> Self {
        self.model = m;
        self
    }

    pub fn dataset(mut self, d: Dataset) -> Self {
        self.dataset = Some(d);
        self
    }

    pub fn epochs(mut self, e: u64) -> Self {
        self.epochs = e;
        self
    }

    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Inject a constant I/O slowdown on one node (1.0 = nominal; 2.0 =
    /// half speed). An invalid factor (< 1, NaN, infinite) is *clamped to
    /// nominal* and recorded as a configuration warning instead of
    /// panicking — the strict variant is [`try_slow_node`].
    ///
    /// [`try_slow_node`]: ConfigBuilder::try_slow_node
    pub fn slow_node(mut self, node: usize, factor: f64) -> Self {
        let profile = SlowdownProfile::Constant(factor);
        if profile.validate().is_err() {
            self.warnings.push(format!(
                "slow_node({node}, {factor}): factor must be a finite value ≥ 1; \
                 clamped to nominal (1.0)"
            ));
            return self.set_profile(node, SlowdownProfile::NOMINAL);
        }
        self.set_profile(node, profile)
    }

    /// Like [`slow_node`](ConfigBuilder::slow_node) but an invalid factor
    /// is an error instead of a clamp.
    pub fn try_slow_node(self, node: usize, factor: f64) -> Result<Self, FaultConfigError> {
        self.try_slow_node_profile(node, SlowdownProfile::Constant(factor))
    }

    /// Attach a time-varying slowdown profile (step, flap, ramp, …) to one
    /// node, validating it first.
    pub fn try_slow_node_profile(
        self,
        node: usize,
        profile: SlowdownProfile,
    ) -> Result<Self, FaultConfigError> {
        profile.validate()?;
        Ok(self.set_profile(node, profile))
    }

    fn set_profile(mut self, node: usize, profile: SlowdownProfile) -> Self {
        if self.node_slowdown.len() <= node {
            self.node_slowdown
                .resize(node + 1, SlowdownProfile::NOMINAL);
        }
        self.node_slowdown[node] = profile;
        self
    }

    /// Switch the distributed cache to KV-partitioned placement.
    pub fn kv_partitioned(mut self, on: bool) -> Self {
        self.kv_partitioned = on;
        self
    }

    /// Choose the epoch partition scheme (default: global shuffle).
    pub fn partition(mut self, scheme: PartitionScheme) -> Self {
        self.partition = scheme;
        self
    }

    /// Choose the per-epoch access pattern (default: epoch shuffle).
    pub fn access(mut self, pattern: AccessPattern) -> Self {
        self.access = pattern;
        self
    }

    /// Enable the elastic worker-pool rule (None = classic planning path).
    pub fn elastic(mut self, e: ElasticSimConfig) -> Self {
        self.elastic = Some(e);
        self
    }

    /// Schedule a whole-node crash at global iteration `tick`, optionally
    /// rejoining (with a cold cache) at a later tick. Validated against
    /// the node count at [`build`](ConfigBuilder::build) time; the crash
    /// schedule itself is validated eagerly.
    pub fn try_crash_node(
        mut self,
        node: u32,
        tick: u64,
        rejoin: Option<u64>,
    ) -> Result<Self, FaultConfigError> {
        self.crashes.push(CrashSpec { node, tick, rejoin });
        FaultSpec {
            crashes: self.crashes.clone(),
            ..FaultSpec::default()
        }
        .validate()?;
        Ok(self)
    }

    /// Adopt the crash schedule of a parsed `--faults` spec.
    pub fn crashes(mut self, crashes: Vec<CrashSpec>) -> Self {
        self.crashes = crashes;
        self
    }

    pub fn build(self) -> ExperimentConfig {
        let dataset = self
            .dataset
            .expect("ConfigBuilder::dataset must be set (use lobster_data::imagenet_1k etc.)");
        for c in &self.crashes {
            assert!(
                (c.node as usize) < self.nodes,
                "crash schedule names node {} but the cluster has {} node(s)",
                c.node,
                self.nodes
            );
            assert!(
                self.nodes > 1,
                "a whole-node crash needs at least one survivor to re-shard onto"
            );
        }
        ExperimentConfig {
            cluster: ClusterSpec {
                nodes: self.nodes,
                gpus_per_node: self.gpus_per_node,
                cache_bytes: self.cache_bytes,
                pipeline_threads: self.pipeline_threads,
                batch_size: self.batch_size,
            },
            storage: lobster_storage::thetagpu(),
            preproc: PreprocModel::default_imagenet(),
            model: self.model,
            dataset,
            epochs: self.epochs,
            seed: self.seed,
            allreduce_s: 2e-3,
            imbalance_fraction: 0.25,
            prefetch_lookahead: 64,
            node_slowdown: self.node_slowdown,
            config_warnings: self.warnings,
            kv_partitioned: self.kv_partitioned,
            partition: self.partition,
            access: self.access,
            elastic: self.elastic,
            crashes: self.crashes,
        }
    }
}

impl Default for ConfigBuilder {
    fn default() -> Self {
        ConfigBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobster_data::{Dataset, SizeDistribution};

    fn tiny_dataset() -> Dataset {
        Dataset::generate(
            "tiny",
            4096,
            SizeDistribution::Constant { bytes: 100_000 },
            1,
        )
    }

    #[test]
    fn builder_produces_consistent_config() {
        let cfg = ConfigBuilder::new()
            .dataset(tiny_dataset())
            .nodes(2)
            .gpus_per_node(4)
            .build();
        assert_eq!(cfg.cluster.world_size(), 8);
        assert_eq!(cfg.iterations_per_epoch(), 4096 / (32 * 8));
        let spec = cfg.schedule_spec();
        assert_eq!(spec.world_size(), 8);
        assert_eq!(spec.dataset_len, 4096);
    }

    #[test]
    fn governor_calibration_finds_the_knee() {
        let cfg = ConfigBuilder::new().dataset(tiny_dataset()).build();
        let gov = cfg.calibrated_governor();
        let opt = gov.optimal_threads(105_000);
        assert!((5..=7).contains(&opt), "knee at {opt}");
    }

    #[test]
    #[should_panic(expected = "dataset must be set")]
    fn missing_dataset_panics() {
        ConfigBuilder::new().build();
    }

    #[test]
    fn slow_node_accepts_valid_factor() {
        let cfg = ConfigBuilder::new()
            .dataset(tiny_dataset())
            .nodes(4)
            .slow_node(2, 2.5)
            .build();
        assert!(cfg.config_warnings.is_empty());
        assert_eq!(cfg.slowdown_at(2, 0.0), 2.5);
        assert_eq!(cfg.slowdown_at(2, 1e6), 2.5);
        assert_eq!(cfg.slowdown_at(0, 0.0), 1.0, "unprofiled nodes are nominal");
        assert_eq!(cfg.peak_slowdown(), 2.5);
    }

    #[test]
    fn slow_node_clamps_invalid_factor_with_warning() {
        // The old builder panicked here (assert!(factor >= 1.0)); now the
        // run proceeds at nominal speed and the repair is recorded.
        for bad in [0.5, -3.0, f64::NAN, f64::INFINITY] {
            let cfg = ConfigBuilder::new()
                .dataset(tiny_dataset())
                .slow_node(0, bad)
                .build();
            assert_eq!(cfg.config_warnings.len(), 1, "factor {bad}");
            assert!(cfg.config_warnings[0].contains("clamped"));
            assert_eq!(cfg.slowdown_at(0, 0.0), 1.0);
        }
    }

    #[test]
    fn try_slow_node_rejects_invalid_and_accepts_valid() {
        assert!(ConfigBuilder::new().try_slow_node(0, 0.5).is_err());
        assert!(ConfigBuilder::new().try_slow_node(0, f64::NAN).is_err());
        let b = ConfigBuilder::new().try_slow_node(1, 3.0).unwrap();
        let cfg = b.dataset(tiny_dataset()).build();
        assert!(cfg.config_warnings.is_empty());
        assert_eq!(cfg.slowdown_at(1, 0.0), 3.0);
    }

    #[test]
    fn time_varying_profiles_evaluate_at_sim_time() {
        let cfg = ConfigBuilder::new()
            .dataset(tiny_dataset())
            .nodes(2)
            .try_slow_node_profile(
                1,
                SlowdownProfile::Step {
                    at_s: 10.0,
                    factor: 4.0,
                },
            )
            .unwrap()
            .build();
        assert_eq!(cfg.slowdown_at(1, 5.0), 1.0, "before the step");
        assert_eq!(cfg.slowdown_at(1, 15.0), 4.0, "after the step");
        assert_eq!(cfg.peak_slowdown(), 4.0);
    }
}
