//! Experiment configuration: everything needed to reproduce one evaluation
//! run (cluster topology, storage model, dataset, DNN workload, seeds).

use lobster_core::{ClusterSpec, ModelProfile, PreprocGovernor, PreprocModel};
use lobster_data::{Dataset, PartitionScheme, ScheduleSpec};
use lobster_storage::StorageModel;

/// One training-run configuration.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Topology and per-node resources.
    pub cluster: ClusterSpec,
    /// Storage-tier throughput curves.
    pub storage: StorageModel,
    /// Ground-truth preprocessing cost model (what the cluster "actually"
    /// does; the governor only ever sees measurements of it).
    pub preproc: PreprocModel,
    /// The DNN workload (supplies `T_train`).
    pub model: ModelProfile,
    /// The training dataset.
    pub dataset: Dataset,
    /// Epochs to simulate.
    pub epochs: u64,
    /// Base shuffle seed.
    pub seed: u64,
    /// Gradient-allreduce cost added to every iteration barrier, seconds.
    pub allreduce_s: f64,
    /// An iteration "exhibits load imbalance" when the spread of per-GPU
    /// pipeline times exceeds this fraction of `T_train` (Figure 8's
    /// counting rule).
    pub imbalance_fraction: f64,
    /// How many iterations ahead the deterministic prefetcher may look.
    pub prefetch_lookahead: usize,
    /// Fault injection: per-node I/O slowdown multipliers applied to every
    /// load time on that node (missing entries = 1.0). DESIGN.md §8.
    pub node_slowdown: Vec<f64>,
    /// Distributed-cache topology extension (§2 mentions "alternatives to
    /// distributed caching like for example KV-stores"): when true, each
    /// sample has a hash-owner node and fetched samples are cached at their
    /// owner instead of locally (Cerebro/DeepIO-style partitioning).
    pub kv_partitioned: bool,
    /// How epochs are partitioned across ranks (global shuffle — the
    /// paper's setting — or node-local shard shuffling).
    pub partition: PartitionScheme,
}

impl ExperimentConfig {
    /// The schedule spec implied by this configuration.
    pub fn schedule_spec(&self) -> ScheduleSpec {
        ScheduleSpec {
            nodes: self.cluster.nodes,
            gpus_per_node: self.cluster.gpus_per_node,
            batch_size: self.cluster.batch_size,
            dataset_len: self.dataset.len(),
            seed: self.seed,
        }
    }

    /// Iterations per epoch `I`.
    pub fn iterations_per_epoch(&self) -> usize {
        self.cluster.iterations_per_epoch(self.dataset.len())
    }

    /// Calibrate a preprocessing governor against the ground-truth model —
    /// the paper's offline profiling phase. The portfolio covers the size
    /// range of both ImageNet variants.
    pub fn calibrated_governor(&self) -> PreprocGovernor {
        let sizes = [10_000u64, 30_000, 60_000, 105_000, 200_000, 500_000];
        let max_threads = self.cluster.pipeline_threads.clamp(8, 16);
        let truth = self.preproc.clone();
        PreprocGovernor::calibrate(&sizes, max_threads, 1e-9, |b, t| {
            truth.per_sample_secs(b, t)
        })
    }
}

/// Builder with the paper's defaults; experiments override what they sweep.
#[derive(Debug, Clone)]
pub struct ConfigBuilder {
    nodes: usize,
    gpus_per_node: usize,
    cache_bytes: u64,
    pipeline_threads: u32,
    batch_size: usize,
    model: ModelProfile,
    dataset: Option<Dataset>,
    epochs: u64,
    seed: u64,
    node_slowdown: Vec<f64>,
    kv_partitioned: bool,
    partition: PartitionScheme,
}

impl ConfigBuilder {
    /// Paper defaults: 1 node × 8 GPUs, 40 GB cache, 32 pipeline threads,
    /// batch 32, ResNet-50.
    pub fn new() -> ConfigBuilder {
        ConfigBuilder {
            nodes: 1,
            gpus_per_node: 8,
            cache_bytes: 40 << 30,
            pipeline_threads: 32,
            batch_size: 32,
            model: lobster_core::models::resnet50(),
            dataset: None,
            epochs: 3,
            seed: 42,
            node_slowdown: Vec::new(),
            kv_partitioned: false,
            partition: PartitionScheme::GlobalShuffle,
        }
    }

    pub fn nodes(mut self, n: usize) -> Self {
        self.nodes = n;
        self
    }

    pub fn gpus_per_node(mut self, m: usize) -> Self {
        self.gpus_per_node = m;
        self
    }

    pub fn cache_bytes(mut self, b: u64) -> Self {
        self.cache_bytes = b;
        self
    }

    pub fn pipeline_threads(mut self, t: u32) -> Self {
        self.pipeline_threads = t;
        self
    }

    pub fn batch_size(mut self, b: usize) -> Self {
        self.batch_size = b;
        self
    }

    pub fn model(mut self, m: ModelProfile) -> Self {
        self.model = m;
        self
    }

    pub fn dataset(mut self, d: Dataset) -> Self {
        self.dataset = Some(d);
        self
    }

    pub fn epochs(mut self, e: u64) -> Self {
        self.epochs = e;
        self
    }

    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Inject an I/O slowdown on one node (1.0 = nominal; 2.0 = half speed).
    pub fn slow_node(mut self, node: usize, factor: f64) -> Self {
        assert!(factor >= 1.0, "slowdown factors are ≥ 1");
        if self.node_slowdown.len() <= node {
            self.node_slowdown.resize(node + 1, 1.0);
        }
        self.node_slowdown[node] = factor;
        self
    }

    /// Switch the distributed cache to KV-partitioned placement.
    pub fn kv_partitioned(mut self, on: bool) -> Self {
        self.kv_partitioned = on;
        self
    }

    /// Choose the epoch partition scheme (default: global shuffle).
    pub fn partition(mut self, scheme: PartitionScheme) -> Self {
        self.partition = scheme;
        self
    }

    pub fn build(self) -> ExperimentConfig {
        let dataset = self
            .dataset
            .expect("ConfigBuilder::dataset must be set (use lobster_data::imagenet_1k etc.)");
        ExperimentConfig {
            cluster: ClusterSpec {
                nodes: self.nodes,
                gpus_per_node: self.gpus_per_node,
                cache_bytes: self.cache_bytes,
                pipeline_threads: self.pipeline_threads,
                batch_size: self.batch_size,
            },
            storage: lobster_storage::thetagpu(),
            preproc: PreprocModel::default_imagenet(),
            model: self.model,
            dataset,
            epochs: self.epochs,
            seed: self.seed,
            allreduce_s: 2e-3,
            imbalance_fraction: 0.25,
            prefetch_lookahead: 64,
            node_slowdown: self.node_slowdown,
            kv_partitioned: self.kv_partitioned,
            partition: self.partition,
        }
    }
}

impl Default for ConfigBuilder {
    fn default() -> Self {
        ConfigBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobster_data::{Dataset, SizeDistribution};

    fn tiny_dataset() -> Dataset {
        Dataset::generate(
            "tiny",
            4096,
            SizeDistribution::Constant { bytes: 100_000 },
            1,
        )
    }

    #[test]
    fn builder_produces_consistent_config() {
        let cfg = ConfigBuilder::new()
            .dataset(tiny_dataset())
            .nodes(2)
            .gpus_per_node(4)
            .build();
        assert_eq!(cfg.cluster.world_size(), 8);
        assert_eq!(cfg.iterations_per_epoch(), 4096 / (32 * 8));
        let spec = cfg.schedule_spec();
        assert_eq!(spec.world_size(), 8);
        assert_eq!(spec.dataset_len, 4096);
    }

    #[test]
    fn governor_calibration_finds_the_knee() {
        let cfg = ConfigBuilder::new().dataset(tiny_dataset()).build();
        let gov = cfg.calibrated_governor();
        let opt = gov.optimal_threads(105_000);
        assert!((5..=7).contains(&opt), "knee at {opt}");
    }

    #[test]
    #[should_panic(expected = "dataset must be set")]
    fn missing_dataset_panics() {
        ConfigBuilder::new().build();
    }
}
