//! Per-iteration, per-GPU traces — the data behind Figure 3's execution-time
//! breakdown.

use serde::{Deserialize, Serialize};

/// One GPU's view of one iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationRecord {
    pub epoch: u64,
    pub iteration: u64,
    pub node: usize,
    pub gpu: usize,
    /// Data-loading stage duration (overlapped with previous training).
    pub load_s: f64,
    /// Preprocessing stage duration.
    pub preproc_s: f64,
    /// Training stage duration.
    pub train_s: f64,
    /// Idle before training started: waiting for this GPU's own data.
    pub wait_data_s: f64,
    /// Idle after training: waiting for straggler GPUs at the allreduce.
    pub wait_stragglers_s: f64,
}

impl IterationRecord {
    /// Was this GPU's pipeline the iteration's bottleneck (its stages did
    /// not hide behind training)?
    pub fn pipeline_bound(&self) -> bool {
        self.load_s + self.preproc_s > self.train_s
    }
}

/// Collects records for a bounded window of iterations.
#[derive(Debug, Clone)]
pub struct TraceCollector {
    /// Only iterations with `epoch == target_epoch` and `iteration` in one
    /// of the ranges are kept.
    target_epoch: u64,
    ranges: Vec<(u64, u64)>,
    records: Vec<IterationRecord>,
}

impl TraceCollector {
    /// Record iterations of `epoch` falling in any of `ranges`
    /// (half-open `[lo, hi)`).
    pub fn for_epoch(epoch: u64, ranges: Vec<(u64, u64)>) -> TraceCollector {
        TraceCollector {
            target_epoch: epoch,
            ranges,
            records: Vec::new(),
        }
    }

    /// The paper's Figure 3 sampling: "eight each in the beginning, middle,
    /// and end" of the second epoch.
    pub fn figure3(iters_per_epoch: u64) -> TraceCollector {
        let i = iters_per_epoch;
        let mid = i / 2;
        TraceCollector::for_epoch(
            1,
            vec![
                (0, 8.min(i)),
                (mid, (mid + 8).min(i)),
                (i.saturating_sub(8), i),
            ],
        )
    }

    pub fn record(&mut self, r: IterationRecord) {
        if r.epoch == self.target_epoch
            && self
                .ranges
                .iter()
                .any(|&(lo, hi)| r.iteration >= lo && r.iteration < hi)
        {
            self.records.push(r);
        }
    }

    pub fn records(&self) -> &[IterationRecord] {
        &self.records
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records for one specific GPU, in iteration order.
    pub fn for_gpu(&self, node: usize, gpu: usize) -> Vec<IterationRecord> {
        self.records
            .iter()
            .filter(|r| r.node == node && r.gpu == gpu)
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(epoch: u64, iteration: u64, node: usize, gpu: usize) -> IterationRecord {
        IterationRecord {
            epoch,
            iteration,
            node,
            gpu,
            load_s: 0.01,
            preproc_s: 0.02,
            train_s: 0.1,
            wait_data_s: 0.0,
            wait_stragglers_s: 0.005,
        }
    }

    #[test]
    fn collector_filters_epoch_and_ranges() {
        let mut t = TraceCollector::for_epoch(1, vec![(0, 2), (10, 12)]);
        t.record(rec(0, 0, 0, 0)); // wrong epoch
        t.record(rec(1, 0, 0, 0)); // kept
        t.record(rec(1, 5, 0, 0)); // outside ranges
        t.record(rec(1, 11, 0, 1)); // kept
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.for_gpu(0, 1).len(), 1);
    }

    #[test]
    fn figure3_sampling_covers_three_windows() {
        let t = TraceCollector::figure3(562);
        let mut probe = t.clone();
        for it in 0..562 {
            probe.record(rec(1, it, 0, 0));
        }
        assert_eq!(probe.records().len(), 24, "8 + 8 + 8 iterations");
    }

    #[test]
    fn figure3_handles_short_epochs() {
        let t = TraceCollector::figure3(10);
        let mut probe = t.clone();
        for it in 0..10 {
            probe.record(rec(1, it, 0, 0));
        }
        // Windows overlap on short epochs; no panic, records bounded.
        assert!(probe.records().len() <= 30);
    }

    #[test]
    fn pipeline_bound_detection() {
        let mut r = rec(0, 0, 0, 0);
        assert!(!r.pipeline_bound());
        r.load_s = 0.2;
        assert!(r.pipeline_bound());
    }
}
