//! # lobster-pipeline
//!
//! The cluster training-pipeline executor: runs any
//! [`lobster_core::LoaderPolicy`] against a simulated data-parallel cluster
//! (caches, distributed directory, storage tiers, pipeline overlap,
//! gradient-barrier semantics) and produces the measurements every figure of
//! the paper's evaluation is built from.
//!
//! * [`config`] — experiment configuration and builder.
//! * [`executor`] — the iteration-level simulation ([`executor::ClusterSim`]).
//! * [`trace`] — per-GPU per-iteration records (Figure 3).
//! * [`accuracy`] — the Figure 9 learning-curve model.

pub mod accuracy;
pub mod config;
pub mod des;
pub mod executor;
pub mod observe;
pub mod planner;
pub mod trace;

pub use accuracy::{max_gap, simulate_accuracy, AccuracyCurve};
pub use config::{ConfigBuilder, ElasticSimConfig, ExperimentConfig};
pub use des::{analytic_barriers, des_barriers, des_barriers_with};
pub use executor::{ClusterSim, EpochReport, RunReport};
pub use observe::{
    DecisionObservable, EvictReason, EvictionEvent, IterationObservables, MembershipObservable,
    RoleFlipObservable, RunObservables,
};
pub use planner::{precompute_plan, PlannedPolicy, TrainingPlan};
pub use trace::{IterationRecord, TraceCollector};

#[cfg(test)]
mod tests {
    use super::*;
    use lobster_core::policies::{LobsterPolicy, NoPfsPolicy, PyTorchPolicy};
    use lobster_data::{Dataset, SizeDistribution};

    /// A small but non-trivial config: 2 nodes × 2 GPUs, cache holds ~25% of
    /// the dataset, so every tier gets exercised.
    fn small_cfg(epochs: u64) -> ExperimentConfig {
        let dataset = Dataset::generate(
            "unit",
            8_192,
            SizeDistribution::Constant { bytes: 100_000 },
            7,
        );
        let total = dataset.total_bytes();
        ConfigBuilder::new()
            .nodes(2)
            .gpus_per_node(2)
            .batch_size(16)
            .cache_bytes(total / 8) // 25% of the dataset across both nodes
            .pipeline_threads(16)
            .epochs(epochs)
            .dataset(dataset)
            .build()
    }

    #[test]
    fn executor_is_deterministic() {
        let (a, _) = ClusterSim::new(small_cfg(2), Box::new(PyTorchPolicy::default())).run();
        let (b, _) = ClusterSim::new(small_cfg(2), Box::new(PyTorchPolicy::default())).run();
        assert_eq!(a.total_wall_s, b.total_wall_s);
        assert_eq!(a.epochs[1].local_hits, b.epochs[1].local_hits);
        assert_eq!(
            a.epochs[1].imbalanced_iterations,
            b.epochs[1].imbalanced_iterations
        );
    }

    #[test]
    fn all_accesses_are_accounted() {
        let cfg = small_cfg(2);
        let per_epoch =
            (cfg.iterations_per_epoch() * cfg.cluster.batch_size * cfg.cluster.world_size()) as u64;
        let (r, _) = ClusterSim::new(cfg, Box::new(PyTorchPolicy::default())).run();
        for e in &r.epochs {
            assert_eq!(e.local_hits + e.remote_hits + e.misses, per_epoch);
        }
    }

    #[test]
    fn warm_cache_beats_cold_cache() {
        let (r, _) = ClusterSim::new(small_cfg(3), Box::new(PyTorchPolicy::default())).run();
        // Epoch 0 is all misses at first touch; later epochs must hit.
        assert!(r.epochs[1].hit_ratio() > 0.0);
        assert!(r.epochs[0].misses > r.epochs[1].misses);
    }

    #[test]
    fn prefetching_raises_hit_ratio() {
        let (pt, _) = ClusterSim::new(small_cfg(3), Box::new(PyTorchPolicy::default())).run();
        let (nf, _) = ClusterSim::new(small_cfg(3), Box::new(NoPfsPolicy::new())).run();
        assert!(
            nf.mean_hit_ratio() > pt.mean_hit_ratio(),
            "nopfs {} vs pytorch {}",
            nf.mean_hit_ratio(),
            pt.mean_hit_ratio()
        );
        assert!(nf.epochs.iter().map(|e| e.prefetched).sum::<u64>() > 0);
    }

    #[test]
    fn lobster_beats_nopfs_on_hits_and_time() {
        let (nf, _) = ClusterSim::new(small_cfg(3), Box::new(NoPfsPolicy::new())).run();
        let (lb, _) = ClusterSim::new(small_cfg(3), Box::new(LobsterPolicy::full())).run();
        assert!(
            lb.mean_hit_ratio() >= nf.mean_hit_ratio(),
            "lobster {} vs nopfs {}",
            lb.mean_hit_ratio(),
            nf.mean_hit_ratio()
        );
        assert!(
            lb.mean_epoch_s() <= nf.mean_epoch_s() * 1.05,
            "lobster {} vs nopfs {}",
            lb.mean_epoch_s(),
            nf.mean_epoch_s()
        );
    }

    #[test]
    fn trace_collects_requested_window() {
        let cfg = small_cfg(2);
        let iters = cfg.iterations_per_epoch() as u64;
        let world = cfg.cluster.world_size();
        let sim = ClusterSim::new(cfg, Box::new(PyTorchPolicy::default()))
            .with_trace(TraceCollector::figure3(iters));
        let (_, trace) = sim.run();
        let trace = trace.expect("trace requested");
        assert!(!trace.is_empty());
        // 24 iterations × world GPUs (windows may overlap on tiny epochs).
        assert!(trace.records().len() <= 24 * world);
        assert!(!trace.for_gpu(0, 0).is_empty());
        assert!(!trace.for_gpu(1, 1).is_empty());
    }

    #[test]
    fn epoch_walls_sum_to_total() {
        let (r, _) = ClusterSim::new(small_cfg(3), Box::new(LobsterPolicy::full())).run();
        let sum: f64 = r.epochs.iter().map(|e| e.wall_s).sum();
        assert!((sum - r.total_wall_s).abs() < 1e-6);
        assert!(r.epochs.iter().all(|e| e.wall_s > 0.0));
    }

    #[test]
    fn gpu_utilization_is_a_fraction() {
        let (r, _) = ClusterSim::new(small_cfg(2), Box::new(LobsterPolicy::full())).run();
        for e in &r.epochs {
            assert!(e.gpu_utilization > 0.0 && e.gpu_utilization <= 1.0, "{e:?}");
        }
    }

    #[test]
    fn reuse_aware_runs_proactive_evictions() {
        let (r, _) = ClusterSim::new(small_cfg(3), Box::new(LobsterPolicy::full())).run();
        let total: u64 = r
            .epochs
            .iter()
            .map(|e| e.evict.by_reuse_count + e.evict.by_reuse_distance)
            .sum();
        assert!(
            total > 0,
            "Lobster must proactively evict: {:?}",
            r.epochs[1].evict
        );
    }
}
