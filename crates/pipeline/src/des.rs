//! Event-driven cross-validation of the pipeline-overlap timing.
//!
//! The executor advances time with a closed-form recurrence (see
//! [`crate::executor`]); this module implements the *same* semantics as a
//! discrete-event simulation on the `lobster-sim` kernel — batch-ready,
//! train-start (a join of barrier and data readiness), train-done, and
//! barrier events — and the test suite proves the two implementations agree
//! on every barrier time for arbitrary stage durations. Two independent
//! derivations of the timing model guard the reproduction's most
//! load-bearing arithmetic.

use lobster_metrics::{BlameCategory, GpuIterSample, Instruments, StageSample};
use lobster_sim::{run, Scheduler, SimDuration, SimTime, SimWorld};

/// Events of the data-parallel training pipeline.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// GPU `g`'s mini-batch for iteration `h` finished loading+preprocessing.
    BatchReady { g: usize, h: usize },
    /// A GPU finished the forward+backward pass of iteration `h`.
    TrainDone { h: usize },
    /// The gradient allreduce of iteration `h` completed.
    BarrierDone { h: usize },
}

struct PipelineWorld {
    gpus: usize,
    iterations: usize,
    /// `pipe[h][g]`: loading + preprocessing duration of GPU `g`'s batch
    /// for iteration `h`.
    pipe: Vec<Vec<SimDuration>>,
    t_train: SimDuration,
    allreduce: SimDuration,
    /// Per GPU: is the current iteration's batch staged?
    batch_ready: Vec<bool>,
    /// Per GPU: which iteration it is currently waiting on / training.
    waiting_iter: Vec<usize>,
    /// Has the previous iteration's barrier completed (per iteration)?
    barrier_passed: Vec<bool>,
    /// TrainDone count per iteration.
    done_count: Vec<usize>,
    /// Output: barrier completion times.
    pub barrier_times: Vec<SimTime>,
    /// Output: `start_times[h][g]` = when GPU `g` began training iteration
    /// `h` (the join of barrier and data readiness).
    pub start_times: Vec<Vec<SimTime>>,
}

impl PipelineWorld {
    fn new(
        pipe: Vec<Vec<SimDuration>>,
        gpus: usize,
        t_train: SimDuration,
        allreduce: SimDuration,
    ) -> Self {
        let iterations = pipe.len();
        PipelineWorld {
            gpus,
            iterations,
            pipe,
            t_train,
            allreduce,
            batch_ready: vec![false; gpus],
            waiting_iter: vec![0; gpus],
            barrier_passed: vec![false; iterations + 1],
            done_count: vec![0; iterations],
            barrier_times: Vec::with_capacity(iterations),
            start_times: vec![vec![SimTime::ZERO; gpus]; iterations],
        }
    }

    /// Start training iteration `h` on GPU `g` at `now`: emit TrainDone and
    /// begin loading the *next* batch (pipeline overlap).
    fn start_training(&mut self, g: usize, h: usize, now: SimTime, sched: &mut Scheduler<Ev>) {
        self.start_times[h][g] = now;
        sched.at(now + self.t_train, Ev::TrainDone { h });
        if h + 1 < self.iterations {
            sched.at(now + self.pipe[h + 1][g], Ev::BatchReady { g, h: h + 1 });
        }
    }
}

impl SimWorld for PipelineWorld {
    type Event = Ev;

    fn handle(&mut self, ev: Ev, sched: &mut Scheduler<Ev>) {
        let now = sched.now();
        match ev {
            Ev::BatchReady { g, h } => {
                debug_assert_eq!(self.waiting_iter[g], h, "batches arrive in order per GPU");
                self.batch_ready[g] = true;
                // Join: training starts when BOTH the previous barrier and
                // this GPU's data are ready; whichever event is later fires
                // the start.
                let barrier_ok = h == 0 || self.barrier_passed[h];
                if barrier_ok {
                    self.batch_ready[g] = false;
                    self.waiting_iter[g] = h + 1;
                    self.start_training(g, h, now, sched);
                }
            }
            Ev::TrainDone { h } => {
                self.done_count[h] += 1;
                if self.done_count[h] == self.gpus {
                    sched.at(now + self.allreduce, Ev::BarrierDone { h });
                }
            }
            Ev::BarrierDone { h } => {
                self.barrier_times.push(now);
                self.barrier_passed[h + 1] = true;
                // Release every GPU whose next batch was already staged.
                for g in 0..self.gpus {
                    if self.waiting_iter[g] == h + 1 && self.batch_ready[g] {
                        self.batch_ready[g] = false;
                        self.waiting_iter[g] = h + 2;
                        self.start_training(g, h + 1, now, sched);
                    }
                }
            }
        }
    }
}

fn run_des(pipe_s: &[Vec<f64>], t_train_s: f64, allreduce_s: f64) -> PipelineWorld {
    assert!(!pipe_s.is_empty());
    let gpus = pipe_s[0].len();
    assert!(gpus > 0);
    let pipe: Vec<Vec<SimDuration>> = pipe_s
        .iter()
        .map(|row| {
            assert_eq!(row.len(), gpus, "ragged pipe matrix");
            row.iter().map(|&s| SimDuration::from_secs_f64(s)).collect()
        })
        .collect();
    let mut world = PipelineWorld::new(
        pipe,
        gpus,
        SimDuration::from_secs_f64(t_train_s),
        SimDuration::from_secs_f64(allreduce_s),
    );
    let mut sched = Scheduler::new();
    for g in 0..gpus {
        sched.at(SimTime::ZERO + world.pipe[0][g], Ev::BatchReady { g, h: 0 });
    }
    let stats = run(&mut world, &mut sched, None, 10_000_000);
    assert!(!stats.truncated, "pipeline DES exceeded its event budget");
    assert_eq!(
        world.barrier_times.len(),
        pipe_s.len(),
        "every iteration must complete"
    );
    world
}

/// Simulate the pipeline event-by-event; returns the barrier completion
/// time of every iteration, in seconds. `pipe_s[h][g]` is the
/// loading+preprocessing duration of GPU `g`'s batch at iteration `h`.
pub fn des_barriers(pipe_s: &[Vec<f64>], t_train_s: f64, allreduce_s: f64) -> Vec<f64> {
    run_des(pipe_s, t_train_s, allreduce_s)
        .barrier_times
        .iter()
        .map(|t| t.as_secs_f64())
        .collect()
}

/// As [`des_barriers`], but feeding each iteration's per-GPU effective
/// times into `ins`' online [`BottleneckAnalyzer`]. The DES has no tier
/// model — `pipe[h][g]` is opaque loading+preprocessing time — so the
/// pipeline portion is blamed on [`BlameCategory::Other`]; train and
/// barrier-wait are exact from the event times. A disabled bundle costs
/// one branch and the run is bit-identical to [`des_barriers`].
///
/// [`BottleneckAnalyzer`]: lobster_metrics::BottleneckAnalyzer
pub fn des_barriers_with(
    pipe_s: &[Vec<f64>],
    t_train_s: f64,
    allreduce_s: f64,
    ins: &Instruments,
) -> Vec<f64> {
    let world = run_des(pipe_s, t_train_s, allreduce_s);
    let barriers: Vec<f64> = world
        .barrier_times
        .iter()
        .map(|t| t.as_secs_f64())
        .collect();
    if ins.is_enabled() {
        let mut prev_barrier = 0.0f64;
        for (h, starts) in world.start_times.iter().enumerate() {
            let samples: Vec<GpuIterSample> = starts
                .iter()
                .enumerate()
                .map(|(g, start)| {
                    let done = start.as_secs_f64() + t_train_s;
                    let mut stages = StageSample::default();
                    stages.add(BlameCategory::Other, pipe_s[h][g]);
                    stages.add(BlameCategory::Train, t_train_s);
                    stages.add(BlameCategory::Barrier, barriers[h] - done);
                    GpuIterSample {
                        node: 0,
                        gpu: g as u32,
                        iter_s: done - prev_barrier,
                        stages,
                    }
                })
                .collect();
            ins.observe_iteration(h as u64, (barriers[h] * 1e6) as u64, || samples);
            prev_barrier = barriers[h];
        }
    }
    barriers
}

/// The executor's closed-form recurrence, reproduced here as the reference:
///
/// ```text
/// ready[g][h] = start[g][h−1] + pipe[h][g]
/// start[g][h] = max(barrier[h−1], ready[g][h])
/// barrier[h]  = max_g(start[g][h] + T_train) + T_allreduce
/// ```
pub fn analytic_barriers(pipe_s: &[Vec<f64>], t_train_s: f64, allreduce_s: f64) -> Vec<f64> {
    let gpus = pipe_s[0].len();
    let mut barrier = 0.0f64;
    let mut start_prev = vec![0.0f64; gpus];
    let mut out = Vec::with_capacity(pipe_s.len());
    for row in pipe_s {
        let mut max_done = 0.0f64;
        let mut starts = vec![0.0; gpus];
        for g in 0..gpus {
            let ready = start_prev[g] + row[g];
            let start = barrier.max(ready);
            starts[g] = start;
            max_done = max_done.max(start + t_train_s);
        }
        barrier = max_done + allreduce_s;
        start_prev = starts;
        out.push(barrier);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobster_sim::Xoshiro256StarStar;

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() < 1e-6,
                "iteration {i}: des {x} vs analytic {y}"
            );
        }
    }

    #[test]
    fn fully_hidden_pipeline_runs_at_train_speed() {
        // Loading always faster than training: every iteration costs
        // t_train + allreduce after the initial fill.
        let pipe = vec![vec![0.01, 0.02]; 5];
        let des = des_barriers(&pipe, 0.1, 0.002);
        let analytic = analytic_barriers(&pipe, 0.1, 0.002);
        assert_close(&des, &analytic);
        // Steady-state batch time = t_train + allreduce.
        let d = des[4] - des[3];
        assert!((d - 0.102).abs() < 1e-9, "batch time {d}");
    }

    #[test]
    fn one_straggler_delays_every_gpu() {
        // GPU 1's pipeline takes 3× training: it gates the barrier.
        let pipe = vec![vec![0.01, 0.3]; 4];
        let des = des_barriers(&pipe, 0.1, 0.0);
        let analytic = analytic_barriers(&pipe, 0.1, 0.0);
        assert_close(&des, &analytic);
        let d = des[3] - des[2];
        assert!((d - 0.3).abs() < 1e-6, "straggler sets the pace: {d}");
    }

    #[test]
    fn bursty_loading_matches_analytic() {
        // Alternating cheap/expensive iterations (the paper's Observation 2
        // bottleneck shifting).
        let mut pipe = Vec::new();
        for h in 0..10 {
            if h % 3 == 0 {
                pipe.push(vec![0.25, 0.01, 0.05]);
            } else {
                pipe.push(vec![0.02, 0.03, 0.01]);
            }
        }
        assert_close(
            &des_barriers(&pipe, 0.08, 0.001),
            &analytic_barriers(&pipe, 0.08, 0.001),
        );
    }

    #[test]
    fn des_equals_analytic_on_random_inputs() {
        // 200 random pipelines: the two independent implementations must
        // agree everywhere.
        let mut rng = Xoshiro256StarStar::seed_from_u64(31);
        for case in 0..200 {
            let gpus = 1 + rng.below_usize(6);
            let iters = 1 + rng.below_usize(12);
            let pipe: Vec<Vec<f64>> = (0..iters)
                .map(|_| (0..gpus).map(|_| rng.range_f64(0.0, 0.4)).collect())
                .collect();
            let t_train = rng.range_f64(0.01, 0.2);
            let allreduce = rng.range_f64(0.0, 0.01);
            let des = des_barriers(&pipe, t_train, allreduce);
            let analytic = analytic_barriers(&pipe, t_train, allreduce);
            for (i, (x, y)) in des.iter().zip(&analytic).enumerate() {
                assert!(
                    (x - y).abs() < 1e-6,
                    "case {case}, iteration {i}: des {x} vs analytic {y} (pipe {pipe:?})"
                );
            }
        }
    }

    #[test]
    fn single_gpu_single_iteration() {
        let pipe = vec![vec![0.05]];
        let des = des_barriers(&pipe, 0.1, 0.002);
        assert!((des[0] - 0.152).abs() < 1e-9);
        assert_close(&des, &analytic_barriers(&pipe, 0.1, 0.002));
    }

    #[test]
    fn zero_cost_pipeline_is_pure_training() {
        let pipe = vec![vec![0.0, 0.0]; 3];
        let des = des_barriers(&pipe, 0.1, 0.0);
        assert!((des[2] - 0.3).abs() < 1e-9);
    }

    #[test]
    fn instrumented_des_feeds_the_analyzer() {
        use lobster_metrics::AnalysisConfig;
        // GPU 1's pipeline takes 3x training; in steady state it starts
        // 0.2 s after GPU 0 every iteration.
        let pipe = vec![vec![0.01, 0.3]; 6];
        let ins = Instruments::enabled_with(AnalysisConfig {
            straggler_consecutive: 2,
            ..AnalysisConfig::default()
        });
        let with = des_barriers_with(&pipe, 0.1, 0.0, &ins);
        assert_close(&with, &des_barriers(&pipe, 0.1, 0.0));
        let report = ins.analysis_report().expect("enabled");
        assert_eq!(report.iterations, 6);
        assert_eq!(report.top_straggler(), Some((0, 1)));
        assert!(!report.episodes.is_empty(), "straggler episode flagged");
        // Steady-state gap = difference in start times = 0.3 - 0.1.
        assert!(
            (report.ewma_gap_s - 0.2).abs() < 0.05,
            "ewma gap {}",
            report.ewma_gap_s
        );
        let snap = ins.metrics_snapshot();
        assert!(snap.get("analysis.gap_us").is_some());

        // Disabled bundle: same barriers, nothing recorded.
        let off = Instruments::disabled();
        assert_close(&des_barriers_with(&pipe, 0.1, 0.0, &off), &with);
        assert!(off.analysis_report().is_none());
    }
}
