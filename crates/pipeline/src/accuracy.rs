//! The Figure 9 accuracy-invariance experiment.
//!
//! "Lobster does not change the randomness of data accessing during the
//! distributed training", so the learning curve must match the baseline's
//! "although with some slight variation due to different random seeds for
//! network parameters". We model the top-1 accuracy trajectory of
//! SGD-trained image classifiers with the standard saturating-exponential
//! learning curve plus seed-dependent jitter. The *data order* seed is the
//! same for both loaders (they sample identically); only the weight-init
//! seed differs — exactly the paper's setup.

use lobster_core::ModelProfile;
use lobster_sim::{derive_seed, Xoshiro256StarStar};
use serde::{Deserialize, Serialize};

/// One simulated training trajectory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccuracyCurve {
    /// Loader/run label.
    pub label: String,
    /// Top-1 validation accuracy at the end of each epoch.
    pub per_epoch: Vec<f64>,
}

impl AccuracyCurve {
    /// First epoch (1-based) at which accuracy reaches `target`, if any.
    pub fn epochs_to_reach(&self, target: f64) -> Option<usize> {
        self.per_epoch
            .iter()
            .position(|&a| a >= target)
            .map(|i| i + 1)
    }

    /// Final accuracy.
    pub fn final_accuracy(&self) -> f64 {
        self.per_epoch.last().copied().unwrap_or(0.0)
    }
}

/// Simulate `epochs` of training for `model`. `data_seed` drives the shared
/// mini-batch order (identical across loaders); `weight_seed` the network
/// initialization (differs per run).
pub fn simulate_accuracy(
    label: &str,
    model: &ModelProfile,
    epochs: usize,
    data_seed: u64,
    weight_seed: u64,
) -> AccuracyCurve {
    // Rate constant: reach 99% of target at `convergence_epochs`.
    let k = -((1.0f64 - 0.99).ln()) / model.convergence_epochs;
    // The *data* stream contributes shared noise (identical for both
    // loaders); the weight seed contributes independent noise.
    let mut data_rng = Xoshiro256StarStar::seed_from_u64(derive_seed(data_seed, 0xDA7A));
    let mut weight_rng = Xoshiro256StarStar::seed_from_u64(derive_seed(weight_seed, 0x1217));
    let mut per_epoch = Vec::with_capacity(epochs);
    for e in 1..=epochs {
        let base = model.target_accuracy * (1.0 - (-k * e as f64).exp());
        // Noise shrinks as training converges.
        let envelope = 0.02 * (1.0 - base / model.target_accuracy) + 0.002;
        let shared = envelope * (data_rng.next_f64() - 0.5);
        let own = envelope * 0.5 * (weight_rng.next_f64() - 0.5);
        per_epoch.push((base + shared + own).clamp(0.0, 1.0));
    }
    AccuracyCurve {
        label: label.to_string(),
        per_epoch,
    }
}

/// Maximum absolute per-epoch gap between two curves.
pub fn max_gap(a: &AccuracyCurve, b: &AccuracyCurve) -> f64 {
    a.per_epoch
        .iter()
        .zip(&b.per_epoch)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobster_core::models::resnet50;

    #[test]
    fn resnet50_converges_near_forty_epochs() {
        let c = simulate_accuracy("pytorch", &resnet50(), 60, 42, 1);
        // Paper: "converges to the target accuracy of 76.0% in around 40
        // epochs".
        let reach = c.epochs_to_reach(0.75).expect("should converge");
        assert!((30..=50).contains(&reach), "converged at epoch {reach}");
        assert!(c.final_accuracy() > 0.74);
    }

    #[test]
    fn same_data_seed_gives_similar_curves() {
        let m = resnet50();
        let a = simulate_accuracy("pytorch", &m, 60, 42, 1);
        let b = simulate_accuracy("lobster", &m, 60, 42, 2);
        // Same sampling order, different weight seeds: small gap only.
        assert!(max_gap(&a, &b) < 0.03, "gap {}", max_gap(&a, &b));
        // But not bit-identical (different weight seeds).
        assert!(max_gap(&a, &b) > 0.0);
    }

    #[test]
    fn accuracy_is_monotone_in_trend() {
        let c = simulate_accuracy("x", &resnet50(), 60, 7, 7);
        // Compare 5-epoch means to smooth the jitter.
        let early: f64 = c.per_epoch[0..5].iter().sum::<f64>() / 5.0;
        let mid: f64 = c.per_epoch[20..25].iter().sum::<f64>() / 5.0;
        let late: f64 = c.per_epoch[55..60].iter().sum::<f64>() / 5.0;
        assert!(early < mid && mid < late);
    }

    #[test]
    fn curves_are_deterministic() {
        let m = resnet50();
        let a = simulate_accuracy("a", &m, 30, 5, 9);
        let b = simulate_accuracy("a", &m, 30, 5, 9);
        assert_eq!(a.per_epoch, b.per_epoch);
    }

    #[test]
    fn accuracy_stays_in_unit_range() {
        let c = simulate_accuracy("x", &resnet50(), 200, 3, 3);
        for &a in &c.per_epoch {
            assert!((0.0..=1.0).contains(&a));
        }
    }
}
