//! The cluster training-pipeline executor.
//!
//! Simulates data-parallel training at iteration granularity: per iteration,
//! each GPU's mini-batch is classified against the cache/directory state
//! (giving the Eq. 1 tier split), the policy under evaluation plans thread
//! allocations, the fetches mutate the caches, and the pipeline-overlap
//! recurrence advances time:
//!
//! ```text
//! ready[g][h]   = start[g][h−1] + T_L[g][h] + T_P[g][h]   (stages overlap
//!                                                          previous training)
//! start[g][h]   = max(barrier[h−1], ready[g][h])
//! barrier[h]    = max_g(start[g][h] + T_train) + T_allreduce
//! ```
//!
//! The barrier is the gradient averaging of data-parallel training — the
//! mechanism by which one straggler GPU idles every other GPU (Observation
//! 1). The executor is exact given the stage-duration models and fully
//! deterministic.

use crate::config::ExperimentConfig;
use crate::observe::{
    DecisionObservable, EvictReason, EvictionEvent, IterationObservables, MembershipObservable,
    RoleFlipObservable, RunObservables,
};
use crate::trace::{IterationRecord, TraceCollector};
use lobster_cache::{Directory, EvictOrder, NodeCache};
use lobster_core::elastic::{ElasticController, ElasticObservation, ElasticParams};
use lobster_core::model::load_time_parts;
use lobster_core::{
    CachingStrategy, EvictReport, LoaderPolicy, NodePlan, PlanContext, PreprocGovernor,
    ReuseAwareEvictor, ThreadAlloc, TierBreakdown, WorkEstimate,
};
use lobster_data::{EpochSchedule, NodeOracle, SampleId};
use lobster_metrics::{DecisionRecord, DecisionSource, Instruments, Summary, TraceEvent};
use lobster_storage::{FaultPlan, MembershipTransition, Tier};
use serde::{Deserialize, Serialize};

/// Aggregated results for one epoch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochReport {
    pub epoch: u64,
    /// Wall-clock span of the epoch, seconds.
    pub wall_s: f64,
    /// Demand accesses served from the local cache.
    pub local_hits: u64,
    /// Demand accesses served from a remote node's cache.
    pub remote_hits: u64,
    /// Demand accesses that went to the PFS.
    pub misses: u64,
    /// Samples prefetched ahead of use.
    pub prefetched: u64,
    /// Iterations whose per-GPU pipeline-time spread exceeded the threshold.
    pub imbalanced_iterations: u64,
    /// Total iterations.
    pub iterations: u64,
    /// Mean/stddev/percentiles of per-iteration wall time.
    pub batch_times: Summary,
    /// Proactive evictions (reuse-count + reuse-distance policies).
    pub evict: EvictReport,
    /// Mean GPU utilization: training time over wall time.
    pub gpu_utilization: f64,
    /// Mean per-iteration straggler spread (Eq. 3's |T_max − T_min| over
    /// effective per-GPU iteration times), seconds. Differentiates loaders
    /// even when the imbalanced-iteration count saturates.
    pub mean_spread_s: f64,
}

impl EpochReport {
    /// Local-cache hit ratio over demand accesses (the §5.5 metric).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.local_hits + self.remote_hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.local_hits as f64 / total as f64
        }
    }
}

/// Results of a full run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    pub policy: String,
    pub model: String,
    pub dataset: String,
    pub epochs: Vec<EpochReport>,
    /// Total simulated wall time, seconds.
    pub total_wall_s: f64,
}

impl RunReport {
    /// Epochs after warm-up (the paper always "omits the first epoch").
    pub fn steady_epochs(&self) -> &[EpochReport] {
        if self.epochs.len() > 1 {
            &self.epochs[1..]
        } else {
            &self.epochs
        }
    }

    /// Mean steady-state epoch time, seconds.
    pub fn mean_epoch_s(&self) -> f64 {
        let e = self.steady_epochs();
        e.iter().map(|r| r.wall_s).sum::<f64>() / e.len() as f64
    }

    /// Mean steady-state local hit ratio.
    pub fn mean_hit_ratio(&self) -> f64 {
        let e = self.steady_epochs();
        e.iter().map(|r| r.hit_ratio()).sum::<f64>() / e.len() as f64
    }

    /// Mean steady-state GPU utilization.
    pub fn mean_gpu_utilization(&self) -> f64 {
        let e = self.steady_epochs();
        e.iter().map(|r| r.gpu_utilization).sum::<f64>() / e.len() as f64
    }

    /// Fraction of steady-state iterations with load imbalance.
    pub fn imbalance_fraction(&self) -> f64 {
        let e = self.steady_epochs();
        let bad: u64 = e.iter().map(|r| r.imbalanced_iterations).sum();
        let all: u64 = e.iter().map(|r| r.iterations).sum();
        if all == 0 {
            0.0
        } else {
            bad as f64 / all as f64
        }
    }
}

/// The executor itself. Owns all cluster state; `run` consumes it.
pub struct ClusterSim {
    cfg: ExperimentConfig,
    policy: Box<dyn LoaderPolicy>,
    governor: PreprocGovernor,
    caches: Vec<NodeCache>,
    directory: Directory,
    oracles: Vec<Option<NodeOracle>>,
    /// Per-node LRU clock for recency keys.
    clocks: Vec<u64>,
    /// Absolute time of the last completed barrier.
    barrier_s: f64,
    /// Per global GPU: when its previous training stage started.
    start_prev_s: Vec<f64>,
    evictor: ReuseAwareEvictor,
    /// Whether the policy's runtime shares caches across nodes.
    distributed: bool,
    trace: Option<TraceCollector>,
    instruments: Instruments,
    /// When observing, capacity-eviction events accumulate here as inserts
    /// displace residents; the run loop drains them into the iteration
    /// record at well-defined points to preserve execution order.
    observing: bool,
    obs_events: Vec<EvictionEvent>,
    /// The elastic worker-pool controller (Some iff `cfg.elastic` is set):
    /// one cluster-wide controller ticked once per iteration, its split
    /// applied identically on every node — the same deterministic rule the
    /// live engine runs, so role-flip sequences compare exactly.
    elastic_ctl: Option<ElasticController>,
    /// Compiled crash/rejoin schedule (Some iff `cfg.crashes` is non-empty).
    /// Membership is a pure function of this plan and the tick, applied at
    /// each iteration boundary before classification — DESIGN.md §13.
    crash_plan: Option<FaultPlan>,
}

/// Simulated seconds → trace microseconds.
fn sim_us(s: f64) -> u64 {
    (s.max(0.0) * 1e6) as u64
}

impl ClusterSim {
    pub fn new(cfg: ExperimentConfig, policy: Box<dyn LoaderPolicy>) -> ClusterSim {
        let n = cfg.cluster.nodes;
        let order = if policy.caching().evicts() {
            EvictOrder::SmallestKeyFirst
        } else {
            EvictOrder::NeverEvict
        };
        let caches = (0..n)
            .map(|_| NodeCache::new(cfg.cluster.cache_bytes, order))
            .collect();
        let governor = cfg.calibrated_governor();
        let world = cfg.cluster.world_size();
        let distributed = policy.distributed_cache();
        let elastic_ctl = cfg.elastic.as_ref().map(|e| {
            let mut p = ElasticParams::for_pool(e.workers, cfg.cluster.gpus_per_node as u32);
            p.force_churn = e.churn;
            p.frozen = e.frozen;
            ElasticController::new(p, e.initial_preproc)
        });
        ClusterSim {
            policy,
            governor,
            caches,
            directory: Directory::new(n),
            oracles: (0..n).map(|_| None).collect(),
            clocks: vec![0; n],
            barrier_s: 0.0,
            start_prev_s: vec![0.0; world],
            evictor: ReuseAwareEvictor,
            distributed,
            trace: None,
            instruments: Instruments::disabled(),
            observing: false,
            obs_events: Vec::new(),
            elastic_ctl,
            crash_plan: (!cfg.crashes.is_empty()).then(|| cfg.crash_plan()),
            cfg,
        }
    }

    /// Attach a trace collector (Figure 3 style per-iteration records).
    pub fn with_trace(mut self, trace: TraceCollector) -> ClusterSim {
        self.trace = Some(trace);
        self
    }

    /// Attach an observability bundle. The simulator then emits its DES
    /// timeline as trace events — per-GPU `fetch`/`preprocess`/`train`/
    /// `barrier_wait` spans and `queue_depth`/`cache`/`evict` instants,
    /// all stamped in *simulated* microseconds — plus `sim.*` counters and
    /// one decision record per Algorithm 1 solve inside the policy.
    pub fn with_instruments(mut self, instruments: Instruments) -> ClusterSim {
        self.instruments = instruments;
        self
    }

    fn classify(&self, node: usize, s: SampleId) -> Tier {
        if self.caches[node].contains(s) {
            Tier::LocalCache
        } else if self.distributed && self.directory.held_elsewhere(s, node) {
            Tier::RemoteCache
        } else {
            Tier::Pfs
        }
    }

    fn bump_clock(&mut self, node: usize) -> u64 {
        self.clocks[node] += 1;
        self.clocks[node]
    }

    /// Priority key for a freshly-inserted/touched sample under the active
    /// caching strategy.
    fn insert_key(&mut self, node: usize, s: SampleId, strategy: CachingStrategy) -> u64 {
        match strategy {
            CachingStrategy::Lru | CachingStrategy::PrefetchLru | CachingStrategy::InsertOnly => {
                self.bump_clock(node)
            }
            CachingStrategy::ReuseAware => {
                let next = self.oracles[node]
                    .as_ref()
                    .and_then(|o| o.future_of(s))
                    .map(|f| f.next_iteration);
                ReuseAwareEvictor::priority_key(next)
            }
        }
    }

    /// Hash-owner of a sample under KV partitioning.
    fn kv_owner(&self, s: SampleId) -> usize {
        (lobster_sim::derive_seed(0x4B56, s.0 as u64) % self.cfg.cluster.nodes as u64) as usize
    }

    fn insert_sample(&mut self, node: usize, s: SampleId, strategy: CachingStrategy) {
        // KV-partitioned topology: the fetched sample is cached at its
        // hash-owner node (write-through over the interconnect), not where
        // it was consumed. A dead owner falls back to the consuming node —
        // ownership is not re-hashed, so the placement heals on rejoin.
        let home = if self.cfg.kv_partitioned && self.distributed {
            let owner = self.kv_owner(s);
            if self.directory.is_live(owner) {
                owner
            } else {
                node
            }
        } else {
            node
        };
        let bytes = self.cfg.dataset.size_of(s);
        let key = self.insert_key(home, s, strategy);
        let outcome = self.caches[home].insert(s, bytes, key);
        if outcome.inserted {
            self.directory.add(s, home);
        }
        for victim in outcome.evicted {
            self.directory.remove(victim, home);
            if self.observing {
                self.obs_events.push(EvictionEvent {
                    node: home as u32,
                    sample: victim.0 as u64,
                    reason: EvictReason::Capacity,
                });
            }
        }
    }

    /// Execute the demand fetches of one node's iteration: update caches,
    /// the directory, and hit counters.
    fn demand_fetch(
        &mut self,
        node: usize,
        samples: &[SampleId],
        strategy: CachingStrategy,
        hits: &mut (u64, u64, u64),
    ) {
        for &s in samples {
            match self.classify(node, s) {
                Tier::LocalCache => {
                    hits.0 += 1;
                    let key = self.insert_key(node, s, strategy);
                    self.caches[node].set_key(s, key);
                }
                Tier::RemoteCache => {
                    hits.1 += 1;
                    self.insert_sample(node, s, strategy);
                }
                Tier::Pfs => {
                    hits.2 += 1;
                    self.insert_sample(node, s, strategy);
                }
            }
        }
    }

    /// Deterministic prefetching with the spare loader capacity of one
    /// iteration (§4.4 "coordination with prefetching").
    fn prefetch(
        &mut self,
        node: usize,
        plan: &NodePlan,
        spare_s: f64,
        strategy: CachingStrategy,
        reading_nodes: usize,
    ) -> u64 {
        let Some(oracle) = self.oracles[node].as_ref() else {
            return 0;
        };
        let threads: u32 = plan.load_threads.iter().sum::<u32>().max(1);
        let mut budget = spare_s;
        let mut fetched = 0u64;
        let mut to_fetch: Vec<SampleId> = Vec::new();
        let lookahead = plan
            .prefetch_lookahead
            .min(self.cfg.prefetch_lookahead)
            .max(1);

        let batch = self.cfg.cluster.batch_size;
        'outer: for la in 0..lookahead {
            let upcoming = oracle.upcoming_iteration(la);
            if upcoming.is_empty() {
                break;
            }
            // Interleave across GPUs (each GPU's staging buffer fills in
            // step) instead of finishing GPU 0's batch before touching
            // GPU 7's — a GPU-ordered walk starves the later GPUs whenever
            // the budget runs out mid-iteration.
            let gpus_here = upcoming.len() / batch.max(1);
            let interleaved = (0..batch)
                .flat_map(|k| (0..gpus_here).map(move |gpu| gpu * batch + k))
                .map(|idx| upcoming[idx]);
            for s in interleaved {
                if self.caches[node].contains(s) {
                    continue;
                }
                let bytes = self.cfg.dataset.size_of(s) as f64;
                let cost = if self.distributed && self.directory.held_elsewhere(s, node) {
                    self.cfg
                        .storage
                        .read_secs(Tier::RemoteCache, bytes, 1, threads, 1)
                } else {
                    self.cfg
                        .storage
                        .read_secs(Tier::Pfs, bytes, 1, threads, reading_nodes)
                };
                if cost > budget {
                    break 'outer;
                }
                // Lobster's coordination: do not displace a sample that is
                // needed *sooner* than the one being prefetched.
                if strategy == CachingStrategy::ReuseAware {
                    let new_key = ReuseAwareEvictor::priority_key(
                        oracle.future_of(s).map(|f| f.next_iteration),
                    );
                    if self.caches[node].free_bytes() < bytes as u64 {
                        match self.caches[node]
                            .peek_victim()
                            .and_then(|v| self.caches[node].key_of(v))
                        {
                            Some(victim_key) if victim_key >= new_key => break 'outer,
                            None => break 'outer,
                            _ => {}
                        }
                    }
                }
                budget -= cost;
                to_fetch.push(s);
                fetched += 1;
                // Bound per-iteration prefetch volume to keep the sweep
                // honest even with huge spare budgets.
                if to_fetch.len()
                    >= 4 * self.cfg.cluster.batch_size * self.cfg.cluster.gpus_per_node
                {
                    break 'outer;
                }
            }
        }
        for s in to_fetch {
            self.insert_sample(node, s, strategy);
        }
        fetched
    }

    /// Run the configured number of epochs.
    pub fn run(self) -> (RunReport, Option<TraceCollector>) {
        let (report, trace, _) = self.run_impl();
        (report, trace)
    }

    /// Run while recording the full comparable-observable record
    /// ([`RunObservables`]) for differential conformance checking against
    /// the other execution models.
    pub fn run_observed(mut self) -> (RunReport, RunObservables) {
        self.observing = true;
        let (report, _, obs) = self.run_impl();
        (report, obs.expect("observing run collects observables"))
    }

    // Index-based loops are kept deliberately: the body indexes several
    // parallel arrays by the same node/gpu coordinates (and their flattened
    // combination), which iterators would obscure.
    #[allow(clippy::needless_range_loop)]
    fn run_impl(mut self) -> (RunReport, Option<TraceCollector>, Option<RunObservables>) {
        let spec = self.cfg.schedule_spec();
        let iters = self.cfg.iterations_per_epoch();
        let world = self.cfg.cluster.world_size();
        let nodes = self.cfg.cluster.nodes;
        let gpus = self.cfg.cluster.gpus_per_node;
        let strategy = self.policy.caching();
        let t_train = self.cfg.model.t_train_s;
        let efficiency = self.policy.loading_efficiency();
        let mean_bytes = self.cfg.dataset.mean_sample_bytes() as u64;
        let elastic_cfg = self.cfg.elastic;
        let elastic_batch_samples = (gpus * self.cfg.cluster.batch_size) as u64;
        // The controller's per-sample work input: mean work bytes (bit-equal
        // to `mean_sample_bytes` on unit-cost datasets) or a configured
        // quantile for heavy-tailed / bimodal preprocessing costs.
        let mean_sample_f = elastic_cfg
            .as_ref()
            .map_or(WorkEstimate::Mean, |e| e.estimate)
            .per_sample_bytes(&self.cfg.dataset);

        let ins = self.instruments.clone();
        // Surface builder-repaired configuration (clamped slowdown factors
        // etc.) in the trace so a run is never silently different from what
        // was asked for; the full text lives in `cfg.config_warnings`.
        for (i, _warning) in self.cfg.config_warnings.iter().enumerate() {
            ins.trace(|| {
                TraceEvent::instant("config_warning", "config", sim_us(0.0))
                    .arg_u("index", i as u64)
            });
        }
        let local_m = ins.counter("sim.local_hits");
        let remote_m = ins.counter("sim.remote_hits");
        let miss_m = ins.counter("sim.misses");
        let prefetch_m = ins.counter("sim.prefetched");
        let evict_m = ins.counter("sim.evictions");
        let decisions_m = ins.counter("sim.controller_decisions");

        let mut epochs = Vec::with_capacity(self.cfg.epochs as usize);
        let mut next_schedule: Option<EpochSchedule> = None;
        let mut obs = self.observing.then(RunObservables::default);
        // Telemetry: one frame per tick feeds both the instruments hub
        // (flight recorder / JSONL stream / doctor) and, when observing, a
        // local detector bank whose firing sequence is an exact-equality
        // conformance observable alongside membership and role flips.
        let mut tele_bank =
            lobster_metrics::DetectorBank::new(lobster_metrics::DetectorConfig::standard());
        let mut tele_anomalies: Vec<lobster_metrics::Anomaly> = Vec::new();

        for epoch in 0..self.cfg.epochs {
            let sched = next_schedule.take().unwrap_or_else(|| {
                lobster_data::generate_access(spec, epoch, self.cfg.partition, self.cfg.access)
            });
            let upcoming =
                lobster_data::generate_access(spec, epoch + 1, self.cfg.partition, self.cfg.access);
            if strategy.uses_oracle() {
                for node in 0..nodes {
                    self.oracles[node] = Some(NodeOracle::build(
                        node,
                        &[&sched, &upcoming],
                        epoch * iters as u64,
                    ));
                }
            }

            let mut hits = (0u64, 0u64, 0u64);
            let mut prefetched = 0u64;
            let mut imbalanced = 0u64;
            let mut spread_sum = 0.0f64;
            let mut batch_times = Summary::new();
            let mut evict_total = EvictReport::default();
            let epoch_start_s = self.barrier_s;

            for h in 0..iters {
                let global_iter = epoch * iters as u64 + h as u64;

                // Membership transitions land at the tick boundary, before
                // any classification: a crash wipes the node's cache and
                // purges its directory entries; a rejoin re-admits it cold.
                let mut iter_membership: Vec<MembershipObservable> = Vec::new();
                if let Some(plan) = self.crash_plan.as_ref() {
                    for e in plan.membership_events_at(global_iter) {
                        let node = e.node as usize;
                        match e.transition {
                            MembershipTransition::Crashed => {
                                let lost = self.caches[node].wipe();
                                let purged = self.directory.crash_node(node);
                                ins.trace(|| {
                                    TraceEvent::instant(
                                        "node_crash",
                                        "cluster",
                                        sim_us(self.barrier_s),
                                    )
                                    .pid(e.node)
                                    .arg_u("iter", global_iter)
                                    .arg_u("lost_entries", lost as u64)
                                    .arg_u("purged_replicas", purged.len() as u64)
                                });
                            }
                            MembershipTransition::Rejoined => {
                                self.directory.rejoin_node(node);
                                ins.trace(|| {
                                    TraceEvent::instant(
                                        "node_rejoin",
                                        "cluster",
                                        sim_us(self.barrier_s),
                                    )
                                    .pid(e.node)
                                    .arg_u("iter", global_iter)
                                });
                            }
                        }
                        if self.observing {
                            iter_membership.push(MembershipObservable::from_event(&e));
                        }
                    }
                }
                let down = self
                    .crash_plan
                    .as_ref()
                    .map_or(0u64, |p| p.down_mask_at(global_iter));

                // Pass 1: tier splits for every GPU, before any mutation.
                // A dead node's rows stay all-zero; its batches are fostered
                // onto survivors below. `work_units` accumulates per-node
                // preprocessing work (size × cost; == storage bytes on
                // unit-cost datasets) in the same walk, feeding `t_prep`.
                let mut work_units = vec![0u64; nodes];
                let mut splits: Vec<Vec<TierBreakdown>> = Vec::with_capacity(nodes);
                for node in 0..nodes {
                    let mut per_gpu = Vec::with_capacity(gpus);
                    for gpu in 0..gpus {
                        let mut split = TierBreakdown::default();
                        if down & (1u64 << node) == 0 {
                            for &s in sched.batch(h, node, gpu) {
                                split.add(self.classify(node, s), self.cfg.dataset.size_of(s));
                                work_units[node] += self.cfg.dataset.work_bytes_of(s);
                            }
                        }
                        per_gpu.push(split);
                    }
                    splits.push(per_gpu);
                }

                // Re-shard a dead node's schedule slice across survivors:
                // batch (d, g) is carried by survivor S = survivors[(d·G+g)
                // mod |survivors|] on its GPU-g loader queue. The foster
                // fetches are classified from S's viewpoint and *counted*
                // (they are real deliveries — exactly-once holds because
                // the delivered multiset is schedule-determined) but do not
                // mutate S's cache: fostered bytes stream straight to the
                // dead node's replacement consumer.
                if down != 0 {
                    let survivors: Vec<usize> =
                        (0..nodes).filter(|n| down & (1u64 << n) == 0).collect();
                    assert!(
                        !survivors.is_empty(),
                        "crash schedule downs every node at iteration {global_iter}"
                    );
                    for d in 0..nodes {
                        if down & (1u64 << d) == 0 {
                            continue;
                        }
                        for gpu in 0..gpus {
                            let host = survivors[(d * gpus + gpu) % survivors.len()];
                            let mut foster = TierBreakdown::default();
                            for &s in sched.batch(h, d, gpu) {
                                foster.add(self.classify(host, s), self.cfg.dataset.size_of(s));
                                work_units[host] += self.cfg.dataset.work_bytes_of(s);
                            }
                            hits.0 += foster.local_count;
                            hits.1 += foster.remote_count;
                            hits.2 += foster.pfs_count;
                            splits[host][gpu].merge(&foster);
                        }
                    }
                }
                let reading_nodes = splits
                    .iter()
                    .filter(|per| per.iter().any(|s| s.pfs_count > 0))
                    .count()
                    .max(1);

                // Elastic worker-pool tick: one controller decision per
                // iteration from purely deterministic inputs, applied
                // identically on every node.
                let elastic_step = elastic_cfg.as_ref().and_then(|e| {
                    let ctl = self.elastic_ctl.as_mut()?;
                    let wf = e.work_factor_at(global_iter);
                    let eobs = ElasticObservation::for_iteration(
                        global_iter,
                        mean_sample_f,
                        wf,
                        elastic_batch_samples,
                        t_train,
                    );
                    Some((ctl.tick(&eobs).clone(), wf, e.workers))
                });
                let mut iter_role_flips: Vec<RoleFlipObservable> = Vec::new();
                if let Some((d, _, workers)) = &elastic_step {
                    if self.observing {
                        iter_role_flips.push(RoleFlipObservable::from_decision(d));
                    }
                    if !d.flipped.is_empty() && ins.is_enabled() {
                        decisions_m.inc();
                        ins.trace(|| {
                            TraceEvent::instant("role_flip", "controller", sim_us(self.barrier_s))
                                .arg_u("iter", global_iter)
                                .arg_u("preproc_workers", d.preproc_after as u64)
                                .arg_u("flips", d.flipped.len() as u64)
                        });
                        ins.record_decision(DecisionRecord {
                            ts_us: sim_us(self.barrier_s),
                            source: DecisionSource::ElasticPool,
                            node: 0,
                            queue_loads: Vec::new(),
                            predicted_cost: vec![d.predicted_batch_secs],
                            threads_before: vec![workers - d.preproc_before, d.preproc_before],
                            threads_after: vec![workers - d.preproc_after, d.preproc_after],
                            gap_s: Some(t_train - d.predicted_batch_secs),
                            evals: d.evals,
                            converged: d.converged,
                            anomalies_before: 0,
                        });
                    }
                }

                let mut iter_decisions: Vec<DecisionObservable> = Vec::new();
                let mut iter_prefetched = vec![0u64; nodes];
                let tier_counts: Vec<[u64; 3]> = if self.observing {
                    splits
                        .iter()
                        .flat_map(|per| {
                            per.iter()
                                .map(|s| [s.local_count, s.remote_count, s.pfs_count])
                        })
                        .collect()
                } else {
                    Vec::new()
                };
                let evict_before = evict_total.by_reuse_count + evict_total.by_reuse_distance;

                // Pass 2: plan, fetch, account — per node.
                let mut pipe_s = vec![0.0f64; world]; // T_L + T_P per GPU
                let mut load_s = vec![0.0f64; world];
                let mut prep_s = vec![0.0f64; world];
                // Per-GPU [local, remote, pfs] seconds of `load_s`, exact
                // from the Eq. 1 decomposition (filled when instrumented).
                let mut tier_blame = vec![[0.0f64; 3]; world];
                for node in 0..nodes {
                    if down & (1u64 << node) != 0 {
                        // Dead node: no plan, no fetches, no sweep, no
                        // prefetch — but its oracle still advances so the
                        // reuse window is aligned when it rejoins. Its GPUs
                        // keep pipe_s = 0 and never straggle the barrier.
                        if let Some(oracle) = self.oracles[node].as_mut() {
                            oracle.advance();
                        }
                        continue;
                    }
                    let ctx = PlanContext {
                        node,
                        iter_in_epoch: h,
                        iters_per_epoch: iters,
                        t_train_s: t_train,
                        storage: &self.cfg.storage,
                        splits: &splits[node],
                        total_threads: self.cfg.cluster.pipeline_threads,
                        reading_nodes,
                        batch_samples: self.cfg.cluster.batch_size,
                        mean_sample_bytes: mean_bytes,
                        governor: &self.governor,
                    };
                    let mut plan = self.policy.plan(&ctx);
                    if let Some((d, _, _)) = &elastic_step {
                        // The controller owns the split in elastic mode:
                        // the policy's thread counts are replaced by the
                        // role-board's loader-per-queue assignment and
                        // preprocessing-worker count.
                        plan.preproc_threads = d.preproc_after;
                        plan.load_threads = d.loader_queues.clone();
                    }
                    debug_assert_eq!(plan.load_threads.len(), gpus);
                    if ins.is_enabled() || self.observing {
                        for d in self.policy.drain_decisions() {
                            if self.observing {
                                iter_decisions.push(DecisionObservable::from_plan(node, &d));
                            }
                            if !ins.is_enabled() {
                                continue;
                            }
                            decisions_m.inc();
                            ins.record_decision(DecisionRecord {
                                ts_us: sim_us(self.barrier_s),
                                source: DecisionSource::Algorithm1,
                                node: node as u32,
                                queue_loads: d.queue_loads,
                                predicted_cost: d.predicted_cost,
                                threads_before: d.threads_before,
                                threads_after: d.threads_after,
                                gap_s: Some(d.gap_s),
                                evals: d.evals,
                                converged: d.converged,
                                anomalies_before: 0,
                            });
                        }
                    }

                    // Ground-truth preprocessing time for the node's batches
                    // with the planned threads (shared stage: every GPU's
                    // batch streams through together). Work units are
                    // size × per-sample cost; every term is an exact f64
                    // integer, so on unit-cost datasets this equals the old
                    // sum of `TierBreakdown::total_bytes` bit for bit.
                    let node_work = work_units[node] as f64;
                    // In elastic mode the preprocessing work factor scales
                    // the bytes through the cost model (wf = 1 is exact
                    // identity, so the classic path is untouched).
                    let elastic_wf = elastic_step.as_ref().map_or(1, |(_, wf, _)| *wf);
                    let t_prep = self
                        .cfg
                        .preproc
                        .batch_secs(node_work * elastic_wf as f64, plan.preproc_threads);

                    // Intra-node overcommit: the per-GPU model (Eq. 1)
                    // assumes each GPU's threads get the full tier curve,
                    // but the node's NIC/PFS client saturates at the curve
                    // knee. When the GPUs' combined tier threads exceed it,
                    // everyone slows proportionally.
                    let knee_r = self.cfg.storage.curve(Tier::RemoteCache).peak().0;
                    let knee_p = self.cfg.storage.curve(Tier::Pfs).peak().0;
                    let mut total_r = 0u32;
                    let mut total_p = 0u32;
                    for gpu in 0..gpus {
                        let threads = plan.load_threads[gpu].max(1);
                        if splits[node][gpu].remote_count > 0 {
                            total_r += threads;
                        }
                        if splits[node][gpu].pfs_count > 0 {
                            total_p += threads;
                        }
                    }
                    let oc_r = (total_r as f64 / knee_r as f64).max(1.0);
                    let oc_p = (total_p as f64 / knee_p as f64).max(1.0);

                    let mut node_pipe_max = 0.0f64;
                    for gpu in 0..gpus {
                        let g = node * gpus + gpu;
                        let threads = plan.load_threads[gpu].max(1);
                        let parts = load_time_parts(
                            &self.cfg.storage,
                            &splits[node][gpu],
                            ThreadAlloc::uniform(threads),
                            reading_nodes,
                        );
                        let slowdown = self.cfg.slowdown_at(node, self.barrier_s);
                        let t_load =
                            parts.total_with_overcommit(oc_r, oc_p) / efficiency * slowdown;
                        load_s[g] = t_load;
                        if ins.is_enabled() {
                            // Same scaling as `t_load`, split by tier, so
                            // the three parts sum to it exactly.
                            let k = slowdown / efficiency;
                            tier_blame[g] = [
                                (parts.local_bw_s + parts.local_lat_s) * k,
                                (parts.remote_bw_s * oc_r + parts.remote_lat_s) * k,
                                (parts.pfs_bw_s * oc_p + parts.pfs_lat_s) * k,
                            ];
                        }
                        prep_s[g] = t_prep;
                        pipe_s[g] = t_load + t_prep;
                        node_pipe_max = node_pipe_max.max(pipe_s[g]);

                        // Loading overlaps the GPU's previous training, so
                        // its span starts at that training's start time.
                        let split = &splits[node][gpu];
                        ins.trace(|| {
                            TraceEvent::instant("queue_depth", "queue", sim_us(self.barrier_s))
                                .pid(node as u32)
                                .tid(gpu as u32)
                                .arg_f("pending_bytes", split.total_bytes())
                                .arg_u("pending_samples", split.total_count())
                        });
                        ins.trace(|| {
                            TraceEvent::span(
                                "fetch",
                                "io",
                                sim_us(self.start_prev_s[g]),
                                sim_us(t_load),
                            )
                            .pid(node as u32)
                            .tid(gpu as u32)
                            .arg_u("local", split.local_count)
                            .arg_u("remote", split.remote_count)
                            .arg_u("pfs", split.pfs_count)
                            .arg_f("bytes", split.total_bytes())
                        });
                        ins.trace(|| {
                            TraceEvent::span(
                                "preprocess",
                                "compute",
                                sim_us(self.start_prev_s[g] + t_load),
                                sim_us(t_prep),
                            )
                            .pid(node as u32)
                            .tid(gpu as u32)
                            .arg_u("threads", plan.preproc_threads as u64)
                        });
                    }

                    // State updates: demand fetches for every GPU's batch.
                    let node_samples: Vec<SampleId> = sched.node_iteration(h, node).to_vec();
                    self.demand_fetch(node, &node_samples, strategy, &mut hits);
                    ins.trace(|| {
                        let (l, r, p) = splits[node].iter().fold((0, 0, 0), |acc, s| {
                            (
                                acc.0 + s.local_count,
                                acc.1 + s.remote_count,
                                acc.2 + s.pfs_count,
                            )
                        });
                        TraceEvent::instant("cache", "cache", sim_us(self.barrier_s))
                            .pid(node as u32)
                            .arg_u("local_hits", l)
                            .arg_u("remote_hits", r)
                            .arg_u("misses", p)
                    });

                    // The oracle moves past iteration h before eviction and
                    // prefetch reason about "the future".
                    if let Some(oracle) = self.oracles[node].as_mut() {
                        oracle.advance();
                    }

                    if strategy == CachingStrategy::ReuseAware {
                        // Split borrows: take the oracle out during the sweep.
                        if let Some(oracle) = self.oracles[node].take() {
                            let mut victims = Vec::new();
                            let rep = self.evictor.after_iteration_detailed(
                                &mut self.caches[node],
                                &mut self.directory,
                                &oracle,
                                node,
                                &node_samples,
                                h,
                                iters,
                                global_iter,
                                &mut victims,
                            );
                            if self.observing {
                                self.obs_events
                                    .extend(victims.into_iter().map(|(s, cause)| EvictionEvent {
                                        node: node as u32,
                                        sample: s.0 as u64,
                                        reason: cause.into(),
                                    }));
                            }
                            evict_total.by_reuse_count += rep.by_reuse_count;
                            evict_total.by_reuse_distance += rep.by_reuse_distance;
                            evict_total.kept_last_copy += rep.kept_last_copy;
                            let victims = rep.by_reuse_count + rep.by_reuse_distance;
                            if victims > 0 {
                                ins.trace(|| {
                                    TraceEvent::instant("evict", "cache", sim_us(self.barrier_s))
                                        .pid(node as u32)
                                        .arg_u("victims", victims)
                                        .arg_u("kept_last_copy", rep.kept_last_copy)
                                });
                            }
                            self.oracles[node] = Some(oracle);
                        }
                    }

                    if plan.prefetch {
                        // Spare loader-thread time this iteration: the wall
                        // window is max(T_train, slowest pipeline); each
                        // GPU's loading threads idle once its own batch is
                        // staged, contributing in proportion to their share
                        // of the pool.
                        let window = t_train.max(node_pipe_max);
                        let total_threads: u32 = plan.load_threads.iter().map(|&t| t.max(1)).sum();
                        let mut spare = 0.0;
                        for gpu in 0..gpus {
                            let g = node * gpus + gpu;
                            let share = plan.load_threads[gpu].max(1) as f64 / total_threads as f64;
                            // Loading threads idle once their own demand
                            // fetch is staged (preprocessing runs on the
                            // other pool).
                            spare += (window - load_s[g]).max(0.0) * share;
                        }
                        let got = self.prefetch(node, &plan, spare, strategy, reading_nodes);
                        iter_prefetched[node] = got;
                        prefetched += got;
                    }
                }

                // Timing recurrence.
                let mut max_done = 0.0f64;
                let mut starts = vec![0.0f64; world];
                for g in 0..world {
                    let ready = self.start_prev_s[g] + pipe_s[g];
                    let start = self.barrier_s.max(ready);
                    starts[g] = start;
                    max_done = max_done.max(start + t_train);
                }
                let new_barrier = max_done + self.cfg.allreduce_s;
                let batch_time = new_barrier - self.barrier_s;
                batch_times.record(batch_time);

                // Imbalance: pipeline-time spread across the cluster's GPUs
                // (uniform slowness is a bottleneck, not imbalance).
                let eff: Vec<f64> = pipe_s.iter().map(|&p| p.max(t_train)).collect();
                let spread = lobster_core::imbalance_gap_secs(&eff);
                spread_sum += spread;
                if spread > self.cfg.imbalance_fraction * t_train {
                    imbalanced += 1;
                }

                if self.observing || ins.is_enabled() {
                    // Per-tick telemetry frame: tier counts come from the
                    // classification splits (fostered fetches included),
                    // timing from the same recurrence the report uses, all
                    // quantized to integers so every executor derives the
                    // byte-identical frame.
                    let mut tiers = [0u64; 3];
                    for per in &splits {
                        for s in per {
                            tiers[0] += s.local_count;
                            tiers[1] += s.remote_count;
                            tiers[2] += s.pfs_count;
                        }
                    }
                    let (pw, lw) = match &elastic_step {
                        Some((d, _, workers)) => (d.preproc_after, workers - d.preproc_after),
                        None => (0u32, self.cfg.cluster.pipeline_threads),
                    };
                    let scalars = lobster_metrics::TickScalars {
                        tick: global_iter,
                        gap_us: (spread * 1e6).round() as u64,
                        iter_us: (batch_time * 1e6).round() as u64,
                        local_hits: tiers[0],
                        remote_hits: tiers[1],
                        misses: tiers[2],
                        prefetched: iter_prefetched.iter().sum(),
                        // When observing, count the tick's eviction events
                        // (the exact list the DES also records) so the frame
                        // is identical across executors; otherwise fall back
                        // to the reuse-policy victim delta.
                        evictions: if self.observing {
                            self.obs_events.len() as u64
                        } else {
                            (evict_total.by_reuse_count + evict_total.by_reuse_distance)
                                - evict_before
                        },
                        retries: 0,
                        delivered: tiers[0] + tiers[1] + tiers[2],
                        preproc_workers: pw,
                        loader_workers: lw,
                        down_mask: down,
                    };
                    if ins.is_enabled() {
                        ins.record_tick(scalars);
                    }
                    if self.observing {
                        tele_bank.observe(&scalars, |a| tele_anomalies.push(a));
                    }
                }

                if ins.is_enabled() {
                    let mut samples = Vec::with_capacity(world);
                    for g in 0..world {
                        let wait = new_barrier - self.cfg.allreduce_s - (starts[g] + t_train);
                        ins.trace(|| {
                            TraceEvent::span("train", "compute", sim_us(starts[g]), sim_us(t_train))
                                .pid((g / gpus) as u32)
                                .tid((g % gpus) as u32)
                                .arg_u("iter", global_iter)
                        });
                        ins.trace(|| {
                            TraceEvent::span(
                                "barrier_wait",
                                "sync",
                                sim_us(starts[g] + t_train),
                                sim_us(wait),
                            )
                            .pid((g / gpus) as u32)
                            .tid((g % gpus) as u32)
                            .arg_u("iter", global_iter)
                        });
                        // Feed the online analyzer the exact stage split:
                        // `iter_s` uses the same `max(pipe, t_train)` floor
                        // as the Eq.-3 spread above, so the live gap gauge
                        // matches `mean_spread_s`.
                        let mut stages = lobster_metrics::StageSample::default();
                        use lobster_metrics::BlameCategory as B;
                        stages.add(B::LocalFetch, tier_blame[g][0]);
                        stages.add(B::RemoteFetch, tier_blame[g][1]);
                        stages.add(B::PfsFetch, tier_blame[g][2]);
                        stages.add(B::Preprocess, prep_s[g]);
                        stages.add(B::Train, t_train);
                        stages.add(B::Barrier, wait + self.cfg.allreduce_s);
                        samples.push(lobster_metrics::GpuIterSample {
                            node: (g / gpus) as u32,
                            gpu: (g % gpus) as u32,
                            iter_s: pipe_s[g].max(t_train),
                            stages,
                        });
                    }
                    let _ = ins.observe_iteration(global_iter, sim_us(new_barrier), || samples);
                }

                if let Some(trace) = self.trace.as_mut() {
                    for g in 0..world {
                        trace.record(IterationRecord {
                            epoch,
                            iteration: h as u64,
                            node: g / gpus,
                            gpu: g % gpus,
                            load_s: load_s[g],
                            preproc_s: prep_s[g],
                            train_s: t_train,
                            wait_data_s: starts[g] - self.barrier_s,
                            wait_stragglers_s: new_barrier
                                - self.cfg.allreduce_s
                                - (starts[g] + t_train),
                        });
                    }
                }

                if let Some(o) = obs.as_mut() {
                    o.iterations.push(IterationObservables {
                        iteration: global_iter,
                        tier_counts,
                        evictions: std::mem::take(&mut self.obs_events),
                        decisions: iter_decisions,
                        prefetched: iter_prefetched,
                        role_flips: iter_role_flips,
                        membership: iter_membership,
                        pipe_s: pipe_s.clone(),
                        starts_s: starts.clone(),
                        barrier_s: new_barrier,
                    });
                }

                self.start_prev_s.copy_from_slice(&starts);
                self.barrier_s = new_barrier;
            }

            if let Some(o) = obs.as_mut() {
                let mut d: Vec<u64> = sched.all_accesses().iter().map(|s| s.0 as u64).collect();
                d.sort_unstable();
                o.delivered.push(d);
                o.local_hits += hits.0;
                o.remote_hits += hits.1;
                o.misses += hits.2;
                o.prefetched += prefetched;
            }

            let wall = self.barrier_s - epoch_start_s;
            local_m.add(hits.0);
            remote_m.add(hits.1);
            miss_m.add(hits.2);
            prefetch_m.add(prefetched);
            evict_m.add(evict_total.by_reuse_count + evict_total.by_reuse_distance);
            epochs.push(EpochReport {
                epoch,
                wall_s: wall,
                local_hits: hits.0,
                remote_hits: hits.1,
                misses: hits.2,
                prefetched,
                imbalanced_iterations: imbalanced,
                iterations: iters as u64,
                gpu_utilization: (iters as f64 * t_train) / wall,
                mean_spread_s: spread_sum / iters.max(1) as f64,
                batch_times,
                evict: evict_total,
            });
            next_schedule = Some(upcoming);
        }

        if let Some(o) = obs.as_mut() {
            o.anomalies = tele_anomalies;
        }
        ins.flush_telemetry();

        let report = RunReport {
            policy: self.policy.name().to_string(),
            model: self.cfg.model.name.clone(),
            dataset: self.cfg.dataset.name.clone(),
            total_wall_s: self.barrier_s,
            epochs,
        };
        (report, self.trace, obs)
    }
}
