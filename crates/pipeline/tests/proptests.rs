//! Property tests for the cluster executor's observable invariants: for
//! arbitrary seeds and small topologies, one `run_observed` must satisfy
//! the accounting identities the conformance harness relies on.

use lobster_core::policy_by_name;
use lobster_data::{Dataset, SizeDistribution};
use lobster_pipeline::{ClusterSim, ConfigBuilder};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every demand access is accounted exactly once — in the pass-1 tier
    /// classification, in the fetch-time hit/miss counters, and in the
    /// per-epoch reports — every epoch delivers a permutation-sized
    /// multiset of distinct samples, and per-iteration records are
    /// complete. (Pass-1 tier counts and fetch-time counters may *split*
    /// differently: an insert during the node's fetch loop can evict a
    /// later GPU's still-pending sample; only the totals are invariant.)
    #[test]
    fn observables_satisfy_accounting_identities(
        seed in 0u64..1_000,
        policy_idx in 0usize..3,
    ) {
        let policy_name = ["pytorch", "nopfs", "lobster"][policy_idx];
        let dataset = Dataset::generate(
            "pipeline-prop",
            64,
            SizeDistribution::Uniform { lo: 2_000, hi: 16_000 },
            seed,
        );
        let cache_bytes = dataset.total_bytes() / 3;
        let len = dataset.len();
        let cfg = ConfigBuilder::new()
            .nodes(2)
            .gpus_per_node(2)
            .batch_size(2)
            .cache_bytes(cache_bytes)
            .dataset(dataset)
            .epochs(2)
            .seed(seed)
            .build();
        let (report, obs) = ClusterSim::new(cfg, policy_by_name(policy_name).unwrap())
            .run_observed();
        prop_assert!(report.mean_epoch_s() > 0.0);

        // Both accountings cover every demand access exactly once.
        let accesses = (obs.iterations.len() as u64) * 4 * 2; // iters × W × |B|
        let [local, remote, pfs] = obs.tier_totals();
        prop_assert_eq!(local + remote + pfs, accesses);
        prop_assert_eq!(obs.demand_accesses(), accesses);

        // The per-epoch reports sum to the run totals.
        let by_epoch = |f: fn(&lobster_pipeline::EpochReport) -> u64| -> u64 {
            report.epochs.iter().map(f).sum()
        };
        prop_assert_eq!(by_epoch(|e| e.local_hits), obs.local_hits);
        prop_assert_eq!(by_epoch(|e| e.remote_hits), obs.remote_hits);
        prop_assert_eq!(by_epoch(|e| e.misses), obs.misses);
        prop_assert_eq!(by_epoch(|e| e.prefetched), obs.prefetched);

        // Every epoch delivers I × W × |B| distinct samples within range.
        for (epoch, delivered) in obs.delivered.iter().enumerate() {
            let iters = obs.iterations.len() / obs.delivered.len();
            prop_assert_eq!(delivered.len(), iters * 4 * 2, "epoch {}", epoch);
            let mut sorted = delivered.clone();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), delivered.len(), "duplicates in epoch {}", epoch);
            prop_assert!(delivered.iter().all(|&id| (id as usize) < len));
        }

        // Iteration records are complete and in order.
        for (i, rec) in obs.iterations.iter().enumerate() {
            prop_assert_eq!(rec.iteration, i as u64);
            prop_assert_eq!(rec.tier_counts.len(), 4);
            prop_assert_eq!(rec.starts_s.len(), 4);
            prop_assert!(rec.barrier_s.is_finite());
        }
    }
}
