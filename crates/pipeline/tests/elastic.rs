//! ClusterSim grows the same elastic preproc↔loader rule as the live
//! engine (ISSUE 5): the controller tick runs once per cluster
//! iteration, its decisions override the policy's thread plan, and the
//! resulting role-flip sequence is an invariant observable.

use lobster_core::policy_by_name;
use lobster_core::ModelProfile;
use lobster_data::{Dataset, SizeDistribution};
use lobster_pipeline::{ClusterSim, ConfigBuilder, ElasticSimConfig, ExperimentConfig};

/// One node × two GPUs × batch 4 over 96 constant-size samples: 12
/// iterations per epoch, with the preprocessing work factor stepping
/// 1 → 8 at global iteration 12 (the start of epoch 1).
fn elastic_cfg(seed: u64, elastic: Option<ElasticSimConfig>) -> ExperimentConfig {
    let dataset = Dataset::generate(
        "pipeline-elastic",
        96,
        SizeDistribution::Constant { bytes: 16_384 },
        seed,
    );
    let cache_bytes = dataset.total_bytes() / 3;
    let mut b = ConfigBuilder::new()
        .nodes(1)
        .gpus_per_node(2)
        .batch_size(4)
        .pipeline_threads(8)
        .cache_bytes(cache_bytes)
        .dataset(dataset)
        .epochs(2)
        .seed(seed)
        .model(ModelProfile::new("pipeline-elastic", 2e-4, 0.7, 10.0));
    if let Some(e) = elastic {
        b = b.elastic(e);
    }
    b.build()
}

fn step_cfg(frozen: bool) -> ElasticSimConfig {
    ElasticSimConfig {
        workers: 8,
        initial_preproc: 1,
        work_factor: 1,
        work_factor_step: Some((12, 8)),
        churn: false,
        frozen,
        estimate: lobster_core::WorkEstimate::Mean,
    }
}

/// The work-factor step must grow the preprocessing share: before the
/// step the configured single preproc worker keeps up; after it the
/// controller reallocates loaders into preprocessing roles.
#[test]
fn cluster_sim_grows_preproc_share_after_work_factor_step() {
    let cfg = elastic_cfg(11, Some(step_cfg(false)));
    let (_, obs) = ClusterSim::new(cfg, policy_by_name("lobster").unwrap()).run_observed();

    assert_eq!(obs.iterations.len(), 24);
    for (h, it) in obs.iterations.iter().enumerate() {
        assert_eq!(
            it.role_flips.len(),
            1,
            "iteration {h}: exactly one controller tick"
        );
        let f = &it.role_flips[0];
        assert_eq!(f.tick, h as u64);
        // Conservation: loaders + preproc == pool size, every tick.
        let loaders: u32 = f.loader_queues.iter().sum();
        assert_eq!(loaders + f.preproc_after, 8, "iteration {h}");
    }

    let before: u32 = obs.iterations[11].role_flips[0].preproc_after;
    let after: u32 = obs.iterations[23].role_flips[0].preproc_after;
    assert_eq!(before, 1, "light preprocessing keeps the initial split");
    assert!(
        after > before,
        "the 8× work-factor step must pull workers into preprocessing \
         (before {before}, after {after})"
    );
    assert!(
        obs.iterations[12..]
            .iter()
            .any(|it| !it.role_flips[0].flipped.is_empty()),
        "the step must produce at least one actual role flip"
    );
}

/// A frozen controller (the `never-steal` canary semantics) still ticks —
/// the sequence has the right length — but never flips a role.
#[test]
fn frozen_controller_never_flips() {
    let cfg = elastic_cfg(11, Some(step_cfg(true)));
    let (_, obs) = ClusterSim::new(cfg, policy_by_name("lobster").unwrap()).run_observed();

    assert_eq!(obs.iterations.len(), 24);
    for it in &obs.iterations {
        let f = &it.role_flips[0];
        assert_eq!(f.preproc_after, 1, "frozen split must stand still");
        assert!(f.flipped.is_empty(), "frozen controller must not flip");
    }
}

/// Elastic reallocation beats the frozen split on epoch time once the
/// heavy work factor lands: more preprocessing threads shorten the
/// pipeline's critical path.
#[test]
fn elastic_beats_frozen_split_under_step() {
    let (elastic_report, _) = ClusterSim::new(
        elastic_cfg(11, Some(step_cfg(false))),
        policy_by_name("lobster").unwrap(),
    )
    .run_observed();
    let (frozen_report, _) = ClusterSim::new(
        elastic_cfg(11, Some(step_cfg(true))),
        policy_by_name("lobster").unwrap(),
    )
    .run_observed();

    let elastic_last = elastic_report.epochs.last().unwrap().wall_s;
    let frozen_last = frozen_report.epochs.last().unwrap().wall_s;
    assert!(
        elastic_last < frozen_last,
        "elastic epoch-1 time {elastic_last:.6}s must beat frozen {frozen_last:.6}s"
    );
}

/// Without an elastic config the executor emits no role-flip observables
/// and behaves exactly as before (the classic path is untouched).
#[test]
fn non_elastic_run_emits_no_role_flips() {
    let cfg = elastic_cfg(11, None);
    let (_, obs) = ClusterSim::new(cfg, policy_by_name("lobster").unwrap()).run_observed();
    assert!(obs.iterations.iter().all(|it| it.role_flips.is_empty()));
}
