//! Property tests for the metric primitives: registry counters/gauges are
//! exact accumulators, `Summary` statistics stay within the recorded
//! range, and `LogHistogram` merges conserve mass and keep quantiles
//! bounded under arbitrarily repeated rollup merges.

use lobster_metrics::{LogHistogram, MetricRegistry, Summary};
use proptest::prelude::*;

fn hist_of(values: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    h.record_all(values.iter().copied());
    h
}

proptest! {
    /// A counter is an exact sum of its increments; a gauge an exact sum
    /// of its deltas — both readable back through the snapshot.
    #[test]
    fn registry_accumulates_exactly(
        adds in proptest::collection::vec(0u64..10_000, 1..64),
        deltas in proptest::collection::vec(-5_000i64..5_000, 1..64),
    ) {
        let reg = MetricRegistry::new();
        let counter = reg.counter("test.counter");
        for &n in &adds {
            counter.add(n);
        }
        let gauge = reg.gauge("test.gauge");
        for &d in &deltas {
            gauge.add(d);
        }
        let want_count: u64 = adds.iter().sum();
        let want_gauge: i64 = deltas.iter().sum();
        prop_assert_eq!(counter.value(), want_count);
        prop_assert_eq!(gauge.value(), want_gauge);
        let snap = reg.snapshot();
        prop_assert_eq!(snap.get("test.counter"), Some(want_count as i64));
        prop_assert_eq!(snap.get("test.gauge"), Some(want_gauge));
    }

    /// `Summary` invariants: count matches, and min ≤ mean ≤ max.
    #[test]
    fn summary_statistics_bound_each_other(
        values in proptest::collection::vec(0.0f64..1.0e6, 1..256),
    ) {
        let mut s = Summary::new();
        s.record_all(values.iter().copied());
        prop_assert_eq!(s.count(), values.len());
        prop_assert!(s.min() <= s.mean() + 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(s.min(), lo);
        prop_assert_eq!(s.max(), hi);
    }

    /// Rollup-merge conservation: merging histograms — in any grouping, any
    /// number of times — conserves total mass exactly, and every percentile
    /// of `merge(a, b)` stays inside `[min(a, b), max(a, b)]`. This is the
    /// property repeated 1×→8×→64× telemetry downsampling leans on: a
    /// drifting merge (double-counted mass, a leaked sentinel min, a
    /// percentile escaping the observed range) compounds across windows.
    #[test]
    fn histogram_merge_conserves_mass_and_bounds_percentiles(
        a in proptest::collection::vec(0u64..1_000_000, 1..128),
        b in proptest::collection::vec(0u64..1_000_000, 1..128),
    ) {
        let ha = hist_of(&a);
        let hb = hist_of(&b);
        let mut merged = ha.clone();
        merged.merge(&hb);

        prop_assert_eq!(merged.count(), ha.count() + hb.count());
        let lo = ha.min().unwrap().min(hb.min().unwrap());
        let hi = ha.max().unwrap().max(hb.max().unwrap());
        prop_assert_eq!(merged.min(), Some(lo));
        prop_assert_eq!(merged.max(), Some(hi));
        for p in [0.0, 25.0, 50.0, 95.0, 99.0, 100.0] {
            let q = merged.percentile(p).unwrap();
            prop_assert!(
                q >= lo as f64 && q <= hi as f64,
                "p{} = {} escaped [{}, {}]", p, q, lo, hi
            );
        }

        // Merge is associative and order-insensitive at the bucket level:
        // (a ⊕ b) equals (b ⊕ a) exactly, so repeated rollups cannot drift
        // with grouping order.
        let mut flipped = hb.clone();
        flipped.merge(&ha);
        prop_assert_eq!(&merged, &flipped);

        // Idempotence of the *reset* contract: a cleared histogram is
        // byte-identical to a fresh one, so a reused rollup accumulator
        // cannot leak the previous window into the next.
        let mut reused = merged.clone();
        reused.clear();
        prop_assert_eq!(&reused, &LogHistogram::new());
        reused.merge(&ha);
        reused.merge(&hb);
        prop_assert_eq!(&reused, &merged);
    }

    /// Merging a histogram into an accumulator k times multiplies every
    /// bucket k-fold (mass conservation under re-merge) and leaves all
    /// percentiles exactly where they were — quantiles must not drift no
    /// matter how many rollup levels re-merge the same window.
    #[test]
    fn repeated_self_merge_does_not_drift_quantiles(
        values in proptest::collection::vec(0u64..100_000, 1..64),
        k in 2usize..6,
    ) {
        let h = hist_of(&values);
        let mut acc = LogHistogram::new();
        for _ in 0..k {
            acc.merge(&h);
        }
        prop_assert_eq!(acc.count(), h.count() * k as u64);
        prop_assert_eq!(acc.min(), h.min());
        prop_assert_eq!(acc.max(), h.max());
        for p in [1.0, 50.0, 95.0, 99.0] {
            prop_assert_eq!(acc.percentile(p), h.percentile(p), "p{}", p);
        }
    }
}
