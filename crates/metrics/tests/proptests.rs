//! Property tests for the metric primitives: registry counters/gauges are
//! exact accumulators and `Summary` statistics stay within the recorded
//! range.

use lobster_metrics::{MetricRegistry, Summary};
use proptest::prelude::*;

proptest! {
    /// A counter is an exact sum of its increments; a gauge an exact sum
    /// of its deltas — both readable back through the snapshot.
    #[test]
    fn registry_accumulates_exactly(
        adds in proptest::collection::vec(0u64..10_000, 1..64),
        deltas in proptest::collection::vec(-5_000i64..5_000, 1..64),
    ) {
        let reg = MetricRegistry::new();
        let counter = reg.counter("test.counter");
        for &n in &adds {
            counter.add(n);
        }
        let gauge = reg.gauge("test.gauge");
        for &d in &deltas {
            gauge.add(d);
        }
        let want_count: u64 = adds.iter().sum();
        let want_gauge: i64 = deltas.iter().sum();
        prop_assert_eq!(counter.value(), want_count);
        prop_assert_eq!(gauge.value(), want_gauge);
        let snap = reg.snapshot();
        prop_assert_eq!(snap.get("test.counter"), Some(want_count as i64));
        prop_assert_eq!(snap.get("test.gauge"), Some(want_gauge));
    }

    /// `Summary` invariants: count matches, and min ≤ mean ≤ max.
    #[test]
    fn summary_statistics_bound_each_other(
        values in proptest::collection::vec(0.0f64..1.0e6, 1..256),
    ) {
        let mut s = Summary::new();
        s.record_all(values.iter().copied());
        prop_assert_eq!(s.count(), values.len());
        prop_assert!(s.min() <= s.mean() + 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(s.min(), lo);
        prop_assert_eq!(s.max(), hi);
    }
}
