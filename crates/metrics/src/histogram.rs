//! Histograms for reuse distances and batch-time distributions.

use serde::{Deserialize, Serialize};

/// A power-of-two bucketed histogram over `u64` values, suitable for the
/// paper's Figure 4 (reuse distance spans 1 .. >100k iterations).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogHistogram {
    /// `buckets[k]` counts values `v` with `2^(k-1) < v ≤ 2^k` (bucket 0
    /// counts zeros and ones).
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    pub fn new() -> LogHistogram {
        LogHistogram {
            buckets: vec![0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(v: u64) -> usize {
        if v <= 1 {
            0
        } else {
            (64 - (v - 1).leading_zeros()) as usize
        }
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Record many values.
    pub fn record_all<I: IntoIterator<Item = u64>>(&mut self, vs: I) {
        for v in vs {
            self.record(v);
        }
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Fraction of recorded values strictly greater than `threshold`.
    /// (Figure 4's claim: "80% of the training samples have the reuse
    /// distance larger than 1,000 iterations".)
    pub fn fraction_above(&self, threshold: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        // Conservative: count whole buckets strictly above the threshold's
        // bucket, assuming the threshold bucket itself is below. Exact for
        // power-of-two thresholds.
        let tb = Self::bucket_of(threshold);
        let above: u64 = self.buckets[tb + 1..].iter().sum();
        above as f64 / self.count as f64
    }

    /// Approximate percentile (`0.0 ≤ p ≤ 100.0`) by nearest rank over the
    /// buckets, `None` when empty.
    ///
    /// The reported value is the *midpoint* of the bucket holding the rank,
    /// clamped to the observed `[min, max]` — never the bucket's upper
    /// edge. Consequences worth naming: a single-sample histogram reports
    /// that sample exactly (the clamp collapses the bucket to the point),
    /// and a histogram whose mass sits in one bucket reports the same
    /// midpoint for every percentile instead of sweeping up to a power-of-
    /// two edge no sample ever reached.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if c > 0 && seen >= rank {
                let mid = if k == 0 {
                    0.5
                } else if k >= 64 {
                    // No finite upper edge for the top bucket.
                    self.max as f64
                } else {
                    ((1u64 << (k - 1)) as f64 + (1u64 << k) as f64) / 2.0
                };
                return Some(mid.clamp(self.min as f64, self.max as f64));
            }
        }
        Some(self.max as f64)
    }

    /// Non-empty buckets as `(upper_bound, count)` pairs for plotting.
    pub fn non_empty_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(k, &c)| (if k >= 64 { u64::MAX } else { 1u64 << k }, c))
            .collect()
    }

    /// Reset to the empty state **in place**, keeping the preallocated
    /// bucket storage. Rollup accumulators that fold windows of per-tick
    /// histograms (the telemetry 1×→8×→64× downsample path) reuse one
    /// histogram per window via `clear()` + [`merge`](Self::merge); a fresh
    /// `LogHistogram::new()` at every window boundary would allocate on the
    /// steady-state record path, and *forgetting* to reset would leak the
    /// previous window's mass into the next — the quantile-drift bug this
    /// method exists to make unrepresentable.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            *b = 0;
        }
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// Fold `other` into `self`. Because the bucket boundaries are fixed
    /// powers of two, merging per-thread histograms is a plain bucket-wise
    /// sum — every derived statistic (count, mean, percentiles,
    /// `fraction_above`) afterwards equals what a single histogram fed both
    /// record streams would report.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Sparse wire form: only non-empty buckets travel. 65 mostly-zero
    /// slots collapse to a handful of `(index, count)` pairs, which keeps
    /// flight dumps and BENCH files small and diff-stable.
    pub fn to_compact(&self) -> CompactHistogram {
        CompactHistogram {
            count: self.count,
            sum: self.sum,
            min: if self.count > 0 { self.min } else { 0 },
            max: self.max,
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(k, &c)| CompactBucket { idx: k as u8, n: c })
                .collect(),
        }
    }

    /// Rebuild a full histogram from its sparse form, validating the
    /// invariants a dump could have lost (bucket indices in range, bucket
    /// mass equal to `count`).
    pub fn from_compact(c: &CompactHistogram) -> Result<LogHistogram, String> {
        let mut h = LogHistogram::new();
        let mut mass = 0u64;
        for b in &c.buckets {
            if b.idx as usize >= h.buckets.len() {
                return Err(format!("bucket index {} out of range", b.idx));
            }
            h.buckets[b.idx as usize] += b.n;
            mass += b.n;
        }
        if mass != c.count {
            return Err(format!(
                "bucket mass {mass} does not match count {}",
                c.count
            ));
        }
        h.count = c.count;
        h.sum = c.sum;
        h.min = if c.count > 0 { c.min } else { u64::MAX };
        h.max = c.max;
        Ok(h)
    }
}

/// One non-empty bucket of a [`CompactHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompactBucket {
    /// Bucket index `k` (`buckets[k]` of the full form), 0 ..= 64.
    pub idx: u8,
    /// Occupancy.
    pub n: u64,
}

/// The sparse serialized form of a [`LogHistogram`]; see
/// [`LogHistogram::to_compact`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompactHistogram {
    pub count: u64,
    pub sum: u128,
    pub min: u64,
    pub max: u64,
    pub buckets: Vec<CompactBucket>,
}

/// A fixed-width linear histogram over `f64` values (batch-time
/// distributions, Figure 8c).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearHistogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    below: u64,
    above: u64,
    count: u64,
}

impl LinearHistogram {
    /// `n` equal-width buckets spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, n: usize) -> LinearHistogram {
        assert!(hi > lo && n > 0, "degenerate histogram bounds");
        LinearHistogram {
            lo,
            hi,
            buckets: vec![0; n],
            below: 0,
            above: 0,
            count: 0,
        }
    }

    pub fn record(&mut self, v: f64) {
        self.count += 1;
        if v < self.lo {
            self.below += 1;
        } else if v >= self.hi {
            self.above += 1;
        } else {
            let n = self.buckets.len();
            let k = ((v - self.lo) / (self.hi - self.lo) * n as f64) as usize;
            self.buckets[k.min(n - 1)] += 1;
        }
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Buckets as `(center, count)` pairs, plus under/overflow counts.
    pub fn buckets(&self) -> (Vec<(f64, u64)>, u64, u64) {
        let w = (self.hi - self.lo) / self.buckets.len() as f64;
        let centers = self
            .buckets
            .iter()
            .enumerate()
            .map(|(k, &c)| (self.lo + (k as f64 + 0.5) * w, c))
            .collect();
        (centers, self.below, self.above)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_buckets_are_powers_of_two() {
        let mut h = LogHistogram::new();
        h.record_all([0, 1, 2, 3, 4, 5, 8, 9, 1024]);
        let b = h.non_empty_buckets();
        // 0,1 → bucket 0 (bound 1); 2 → bound 2; 3,4 → bound 4; 5,8 → bound 8;
        // 9 → bound 16; 1024 → bound 1024.
        assert_eq!(b, vec![(1, 2), (2, 1), (4, 2), (8, 2), (16, 1), (1024, 1)]);
        assert_eq!(h.count(), 9);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1024));
    }

    #[test]
    fn fraction_above_power_of_two_threshold_is_exact() {
        let mut h = LogHistogram::new();
        // 4 values ≤ 1024 (in buckets up to 2^10), 6 values > 1024.
        h.record_all([
            1, 10, 100, 1024, 2000, 3000, 5000, 10_000, 100_000, 1_000_000,
        ]);
        assert!((h.fraction_above(1024) - 0.6).abs() < 1e-9);
    }

    #[test]
    fn log_mean_is_exact() {
        let mut h = LogHistogram::new();
        h.record_all([2, 4, 6]);
        assert_eq!(h.mean(), Some(4.0));
    }

    #[test]
    fn empty_log_histogram_is_well_behaved() {
        let h = LogHistogram::new();
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.fraction_above(10), 0.0);
        assert!(h.non_empty_buckets().is_empty());
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.percentile(99.0), None);
    }

    #[test]
    fn one_sample_percentile_is_exact() {
        let mut h = LogHistogram::new();
        h.record(100);
        // 100 lands in the (64, 128] bucket whose midpoint is 96; the
        // [min, max] clamp collapses it back to the sample.
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), Some(100.0), "p{p}");
        }
    }

    #[test]
    fn single_bucket_p99_is_the_midpoint_not_the_upper_edge() {
        let mut h = LogHistogram::new();
        // All mass in the (512, 1024] bucket, spanning most of it.
        h.record_all([600, 700, 768, 800, 900]);
        let p99 = h.percentile(99.0).unwrap();
        assert_eq!(p99, 768.0, "midpoint of (512, 1024], not the 1024 edge");
        assert_eq!(h.percentile(50.0), h.percentile(99.0));
    }

    #[test]
    fn percentile_walks_buckets_in_order() {
        let mut h = LogHistogram::new();
        // 90 small values, 10 large: p50 must sit low, p99 high.
        for _ in 0..90 {
            h.record(3);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let p50 = h.percentile(50.0).unwrap();
        let p99 = h.percentile(99.0).unwrap();
        assert_eq!(p50, 3.0, "(2, 4] midpoint");
        assert!(p99 > 500_000.0, "p99 {p99} must reach the large bucket");
        assert!(p99 <= 1_000_000.0, "clamped to the observed max");
    }

    #[test]
    fn thousand_fold_skew_keeps_p99_within_the_tail_bucket() {
        // The DESIGN.md §15 heavy-tail audit at the histogram level: 990
        // ordinary values around 100 and 10 outliers 1000× larger. The
        // nearest-rank walk must land p99 in the outlier bucket, and the
        // log-bucket midpoint must stay within one power of two of the
        // true value — the resolution contract callers (the gap
        // percentiles in [`crate::analysis`]) rely on.
        let mut h = LogHistogram::new();
        for _ in 0..980 {
            h.record(100);
        }
        // 2% outliers: nearest-rank p99 (rank 990 of 1000) must land in
        // the outlier bucket, not on the boundary.
        for _ in 0..20 {
            h.record(100_000);
        }
        let p50 = h.percentile(50.0).unwrap();
        let p99 = h.percentile(99.0).unwrap();
        assert_eq!(p50, 100.0, "p50 clamps to the ordinary mass");
        assert!(
            (50_000.0..=200_000.0).contains(&p99),
            "p99 {p99} must be within 2× of the 100k outliers"
        );
        // And the mean sits far below the tail — the same blind spot the
        // analyzer's mean_gap_s has, made visible here.
        assert!(h.mean().unwrap() < p99 / 10.0);
    }

    #[test]
    fn saturated_histogram_percentiles_stay_in_range() {
        let mut h = LogHistogram::new();
        h.record_all([0, 0, 1, u64::MAX, u64::MAX]);
        for p in [0.0, 25.0, 50.0, 75.0, 99.0, 100.0] {
            let v = h.percentile(p).unwrap();
            assert!((0.0..=u64::MAX as f64).contains(&v), "p{p} = {v}");
        }
        assert_eq!(h.percentile(1.0), Some(0.5), "zeros bucket midpoint");
        assert_eq!(
            h.percentile(100.0),
            Some(u64::MAX as f64),
            "top bucket has no finite edge; reports the observed max"
        );
    }

    #[test]
    fn merge_then_percentile_matches_combined_record() {
        // Two disjoint record streams (as two loader threads would
        // produce), merged at "barrier time", must be indistinguishable
        // from one histogram that saw both streams.
        let stream_a: Vec<u64> = (0..400u64).map(|i| 3 + (i * 7919) % 900).collect();
        let stream_b: Vec<u64> = (0..250u64)
            .map(|i| 50_000 + (i * 104_729) % 2_000_000)
            .collect();

        let mut a = LogHistogram::new();
        a.record_all(stream_a.iter().copied());
        let mut b = LogHistogram::new();
        b.record_all(stream_b.iter().copied());

        let mut combined = LogHistogram::new();
        combined.record_all(stream_a.iter().copied());
        combined.record_all(stream_b.iter().copied());

        a.merge(&b);
        assert_eq!(a, combined, "merge is exactly bucket-wise addition");
        for p in [0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0] {
            assert_eq!(a.percentile(p), combined.percentile(p), "p{p}");
        }
        assert_eq!(a.mean(), combined.mean());
        assert_eq!(a.min(), combined.min());
        assert_eq!(a.max(), combined.max());
        assert_eq!(a.fraction_above(1024), combined.fraction_above(1024),);
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut h = LogHistogram::new();
        h.record_all([5, 9, 1000]);
        let snapshot = h.clone();
        h.merge(&LogHistogram::new());
        assert_eq!(h, snapshot, "merging an empty histogram changes nothing");

        let mut empty = LogHistogram::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot, "merging into an empty histogram copies");
    }

    #[test]
    fn compact_form_round_trips_including_percentiles() {
        let mut h = LogHistogram::new();
        h.record_all([0, 1, 7, 7, 300, 70_000, u64::MAX]);
        let compact = h.to_compact();
        assert_eq!(compact.buckets.len(), h.non_empty_buckets().len());
        let back = LogHistogram::from_compact(&compact).expect("valid compact form");
        assert_eq!(back, h);
        for p in [1.0, 50.0, 99.0] {
            assert_eq!(back.percentile(p), h.percentile(p), "p{p}");
        }
        // JSON round trip through the serialized wire form too.
        let json = serde_json::to_string(&compact).unwrap();
        let parsed: CompactHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(LogHistogram::from_compact(&parsed).unwrap(), h);
    }

    #[test]
    fn compact_form_of_empty_histogram_round_trips() {
        let h = LogHistogram::new();
        let c = h.to_compact();
        assert!(c.buckets.is_empty());
        assert_eq!(c.min, 0, "empty sentinel min is not leaked to the wire");
        assert_eq!(LogHistogram::from_compact(&c).unwrap(), h);
    }

    #[test]
    fn from_compact_rejects_corrupt_forms() {
        let mut c = LogHistogram::new().to_compact();
        c.buckets.push(CompactBucket { idx: 70, n: 1 });
        c.count = 1;
        assert!(
            LogHistogram::from_compact(&c).is_err(),
            "index out of range"
        );

        let mut h = LogHistogram::new();
        h.record(9);
        let mut c = h.to_compact();
        c.count = 5;
        assert!(
            LogHistogram::from_compact(&c).is_err(),
            "bucket mass must match count"
        );
    }

    #[test]
    fn linear_histogram_places_values() {
        let mut h = LinearHistogram::new(0.0, 10.0, 10);
        h.record(-1.0);
        h.record(0.0);
        h.record(5.5);
        h.record(9.999);
        h.record(10.0);
        let (buckets, below, above) = h.buckets();
        assert_eq!(below, 1);
        assert_eq!(above, 1);
        assert_eq!(buckets[0], (0.5, 1));
        assert_eq!(buckets[5], (5.5, 1));
        assert_eq!(buckets[9], (9.5, 1));
        assert_eq!(h.count(), 5);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn linear_histogram_rejects_bad_bounds() {
        LinearHistogram::new(5.0, 5.0, 10);
    }
}
