//! Named counters and gauges with lock-free hot paths.
//!
//! A [`MetricRegistry`] hands out cloneable [`Counter`] / [`Gauge`] handles
//! keyed by name. Handles are fetched once at setup time (the registry
//! lookup takes a lock) and then incremented lock-free from any thread —
//! each handle is an `Arc<Atomic*>` shared with the registry, so a
//! [`MetricsSnapshot`] always sees the latest values.
//!
//! Naming convention used across the workspace: `snake_case.dotted` — a
//! lowercase `<subsystem>` prefix, a dot, and a lowercase `snake_case`
//! metric name, e.g. `engine.cache_hits`, `sim.evictions`,
//! `analysis.gap_us` (see the crate-root docs and the README's
//! Observability section). [`is_canonical_metric_name`] is the machine
//! check; the registry debug-asserts it on every registration. Renamed
//! metrics keep their legacy spelling for one release via
//! [`MetricRegistry::alias`], which mirrors the canonical value into
//! snapshots under the old name with kind `"alias"`.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

/// Monotonic counter. Cloning shares the underlying cell.
#[derive(Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed value (queue depth, thread count…).
#[derive(Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, d: i64) {
        self.cell.fetch_add(d, Ordering::Relaxed);
    }

    pub fn value(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

enum Cell {
    Counter(Counter),
    Gauge(Gauge),
}

/// Whether `name` follows the workspace metric naming convention:
/// dot-separated lowercase `snake_case` segments with a subsystem prefix
/// (at least two segments), each starting with a letter —
/// `engine.cache_hits` yes, `workerPanics`, `Engine.hits`, or a bare
/// `worker_panics` no.
pub fn is_canonical_metric_name(name: &str) -> bool {
    name.contains('.')
        && name.split('.').all(|seg| {
            seg.chars().next().is_some_and(|c| c.is_ascii_lowercase())
                && seg
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

/// Registry of named metrics. `counter`/`gauge` are get-or-create: two
/// callers asking for the same name share one cell.
#[derive(Default)]
pub struct MetricRegistry {
    cells: Mutex<Vec<(String, Cell)>>,
    /// `(legacy, canonical)` pairs mirrored into snapshots.
    aliases: Mutex<Vec<(String, String)>>,
}

impl MetricRegistry {
    pub fn new() -> MetricRegistry {
        MetricRegistry::default()
    }

    /// Keep `legacy` visible in snapshots as an alias of `canonical` (one
    /// release of grace for renamed metrics). The alias resolves at
    /// snapshot time, so it works whether or not `canonical` is registered
    /// yet; unresolved aliases are simply omitted.
    pub fn alias(&self, legacy: &str, canonical: &str) {
        debug_assert!(
            is_canonical_metric_name(canonical),
            "alias target {canonical:?} must itself be canonical"
        );
        let mut aliases = self.aliases.lock().unwrap_or_else(|e| e.into_inner());
        if !aliases.iter().any(|(l, _)| l == legacy) {
            aliases.push((legacy.to_string(), canonical.to_string()));
        }
    }

    /// Get or create the counter named `name`. Panics if `name` already
    /// names a gauge.
    pub fn counter(&self, name: &str) -> Counter {
        debug_assert!(
            is_canonical_metric_name(name),
            "metric name {name:?} violates the snake_case.dotted convention"
        );
        let mut cells = self.cells.lock().unwrap_or_else(|e| e.into_inner());
        for (n, c) in cells.iter() {
            if n == name {
                match c {
                    Cell::Counter(c) => return c.clone(),
                    Cell::Gauge(_) => panic!("metric {name:?} is registered as a gauge"),
                }
            }
        }
        let counter = Counter::new();
        cells.push((name.to_string(), Cell::Counter(counter.clone())));
        counter
    }

    /// Get or create the gauge named `name`. Panics if `name` already
    /// names a counter.
    pub fn gauge(&self, name: &str) -> Gauge {
        debug_assert!(
            is_canonical_metric_name(name),
            "metric name {name:?} violates the snake_case.dotted convention"
        );
        let mut cells = self.cells.lock().unwrap_or_else(|e| e.into_inner());
        for (n, c) in cells.iter() {
            if n == name {
                match c {
                    Cell::Gauge(g) => return g.clone(),
                    Cell::Counter(_) => panic!("metric {name:?} is registered as a counter"),
                }
            }
        }
        let gauge = Gauge::new();
        cells.push((name.to_string(), Cell::Gauge(gauge.clone())));
        gauge
    }

    /// Current value of a counter, or `None` if no counter has that name.
    /// Convenience for tests and invariant checks.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        let cells = self.cells.lock().unwrap_or_else(|e| e.into_inner());
        cells.iter().find_map(|(n, c)| match c {
            Cell::Counter(c) if n == name => Some(c.value()),
            _ => None,
        })
    }

    /// Point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let cells = self.cells.lock().unwrap_or_else(|e| e.into_inner());
        let mut entries: Vec<MetricEntry> = cells
            .iter()
            .map(|(name, cell)| match cell {
                Cell::Counter(c) => MetricEntry {
                    name: name.clone(),
                    kind: "counter".to_string(),
                    value: c.value() as i64,
                },
                Cell::Gauge(g) => MetricEntry {
                    name: name.clone(),
                    kind: "gauge".to_string(),
                    value: g.value(),
                },
            })
            .collect();
        let aliases = self.aliases.lock().unwrap_or_else(|e| e.into_inner());
        for (legacy, canonical) in aliases.iter() {
            let Some((_, cell)) = cells.iter().find(|(n, _)| n == canonical) else {
                continue;
            };
            entries.push(MetricEntry {
                name: legacy.clone(),
                kind: "alias".to_string(),
                value: match cell {
                    Cell::Counter(c) => c.value() as i64,
                    Cell::Gauge(g) => g.value(),
                },
            });
        }
        // Sort by (name, kind): the name alone is not a total order because
        // an alias may share its name with a differently-spelled canonical
        // metric registered later, and a registration-order tie-break would
        // make sidecar diffs (and the BENCH trajectory files built from
        // them) depend on which thread touched the registry first.
        entries.sort_by(|a, b| a.name.cmp(&b.name).then_with(|| a.kind.cmp(&b.kind)));
        MetricsSnapshot { entries }
    }
}

/// One metric in a snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricEntry {
    pub name: String,
    pub kind: String,
    pub value: i64,
}

/// Immutable point-in-time view of a registry, sorted by metric name.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct MetricsSnapshot {
    pub entries: Vec<MetricEntry>,
}

impl MetricsSnapshot {
    pub fn get(&self, name: &str) -> Option<i64> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.value)
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Plain-text exposition, one `name value` line per metric.
    pub fn to_text(&self) -> String {
        let width = self.entries.iter().map(|e| e.name.len()).max().unwrap_or(0);
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&format!("{:<width$}  {}\n", e.name, e.value, width = width));
        }
        out
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot render")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_handles_share_one_cell() {
        let reg = MetricRegistry::new();
        let a = reg.counter("x.hits");
        let b = reg.counter("x.hits");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter_value("x.hits"), Some(3));
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let reg = MetricRegistry::new();
        let c = reg.counter("x.n");
        thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 80_000);
    }

    #[test]
    fn snapshot_is_sorted_and_typed() {
        let reg = MetricRegistry::new();
        reg.counter("b.count").add(7);
        reg.gauge("a.depth").set(-3);
        let snap = reg.snapshot();
        assert_eq!(snap.entries[0].name, "a.depth");
        assert_eq!(snap.entries[0].kind, "gauge");
        assert_eq!(snap.entries[1].name, "b.count");
        assert_eq!(snap.get("b.count"), Some(7));
        assert_eq!(snap.get("a.depth"), Some(-3));
        assert!(snap.to_text().contains("a.depth"));
    }

    #[test]
    #[should_panic(expected = "registered as a gauge")]
    fn name_collision_across_kinds_panics() {
        let reg = MetricRegistry::new();
        reg.gauge("x.v");
        reg.counter("x.v");
    }

    #[test]
    fn canonical_name_check_matches_the_convention() {
        for good in [
            "engine.cache_hits",
            "sim.evictions",
            "analysis.gap_us",
            "a.b.c_2",
        ] {
            assert!(is_canonical_metric_name(good), "{good}");
        }
        for bad in [
            "worker_panics",   // no subsystem prefix
            "Engine.hits",     // uppercase
            "engine.cacheHit", // camelCase
            "engine..hits",    // empty segment
            ".hits",
            "engine.",
            "",
            "engine.2fast", // segment starts with a digit
        ] {
            assert!(!is_canonical_metric_name(bad), "{bad}");
        }
    }

    #[test]
    fn aliases_mirror_the_canonical_value_in_snapshots() {
        let reg = MetricRegistry::new();
        reg.counter("engine.worker_panics").add(4);
        reg.alias("worker_panics", "engine.worker_panics");
        reg.alias("ghost", "engine.never_registered");
        let snap = reg.snapshot();
        assert_eq!(snap.get("worker_panics"), Some(4));
        assert_eq!(
            snap.entries
                .iter()
                .find(|e| e.name == "worker_panics")
                .map(|e| e.kind.as_str()),
            Some("alias")
        );
        assert_eq!(snap.get("ghost"), None, "unresolved aliases are omitted");
        assert_eq!(snap.get("engine.worker_panics"), Some(4));
    }

    #[test]
    fn snapshot_order_is_independent_of_registration_order() {
        // Regression test for sidecar / BENCH stability: two registries fed
        // the same metrics in different orders (as racing threads would)
        // must render byte-identical snapshots.
        let a = MetricRegistry::new();
        a.counter("engine.fetches").add(3);
        a.gauge("engine.queue_depth").set(2);
        a.counter("engine.retries").add(1);
        a.alias("fetches", "engine.fetches");

        let b = MetricRegistry::new();
        b.alias("fetches", "engine.fetches");
        b.counter("engine.retries").add(1);
        b.gauge("engine.queue_depth").set(2);
        b.counter("engine.fetches").add(3);

        assert_eq!(a.snapshot().to_json(), b.snapshot().to_json());
        assert_eq!(a.snapshot().to_text(), b.snapshot().to_text());

        let names: Vec<String> = a
            .snapshot()
            .entries
            .iter()
            .map(|e| e.name.clone())
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "entries render in sorted-name order");
    }

    #[test]
    fn snapshot_json_parses_back() {
        let reg = MetricRegistry::new();
        reg.counter("engine.fetches").add(5);
        let v: serde_json::Value = serde_json::from_str(&reg.snapshot().to_json()).unwrap();
        assert_eq!(v["entries"][0]["name"].as_str().unwrap(), "engine.fetches");
        assert_eq!(v["entries"][0]["value"].as_i64().unwrap(), 5);
    }
}
