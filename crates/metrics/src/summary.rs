//! Streaming summaries: mean, variance, percentiles, EWMA.

use serde::{Deserialize, Serialize};

/// An accumulating summary of `f64` observations. Stores the observations
/// (experiments here are bounded), so exact percentiles are available.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    values: Vec<f64>,
    sorted: bool,
}

impl Summary {
    pub fn new() -> Summary {
        Summary::default()
    }

    pub fn record(&mut self, v: f64) {
        debug_assert!(v.is_finite(), "summaries only accept finite values");
        self.values.push(v);
        self.sorted = false;
    }

    pub fn record_all<I: IntoIterator<Item = f64>>(&mut self, vs: I) {
        for v in vs {
            self.record(v);
        }
    }

    pub fn count(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.sum() / self.values.len() as f64
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        if self.values.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var =
            self.values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / self.values.len() as f64;
        var.sqrt()
    }

    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Exact percentile via nearest-rank on the sorted data; `p` in `[0,100]`.
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        if self.values.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
            self.sorted = true;
        }
        let rank = ((p / 100.0) * (self.values.len() as f64 - 1.0)).round() as usize;
        self.values[rank]
    }

    /// Coefficient of variation (σ/μ); 0 for degenerate inputs.
    pub fn cov(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m
        }
    }

    /// Borrow the raw observations.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// Exponentially weighted moving average — the adaptive runtime's estimator
/// for stage durations (the paper re-plans "with adjustable frequency"; an
/// EWMA gives it a stable signal).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// `alpha` in `(0, 1]`: weight of the newest observation.
    pub fn new(alpha: f64) -> Ewma {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        Ewma { alpha, value: None }
    }

    pub fn record(&mut self, v: f64) {
        self.value = Some(match self.value {
            None => v,
            Some(prev) => self.alpha * v + (1.0 - self.alpha) * prev,
        });
    }

    pub fn value(&self) -> Option<f64> {
        self.value
    }

    pub fn value_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev_are_exact() {
        let mut s = Summary::new();
        s.record_all([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.std_dev(), 2.0);
        assert_eq!(s.count(), 8);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut s = Summary::new();
        s.record_all((1..=100).map(|i| i as f64));
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(50.0), 51.0); // nearest rank on 0-indexed 99 range
        assert_eq!(s.percentile(100.0), 100.0);
    }

    #[test]
    fn percentile_after_more_records_resorts() {
        let mut s = Summary::new();
        s.record_all([3.0, 1.0]);
        assert_eq!(s.percentile(100.0), 3.0);
        s.record(10.0);
        assert_eq!(s.percentile(100.0), 10.0);
    }

    #[test]
    fn empty_summary_is_zeroish() {
        let mut s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.percentile(50.0), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn cov_normalizes_spread() {
        let mut a = Summary::new();
        a.record_all([10.0, 10.0, 10.0]);
        assert_eq!(a.cov(), 0.0);
        let mut b = Summary::new();
        b.record_all([5.0, 15.0]);
        assert!(b.cov() > 0.4);
    }

    #[test]
    fn ewma_converges_toward_signal() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        e.record(10.0);
        assert_eq!(e.value(), Some(10.0));
        e.record(20.0);
        assert_eq!(e.value(), Some(15.0));
        for _ in 0..50 {
            e.record(20.0);
        }
        assert!((e.value().unwrap() - 20.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        Ewma::new(0.0);
    }
}
