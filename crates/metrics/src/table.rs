//! Plain-text table rendering for experiment reports.
//!
//! The bench binaries print the same rows the paper's tables/figures report;
//! this keeps the output aligned and diff-friendly without pulling in a
//! terminal UI dependency.

/// A simple left-aligned-first-column, right-aligned-rest ASCII table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells);
        self
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string with a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    line.push_str(&format!("{:<width$}", c, width = widths[0]));
                } else {
                    line.push_str(&format!("  {:>width$}", c, width = widths[i]));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Format seconds with automatic unit choice.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

/// Format a ratio as "1.53x".
pub fn fmt_speedup(r: f64) -> String {
    format!("{r:.2}x")
}

/// Format a fraction as a percentage.
pub fn fmt_pct(f: f64) -> String {
    format!("{:.1}%", f * 100.0)
}

/// Format a byte count with binary units.
pub fn fmt_bytes(b: f64) -> String {
    const UNITS: [&str; 6] = ["B", "KiB", "MiB", "GiB", "TiB", "PiB"];
    let mut v = b;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    format!("{v:.1}{}", UNITS[u])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(["loader", "epoch", "speedup"]);
        t.row(["pytorch", "12.00s", "1.00x"]);
        t.row(["lobster", "6.10s", "1.97x"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("loader"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // All data lines have equal length.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn formatters_pick_units() {
        assert_eq!(fmt_secs(2.5), "2.50s");
        assert_eq!(fmt_secs(0.0025), "2.50ms");
        assert_eq!(fmt_secs(2.5e-6), "2.5us");
        assert_eq!(fmt_speedup(1.534), "1.53x");
        assert_eq!(fmt_pct(0.632), "63.2%");
        assert_eq!(fmt_bytes(1536.0), "1.5KiB");
        assert_eq!(fmt_bytes(40e9), "37.3GiB");
        assert_eq!(fmt_bytes(12.0), "12.0B");
    }
}
