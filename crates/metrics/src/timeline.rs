//! Offline timeline reconstruction: Chrome trace events back into
//! per-iteration, per-GPU stage attribution.
//!
//! The tracer exports Chrome trace-event JSON (one document or JSONL); this
//! module parses either form back into [`ParsedEvent`]s and rebuilds the
//! structures the online analyzer consumes, so `lobster_doctor` can run the
//! exact same attribution pipeline on a file that [`crate::analysis`] runs
//! live inside the engine.
//!
//! Reconstruction anchors on the two event families *every* instrumented
//! producer emits with an `iter` argument — `train` spans and
//! `barrier_wait` spans, keyed by `(pid, tid)` = (node, GPU):
//!
//! * a GPU's *arrival* at iteration `h` is its `barrier_wait` start (it
//!   arrives when its own pipeline and training are done; the straggler is
//!   the last arrival);
//! * its effective iteration seconds are `arrival − iteration start`, where
//!   the iteration starts at the previous iteration's latest barrier end
//!   (iteration 0 starts at the trace origin).
//!
//! Fetch/preprocess spans carry no iteration id in general (the live
//! engine's are emitted by worker threads); they are attributed to the
//! iteration whose time window contains their start, and blamed per the
//! rules in [`crate::analysis`]: a fetch span with per-tier counts (the
//! simulator's) is blamed on the slowest tier present; a fetch span with a
//! `tier` string (the engine's) maps `cache → local`, `store → pfs`.

use std::collections::BTreeMap;

use crate::analysis::{BlameCategory, GpuIterSample, StageSample};
use crate::histogram::LogHistogram;

/// An owned, parsed trace event (names are `String`s here; the recording
/// side uses `&'static str` to stay allocation-free).
#[derive(Debug, Clone)]
pub struct ParsedEvent {
    pub name: String,
    pub cat: String,
    pub ts_us: u64,
    /// `Some` for spans (`ph == "X"`), `None` for instants.
    pub dur_us: Option<u64>,
    pub pid: u32,
    pub tid: u32,
    pub args: serde_json::Value,
}

impl ParsedEvent {
    /// Numeric argument lookup (u64-valued args).
    pub fn arg_u(&self, key: &str) -> Option<u64> {
        self.args[key].as_u64()
    }

    /// String argument lookup.
    pub fn arg_s(&self, key: &str) -> Option<&str> {
        self.args[key].as_str()
    }
}

/// Why a trace file could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimelineError {
    /// Input was neither a `{"traceEvents": []}` document nor JSONL.
    Malformed(String),
    /// Parsed fine but held zero events.
    Empty,
}

impl std::fmt::Display for TimelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimelineError::Malformed(m) => write!(f, "malformed trace: {m}"),
            TimelineError::Empty => write!(f, "trace contains no events"),
        }
    }
}

impl std::error::Error for TimelineError {}

fn event_from_value(v: &serde_json::Value) -> Option<ParsedEvent> {
    let name = v["name"].as_str()?.to_string();
    let cat = v["cat"].as_str().unwrap_or("").to_string();
    let ts_us = v["ts"].as_u64()?;
    let dur_us = match v["ph"].as_str()? {
        "X" => Some(v["dur"].as_u64().unwrap_or(0)),
        _ => None,
    };
    Some(ParsedEvent {
        name,
        cat,
        ts_us,
        dur_us,
        pid: v["pid"].as_u64().unwrap_or(0) as u32,
        tid: v["tid"].as_u64().unwrap_or(0) as u32,
        args: v["args"].clone(),
    })
}

/// Parse a trace in either export format: a Chrome trace-event document
/// (`{"traceEvents": [...]}`) or JSONL (one event object per line). Events
/// come back sorted by timestamp.
pub fn parse_trace(text: &str) -> Result<Vec<ParsedEvent>, TimelineError> {
    let trimmed = text.trim_start();
    let mut events = Vec::new();
    if trimmed.starts_with('{') && trimmed.contains("traceEvents") {
        let doc: serde_json::Value = serde_json::from_str(text)
            .map_err(|e| TimelineError::Malformed(format!("document: {e:?}")))?;
        let list = doc["traceEvents"]
            .as_array()
            .ok_or_else(|| TimelineError::Malformed("traceEvents is not an array".into()))?;
        for v in list {
            if let Some(e) = event_from_value(v) {
                events.push(e);
            }
        }
    } else {
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let v: serde_json::Value = serde_json::from_str(line)
                .map_err(|e| TimelineError::Malformed(format!("line {}: {e:?}", i + 1)))?;
            if let Some(e) = event_from_value(&v) {
                events.push(e);
            }
        }
    }
    if events.is_empty() {
        return Err(TimelineError::Empty);
    }
    events.sort_by_key(|e| e.ts_us);
    Ok(events)
}

/// One iteration reconstructed from a trace: the per-GPU samples the online
/// analyzer would have seen.
#[derive(Debug, Clone)]
pub struct IterationSlice {
    pub iter: u64,
    pub per_gpu: Vec<GpuIterSample>,
    /// Latest barrier-wait end across GPUs, µs (the iteration boundary).
    pub end_us: u64,
}

/// Cache behaviour at one point of the run (from `cache` instants or, when
/// absent, windows of engine fetch spans).
#[derive(Debug, Clone, Copy)]
pub struct CachePoint {
    pub ts_us: u64,
    pub local_hits: u64,
    pub remote_hits: u64,
    pub misses: u64,
}

impl CachePoint {
    pub fn hit_ratio(&self) -> f64 {
        let total = self.local_hits + self.remote_hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.local_hits as f64 / total as f64
        }
    }
}

/// Everything the doctor needs, reconstructed from one trace.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    pub iterations: Vec<IterationSlice>,
    /// Fetch latency histograms (µs) keyed by blame tier label.
    pub fetch_us_by_tier: BTreeMap<&'static str, LogHistogram>,
    /// Cache hit trajectory in event order.
    pub cache_points: Vec<CachePoint>,
    /// Counts of `cat == "fault"` instants by event name.
    pub fault_counts: BTreeMap<String, u64>,
    /// `controller_decision` instants (ts, evals, converged).
    pub decision_instants: Vec<(u64, u64, bool)>,
    /// Straggler instants recorded by the online analyzer, if present.
    pub straggler_instants: Vec<ParsedEvent>,
    /// Events whose name the reconstruction does not interpret.
    pub unrecognized: u64,
}

/// Blame tier of a fetch span, per the documented rules.
fn fetch_blame(e: &ParsedEvent) -> BlameCategory {
    // Simulator form: per-tier counts; blame the slowest tier present.
    if e.arg_u("pfs").is_some() || e.arg_u("remote").is_some() || e.arg_u("local").is_some() {
        if e.arg_u("pfs").unwrap_or(0) > 0 {
            return BlameCategory::PfsFetch;
        }
        if e.arg_u("remote").unwrap_or(0) > 0 {
            return BlameCategory::RemoteFetch;
        }
        return BlameCategory::LocalFetch;
    }
    // Engine form: a tier string.
    match e.arg_s("tier") {
        Some("cache") => BlameCategory::LocalFetch,
        Some("remote") => BlameCategory::RemoteFetch,
        _ => BlameCategory::PfsFetch,
    }
}

struct GpuAccum {
    /// iter -> (arrival ts, barrier end ts, train dur)
    arrivals: BTreeMap<u64, (u64, u64, u64)>,
    /// Uninterpreted stage spans: (start, category, dur).
    stage_spans: Vec<(u64, BlameCategory, u64)>,
}

impl GpuAccum {
    fn new() -> GpuAccum {
        GpuAccum {
            arrivals: BTreeMap::new(),
            stage_spans: Vec::new(),
        }
    }
}

impl Timeline {
    /// Rebuild the run's per-iteration structure from parsed events.
    pub fn build(events: &[ParsedEvent]) -> Timeline {
        let mut tl = Timeline::default();
        let mut gpus: BTreeMap<(u32, u32), GpuAccum> = BTreeMap::new();

        for e in events {
            match e.name.as_str() {
                "barrier_wait" => {
                    let iter = e.arg_u("iter").unwrap_or(0);
                    let end = e.ts_us + e.dur_us.unwrap_or(0);
                    let slot = gpus
                        .entry((e.pid, e.tid))
                        .or_insert_with(GpuAccum::new)
                        .arrivals
                        .entry(iter)
                        .or_insert((e.ts_us, end, 0));
                    // Authoritative: a `train` placeholder may already be
                    // here (sorted order puts training first).
                    slot.0 = e.ts_us;
                    slot.1 = end;
                }
                "train" => {
                    let iter = e.arg_u("iter").unwrap_or(0);
                    let dur = e.dur_us.unwrap_or(0);
                    let acc = gpus.entry((e.pid, e.tid)).or_insert_with(GpuAccum::new);
                    // Placeholder arrival = training end, for traces
                    // lacking barrier events; overwritten by barrier_wait.
                    let slot =
                        acc.arrivals
                            .entry(iter)
                            .or_insert((e.ts_us + dur, e.ts_us + dur, 0));
                    slot.2 = dur;
                }
                "fetch" => {
                    let blame = fetch_blame(e);
                    let dur = e.dur_us.unwrap_or(0);
                    tl.fetch_us_by_tier
                        .entry(blame.tier().unwrap_or("pfs"))
                        .or_default()
                        .record(dur);
                    gpus.entry((e.pid, e.tid))
                        .or_insert_with(GpuAccum::new)
                        .stage_spans
                        .push((e.ts_us, blame, dur));
                    // Engine fetch spans double as cache-behaviour samples.
                    if let Some(tier) = e.arg_s("tier") {
                        let hit = tier == "cache";
                        tl.cache_points.push(CachePoint {
                            ts_us: e.ts_us,
                            local_hits: hit as u64,
                            remote_hits: 0,
                            misses: !hit as u64,
                        });
                    }
                }
                "preprocess" => {
                    gpus.entry((e.pid, e.tid))
                        .or_insert_with(GpuAccum::new)
                        .stage_spans
                        .push((e.ts_us, BlameCategory::Preprocess, e.dur_us.unwrap_or(0)));
                }
                "cache" => {
                    tl.cache_points.push(CachePoint {
                        ts_us: e.ts_us,
                        local_hits: e.arg_u("local_hits").unwrap_or(0),
                        remote_hits: e.arg_u("remote_hits").unwrap_or(0),
                        misses: e.arg_u("misses").unwrap_or(0),
                    });
                }
                "controller_decision" => {
                    tl.decision_instants.push((
                        e.ts_us,
                        e.arg_u("evals").unwrap_or(0),
                        e.arg_u("converged").unwrap_or(0) != 0,
                    ));
                }
                "straggler_detected" => tl.straggler_instants.push(e.clone()),
                name if e.cat == "fault" => {
                    *tl.fault_counts.entry(name.to_string()).or_insert(0) += 1;
                }
                "queue_enqueue" | "queue_dequeue" | "queue_depth" | "evict" | "config_warning"
                | "analysis_gap" => {}
                _ => tl.unrecognized += 1,
            }
        }

        tl.build_iterations(&gpus);
        tl
    }

    fn build_iterations(&mut self, gpus: &BTreeMap<(u32, u32), GpuAccum>) {
        // Union of iteration ids across GPUs.
        let mut iters: Vec<u64> = gpus
            .values()
            .flat_map(|g| g.arrivals.keys().copied())
            .collect();
        iters.sort_unstable();
        iters.dedup();

        let mut iter_start_us = 0u64;
        for &h in &iters {
            let mut per_gpu = Vec::new();
            let mut end_us = iter_start_us;
            for (&(pid, tid), acc) in gpus {
                let Some(&(arrival, barrier_end, train_dur)) = acc.arrivals.get(&h) else {
                    continue;
                };
                end_us = end_us.max(barrier_end);
                // Stage spans inside this GPU's iteration window, which runs
                // from the iteration start to this GPU's barrier arrival.
                let mut stages = StageSample::default();
                for &(start, cat, dur) in &acc.stage_spans {
                    if start >= iter_start_us && start < arrival {
                        stages.add(cat, dur as f64 / 1e6);
                    }
                }
                stages.add(BlameCategory::Train, train_dur as f64 / 1e6);
                let barrier_s = (barrier_end.saturating_sub(arrival)) as f64 / 1e6;
                stages.add(BlameCategory::Barrier, barrier_s);
                let iter_s = (arrival.saturating_sub(iter_start_us)) as f64 / 1e6;
                per_gpu.push(GpuIterSample {
                    node: pid,
                    gpu: tid,
                    iter_s,
                    stages,
                });
            }
            self.iterations.push(IterationSlice {
                iter: h,
                per_gpu,
                end_us,
            });
            iter_start_us = end_us;
        }
    }

    /// Total demand accesses seen by the cache trajectory.
    pub fn cache_totals(&self) -> (u64, u64, u64) {
        self.cache_points.iter().fold((0, 0, 0), |acc, p| {
            (
                acc.0 + p.local_hits,
                acc.1 + p.remote_hits,
                acc.2 + p.misses,
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceBuffer, TraceEvent};

    fn two_gpu_trace() -> TraceBuffer {
        let buf = TraceBuffer::new();
        // Iteration 0: GPU 1 is the straggler (PFS-heavy fetch).
        buf.push(
            TraceEvent::span("fetch", "io", 0, 10_000)
                .pid(0)
                .tid(0)
                .arg_u("local", 4)
                .arg_u("pfs", 0),
        );
        buf.push(
            TraceEvent::span("fetch", "io", 0, 80_000)
                .pid(0)
                .tid(1)
                .arg_u("local", 0)
                .arg_u("pfs", 4),
        );
        buf.push(
            TraceEvent::span("preprocess", "compute", 10_000, 5_000)
                .pid(0)
                .tid(0),
        );
        buf.push(
            TraceEvent::span("preprocess", "compute", 80_000, 5_000)
                .pid(0)
                .tid(1),
        );
        buf.push(
            TraceEvent::span("train", "compute", 15_000, 50_000)
                .pid(0)
                .tid(0)
                .arg_u("iter", 0),
        );
        buf.push(
            TraceEvent::span("train", "compute", 85_000, 50_000)
                .pid(0)
                .tid(1)
                .arg_u("iter", 0),
        );
        buf.push(
            TraceEvent::span("barrier_wait", "sync", 65_000, 70_000)
                .pid(0)
                .tid(0)
                .arg_u("iter", 0),
        );
        buf.push(
            TraceEvent::span("barrier_wait", "sync", 135_000, 0)
                .pid(0)
                .tid(1)
                .arg_u("iter", 0),
        );
        buf.push(
            TraceEvent::instant("cache", "cache", 0)
                .pid(0)
                .arg_u("local_hits", 4)
                .arg_u("misses", 4),
        );
        buf
    }

    #[test]
    fn parses_both_document_and_jsonl_forms() {
        let buf = two_gpu_trace();
        let from_doc = parse_trace(&buf.chrome_trace_json()).unwrap();
        let from_jsonl = parse_trace(&buf.jsonl()).unwrap();
        assert_eq!(from_doc.len(), from_jsonl.len());
        assert_eq!(from_doc.len(), buf.len());
        assert!(from_doc.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
    }

    #[test]
    fn rejects_garbage_and_empty_traces() {
        assert!(matches!(
            parse_trace("not json at all"),
            Err(TimelineError::Malformed(_))
        ));
        assert!(
            matches!(
                parse_trace("{\"traceEvents\": []}"),
                Err(TimelineError::Empty)
            ),
            "empty document must be an explicit error"
        );
    }

    #[test]
    fn reconstructs_straggler_and_blame_from_spans() {
        let events = parse_trace(&two_gpu_trace().chrome_trace_json()).unwrap();
        let tl = Timeline::build(&events);
        assert_eq!(tl.iterations.len(), 1);
        let slice = &tl.iterations[0];
        assert_eq!(slice.per_gpu.len(), 2);
        let g0 = slice.per_gpu.iter().find(|g| g.gpu == 0).unwrap();
        let g1 = slice.per_gpu.iter().find(|g| g.gpu == 1).unwrap();
        // GPU 1 arrives at 135 ms, GPU 0 at 65 ms: GPU 1 is slower.
        assert!(g1.iter_s > g0.iter_s);
        assert!((g1.iter_s - 0.135).abs() < 1e-9, "iter_s {}", g1.iter_s);
        // Blame: GPU 1's fetch seconds land on the PFS tier.
        assert!(g1.stages.pfs_fetch_s > 0.07);
        assert_eq!(g1.stages.local_fetch_s, 0.0);
        assert!(g0.stages.local_fetch_s > 0.0);
        // Barrier blame mirrors the wait: GPU 0 waited 70 ms.
        assert!((g0.stages.barrier_s - 0.070).abs() < 1e-9);
        // Histograms filled per tier.
        assert_eq!(tl.fetch_us_by_tier["pfs"].count(), 1);
        assert_eq!(tl.fetch_us_by_tier["local"].count(), 1);
        // Cache instants became a trajectory point.
        assert_eq!(tl.cache_totals(), (4, 0, 4));
    }

    #[test]
    fn parse_eq_timeline_feeds_analyzer_consistently() {
        use crate::analysis::BottleneckAnalyzer;
        let events = parse_trace(&two_gpu_trace().chrome_trace_json()).unwrap();
        let tl = Timeline::build(&events);
        let mut analyzer = BottleneckAnalyzer::default();
        for slice in &tl.iterations {
            analyzer.observe_iteration(slice.iter, &slice.per_gpu);
        }
        let report = analyzer.report();
        assert_eq!(report.top_straggler(), Some((0, 1)));
        assert_eq!(
            report.dominant_category().unwrap().label(),
            "pfs_fetch",
            "PFS fetch dominates the reconstructed pipeline blame"
        );
        assert!((report.first_gap_s - 0.070).abs() < 1e-9);
    }
}
