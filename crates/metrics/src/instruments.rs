//! The [`Instruments`] bundle: one handle carrying the trace buffer, the
//! metric registry, the controller decision log, and the online
//! [`BottleneckAnalyzer`] through a run.
//!
//! Everything in the workspace that can be observed takes an `Instruments`
//! value. The default ([`Instruments::disabled`]) holds nothing: trace
//! closures never run, counter handles are unregistered no-op cells, and
//! decision records are dropped — so un-instrumented runs pay one branch
//! per site. [`Instruments::enabled`] allocates the stores and turns
//! every site on.
//!
//! The analysis facet ([`Instruments::observe_iteration`]) mirrors each
//! iteration's conclusions outward: gauges `analysis.gap_us`,
//! `analysis.ewma_gap_us`, and `analysis.straggler_gpu`, an `analysis_gap`
//! trace instant per iteration, and a `straggler_detected` instant once per
//! flagged episode — so the Eq.-3 gap trend is visible live in the registry
//! and on the Perfetto timeline, not only in the final report.

use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::analysis::{
    AnalysisConfig, AnalysisReport, BottleneckAnalyzer, GpuIterSample, IterationAnalysis,
};
use crate::decisions::{DecisionLog, DecisionRecord};
use crate::histogram::LogHistogram;
use crate::recorder::{
    FlightDump, FlightEvent, FlightRecord, FlightRecorder, FlightTier, DEFAULT_FLIGHT_CAPACITY,
};
use crate::registry::{Counter, Gauge, MetricRegistry, MetricsSnapshot};
use crate::telemetry::{
    evaluate_slos, Anomaly, SloSpec, SloVerdict, TelemetryConfig, TelemetryHub, TelemetryLine,
    TelemetrySnapshot, TickScalars,
};
use crate::trace::{TraceBuffer, TraceEvent, Tracer};

struct Inner {
    buffer: Arc<TraceBuffer>,
    registry: MetricRegistry,
    decisions: DecisionLog,
    analysis: Mutex<BottleneckAnalyzer>,
    flight: FlightRecorder,
    /// Where `flight_dump_to_disk` writes; `None` (the default) means
    /// dumps are built on demand but never touch the filesystem.
    flight_dir: Mutex<Option<PathBuf>>,
    flight_dumps: AtomicU64,
    telemetry: TelemetryHub,
    /// Attached `--telemetry-out` JSONL stream; `None` (the default)
    /// keeps the record path allocation-free.
    telemetry_out: Mutex<Option<std::io::BufWriter<std::fs::File>>>,
}

/// Cloneable observability handle; `None` inside means fully disabled.
#[derive(Clone, Default)]
pub struct Instruments {
    inner: Option<Arc<Inner>>,
}

impl Instruments {
    /// The no-op bundle: nothing is recorded anywhere.
    pub fn disabled() -> Instruments {
        Instruments { inner: None }
    }

    /// A live bundle with a fresh trace buffer, registry, decision log, and
    /// analyzer using the default [`AnalysisConfig`].
    pub fn enabled() -> Instruments {
        Instruments::enabled_with(AnalysisConfig::default())
    }

    /// A live bundle whose analyzer uses `cfg` (straggler thresholds, EWMA
    /// weight).
    pub fn enabled_with(cfg: AnalysisConfig) -> Instruments {
        Instruments {
            inner: Some(Arc::new(Inner {
                buffer: Arc::new(TraceBuffer::new()),
                registry: MetricRegistry::new(),
                decisions: DecisionLog::new(),
                analysis: Mutex::new(BottleneckAnalyzer::new(cfg)),
                flight: FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY),
                flight_dir: Mutex::new(None),
                flight_dumps: AtomicU64::new(0),
                telemetry: TelemetryHub::new(TelemetryConfig::default()),
                telemetry_out: Mutex::new(None),
            })),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A [`Tracer`] recording into this bundle's buffer (or disabled).
    pub fn tracer(&self) -> Tracer {
        match &self.inner {
            Some(inner) => Tracer::with_buffer(Arc::clone(&inner.buffer)),
            None => Tracer::disabled(),
        }
    }

    /// Record the event produced by `make`; the closure only runs when
    /// enabled.
    #[inline]
    pub fn trace<F: FnOnce() -> TraceEvent>(&self, make: F) {
        if let Some(inner) = &self.inner {
            inner.buffer.push(make());
        }
    }

    /// Microseconds since the trace origin; 0 when disabled.
    #[inline]
    pub fn now_us(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.buffer.now_us())
    }

    /// Counter handle for `name`. Disabled bundles hand out a free-floating
    /// cell that is never snapshotted, so call sites can increment
    /// unconditionally.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            Some(inner) => inner.registry.counter(name),
            None => Counter::new(),
        }
    }

    /// Gauge handle for `name`; free-floating when disabled.
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            Some(inner) => inner.registry.gauge(name),
            None => Gauge::new(),
        }
    }

    /// Log a controller decision. Also emits a `controller_decision`
    /// instant into the trace so decisions appear on the same timeline as
    /// the I/O events they react to, joins the decision into the
    /// analyzer's solver-efficacy table (gap before / gap after), and
    /// stamps `anomalies_before` with the telemetry hub's running anomaly
    /// count so every decision carries the anomaly state that preceded it.
    pub fn record_decision(&self, mut record: DecisionRecord) {
        if let Some(inner) = &self.inner {
            record.anomalies_before = inner.telemetry.anomaly_count().min(u32::MAX as u64) as u32;
            inner.buffer.push(
                TraceEvent::instant("controller_decision", "control", record.ts_us)
                    .pid(record.node)
                    .arg_u(
                        "threads",
                        record.threads_after.iter().map(|&t| t as u64).sum(),
                    )
                    .arg_u("evals", record.evals as u64)
                    .arg_u("converged", record.converged as u64),
            );
            inner
                .analysis
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .note_decision(&record);
            inner.decisions.push(record);
        }
    }

    /// Feed one iteration's per-GPU samples into the online analyzer; the
    /// closure only runs when the bundle is enabled. `ts_us` stamps the
    /// mirrored trace instants (wall-clock µs for the runtime, simulated µs
    /// for the DES). Returns what the analyzer concluded, or `None` when
    /// disabled.
    pub fn observe_iteration<F: FnOnce() -> Vec<GpuIterSample>>(
        &self,
        iter: u64,
        ts_us: u64,
        make: F,
    ) -> Option<IterationAnalysis> {
        let inner = self.inner.as_ref()?;
        let samples = make();
        let out = inner
            .analysis
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .observe_iteration(iter, &samples);
        inner
            .registry
            .gauge("analysis.gap_us")
            .set((out.gap_s * 1e6) as i64);
        inner
            .registry
            .gauge("analysis.ewma_gap_us")
            .set((out.ewma_gap_s * 1e6) as i64);
        inner.buffer.push(
            TraceEvent::instant("analysis_gap", "analysis", ts_us)
                .arg_u("iter", iter)
                .arg_u("gap_us", (out.gap_s * 1e6) as u64)
                .arg_u("ewma_gap_us", (out.ewma_gap_s * 1e6) as u64),
        );
        if let Some(ep) = &out.flagged {
            inner.registry.counter("analysis.straggler_episodes").inc();
            inner
                .registry
                .gauge("analysis.straggler_gpu")
                .set(((ep.node as i64) << 16) | ep.gpu as i64);
            inner.buffer.push(
                TraceEvent::instant("straggler_detected", "analysis", ts_us)
                    .pid(ep.node)
                    .tid(ep.gpu)
                    .arg_u("iter", iter)
                    .arg_u("from_iter", ep.from_iter)
                    .arg_f("mean_share", ep.mean_share)
                    .arg_s("dominant", ep.dominant.label()),
            );
        }
        Some(out)
    }

    /// Everything the online analyzer learned so far; `None` when disabled.
    pub fn analysis_report(&self) -> Option<AnalysisReport> {
        self.inner.as_ref().map(|i| {
            i.analysis
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .report()
        })
    }

    /// Register a legacy metric name as a snapshot alias of a canonical
    /// one; no-op when disabled.
    pub fn metric_alias(&self, legacy: &str, canonical: &str) {
        if let Some(inner) = &self.inner {
            inner.registry.alias(legacy, canonical);
        }
    }

    /// Decisions logged so far (empty when disabled).
    pub fn decisions(&self) -> Vec<DecisionRecord> {
        self.inner
            .as_ref()
            .map(|i| i.decisions.snapshot())
            .unwrap_or_default()
    }

    /// Point-in-time metric values (empty when disabled).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.inner
            .as_ref()
            .map(|i| i.registry.snapshot())
            .unwrap_or_default()
    }

    /// Chrome trace-event JSON document; `None` when disabled.
    pub fn chrome_trace_json(&self) -> Option<String> {
        self.inner.as_ref().map(|i| i.buffer.chrome_trace_json())
    }

    /// Decision log as JSONL; `None` when disabled.
    pub fn decisions_jsonl(&self) -> Option<String> {
        self.inner.as_ref().map(|i| i.decisions.jsonl())
    }

    /// Trace events dropped due to buffer bounds (0 when disabled).
    pub fn trace_dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.buffer.dropped())
    }

    // ---- Flight recorder facet (DESIGN.md §12) ----

    /// Record a flight event; the closure only runs when enabled. The
    /// enabled path is allocation-free (wait-free slot claim, `Copy`
    /// store), so it is safe on the engine's per-batch hot path.
    #[inline]
    pub fn flight<F: FnOnce() -> FlightEvent>(&self, make: F) {
        if let Some(inner) = &self.inner {
            inner.flight.record(inner.buffer.now_us(), make());
        }
    }

    /// Fold one fetch latency into the flight recorder's per-tier
    /// aggregate histogram; allocation-free, no-op when disabled.
    #[inline]
    pub fn flight_fetch_us(&self, tier: FlightTier, us: u64) {
        if let Some(inner) = &self.inner {
            inner.flight.record_fetch_us(tier, us);
        }
    }

    /// Merge a per-thread latency histogram into the tier aggregate at
    /// barrier time; no-op when disabled.
    pub fn flight_merge_tier(&self, tier: FlightTier, h: &LogHistogram) {
        if let Some(inner) = &self.inner {
            inner.flight.merge_tier(tier, h);
        }
    }

    /// The retained flight events in seq order (empty when disabled).
    pub fn flight_snapshot(&self) -> Vec<FlightRecord> {
        self.inner
            .as_ref()
            .map(|i| i.flight.snapshot())
            .unwrap_or_default()
    }

    /// Flight events ever recorded (0 when disabled).
    pub fn flight_recorded(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.flight.total_recorded())
    }

    /// Configure where [`Instruments::flight_dump_to_disk`] writes;
    /// no-op when disabled.
    pub fn set_flight_dir<P: Into<PathBuf>>(&self, dir: P) {
        if let Some(inner) = &self.inner {
            *inner.flight_dir.lock().unwrap_or_else(|e| e.into_inner()) = Some(dir.into());
        }
    }

    /// Build the flight dump for `trigger`; `None` when disabled.
    pub fn flight_dump(&self, trigger: &str) -> Option<FlightDump> {
        self.inner.as_ref().map(|i| i.flight.dump(trigger))
    }

    /// Build and write a `flightdump_<trigger>_<n>.json` under the
    /// configured flight dir. `None` when disabled, when no dir was
    /// configured, or when the write fails — dumping is a best-effort
    /// last act and must never panic a teardown path.
    pub fn flight_dump_to_disk(&self, trigger: &str) -> Option<PathBuf> {
        let inner = self.inner.as_ref()?;
        let dir = inner
            .flight_dir
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()?;
        let ordinal = inner.flight_dumps.fetch_add(1, Ordering::Relaxed);
        inner.flight.dump(trigger).write_to(&dir, ordinal).ok()
    }

    // ---- Telemetry facet (DESIGN.md §14) ----

    /// Fold one fetch latency into the current telemetry tick's per-tier
    /// histogram; allocation-free, no-op when disabled. Sits beside
    /// [`flight_fetch_us`](Self::flight_fetch_us) on the fetch path (the
    /// flight histogram is whole-run, this one is per-tick).
    #[inline]
    pub fn telemetry_fetch_us(&self, tier: FlightTier, us: u64) {
        if let Some(inner) = &self.inner {
            inner.telemetry.record_fetch_us(tier, us);
        }
    }

    /// Record one telemetry tick (consumer 0 post-barrier / one sim
    /// tick): frame into the rings, rollup cascade, online detector bank.
    /// Each fired anomaly is mirrored into the flight recorder and — when
    /// a stream is attached — onto the `--telemetry-out` JSONL feed along
    /// with the frame itself. Returns the number of anomalies fired (0
    /// when disabled). Without a stream attached the enabled path is
    /// allocation-free in steady state.
    pub fn record_tick(&self, scalars: TickScalars) -> u64 {
        let Some(inner) = &self.inner else {
            return 0;
        };
        let ts_us = inner.buffer.now_us();
        let mut out = inner
            .telemetry_out
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let fired = match out.as_mut() {
            None => inner.telemetry.record_tick(scalars, |a| {
                inner.flight.record(
                    ts_us,
                    FlightEvent::Anomaly {
                        kind: a.kind,
                        tick: a.tick,
                        value: a.value,
                        baseline: a.baseline,
                    },
                );
            }),
            Some(w) => {
                // Streaming mode allocates anyway; buffer the lines and
                // write them after the hub call so one writer serves both
                // the frame and the anomaly callbacks.
                let lines: std::cell::RefCell<Vec<String>> =
                    std::cell::RefCell::new(Vec::with_capacity(2));
                let fired = inner.telemetry.record_tick_streaming(
                    scalars,
                    |f| {
                        lines
                            .borrow_mut()
                            .push(TelemetryLine::Frame(f.clone()).to_json());
                    },
                    |a| {
                        inner.flight.record(
                            ts_us,
                            FlightEvent::Anomaly {
                                kind: a.kind,
                                tick: a.tick,
                                value: a.value,
                                baseline: a.baseline,
                            },
                        );
                        lines
                            .borrow_mut()
                            .push(TelemetryLine::Anomaly(*a).to_json());
                    },
                );
                for line in lines.into_inner() {
                    let _ = writeln!(w, "{line}");
                }
                fired
            }
        };
        if fired > 0 {
            inner.registry.counter("telemetry.anomalies").add(fired);
        }
        fired
    }

    /// Attach a `--telemetry-out` JSONL stream; frames and anomalies are
    /// appended live from [`record_tick`](Self::record_tick). No-op when
    /// disabled.
    pub fn set_telemetry_out<P: Into<PathBuf>>(&self, path: P) -> std::io::Result<()> {
        if let Some(inner) = &self.inner {
            let file = std::fs::File::create(path.into())?;
            *inner
                .telemetry_out
                .lock()
                .unwrap_or_else(|e| e.into_inner()) = Some(std::io::BufWriter::new(file));
        }
        Ok(())
    }

    /// Flush the attached telemetry stream (end-of-run, or before a
    /// reader is pointed at the file); no-op when disabled or detached.
    pub fn flush_telemetry(&self) {
        if let Some(inner) = &self.inner {
            if let Some(w) = inner
                .telemetry_out
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .as_mut()
            {
                let _ = w.flush();
            }
        }
    }

    /// Everything the telemetry hub retained; `None` when disabled.
    pub fn telemetry_snapshot(&self) -> Option<TelemetrySnapshot> {
        self.inner.as_ref().map(|i| i.telemetry.snapshot())
    }

    /// Anomalies recorded so far (empty when disabled).
    pub fn telemetry_anomalies(&self) -> Vec<Anomaly> {
        self.inner
            .as_ref()
            .map(|i| i.telemetry.anomalies())
            .unwrap_or_default()
    }

    /// Running anomaly count (0 when disabled); lock-free.
    pub fn anomaly_count(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.telemetry.anomaly_count())
    }

    /// Evaluate SLO specs over the retained 1× frame series, append the
    /// verdicts to the attached telemetry stream (if any), and return
    /// them. Empty when disabled.
    pub fn evaluate_slos(&self, specs: &[SloSpec]) -> Vec<SloVerdict> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let frames = inner.telemetry.snapshot().frames;
        let verdicts = evaluate_slos(specs, &frames);
        if let Some(w) = inner
            .telemetry_out
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_mut()
        {
            for v in &verdicts {
                let _ = writeln!(w, "{}", TelemetryLine::Slo(v.clone()).to_json());
            }
            let _ = w.flush();
        }
        verdicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decisions::DecisionSource;

    #[test]
    fn disabled_bundle_records_nothing() {
        let ins = Instruments::disabled();
        let mut built = false;
        ins.trace(|| {
            built = true;
            TraceEvent::instant("x", "t", 0)
        });
        ins.counter("engine.fetches").inc();
        assert!(!built);
        assert!(!ins.is_enabled());
        assert!(ins.metrics_snapshot().is_empty());
        assert!(ins.chrome_trace_json().is_none());
    }

    #[test]
    fn clones_share_stores() {
        let ins = Instruments::enabled();
        let other = ins.clone();
        other.counter("x.n").add(3);
        other.trace(|| TraceEvent::instant("e", "t", 1));
        assert_eq!(ins.metrics_snapshot().get("x.n"), Some(3));
        let trace = ins.chrome_trace_json().unwrap();
        assert!(trace.contains("\"e\""));
    }

    #[test]
    fn observe_iteration_mirrors_gap_and_straggler() {
        use crate::analysis::{AnalysisConfig, BlameCategory, StageSample};
        let ins = Instruments::enabled_with(AnalysisConfig {
            straggler_consecutive: 1,
            ..AnalysisConfig::default()
        });
        let samples = || {
            let mut slow = StageSample::default();
            slow.add(BlameCategory::PfsFetch, 0.3);
            vec![
                GpuIterSample {
                    node: 0,
                    gpu: 0,
                    iter_s: 0.1,
                    stages: StageSample::default(),
                },
                GpuIterSample {
                    node: 0,
                    gpu: 3,
                    iter_s: 0.4,
                    stages: slow,
                },
            ]
        };
        let out = ins.observe_iteration(0, 123, samples).expect("enabled");
        assert!((out.gap_s - 0.3).abs() < 1e-12);
        let snap = ins.metrics_snapshot();
        assert_eq!(snap.get("analysis.gap_us"), Some(300_000));
        assert_eq!(snap.get("analysis.straggler_gpu"), Some(3));
        assert_eq!(snap.get("analysis.straggler_episodes"), Some(1));
        let trace = ins.chrome_trace_json().unwrap();
        assert!(trace.contains("straggler_detected"));
        assert!(trace.contains("analysis_gap"));
        let report = ins.analysis_report().unwrap();
        assert_eq!(report.top_straggler(), Some((0, 3)));

        // Disabled bundles never run the sample-building closure.
        let off = Instruments::disabled();
        let mut built = false;
        let out = off.observe_iteration(0, 0, || {
            built = true;
            Vec::new()
        });
        assert!(out.is_none() && !built);
        assert!(off.analysis_report().is_none());
    }

    #[test]
    fn decision_also_lands_in_trace() {
        let ins = Instruments::enabled();
        ins.record_decision(DecisionRecord {
            ts_us: 5,
            source: DecisionSource::EngineController,
            node: 0,
            queue_loads: vec![2.0],
            predicted_cost: vec![0.1],
            threads_before: vec![1],
            threads_after: vec![2],
            gap_s: None,
            evals: 1,
            converged: true,
            anomalies_before: 0,
        });
        assert_eq!(ins.decisions().len(), 1);
        let doc: serde_json::Value =
            serde_json::from_str(&ins.chrome_trace_json().unwrap()).unwrap();
        let events = doc["traceEvents"].as_array().unwrap();
        assert!(events
            .iter()
            .any(|e| e["name"].as_str() == Some("controller_decision")));
    }
}
