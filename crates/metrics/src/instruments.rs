//! The [`Instruments`] bundle: one handle carrying the trace buffer, the
//! metric registry, and the controller decision log through a run.
//!
//! Everything in the workspace that can be observed takes an `Instruments`
//! value. The default ([`Instruments::disabled`]) holds nothing: trace
//! closures never run, counter handles are unregistered no-op cells, and
//! decision records are dropped — so un-instrumented runs pay one branch
//! per site. [`Instruments::enabled`] allocates the three stores and turns
//! every site on.

use std::sync::Arc;

use crate::decisions::{DecisionLog, DecisionRecord};
use crate::registry::{Counter, Gauge, MetricRegistry, MetricsSnapshot};
use crate::trace::{TraceBuffer, TraceEvent, Tracer};

struct Inner {
    buffer: Arc<TraceBuffer>,
    registry: MetricRegistry,
    decisions: DecisionLog,
}

/// Cloneable observability handle; `None` inside means fully disabled.
#[derive(Clone, Default)]
pub struct Instruments {
    inner: Option<Arc<Inner>>,
}

impl Instruments {
    /// The no-op bundle: nothing is recorded anywhere.
    pub fn disabled() -> Instruments {
        Instruments { inner: None }
    }

    /// A live bundle with a fresh trace buffer, registry, and decision log.
    pub fn enabled() -> Instruments {
        Instruments {
            inner: Some(Arc::new(Inner {
                buffer: Arc::new(TraceBuffer::new()),
                registry: MetricRegistry::new(),
                decisions: DecisionLog::new(),
            })),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A [`Tracer`] recording into this bundle's buffer (or disabled).
    pub fn tracer(&self) -> Tracer {
        match &self.inner {
            Some(inner) => Tracer::with_buffer(Arc::clone(&inner.buffer)),
            None => Tracer::disabled(),
        }
    }

    /// Record the event produced by `make`; the closure only runs when
    /// enabled.
    #[inline]
    pub fn trace<F: FnOnce() -> TraceEvent>(&self, make: F) {
        if let Some(inner) = &self.inner {
            inner.buffer.push(make());
        }
    }

    /// Microseconds since the trace origin; 0 when disabled.
    #[inline]
    pub fn now_us(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.buffer.now_us())
    }

    /// Counter handle for `name`. Disabled bundles hand out a free-floating
    /// cell that is never snapshotted, so call sites can increment
    /// unconditionally.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            Some(inner) => inner.registry.counter(name),
            None => Counter::new(),
        }
    }

    /// Gauge handle for `name`; free-floating when disabled.
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            Some(inner) => inner.registry.gauge(name),
            None => Gauge::new(),
        }
    }

    /// Log a controller decision. Also emits a `controller_decision`
    /// instant into the trace so decisions appear on the same timeline as
    /// the I/O events they react to.
    pub fn record_decision(&self, record: DecisionRecord) {
        if let Some(inner) = &self.inner {
            inner.buffer.push(
                TraceEvent::instant("controller_decision", "control", record.ts_us)
                    .pid(record.node)
                    .arg_u(
                        "threads",
                        record.threads_after.iter().map(|&t| t as u64).sum(),
                    )
                    .arg_u("evals", record.evals as u64)
                    .arg_u("converged", record.converged as u64),
            );
            inner.decisions.push(record);
        }
    }

    /// Decisions logged so far (empty when disabled).
    pub fn decisions(&self) -> Vec<DecisionRecord> {
        self.inner
            .as_ref()
            .map(|i| i.decisions.snapshot())
            .unwrap_or_default()
    }

    /// Point-in-time metric values (empty when disabled).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.inner
            .as_ref()
            .map(|i| i.registry.snapshot())
            .unwrap_or_default()
    }

    /// Chrome trace-event JSON document; `None` when disabled.
    pub fn chrome_trace_json(&self) -> Option<String> {
        self.inner.as_ref().map(|i| i.buffer.chrome_trace_json())
    }

    /// Decision log as JSONL; `None` when disabled.
    pub fn decisions_jsonl(&self) -> Option<String> {
        self.inner.as_ref().map(|i| i.decisions.jsonl())
    }

    /// Trace events dropped due to buffer bounds (0 when disabled).
    pub fn trace_dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.buffer.dropped())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decisions::DecisionSource;

    #[test]
    fn disabled_bundle_records_nothing() {
        let ins = Instruments::disabled();
        let mut built = false;
        ins.trace(|| {
            built = true;
            TraceEvent::instant("x", "t", 0)
        });
        ins.counter("engine.fetches").inc();
        assert!(!built);
        assert!(!ins.is_enabled());
        assert!(ins.metrics_snapshot().is_empty());
        assert!(ins.chrome_trace_json().is_none());
    }

    #[test]
    fn clones_share_stores() {
        let ins = Instruments::enabled();
        let other = ins.clone();
        other.counter("x.n").add(3);
        other.trace(|| TraceEvent::instant("e", "t", 1));
        assert_eq!(ins.metrics_snapshot().get("x.n"), Some(3));
        let trace = ins.chrome_trace_json().unwrap();
        assert!(trace.contains("\"e\""));
    }

    #[test]
    fn decision_also_lands_in_trace() {
        let ins = Instruments::enabled();
        ins.record_decision(DecisionRecord {
            ts_us: 5,
            source: DecisionSource::EngineController,
            node: 0,
            queue_loads: vec![2.0],
            predicted_cost: vec![0.1],
            threads_before: vec![1],
            threads_after: vec![2],
            gap_s: None,
            evals: 1,
            converged: true,
        });
        assert_eq!(ins.decisions().len(), 1);
        let doc: serde_json::Value =
            serde_json::from_str(&ins.chrome_trace_json().unwrap()).unwrap();
        let events = doc["traceEvents"].as_array().unwrap();
        assert!(events
            .iter()
            .any(|e| e["name"].as_str() == Some("controller_decision")));
    }
}
