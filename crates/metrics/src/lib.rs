//! # lobster-metrics
//!
//! Measurement plumbing shared by the simulator, the live runtime, and the
//! bench harness: histograms ([`histogram`]), streaming summaries and EWMAs
//! ([`summary`]), plain-text tables ([`table`]), and result persistence
//! ([`report`]).
//!
//! The observability layer lives here too:
//!
//! * [`trace`] — low-overhead event tracing (fetch/preprocess spans, queue
//!   and cache instants) with Chrome trace-event / JSONL export;
//! * [`registry`] — named atomic counters and gauges with snapshots;
//! * [`decisions`] — the controller decision log (engine reassignment
//!   ticks and Algorithm 1 solves);
//! * [`instruments`] — the [`Instruments`] bundle threading all three
//!   through the runtime, the simulator, and the bench harness. The
//!   default is fully disabled and costs one branch per site.

pub mod decisions;
pub mod histogram;
pub mod instruments;
pub mod registry;
pub mod report;
pub mod summary;
pub mod table;
pub mod trace;

pub use decisions::{DecisionLog, DecisionRecord, DecisionSource};
pub use histogram::{LinearHistogram, LogHistogram};
pub use instruments::Instruments;
pub use registry::{Counter, Gauge, MetricRegistry, MetricsSnapshot};
pub use report::ResultSink;
pub use summary::{Ewma, Summary};
pub use table::{fmt_bytes, fmt_pct, fmt_secs, fmt_speedup, Table};
pub use trace::{ArgValue, EventKind, TraceBuffer, TraceEvent, Tracer};
