//! # lobster-metrics
//!
//! Measurement plumbing shared by the simulator, the live runtime, and the
//! bench harness: histograms ([`histogram`]), streaming summaries and EWMAs
//! ([`summary`]), plain-text tables ([`table`]), and result persistence
//! ([`report`]).

pub mod histogram;
pub mod report;
pub mod summary;
pub mod table;

pub use histogram::{LinearHistogram, LogHistogram};
pub use report::ResultSink;
pub use summary::{Ewma, Summary};
pub use table::{fmt_bytes, fmt_pct, fmt_secs, fmt_speedup, Table};
