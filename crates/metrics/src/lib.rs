//! # lobster-metrics
//!
//! Measurement plumbing shared by the simulator, the live runtime, and the
//! bench harness: histograms ([`histogram`]), streaming summaries and EWMAs
//! ([`summary`]), plain-text tables ([`table`]), and result persistence
//! ([`report`]).
//!
//! The observability layer lives here too:
//!
//! * [`trace`] — low-overhead event tracing (fetch/preprocess spans, queue
//!   and cache instants) with Chrome trace-event / JSONL export;
//! * [`registry`] — named atomic counters and gauges with snapshots;
//! * [`decisions`] — the controller decision log (engine reassignment
//!   ticks and Algorithm 1 solves);
//! * [`instruments`] — the [`Instruments`] bundle threading all three
//!   through the runtime, the simulator, and the bench harness. The
//!   default is fully disabled and costs one branch per site.
//!
//! On top of the raw streams sits the analysis layer:
//!
//! * [`analysis`] — the online [`BottleneckAnalyzer`]: per-GPU
//!   critical-path blame, the live Eq.-3 imbalance gap with an EWMA trend,
//!   straggler-episode detection, and solver efficacy (gap before/after
//!   each Algorithm-1 decision);
//! * [`timeline`] — offline reconstruction of the same structures from an
//!   exported trace, powering the `lobster_doctor` diagnosis binary;
//! * [`telemetry`] — the per-tick time-series plane: fixed-capacity frame
//!   rings with 1×/8×/64× rollups, the online anomaly detector bank
//!   (integer-exact, a conformance observable), and the declarative SLO
//!   engine behind `--slo` / `--telemetry-out` / `lobster_top`.
//!
//! ## Metric naming convention
//!
//! Every registry metric name is `snake_case.dotted`: one or more
//! dot-separated lowercase `snake_case` segments, the first naming the
//! subsystem — `engine.cache_hits`, `sim.evictions`, `analysis.gap_us`.
//! No bare names (`worker_panics`), no camelCase, no uppercase. The
//! registry debug-asserts [`registry::is_canonical_metric_name`] on every
//! registration; renamed metrics keep their previous spelling for one
//! release as snapshot aliases (kind `"alias"`) via
//! [`MetricRegistry::alias`].

pub mod analysis;
pub mod decisions;
pub mod histogram;
pub mod instruments;
pub mod recorder;
pub mod registry;
pub mod report;
pub mod summary;
pub mod table;
pub mod telemetry;
pub mod timeline;
pub mod trace;

pub use analysis::{
    AnalysisConfig, AnalysisReport, BlameCategory, BottleneckAnalyzer, GpuIterSample,
    IterationAnalysis, SolverEfficacy, StageSample, StragglerEpisode,
};
pub use decisions::{DecisionLog, DecisionRecord, DecisionSource};
pub use histogram::{CompactBucket, CompactHistogram, LinearHistogram, LogHistogram};
pub use instruments::Instruments;
pub use recorder::{
    FlightDump, FlightEvent, FlightFault, FlightRecord, FlightRecorder, FlightTier, FlightTierDump,
    DEFAULT_FLIGHT_CAPACITY, FLIGHT_DUMP_KIND, FLIGHT_SCHEMA_VERSION,
};
pub use registry::{is_canonical_metric_name, Counter, Gauge, MetricRegistry, MetricsSnapshot};
pub use report::ResultSink;
pub use summary::{Ewma, Summary};
pub use table::{fmt_bytes, fmt_pct, fmt_secs, fmt_speedup, Table};
pub use telemetry::{
    evaluate_slo, evaluate_slos, merge_frames, parse_slo_specs, parse_telemetry_stream, Anomaly,
    DetectorBank, DetectorConfig, DetectorKind, SloMetric, SloOp, SloSpec, SloVerdict,
    TelemetryConfig, TelemetryHub, TelemetryLine, TelemetrySnapshot, TickFrame, TickScalars,
    DEFAULT_TELEMETRY_CAPACITY, TELEMETRY_SCHEMA_VERSION,
};
pub use timeline::{CachePoint, IterationSlice, ParsedEvent, Timeline, TimelineError};
pub use trace::{ArgValue, EventKind, TraceBuffer, TraceEvent, Tracer};
