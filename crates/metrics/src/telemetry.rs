//! The telemetry plane: per-tick time series, online anomaly detection,
//! and the declarative SLO engine (DESIGN.md §14).
//!
//! The substrate is a fixed-capacity ring of per-tick [`TickFrame`]s —
//! the Eq.-3 gap, the iteration time, per-tier fetch counts and latency
//! histograms, the cache-hit trajectory, the elastic preproc/loader
//! split, retry counts, and the cluster membership mask — sampled at
//! each barrier by consumer 0 of the live engine and at each simulated
//! tick by `ClusterSim` / the conformance DES. Three rings retain the
//! series at 1×, 8×, and 64× granularity (each rollup folds a whole
//! window into one frame), so hundreds of nodes × thousands of ticks
//! stay bounded; [`merge_frames`] combines per-node series into one
//! cluster-wide series by tick.
//!
//! ## Determinism contract
//!
//! Every field the online detectors read is an **integer** (µs-quantized
//! times, counts, masks), and every detector below uses only integer
//! arithmetic (shift-based EWMAs in Q8 fixed point, integer CUSUM). Two
//! executors that agree on the per-tick frames therefore emit
//! **byte-identical anomaly sequences** — which is exactly how the
//! conformance harness treats anomalies: an exact-equality observable
//! (see `lobster-conformance`). The per-tier latency histograms are
//! engine-only payload (simulators leave them empty) and are never read
//! by a detector.
//!
//! ## Allocation contract
//!
//! The steady-state record path — `TelemetryHub::record_tick` plus
//! `record_fetch_us` — never allocates: ring slots, rollup accumulators,
//! current-tick histograms, and the anomaly buffer are all preallocated,
//! and window boundaries reset histograms in place via
//! [`LogHistogram::clear`]. Snapshots, JSONL export, and SLO evaluation
//! allocate freely (they run off the hot path). `tests/telemetry.rs`
//! proves both halves with a counting allocator.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::histogram::{CompactHistogram, LogHistogram};
use crate::recorder::FlightTier;

/// Version stamped into every telemetry JSONL line.
pub const TELEMETRY_SCHEMA_VERSION: u32 = 1;

/// Default 1× ring capacity (per-tick frames retained).
pub const DEFAULT_TELEMETRY_CAPACITY: usize = 512;

/// Ticks folded into one 8× rollup frame.
pub const ROLLUP_8: u64 = 8;

/// Ticks folded into one 64× rollup frame (eight 8× windows).
pub const ROLLUP_64: u64 = 64;

/// The integer (detector-visible) portion of one per-tick frame. All
/// times are µs-quantized; all other fields are counts or masks. `Copy`
/// and `Eq` on purpose: storing one is a plain move, and two executors'
/// scalars can be compared exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TickScalars {
    /// Global iteration index this frame describes.
    pub tick: u64,
    /// Eq.-3 imbalance gap across the cluster, µs.
    pub gap_us: u64,
    /// Iteration (pipeline-bound batch) time, µs.
    pub iter_us: u64,
    /// Fetches served by the node-local cache this tick.
    pub local_hits: u64,
    /// Fetches served by a remote peer's cache this tick.
    pub remote_hits: u64,
    /// Fetches that missed every cache and hit the PFS/store this tick.
    pub misses: u64,
    /// Samples prefetched ahead of demand this tick.
    pub prefetched: u64,
    /// Cache evictions this tick.
    pub evictions: u64,
    /// Storage retries this tick.
    pub retries: u64,
    /// Samples delivered to consumers this tick.
    pub delivered: u64,
    /// Elastic workers currently in the preprocessing role.
    pub preproc_workers: u32,
    /// Elastic workers currently in the loader role.
    pub loader_workers: u32,
    /// Bitmask of down nodes (bit n set ⇒ node n is crashed).
    pub down_mask: u64,
}

impl TickScalars {
    /// Total fetches this tick (all tiers).
    pub fn fetches(&self) -> u64 {
        self.local_hits + self.remote_hits + self.misses
    }

    /// Cache-hit rate in integer per-mille (‰), `None` when no fetches
    /// happened this tick. Integer so detectors stay exact.
    pub fn hit_pm(&self) -> Option<u64> {
        let total = self.fetches();
        (total > 0).then(|| (self.local_hits + self.remote_hits) * 1000 / total)
    }
}

/// One serialized per-tick frame: the scalar portion plus the per-tier
/// fetch-latency histograms in sparse form. Simulator frames carry empty
/// histograms (the model has no per-fetch latency stream); empty equals
/// empty, so frames stay comparable across executors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TickFrame {
    pub scalars: TickScalars,
    /// Cache-tier fetch latencies recorded during this frame's window, µs.
    pub cache_fetch_us: CompactHistogram,
    /// Store-tier fetch latencies recorded during this frame's window, µs.
    pub store_fetch_us: CompactHistogram,
}

impl TickFrame {
    /// A frame with empty latency payloads (the simulator form).
    pub fn from_scalars(scalars: TickScalars) -> TickFrame {
        TickFrame {
            scalars,
            cache_fetch_us: LogHistogram::new().to_compact(),
            store_fetch_us: LogHistogram::new().to_compact(),
        }
    }

    /// Both tiers' latencies merged into one distribution ("sample
    /// latency" in SLO specs), `None` when the frame carries no payload.
    pub fn sample_latency(&self) -> Option<LogHistogram> {
        let mut h = LogHistogram::from_compact(&self.cache_fetch_us).ok()?;
        h.merge(&LogHistogram::from_compact(&self.store_fetch_us).ok()?);
        (h.count() > 0).then_some(h)
    }
}

/// Combine per-node frame series into one cluster-wide series, aligned by
/// tick: counts add, the gap is the worst node's gap, the iteration time
/// is the slowest node's (the barrier waits for it), the membership mask
/// is the union, and latency histograms merge. Ticks present in only one
/// input pass through unchanged.
pub fn merge_frames(a: &[TickFrame], b: &[TickFrame]) -> Vec<TickFrame> {
    let mut out: Vec<TickFrame> = Vec::with_capacity(a.len().max(b.len()));
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        let ta = a.get(i).map(|f| f.scalars.tick);
        let tb = b.get(j).map(|f| f.scalars.tick);
        match (ta, tb) {
            (Some(x), Some(y)) if x == y => {
                let (fa, fb) = (&a[i], &b[j]);
                let (sa, sb) = (&fa.scalars, &fb.scalars);
                let merged = TickScalars {
                    tick: x,
                    gap_us: sa.gap_us.max(sb.gap_us),
                    iter_us: sa.iter_us.max(sb.iter_us),
                    local_hits: sa.local_hits + sb.local_hits,
                    remote_hits: sa.remote_hits + sb.remote_hits,
                    misses: sa.misses + sb.misses,
                    prefetched: sa.prefetched + sb.prefetched,
                    evictions: sa.evictions + sb.evictions,
                    retries: sa.retries + sb.retries,
                    delivered: sa.delivered + sb.delivered,
                    preproc_workers: sa.preproc_workers + sb.preproc_workers,
                    loader_workers: sa.loader_workers + sb.loader_workers,
                    down_mask: sa.down_mask | sb.down_mask,
                };
                let mut cache = LogHistogram::from_compact(&fa.cache_fetch_us)
                    .unwrap_or_else(|_| LogHistogram::new());
                if let Ok(h) = LogHistogram::from_compact(&fb.cache_fetch_us) {
                    cache.merge(&h);
                }
                let mut store = LogHistogram::from_compact(&fa.store_fetch_us)
                    .unwrap_or_else(|_| LogHistogram::new());
                if let Ok(h) = LogHistogram::from_compact(&fb.store_fetch_us) {
                    store.merge(&h);
                }
                out.push(TickFrame {
                    scalars: merged,
                    cache_fetch_us: cache.to_compact(),
                    store_fetch_us: store.to_compact(),
                });
                i += 1;
                j += 1;
            }
            (Some(x), Some(y)) if x < y => {
                out.push(a[i].clone());
                i += 1;
            }
            (Some(_), Some(_)) => {
                out.push(b[j].clone());
                j += 1;
            }
            (Some(_), None) => {
                out.push(a[i].clone());
                i += 1;
            }
            (None, Some(_)) => {
                out.push(b[j].clone());
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Online anomaly detection
// ---------------------------------------------------------------------------

/// Which rule of the detector bank fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectorKind {
    /// EWMA z-score spike on the Eq.-3 gap.
    GapSpike,
    /// CUSUM level shift on the iteration time.
    LevelShift,
    /// Tick-over-tick iteration-time cliff (throughput collapse).
    ThroughputCliff,
    /// Cache-hit rate fell sharply below its trend.
    HitRateRegression,
    /// The cluster membership mask changed (crash or rejoin).
    MembershipChange,
}

impl DetectorKind {
    pub const ALL: [DetectorKind; 5] = [
        DetectorKind::GapSpike,
        DetectorKind::LevelShift,
        DetectorKind::ThroughputCliff,
        DetectorKind::HitRateRegression,
        DetectorKind::MembershipChange,
    ];

    pub fn label(self) -> &'static str {
        match self {
            DetectorKind::GapSpike => "gap-spike",
            DetectorKind::LevelShift => "level-shift",
            DetectorKind::ThroughputCliff => "throughput-cliff",
            DetectorKind::HitRateRegression => "hit-rate-regression",
            DetectorKind::MembershipChange => "membership-change",
        }
    }

    pub fn by_label(label: &str) -> Option<DetectorKind> {
        DetectorKind::ALL
            .iter()
            .copied()
            .find(|k| k.label() == label)
    }
}

/// One structured anomaly. Every field is an integer so the record
/// derives `Eq` and two executors' anomaly sequences compare exactly —
/// this is the conformance observable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Anomaly {
    pub kind: DetectorKind,
    /// Tick the detector fired at.
    pub tick: u64,
    /// First tick of the triggering window (for CUSUM, the tick the
    /// excess started accumulating; for point detectors, `tick` itself).
    pub onset_tick: u64,
    /// The observed value that fired (µs, per-mille, or a mask —
    /// detector-specific, see `kind`).
    pub value: u64,
    /// The detector's baseline at firing time, same units as `value`.
    pub baseline: u64,
    /// Integer severity: Q8 z-score for spikes, accumulated excess for
    /// level shifts, Q8 ratio for cliffs, per-mille drop for hit-rate
    /// regressions, changed-bit count for membership changes.
    pub severity: u64,
}

/// Detector thresholds. All integer; the defaults are deliberately
/// conservative so steady-state runs stay quiet. `mutated()` is the
/// conformance canary: every threshold loosened, so a DES running the
/// mutated bank against a conformant `ClusterSim` emits extra (or
/// earlier) anomalies on any config with real tick-to-tick variation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorConfig {
    /// EWMA smoothing shift: α = 1 / 2^shift.
    pub ewma_shift: u32,
    /// Gap-spike fires when |gap − ewma| ≥ (z/256) × mean-abs-deviation.
    pub spike_z_q8: u64,
    /// Ticks of history before spike / shift / hit-rate rules may fire.
    pub warmup: u64,
    /// Deviation floor in µs: a near-constant series cannot divide by ~0.
    pub min_dev_us: u64,
    /// CUSUM per-tick allowance is `mean / cusum_slack_div`.
    pub cusum_slack_div: u64,
    /// CUSUM fires when accumulated excess reaches `mean ×
    /// cusum_threshold_num / cusum_threshold_den`.
    pub cusum_threshold_num: u64,
    pub cusum_threshold_den: u64,
    /// Cliff fires when `iter_us > prev_iter_us × cliff_num / cliff_den`.
    pub cliff_num: u64,
    pub cliff_den: u64,
    /// Hit-rate regression fires when the trend exceeds the observed rate
    /// by at least this many per-mille.
    pub hit_drop_pm: u64,
}

impl DetectorConfig {
    /// The production thresholds.
    pub fn standard() -> DetectorConfig {
        DetectorConfig {
            ewma_shift: 3,
            spike_z_q8: 4 << 8,
            warmup: 8,
            min_dev_us: 32,
            cusum_slack_div: 8,
            cusum_threshold_num: 1,
            cusum_threshold_den: 1,
            cliff_num: 2,
            cliff_den: 1,
            hit_drop_pm: 150,
        }
    }

    /// The `detector-threshold` mutation the conformance canary arms in
    /// the DES: every threshold loosened and the warm-up shortened.
    pub fn mutated() -> DetectorConfig {
        DetectorConfig {
            ewma_shift: 3,
            spike_z_q8: 1 << 8,
            warmup: 2,
            min_dev_us: 8,
            cusum_slack_div: 16,
            cusum_threshold_num: 1,
            cusum_threshold_den: 4,
            cliff_num: 5,
            cliff_den: 4,
            hit_drop_pm: 40,
        }
    }
}

impl Default for DetectorConfig {
    fn default() -> DetectorConfig {
        DetectorConfig::standard()
    }
}

/// The online detector bank. Pure integer state: feeding two banks the
/// same frame sequence produces byte-identical anomaly sequences on any
/// platform — the conformance determinism contract.
#[derive(Debug, Clone)]
pub struct DetectorBank {
    cfg: DetectorConfig,
    ticks: u64,
    // Gap spike (Q8 fixed point).
    gap_ewma_q8: u64,
    gap_mad_q8: u64,
    // Iteration-time level shift.
    iter_ewma_q8: u64,
    cusum: u64,
    cusum_onset: Option<u64>,
    // Throughput cliff.
    prev_iter_us: Option<u64>,
    // Hit-rate regression (per-mille, Q8).
    hit_ewma_pm_q8: Option<u64>,
    // Membership.
    prev_mask: Option<u64>,
}

impl DetectorBank {
    pub fn new(cfg: DetectorConfig) -> DetectorBank {
        DetectorBank {
            cfg,
            ticks: 0,
            gap_ewma_q8: 0,
            gap_mad_q8: 0,
            iter_ewma_q8: 0,
            cusum: 0,
            cusum_onset: None,
            prev_iter_us: None,
            hit_ewma_pm_q8: None,
            prev_mask: None,
        }
    }

    fn ewma_step(ewma_q8: u64, x_q8: u64, shift: u32) -> u64 {
        // ewma += (x − ewma) / 2^shift, in integer arithmetic without
        // signed types: subtract the decayed share, add the new share.
        ewma_q8 - (ewma_q8 >> shift) + (x_q8 >> shift)
    }

    /// Feed one frame; `emit` is called once per fired rule, in a fixed
    /// deterministic order (membership, gap spike, cliff, level shift,
    /// hit-rate). Emits at most 5 anomalies per tick.
    pub fn observe<F: FnMut(Anomaly)>(&mut self, f: &TickScalars, mut emit: F) {
        let cfg = self.cfg;
        let tick = f.tick;

        // 1. Membership change: exact, fires from the second frame on.
        if let Some(prev) = self.prev_mask {
            if f.down_mask != prev {
                emit(Anomaly {
                    kind: DetectorKind::MembershipChange,
                    tick,
                    onset_tick: tick,
                    value: f.down_mask,
                    baseline: prev,
                    severity: (f.down_mask ^ prev).count_ones() as u64,
                });
            }
        }
        self.prev_mask = Some(f.down_mask);

        // 2. Gap spike: EWMA z-score in Q8 against the mean absolute
        // deviation, floored so near-constant series stay quiet.
        let gap_q8 = f.gap_us << 8;
        if self.ticks >= cfg.warmup {
            let dev_q8 = gap_q8.abs_diff(self.gap_ewma_q8);
            let floor_q8 = self.gap_mad_q8.max(cfg.min_dev_us << 8).max(1);
            let z_q8 = dev_q8.saturating_mul(256) / floor_q8;
            if z_q8 >= cfg.spike_z_q8 {
                emit(Anomaly {
                    kind: DetectorKind::GapSpike,
                    tick,
                    onset_tick: tick,
                    value: f.gap_us,
                    baseline: self.gap_ewma_q8 >> 8,
                    severity: z_q8,
                });
            }
        }
        if self.ticks == 0 {
            self.gap_ewma_q8 = gap_q8;
            self.gap_mad_q8 = 0;
        } else {
            let dev_q8 = gap_q8.abs_diff(self.gap_ewma_q8);
            self.gap_ewma_q8 = Self::ewma_step(self.gap_ewma_q8, gap_q8, cfg.ewma_shift);
            self.gap_mad_q8 = Self::ewma_step(self.gap_mad_q8, dev_q8, cfg.ewma_shift);
        }

        // 3. Throughput cliff: tick-over-tick iteration-time blowup.
        if let Some(prev) = self.prev_iter_us {
            if prev > 0
                && f.iter_us.saturating_mul(cfg.cliff_den) > prev.saturating_mul(cfg.cliff_num)
            {
                emit(Anomaly {
                    kind: DetectorKind::ThroughputCliff,
                    tick,
                    onset_tick: tick,
                    value: f.iter_us,
                    baseline: prev,
                    severity: (f.iter_us << 8) / prev,
                });
            }
        }
        self.prev_iter_us = Some(f.iter_us);

        // 4. Level shift: one-sided integer CUSUM on the iteration time,
        // with the onset tick tracked from the first tick of excess so a
        // late firing still attributes the shift to where it began.
        let mean = self.iter_ewma_q8 >> 8;
        if self.ticks >= cfg.warmup && mean > 0 {
            let slack = mean / cfg.cusum_slack_div;
            if f.iter_us > mean + slack {
                if self.cusum == 0 {
                    self.cusum_onset = Some(tick);
                }
                self.cusum += f.iter_us - (mean + slack);
            } else {
                self.cusum = 0;
                self.cusum_onset = None;
            }
            let threshold =
                mean.saturating_mul(cfg.cusum_threshold_num) / cfg.cusum_threshold_den.max(1);
            if self.cusum >= threshold.max(1) {
                emit(Anomaly {
                    kind: DetectorKind::LevelShift,
                    tick,
                    onset_tick: self.cusum_onset.unwrap_or(tick),
                    value: f.iter_us,
                    baseline: mean,
                    severity: self.cusum,
                });
                self.cusum = 0;
                self.cusum_onset = None;
            }
        }
        if self.ticks == 0 {
            self.iter_ewma_q8 = f.iter_us << 8;
        } else {
            self.iter_ewma_q8 = Self::ewma_step(self.iter_ewma_q8, f.iter_us << 8, cfg.ewma_shift);
        }

        // 5. Hit-rate regression: sharp per-mille drop below the trend.
        if let Some(pm) = f.hit_pm() {
            if let Some(trend_q8) = self.hit_ewma_pm_q8 {
                let trend = trend_q8 >> 8;
                if self.ticks >= cfg.warmup && trend >= pm + cfg.hit_drop_pm {
                    emit(Anomaly {
                        kind: DetectorKind::HitRateRegression,
                        tick,
                        onset_tick: tick,
                        value: pm,
                        baseline: trend,
                        severity: trend - pm,
                    });
                }
                self.hit_ewma_pm_q8 = Some(Self::ewma_step(trend_q8, pm << 8, cfg.ewma_shift));
            } else {
                self.hit_ewma_pm_q8 = Some(pm << 8);
            }
        }

        self.ticks += 1;
    }

    /// Re-run a fresh bank over a recorded frame sequence. The engine's
    /// conformance check: the anomalies it emitted online must equal the
    /// replay over its own serialized frames exactly.
    pub fn replay(cfg: DetectorConfig, frames: &[TickScalars]) -> Vec<Anomaly> {
        let mut bank = DetectorBank::new(cfg);
        let mut out = Vec::new();
        for f in frames {
            bank.observe(f, |a| out.push(a));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// The hub: rings, rollups, detector bank, anomaly buffer
// ---------------------------------------------------------------------------

/// Sizing for [`TelemetryHub`].
#[derive(Debug, Clone, Copy)]
pub struct TelemetryConfig {
    /// 1× ring capacity (frames).
    pub ring1: usize,
    /// 8× rollup ring capacity.
    pub ring8: usize,
    /// 64× rollup ring capacity.
    pub ring64: usize,
    /// Anomaly buffer capacity; overflow is counted, not stored.
    pub anomalies: usize,
    pub detectors: DetectorConfig,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig {
            ring1: DEFAULT_TELEMETRY_CAPACITY,
            ring8: 256,
            ring64: 128,
            anomalies: 1024,
            detectors: DetectorConfig::standard(),
        }
    }
}

/// One preallocated ring slot: scalars by value, histograms reset in
/// place at overwrite time.
struct Slot {
    scalars: TickScalars,
    cache_us: LogHistogram,
    store_us: LogHistogram,
}

struct Ring {
    slots: Vec<Slot>,
    /// Frames ever pushed; slot `head % capacity` is the next overwrite.
    head: u64,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        Ring {
            slots: (0..capacity.max(1))
                .map(|_| Slot {
                    scalars: TickScalars::default(),
                    cache_us: LogHistogram::new(),
                    store_us: LogHistogram::new(),
                })
                .collect(),
            head: 0,
        }
    }

    /// Allocation-free push: copy scalars, clear + merge histograms.
    fn push(&mut self, scalars: TickScalars, cache: &LogHistogram, store: &LogHistogram) {
        let cap = self.slots.len() as u64;
        let slot = &mut self.slots[(self.head % cap) as usize];
        slot.scalars = scalars;
        slot.cache_us.clear();
        slot.cache_us.merge(cache);
        slot.store_us.clear();
        slot.store_us.merge(store);
        self.head += 1;
    }

    /// Retained frames, oldest first (allocates; off the hot path).
    fn snapshot(&self) -> Vec<TickFrame> {
        let cap = self.slots.len() as u64;
        let start = self.head.saturating_sub(cap);
        (start..self.head)
            .map(|t| {
                let slot = &self.slots[(t % cap) as usize];
                TickFrame {
                    scalars: slot.scalars,
                    cache_fetch_us: slot.cache_us.to_compact(),
                    store_fetch_us: slot.store_us.to_compact(),
                }
            })
            .collect()
    }
}

/// A rollup accumulator folding `factor` consecutive frames into one:
/// the window's first tick, worst gap, summed iteration time and counts,
/// last worker split, unioned down-mask, merged histograms.
struct Rollup {
    factor: u64,
    filled: u64,
    acc: TickScalars,
    cache_us: LogHistogram,
    store_us: LogHistogram,
}

impl Rollup {
    fn new(factor: u64) -> Rollup {
        Rollup {
            factor,
            filled: 0,
            acc: TickScalars::default(),
            cache_us: LogHistogram::new(),
            store_us: LogHistogram::new(),
        }
    }

    /// Fold one frame; returns `true` when the window is complete (the
    /// caller reads `acc`/histograms, then calls [`reset`](Self::reset)).
    fn fold(&mut self, s: &TickScalars, cache: &LogHistogram, store: &LogHistogram) -> bool {
        if self.filled == 0 {
            self.acc = *s;
        } else {
            self.acc.gap_us = self.acc.gap_us.max(s.gap_us);
            self.acc.iter_us += s.iter_us;
            self.acc.local_hits += s.local_hits;
            self.acc.remote_hits += s.remote_hits;
            self.acc.misses += s.misses;
            self.acc.prefetched += s.prefetched;
            self.acc.evictions += s.evictions;
            self.acc.retries += s.retries;
            self.acc.delivered += s.delivered;
            self.acc.preproc_workers = s.preproc_workers;
            self.acc.loader_workers = s.loader_workers;
            self.acc.down_mask |= s.down_mask;
        }
        self.cache_us.merge(cache);
        self.store_us.merge(store);
        self.filled += 1;
        self.filled >= self.factor
    }

    fn reset(&mut self) {
        self.filled = 0;
        self.cache_us.clear();
        self.store_us.clear();
    }
}

struct HubState {
    ring1: Ring,
    ring8: Ring,
    ring64: Ring,
    r8: Rollup,
    r64: Rollup,
    /// Fetch latencies accumulated since the last `record_tick`.
    cur_cache: LogHistogram,
    cur_store: LogHistogram,
    bank: DetectorBank,
    anomalies: Vec<Anomaly>,
    anomalies_dropped: u64,
    ticks: u64,
}

/// Everything the hub retained, in serializable form.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    pub schema_version: u32,
    /// Ticks ever recorded (frames retained = `min(ticks, ring1 cap)`).
    pub ticks: u64,
    pub frames: Vec<TickFrame>,
    pub rollup8: Vec<TickFrame>,
    pub rollup64: Vec<TickFrame>,
    pub anomalies: Vec<Anomaly>,
    pub anomalies_dropped: u64,
}

/// The per-run telemetry hub: three rings, the rollup cascade, the
/// detector bank, and the bounded anomaly buffer, all behind one mutex
/// (one short critical section per tick — the record cadence is one call
/// per iteration, not per sample).
pub struct TelemetryHub {
    state: Mutex<HubState>,
    /// Mirror of the anomaly count, readable without the lock (decision
    /// records are annotated on a different thread's path).
    anomaly_count: AtomicU64,
    /// Tick of the most recent anomaly, `u64::MAX` when none yet.
    last_anomaly_tick: AtomicU64,
}

impl TelemetryHub {
    pub fn new(cfg: TelemetryConfig) -> TelemetryHub {
        TelemetryHub {
            state: Mutex::new(HubState {
                ring1: Ring::new(cfg.ring1),
                ring8: Ring::new(cfg.ring8),
                ring64: Ring::new(cfg.ring64),
                r8: Rollup::new(ROLLUP_8),
                r64: Rollup::new(ROLLUP_64 / ROLLUP_8),
                cur_cache: LogHistogram::new(),
                cur_store: LogHistogram::new(),
                bank: DetectorBank::new(cfg.detectors),
                anomalies: Vec::with_capacity(cfg.anomalies.max(1)),
                anomalies_dropped: 0,
                ticks: 0,
            }),
            anomaly_count: AtomicU64::new(0),
            last_anomaly_tick: AtomicU64::new(u64::MAX),
        }
    }

    /// Fold one fetch latency into the current tick's histogram.
    /// Allocation-free (preallocated buckets).
    #[inline]
    pub fn record_fetch_us(&self, tier: FlightTier, us: u64) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        match tier {
            FlightTier::Cache => st.cur_cache.record(us),
            FlightTier::Store => st.cur_store.record(us),
        }
    }

    /// Record one tick: store the frame in the 1× ring, cascade the
    /// rollups, run the detector bank. `on_anomaly` is invoked (under the
    /// hub lock, at most 5 times) for each anomaly this tick — the
    /// engine's hook for flight-recorder and JSONL side effects. Returns
    /// the number of anomalies emitted. Allocation-free in steady state.
    pub fn record_tick<F: FnMut(&Anomaly)>(&self, scalars: TickScalars, mut on_anomaly: F) -> u64 {
        self.record_tick_inner(scalars, None, &mut on_anomaly)
    }

    /// [`record_tick`](Self::record_tick) plus a completed-frame callback
    /// for JSONL streaming. Building the frame compacts the tick's
    /// histograms, which **allocates** — streaming mode trades the
    /// zero-alloc contract for a live feed; use plain `record_tick` when
    /// no stream is attached.
    pub fn record_tick_streaming<G, F>(
        &self,
        scalars: TickScalars,
        mut on_frame: G,
        mut on_anomaly: F,
    ) -> u64
    where
        G: FnMut(&TickFrame),
        F: FnMut(&Anomaly),
    {
        self.record_tick_inner(scalars, Some(&mut on_frame), &mut on_anomaly)
    }

    fn record_tick_inner(
        &self,
        scalars: TickScalars,
        frame_sink: Option<&mut dyn FnMut(&TickFrame)>,
        on_anomaly: &mut dyn FnMut(&Anomaly),
    ) -> u64 {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let st = &mut *st;

        if let Some(sink) = frame_sink {
            sink(&TickFrame {
                scalars,
                cache_fetch_us: st.cur_cache.to_compact(),
                store_fetch_us: st.cur_store.to_compact(),
            });
        }
        st.ring1.push(scalars, &st.cur_cache, &st.cur_store);
        if st.r8.fold(&scalars, &st.cur_cache, &st.cur_store) {
            let acc = st.r8.acc;
            st.ring8.push(acc, &st.r8.cache_us, &st.r8.store_us);
            if st.r64.fold(&acc, &st.r8.cache_us, &st.r8.store_us) {
                let acc64 = st.r64.acc;
                // Borrow-split: copy the 8×-window histograms are already
                // folded into r64's accumulators.
                st.ring64.push(acc64, &st.r64.cache_us, &st.r64.store_us);
                st.r64.reset();
            }
            st.r8.reset();
        }
        st.cur_cache.clear();
        st.cur_store.clear();

        let mut fired = 0u64;
        let anomalies = &mut st.anomalies;
        let dropped = &mut st.anomalies_dropped;
        st.bank.observe(&scalars, |a| {
            fired += 1;
            if anomalies.len() < anomalies.capacity() {
                anomalies.push(a);
            } else {
                *dropped += 1;
            }
            on_anomaly(&a);
        });
        if fired > 0 {
            self.anomaly_count.fetch_add(fired, Ordering::Release);
            self.last_anomaly_tick
                .store(scalars.tick, Ordering::Release);
        }
        st.ticks += 1;
        fired
    }

    /// Anomalies recorded so far (lock-free mirror).
    pub fn anomaly_count(&self) -> u64 {
        self.anomaly_count.load(Ordering::Acquire)
    }

    /// Tick of the most recent anomaly, if any (lock-free mirror).
    pub fn last_anomaly_tick(&self) -> Option<u64> {
        let t = self.last_anomaly_tick.load(Ordering::Acquire);
        (t != u64::MAX).then_some(t)
    }

    /// The retained anomaly records.
    pub fn anomalies(&self) -> Vec<Anomaly> {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .anomalies
            .clone()
    }

    /// Everything retained, serializable (allocates).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        TelemetrySnapshot {
            schema_version: TELEMETRY_SCHEMA_VERSION,
            ticks: st.ticks,
            frames: st.ring1.snapshot(),
            rollup8: st.ring8.snapshot(),
            rollup64: st.ring64.snapshot(),
            anomalies: st.anomalies.clone(),
            anomalies_dropped: st.anomalies_dropped,
        }
    }
}

impl Default for TelemetryHub {
    fn default() -> TelemetryHub {
        TelemetryHub::new(TelemetryConfig::default())
    }
}

// ---------------------------------------------------------------------------
// JSONL stream (`--telemetry-out`)
// ---------------------------------------------------------------------------

/// One line of the `--telemetry-out` JSONL stream.
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryLine {
    Frame(TickFrame),
    Anomaly(Anomaly),
    Slo(SloVerdict),
}

impl TelemetryLine {
    /// Serialize to one JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        match self {
            TelemetryLine::Frame(f) => format!(
                "{{\"type\":\"frame\",\"v\":{TELEMETRY_SCHEMA_VERSION},\"frame\":{}}}",
                serde_json::to_string(f).expect("frame render")
            ),
            TelemetryLine::Anomaly(a) => format!(
                "{{\"type\":\"anomaly\",\"v\":{TELEMETRY_SCHEMA_VERSION},\"anomaly\":{}}}",
                serde_json::to_string(a).expect("anomaly render")
            ),
            TelemetryLine::Slo(s) => format!(
                "{{\"type\":\"slo\",\"v\":{TELEMETRY_SCHEMA_VERSION},\"slo\":{}}}",
                serde_json::to_string(s).expect("slo render")
            ),
        }
    }

    /// Parse one JSONL line; `Err` carries a reason, unknown `type`s are
    /// an error so schema drift is loud.
    pub fn from_json(line: &str) -> Result<TelemetryLine, String> {
        let v: serde_json::Value =
            serde_json::from_str(line).map_err(|e| format!("telemetry line parse: {e}"))?;
        let kind = v["type"]
            .as_str()
            .ok_or_else(|| "telemetry line without a type".to_string())?
            .to_string();
        match kind.as_str() {
            "frame" => serde_json::from_value(v["frame"].clone())
                .map(TelemetryLine::Frame)
                .map_err(|e| format!("frame line: {e}")),
            "anomaly" => serde_json::from_value(v["anomaly"].clone())
                .map(TelemetryLine::Anomaly)
                .map_err(|e| format!("anomaly line: {e}")),
            "slo" => serde_json::from_value(v["slo"].clone())
                .map(TelemetryLine::Slo)
                .map_err(|e| format!("slo line: {e}")),
            other => Err(format!("unknown telemetry line type {other:?}")),
        }
    }
}

/// Parse a whole JSONL stream, skipping blank lines. The first malformed
/// line is an error.
pub fn parse_telemetry_stream(text: &str) -> Result<Vec<TelemetryLine>, String> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(TelemetryLine::from_json)
        .collect()
}

// ---------------------------------------------------------------------------
// SLO engine
// ---------------------------------------------------------------------------

/// Which per-frame metric an SLO constrains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SloMetric {
    /// `gap_us` — the Eq.-3 imbalance gap, µs.
    GapUs,
    /// `gap_ratio` — gap over iteration time (0 when the frame has no
    /// iteration time).
    GapRatio,
    /// `iter_us` — iteration time, µs.
    IterUs,
    /// `hit_rate` — cache-hit fraction in [0, 1]; frames without fetches
    /// are skipped.
    HitRate,
    /// `p50_sample_latency_us` over the frame's merged tier histograms;
    /// frames without latency payload are skipped.
    P50SampleLatencyUs,
    /// `p95_sample_latency_us`.
    P95SampleLatencyUs,
    /// `p99_sample_latency_us`.
    P99SampleLatencyUs,
    /// `retries` per frame.
    Retries,
}

impl SloMetric {
    pub fn name(self) -> &'static str {
        match self {
            SloMetric::GapUs => "gap_us",
            SloMetric::GapRatio => "gap_ratio",
            SloMetric::IterUs => "iter_us",
            SloMetric::HitRate => "hit_rate",
            SloMetric::P50SampleLatencyUs => "p50_sample_latency_us",
            SloMetric::P95SampleLatencyUs => "p95_sample_latency_us",
            SloMetric::P99SampleLatencyUs => "p99_sample_latency_us",
            SloMetric::Retries => "retries",
        }
    }

    pub fn by_name(name: &str) -> Option<SloMetric> {
        [
            SloMetric::GapUs,
            SloMetric::GapRatio,
            SloMetric::IterUs,
            SloMetric::HitRate,
            SloMetric::P50SampleLatencyUs,
            SloMetric::P95SampleLatencyUs,
            SloMetric::P99SampleLatencyUs,
            SloMetric::Retries,
        ]
        .into_iter()
        .find(|m| m.name() == name)
    }

    /// The metric's value over one frame, `None` when the frame carries
    /// no signal for it (no fetches / no latency payload).
    pub fn eval(self, f: &TickFrame) -> Option<f64> {
        let s = &f.scalars;
        match self {
            SloMetric::GapUs => Some(s.gap_us as f64),
            SloMetric::GapRatio => (s.iter_us > 0).then(|| s.gap_us as f64 / s.iter_us as f64),
            SloMetric::IterUs => Some(s.iter_us as f64),
            SloMetric::HitRate => s.hit_pm().map(|pm| pm as f64 / 1000.0),
            SloMetric::P50SampleLatencyUs => f.sample_latency().and_then(|h| h.percentile(50.0)),
            SloMetric::P95SampleLatencyUs => f.sample_latency().and_then(|h| h.percentile(95.0)),
            SloMetric::P99SampleLatencyUs => f.sample_latency().and_then(|h| h.percentile(99.0)),
            SloMetric::Retries => Some(s.retries as f64),
        }
    }
}

/// Comparison operator of an SLO spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SloOp {
    Lt,
    Le,
    Gt,
    Ge,
}

impl SloOp {
    pub fn symbol(self) -> &'static str {
        match self {
            SloOp::Lt => "<",
            SloOp::Le => "<=",
            SloOp::Gt => ">",
            SloOp::Ge => ">=",
        }
    }

    fn holds(self, value: f64, bound: f64) -> bool {
        match self {
            SloOp::Lt => value < bound,
            SloOp::Le => value <= bound,
            SloOp::Gt => value > bound,
            SloOp::Ge => value >= bound,
        }
    }
}

/// One declarative SLO:
/// `metric <op> bound [@window[:max_burn_pct]]`.
///
/// Without a window the whole retained series is one window; with `@N`
/// the series splits into consecutive N-frame windows and the worst
/// window's burn (violating-frame percentage) must stay ≤ `max_burn_pct`
/// (default 0 — no violations tolerated).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloSpec {
    pub metric: SloMetric,
    pub op: SloOp,
    pub bound: f64,
    /// Burn-rate window in frames; `None` = the whole series.
    pub window: Option<u64>,
    /// Tolerated violating-frame percentage per window.
    pub max_burn_pct: f64,
}

impl SloSpec {
    /// The canonical text form (re-parseable).
    pub fn display(&self) -> String {
        let mut out = format!("{}{}{}", self.metric.name(), self.op.symbol(), self.bound);
        if let Some(w) = self.window {
            out.push_str(&format!("@{w}"));
            if self.max_burn_pct > 0.0 {
                out.push_str(&format!(":{}", self.max_burn_pct));
            }
        } else if self.max_burn_pct > 0.0 {
            out.push_str(&format!("@0:{}", self.max_burn_pct));
        }
        out
    }

    /// Parse one spec, e.g. `p95_sample_latency_us<5000`,
    /// `gap_ratio<=0.5@64:25`, `hit_rate>=0.8@32`.
    pub fn parse(text: &str) -> Result<SloSpec, String> {
        let text = text.trim();
        let (op_at, op, op_len) = ["<=", ">=", "<", ">"]
            .iter()
            .filter_map(|sym| text.find(sym).map(|i| (i, *sym)))
            .min_by_key(|&(i, sym)| (i, std::cmp::Reverse(sym.len())))
            .map(|(i, sym)| {
                let op = match sym {
                    "<=" => SloOp::Le,
                    ">=" => SloOp::Ge,
                    "<" => SloOp::Lt,
                    _ => SloOp::Gt,
                };
                (i, op, sym.len())
            })
            .ok_or_else(|| format!("SLO {text:?}: no comparison operator"))?;
        let metric_name = text[..op_at].trim();
        let metric = SloMetric::by_name(metric_name)
            .ok_or_else(|| format!("SLO {text:?}: unknown metric {metric_name:?}"))?;
        let rest = text[op_at + op_len..].trim();
        let (bound_text, window_text) = match rest.find('@') {
            Some(i) => (&rest[..i], Some(&rest[i + 1..])),
            None => (rest, None),
        };
        let bound: f64 = bound_text
            .trim()
            .parse()
            .map_err(|_| format!("SLO {text:?}: bad bound {bound_text:?}"))?;
        let (window, max_burn_pct) = match window_text {
            None => (None, 0.0),
            Some(w) => {
                let (win_text, burn_text) = match w.find(':') {
                    Some(i) => (&w[..i], Some(&w[i + 1..])),
                    None => (w, None),
                };
                let win: u64 = win_text
                    .trim()
                    .parse()
                    .map_err(|_| format!("SLO {text:?}: bad window {win_text:?}"))?;
                let burn = match burn_text {
                    Some(b) => b
                        .trim()
                        .parse()
                        .map_err(|_| format!("SLO {text:?}: bad burn {b:?}"))?,
                    None => 0.0,
                };
                ((win > 0).then_some(win), burn)
            }
        };
        Ok(SloSpec {
            metric,
            op,
            bound,
            window,
            max_burn_pct,
        })
    }
}

/// Parse a `;`-separated spec list (blank items skipped).
pub fn parse_slo_specs(text: &str) -> Result<Vec<SloSpec>, String> {
    text.split(';')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(SloSpec::parse)
        .collect()
}

/// One SLO's verdict over a frame series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloVerdict {
    /// The spec's canonical text form.
    pub spec: String,
    /// Frames that carried a value for the metric.
    pub frames: u64,
    /// Frames violating the bound.
    pub violations: u64,
    /// Worst window's violating-frame percentage.
    pub burn_pct: f64,
    /// Tick of the worst single violation (0 when none).
    pub worst_tick: u64,
    /// The most extreme violating value (0 when none).
    pub worst_value: f64,
    pub pass: bool,
}

/// Evaluate one spec over a frame series.
pub fn evaluate_slo(spec: &SloSpec, frames: &[TickFrame]) -> SloVerdict {
    let mut evaluated = 0u64;
    let mut violations = 0u64;
    let mut worst_tick = 0u64;
    let mut worst_value = 0.0f64;
    let mut worst_excess = f64::NEG_INFINITY;
    // (violations, total) per window.
    let window = spec.window.unwrap_or(u64::MAX).max(1);
    let mut windows: Vec<(u64, u64)> = Vec::new();
    let mut in_window = 0u64;
    for f in frames {
        let Some(value) = spec.metric.eval(f) else {
            continue;
        };
        if in_window == 0 {
            windows.push((0, 0));
        }
        evaluated += 1;
        in_window += 1;
        let w = windows.last_mut().expect("window opened");
        w.1 += 1;
        if !spec.op.holds(value, spec.bound) {
            violations += 1;
            w.0 += 1;
            let excess = match spec.op {
                SloOp::Lt | SloOp::Le => value - spec.bound,
                SloOp::Gt | SloOp::Ge => spec.bound - value,
            };
            if excess > worst_excess {
                worst_excess = excess;
                worst_tick = f.scalars.tick;
                worst_value = value;
            }
        }
        if in_window >= window {
            in_window = 0;
        }
    }
    let burn_pct = windows
        .iter()
        .map(|&(v, n)| {
            if n > 0 {
                v as f64 * 100.0 / n as f64
            } else {
                0.0
            }
        })
        .fold(0.0f64, f64::max);
    SloVerdict {
        spec: spec.display(),
        frames: evaluated,
        violations,
        burn_pct,
        worst_tick,
        worst_value,
        pass: evaluated == 0 || burn_pct <= spec.max_burn_pct,
    }
}

/// Evaluate a spec list over a frame series.
pub fn evaluate_slos(specs: &[SloSpec], frames: &[TickFrame]) -> Vec<SloVerdict> {
    specs.iter().map(|s| evaluate_slo(s, frames)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(tick: u64, gap_us: u64, iter_us: u64) -> TickScalars {
        TickScalars {
            tick,
            gap_us,
            iter_us,
            local_hits: 6,
            remote_hits: 1,
            misses: 1,
            delivered: 8,
            ..TickScalars::default()
        }
    }

    #[test]
    fn quiet_series_emits_no_anomalies() {
        let mut bank = DetectorBank::new(DetectorConfig::standard());
        for t in 0..200 {
            bank.observe(&frame(t, 1_000, 50_000), |a| {
                panic!("steady series fired {a:?}")
            });
        }
    }

    #[test]
    fn gap_spike_fires_on_a_step_and_identifies_the_tick() {
        let mut bank = DetectorBank::new(DetectorConfig::standard());
        let mut fired = Vec::new();
        for t in 0..40 {
            let gap = if t == 25 {
                80_000
            } else {
                1_000 + (t % 3) * 16
            };
            bank.observe(&frame(t, gap, 50_000), |a| fired.push(a));
        }
        let spike = fired
            .iter()
            .find(|a| a.kind == DetectorKind::GapSpike)
            .expect("spike detected");
        assert_eq!(spike.tick, 25);
        assert_eq!(spike.onset_tick, 25);
        assert_eq!(spike.value, 80_000);
        assert!(spike.severity >= 4 << 8);
    }

    #[test]
    fn level_shift_fires_after_a_sustained_slowdown_with_onset_attribution() {
        let mut bank = DetectorBank::new(DetectorConfig::standard());
        let mut fired = Vec::new();
        for t in 0..60 {
            let iter = if t >= 30 { 120_000 } else { 50_000 };
            bank.observe(&frame(t, 1_000, iter), |a| fired.push(a));
        }
        let shift = fired
            .iter()
            .find(|a| a.kind == DetectorKind::LevelShift)
            .expect("level shift detected");
        assert_eq!(shift.onset_tick, 30, "attributed to the first slow tick");
        assert!(
            shift.tick >= 30 && shift.tick <= 32,
            "fired promptly: {shift:?}"
        );
        assert!(shift.value >= 120_000);
    }

    #[test]
    fn throughput_cliff_fires_exactly_at_the_collapse_tick() {
        let mut bank = DetectorBank::new(DetectorConfig::standard());
        let mut fired = Vec::new();
        for t in 0..20 {
            let iter = if t >= 12 { 250_000 } else { 50_000 };
            bank.observe(&frame(t, 1_000, iter), |a| fired.push(a));
        }
        let cliff = fired
            .iter()
            .find(|a| a.kind == DetectorKind::ThroughputCliff)
            .expect("cliff detected");
        assert_eq!(cliff.tick, 12);
        assert_eq!(cliff.baseline, 50_000);
        assert_eq!(cliff.value, 250_000);
    }

    #[test]
    fn hit_rate_regression_fires_when_the_cache_goes_cold() {
        let mut bank = DetectorBank::new(DetectorConfig::standard());
        let mut fired = Vec::new();
        for t in 0..40 {
            let mut f = frame(t, 1_000, 50_000);
            if t >= 20 {
                // 87.5% hits → 12.5% hits.
                f.local_hits = 1;
                f.remote_hits = 0;
                f.misses = 7;
            }
            bank.observe(&f, |a| fired.push(a));
        }
        let reg = fired
            .iter()
            .find(|a| a.kind == DetectorKind::HitRateRegression)
            .expect("regression detected");
        assert_eq!(reg.tick, 20);
        assert_eq!(reg.value, 125, "1/8 hits in per-mille");
    }

    #[test]
    fn membership_change_fires_on_crash_and_rejoin_ticks() {
        let mut bank = DetectorBank::new(DetectorConfig::standard());
        let mut fired = Vec::new();
        for t in 0..20 {
            let mut f = frame(t, 1_000, 50_000);
            f.down_mask = if (5..12).contains(&t) { 0b10 } else { 0 };
            bank.observe(&f, |a| fired.push(a));
        }
        let member: Vec<&Anomaly> = fired
            .iter()
            .filter(|a| a.kind == DetectorKind::MembershipChange)
            .collect();
        assert_eq!(member.len(), 2);
        assert_eq!((member[0].tick, member[0].value), (5, 0b10));
        assert_eq!((member[1].tick, member[1].value), (12, 0));
        assert_eq!(member[1].baseline, 0b10);
    }

    #[test]
    fn replay_is_byte_identical_to_online_detection() {
        let frames: Vec<TickScalars> = (0..100)
            .map(|t| {
                let mut f = frame(t, 1_000 + (t % 7) * 40, 50_000 + (t % 5) * 900);
                if t == 60 {
                    f.gap_us = 90_000;
                    f.iter_us = 400_000;
                }
                f
            })
            .collect();
        let mut online = Vec::new();
        let mut bank = DetectorBank::new(DetectorConfig::standard());
        for f in &frames {
            bank.observe(f, |a| online.push(a));
        }
        let replayed = DetectorBank::replay(DetectorConfig::standard(), &frames);
        assert_eq!(online, replayed);
        assert!(!online.is_empty(), "the injected fault must fire something");
    }

    #[test]
    fn mutated_thresholds_change_the_anomaly_sequence() {
        // The canary contract: on a series with real variation, the
        // loosened bank fires where the standard bank stays quiet.
        let frames: Vec<TickScalars> = (0..64)
            .map(|t| frame(t, 800 + (t % 9) * 220, 50_000 + (t % 6) * 4_000))
            .collect();
        let standard = DetectorBank::replay(DetectorConfig::standard(), &frames);
        let mutated = DetectorBank::replay(DetectorConfig::mutated(), &frames);
        assert_ne!(standard, mutated, "mutation must be observable");
    }

    #[test]
    fn hub_rollups_pin_the_1x_8x_64x_downsample_path() {
        // Golden test for the rollup cascade: 128 ticks with known values;
        // the 8× ring must hold 16 window frames and the 64× ring 2, with
        // max-gap / summed-iter / summed-count / merged-histogram
        // semantics exact.
        let hub = TelemetryHub::new(TelemetryConfig {
            ring1: 256,
            ring8: 32,
            ring64: 8,
            ..TelemetryConfig::default()
        });
        for t in 0..128u64 {
            hub.record_fetch_us(FlightTier::Cache, 10 + t);
            hub.record_fetch_us(FlightTier::Store, 4_000 + t);
            let f = TickScalars {
                tick: t,
                gap_us: 1_000 + (t % 8) * 100, // max in each 8-window: 1700
                iter_us: 50_000,
                local_hits: 7,
                remote_hits: 0,
                misses: 1,
                delivered: 8,
                ..TickScalars::default()
            };
            hub.record_tick(f, |_| {});
        }
        let snap = hub.snapshot();
        assert_eq!(snap.ticks, 128);
        assert_eq!(snap.frames.len(), 128);
        assert_eq!(snap.rollup8.len(), 16);
        assert_eq!(snap.rollup64.len(), 2);

        for (w, f8) in snap.rollup8.iter().enumerate() {
            let s = &f8.scalars;
            assert_eq!(s.tick, w as u64 * 8, "window start tick");
            assert_eq!(s.gap_us, 1_700, "window max gap");
            assert_eq!(s.iter_us, 8 * 50_000, "window iter sum");
            assert_eq!(s.local_hits, 56);
            assert_eq!(s.misses, 8);
            assert_eq!(s.delivered, 64);
            let cache = LogHistogram::from_compact(&f8.cache_fetch_us).unwrap();
            assert_eq!(cache.count(), 8, "8 cache fetches per window");
        }
        for (w, f64_) in snap.rollup64.iter().enumerate() {
            let s = &f64_.scalars;
            assert_eq!(s.tick, w as u64 * 64);
            assert_eq!(s.gap_us, 1_700);
            assert_eq!(s.iter_us, 64 * 50_000);
            assert_eq!(s.local_hits, 448);
            assert_eq!(s.delivered, 512);
            let cache = LogHistogram::from_compact(&f64_.cache_fetch_us).unwrap();
            let store = LogHistogram::from_compact(&f64_.store_fetch_us).unwrap();
            assert_eq!(cache.count(), 64);
            assert_eq!(store.count(), 64);
            // Window 0 saw store latencies 4000..4063.
            if w == 0 {
                assert_eq!(store.min(), Some(4_000));
                assert_eq!(store.max(), Some(4_063));
            }
        }

        // The rollup histograms must equal a direct merge of the window's
        // 1× histograms — no drift through the cascade.
        let mut direct = LogHistogram::new();
        for f in &snap.frames[0..64] {
            direct.merge(&LogHistogram::from_compact(&f.store_fetch_us).unwrap());
        }
        assert_eq!(
            LogHistogram::from_compact(&snap.rollup64[0].store_fetch_us).unwrap(),
            direct
        );
    }

    #[test]
    fn ring_wrap_retains_the_newest_frames() {
        let hub = TelemetryHub::new(TelemetryConfig {
            ring1: 16,
            ring8: 4,
            ring64: 2,
            ..TelemetryConfig::default()
        });
        for t in 0..100u64 {
            hub.record_tick(frame(t, 1_000, 50_000), |_| {});
        }
        let snap = hub.snapshot();
        assert_eq!(snap.ticks, 100);
        assert_eq!(snap.frames.len(), 16);
        assert_eq!(snap.frames[0].scalars.tick, 84);
        assert_eq!(snap.frames[15].scalars.tick, 99);
    }

    #[test]
    fn merge_frames_aligns_by_tick_and_aggregates() {
        let mk = |tick: u64, gap: u64, local: u64| {
            let mut f = TickFrame::from_scalars(TickScalars {
                tick,
                gap_us: gap,
                iter_us: 10_000,
                local_hits: local,
                misses: 2,
                delivered: 8,
                loader_workers: 4,
                ..TickScalars::default()
            });
            let mut h = LogHistogram::new();
            h.record(gap);
            f.cache_fetch_us = h.to_compact();
            f
        };
        let a = vec![mk(0, 500, 5), mk(1, 700, 6)];
        let b = vec![mk(1, 900, 3), mk(2, 400, 2)];
        let merged = merge_frames(&a, &b);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[0].scalars.tick, 0);
        let t1 = &merged[1].scalars;
        assert_eq!(t1.tick, 1);
        assert_eq!(t1.gap_us, 900, "cluster gap is the worst node's");
        assert_eq!(t1.local_hits, 9);
        assert_eq!(t1.delivered, 16);
        assert_eq!(t1.loader_workers, 8);
        let h = LogHistogram::from_compact(&merged[1].cache_fetch_us).unwrap();
        assert_eq!(h.count(), 2, "latency payloads merged");
        assert_eq!(merged[2].scalars.tick, 2);
    }

    #[test]
    fn telemetry_lines_round_trip() {
        let f = TickFrame::from_scalars(frame(7, 1_234, 56_000));
        let a = Anomaly {
            kind: DetectorKind::LevelShift,
            tick: 9,
            onset_tick: 8,
            value: 120_000,
            baseline: 50_000,
            severity: 61_750,
        };
        let s = SloVerdict {
            spec: "gap_us<2000".to_string(),
            frames: 10,
            violations: 0,
            burn_pct: 0.0,
            worst_tick: 0,
            worst_value: 0.0,
            pass: true,
        };
        for line in [
            TelemetryLine::Frame(f),
            TelemetryLine::Anomaly(a),
            TelemetryLine::Slo(s),
        ] {
            let text = line.to_json();
            let back = TelemetryLine::from_json(&text).expect("parse back");
            assert_eq!(back, line);
        }
        assert!(TelemetryLine::from_json("{\"type\":\"other\"}").is_err());
        assert!(TelemetryLine::from_json("garbage").is_err());
        let stream = [
            TelemetryLine::Frame(TickFrame::from_scalars(frame(0, 1, 2))).to_json(),
            String::new(),
            TelemetryLine::Anomaly(a).to_json(),
        ]
        .join("\n");
        assert_eq!(parse_telemetry_stream(&stream).unwrap().len(), 2);
    }

    #[test]
    fn slo_specs_parse_and_display_round_trip() {
        for text in [
            "gap_us<2000",
            "gap_ratio<=0.5@64:25",
            "hit_rate>=0.8@32",
            "p95_sample_latency_us<5000",
            "iter_us<100000",
            "retries<=0",
        ] {
            let spec = SloSpec::parse(text).unwrap_or_else(|e| panic!("{e}"));
            let again = SloSpec::parse(&spec.display()).unwrap();
            assert_eq!(spec, again, "display re-parses: {text}");
        }
        assert!(SloSpec::parse("nope<1").is_err());
        assert!(SloSpec::parse("gap_us 1").is_err());
        assert!(SloSpec::parse("gap_us<abc").is_err());
        assert!(SloSpec::parse("gap_us<1@x").is_err());
        let specs = parse_slo_specs("gap_us<2000; hit_rate>=0.5").unwrap();
        assert_eq!(specs.len(), 2);
    }

    #[test]
    fn slo_verdicts_catch_violations_with_tick_attribution() {
        let frames: Vec<TickFrame> = (0..50u64)
            .map(|t| {
                let mut s = frame(t, 1_000, 50_000);
                if t == 33 {
                    s.gap_us = 9_000;
                }
                TickFrame::from_scalars(s)
            })
            .collect();
        let pass = evaluate_slo(&SloSpec::parse("gap_us<10000").unwrap(), &frames);
        assert!(pass.pass);
        assert_eq!(pass.violations, 0);

        let fail = evaluate_slo(&SloSpec::parse("gap_us<2000").unwrap(), &frames);
        assert!(!fail.pass);
        assert_eq!(fail.violations, 1);
        assert_eq!(fail.worst_tick, 33);
        assert_eq!(fail.worst_value, 9_000.0);

        // Burn-rate tolerance: 1 violation in 50 frames = 2% burn, which a
        // 10%-burn window absorbs.
        let tolerant = evaluate_slo(&SloSpec::parse("gap_us<2000@50:10").unwrap(), &frames);
        assert!(tolerant.pass, "{tolerant:?}");
        assert!(tolerant.burn_pct > 0.0);

        // Small windows concentrate the burn: the window holding tick 33
        // burns 12.5% > 10%.
        let windowed = evaluate_slo(&SloSpec::parse("gap_us<2000@8:10").unwrap(), &frames);
        assert!(!windowed.pass);
    }

    #[test]
    fn slo_hit_rate_skips_frames_without_fetches() {
        let mut idle = frame(0, 1_000, 50_000);
        idle.local_hits = 0;
        idle.remote_hits = 0;
        idle.misses = 0;
        let frames = vec![
            TickFrame::from_scalars(idle),
            TickFrame::from_scalars(frame(1, 1_000, 50_000)),
        ];
        let v = evaluate_slo(&SloSpec::parse("hit_rate>=0.8").unwrap(), &frames);
        assert_eq!(v.frames, 1, "idle frame skipped");
        assert!(v.pass);
    }

    #[test]
    fn detector_kind_labels_round_trip() {
        for k in DetectorKind::ALL {
            assert_eq!(DetectorKind::by_label(k.label()), Some(k));
        }
        assert_eq!(DetectorKind::by_label("nope"), None);
    }
}
