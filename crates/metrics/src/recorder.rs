//! Always-on flight recorder: a fixed-capacity ring that retains the last
//! K structured events of a run — per-stage [`StageSample`]s, tier fetch
//! latencies as mergeable [`LogHistogram`]s, elastic role flips, and
//! fault/retry/escalation events — so a worker panic, a deadline
//! escalation, or a conformance divergence can dump a self-describing
//! `flightdump_*.json` without anyone having asked for a trace up front.
//!
//! ## Ring layout
//!
//! The ring is a preallocated `Vec` of K slots plus one atomic ticket
//! counter. A writer claims its slot with a single wait-free
//! `fetch_add` (ticket `t` owns slot `t % K`) and stores a fixed-size
//! `Copy` record under that slot's guard — there is no global lock, the
//! write path never allocates, and a slot guard can only be contended
//! when K writes lap the ring simultaneously or a dump is being taken.
//! Overwritten history is detected by the ticket stamped into each
//! record: a snapshot walks tickets `head-K .. head` and keeps only
//! slots whose stamp matches, so a torn-past slot is skipped, never
//! misreported.
//!
//! Tier latencies are too frequent to ring-buffer one event each; they
//! aggregate into one [`LogHistogram`] per [`FlightTier`], combinable
//! from per-thread histograms at barrier time via
//! [`LogHistogram::merge`].
//!
//! ## Dump format
//!
//! [`FlightDump`] is schema-versioned (`schema_version`, `kind`) and
//! carries the retained events in seq order plus the per-tier
//! histograms in their sparse [`CompactHistogram`] form. The doctor's
//! `--flight` mode ([`lobster_doctor`]) re-runs the same phase
//! diagnosis over a dump that it runs over a full trace.
//!
//! [`lobster_doctor`]: ../../lobster_bench/doctor/index.html

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::analysis::StageSample;
use crate::histogram::{CompactHistogram, LogHistogram};

/// Version stamped into (and required of) every flight dump.
pub const FLIGHT_SCHEMA_VERSION: u32 = 1;

/// The `kind` discriminator stamped into every flight dump.
pub const FLIGHT_DUMP_KIND: &str = "lobster-flightdump";

/// Default ring capacity: enough for the last few hundred iterations of a
/// small cluster (each iteration records one `Iteration` event plus one
/// `Stage` event per GPU).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

/// Which tier served a fetch, for the aggregated latency histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlightTier {
    /// Node-local cache hit.
    Cache,
    /// Backing store (the engine's resilient fetch path).
    Store,
}

impl FlightTier {
    pub const ALL: [FlightTier; 2] = [FlightTier::Cache, FlightTier::Store];

    pub fn label(self) -> &'static str {
        match self {
            FlightTier::Cache => "cache",
            FlightTier::Store => "store",
        }
    }

    fn index(self) -> usize {
        match self {
            FlightTier::Cache => 0,
            FlightTier::Store => 1,
        }
    }
}

/// Fault classes recorded into the ring (mirrors the trace's
/// `fault_*` instants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlightFault {
    /// Transient store error, retried.
    Transient,
    /// Checksum mismatch, refetched.
    Corruption,
    /// Per-fetch deadline expired, round abandoned.
    Deadline,
    /// A loader worker panicked and was contained.
    WorkerPanic,
    /// A peer-routed fetch found the peer crashed and failed over to the
    /// PFS without burning a retry round.
    PeerDown,
}

impl FlightFault {
    pub fn label(self) -> &'static str {
        match self {
            FlightFault::Transient => "transient",
            FlightFault::Corruption => "corruption",
            FlightFault::Deadline => "deadline",
            FlightFault::WorkerPanic => "worker_panic",
            FlightFault::PeerDown => "peer_down",
        }
    }
}

/// One structured event in the ring. Every variant is fixed-size `Copy`
/// so the record path stores by value and never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FlightEvent {
    /// One engine iteration's analyzer conclusion (consumer 0, post-barrier).
    Iteration {
        iter: u64,
        gap_us: u64,
        ewma_gap_us: u64,
    },
    /// One GPU's per-stage blame decomposition for an iteration.
    Stage {
        iter: u64,
        node: u32,
        gpu: u32,
        iter_us: u64,
        stages: StageSample,
    },
    /// An elastic controller tick changed worker roles.
    RoleFlip {
        tick: u64,
        loaders: u32,
        preprocs: u32,
        flips: u32,
    },
    /// An injected or organic fault was observed.
    Fault { kind: FlightFault, sample: u64 },
    /// A fetch retried beyond its first attempt.
    Retry { sample: u64, round: u64 },
    /// A fetch round expired and the next round's deadline budget doubled.
    Escalation {
        sample: u64,
        round: u64,
        budget_ms: u64,
    },
    /// First divergence found by the conformance harness.
    Divergence { iteration: u64 },
    /// A cluster-membership transition: a node crashed (losing its cache)
    /// or rejoined cold, at a tick boundary of the compiled crash plan.
    MembershipChange { tick: u64, node: u32, crashed: bool },
    /// An online telemetry detector fired (see
    /// [`DetectorBank`](crate::telemetry::DetectorBank)); `value` and
    /// `baseline` are detector-specific integers, units per
    /// [`DetectorKind`](crate::telemetry::DetectorKind).
    Anomaly {
        kind: crate::telemetry::DetectorKind,
        tick: u64,
        value: u64,
        baseline: u64,
    },
}

/// A ring entry: the event plus its global ordinal and timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlightRecord {
    /// Global ordinal (ticket) of this event; dense across the run even
    /// though only the last K survive.
    pub seq: u64,
    /// Microseconds since the bundle's trace origin.
    pub ts_us: u64,
    pub event: FlightEvent,
}

/// The fixed-capacity event ring plus per-tier latency histograms.
pub struct FlightRecorder {
    slots: Vec<Mutex<FlightRecord>>,
    head: AtomicU64,
    tiers: Vec<Mutex<LogHistogram>>,
}

impl FlightRecorder {
    pub fn new(capacity: usize) -> FlightRecorder {
        assert!(capacity > 0, "flight recorder needs at least one slot");
        let empty = FlightRecord {
            seq: u64::MAX,
            ts_us: 0,
            event: FlightEvent::Iteration {
                iter: 0,
                gap_us: 0,
                ewma_gap_us: 0,
            },
        };
        FlightRecorder {
            slots: (0..capacity).map(|_| Mutex::new(empty)).collect(),
            head: AtomicU64::new(0),
            tiers: FlightTier::ALL
                .iter()
                .map(|_| Mutex::new(LogHistogram::new()))
                .collect(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events ever recorded (retained = `min(total, capacity)`).
    pub fn total_recorded(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Record one event. Wait-free slot claim, allocation-free store.
    #[inline]
    pub fn record(&self, ts_us: u64, event: FlightEvent) {
        let ticket = self.head.fetch_add(1, Ordering::AcqRel);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        *slot.lock().unwrap_or_else(|e| e.into_inner()) = FlightRecord {
            seq: ticket,
            ts_us,
            event,
        };
    }

    /// Fold one fetch latency into the tier's aggregate histogram
    /// (allocation-free: the histogram's buckets are preallocated).
    #[inline]
    pub fn record_fetch_us(&self, tier: FlightTier, us: u64) {
        self.tiers[tier.index()]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .record(us);
    }

    /// Combine a per-thread histogram into the tier aggregate — the
    /// barrier-time merge path ([`LogHistogram::merge`]).
    pub fn merge_tier(&self, tier: FlightTier, h: &LogHistogram) {
        self.tiers[tier.index()]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .merge(h);
    }

    /// Copy of one tier's aggregate latency histogram.
    pub fn tier_histogram(&self, tier: FlightTier) -> LogHistogram {
        self.tiers[tier.index()]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// The retained events in seq order (oldest first). Slots overwritten
    /// by a racing writer between the head read and the slot read are
    /// skipped rather than misordered.
    pub fn snapshot(&self) -> Vec<FlightRecord> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut out = Vec::with_capacity((head - start) as usize);
        for ticket in start..head {
            let rec = *self.slots[(ticket % cap) as usize]
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            if rec.seq == ticket {
                out.push(rec);
            }
        }
        out
    }

    /// Build the self-describing dump for `trigger`.
    pub fn dump(&self, trigger: &str) -> FlightDump {
        FlightDump {
            kind: FLIGHT_DUMP_KIND.to_string(),
            schema_version: FLIGHT_SCHEMA_VERSION,
            trigger: trigger.to_string(),
            capacity: self.slots.len() as u64,
            total_events: self.total_recorded(),
            events: self.snapshot(),
            tiers: FlightTier::ALL
                .iter()
                .map(|&t| FlightTierDump {
                    tier: t,
                    latency_us: self.tier_histogram(t).to_compact(),
                })
                .collect(),
        }
    }
}

/// One tier's aggregated fetch-latency histogram in a dump.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightTierDump {
    pub tier: FlightTier,
    pub latency_us: CompactHistogram,
}

/// The serialized flight dump (`flightdump_*.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightDump {
    /// Always [`FLIGHT_DUMP_KIND`]; rejects unrelated JSON on ingest.
    pub kind: String,
    /// Always [`FLIGHT_SCHEMA_VERSION`].
    pub schema_version: u32,
    /// What fired the dump: `worker_panic`, `abort`,
    /// `deadline_escalation`, or `conformance_divergence`.
    pub trigger: String,
    /// Ring capacity K at the time of the dump.
    pub capacity: u64,
    /// Events recorded over the whole run; `events` holds the last
    /// `min(total_events, capacity)` of them.
    pub total_events: u64,
    /// Retained events, oldest first.
    pub events: Vec<FlightRecord>,
    /// Per-tier fetch latency histograms (sparse form).
    pub tiers: Vec<FlightTierDump>,
}

impl FlightDump {
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("flight dump render")
    }

    /// Parse and validate a dump: the kind and schema version must match,
    /// and every tier histogram must rebuild cleanly.
    pub fn from_json(text: &str) -> Result<FlightDump, String> {
        let dump: FlightDump =
            serde_json::from_str(text).map_err(|e| format!("flight dump parse: {e}"))?;
        if dump.kind != FLIGHT_DUMP_KIND {
            return Err(format!(
                "not a flight dump: kind {:?} (want {FLIGHT_DUMP_KIND:?})",
                dump.kind
            ));
        }
        if dump.schema_version != FLIGHT_SCHEMA_VERSION {
            return Err(format!(
                "unsupported flight schema version {} (supported: {FLIGHT_SCHEMA_VERSION})",
                dump.schema_version
            ));
        }
        for t in &dump.tiers {
            LogHistogram::from_compact(&t.latency_us)
                .map_err(|e| format!("tier {} histogram: {e}", t.tier.label()))?;
        }
        Ok(dump)
    }

    /// The rebuilt latency histogram for `tier`, `None` if absent.
    pub fn tier_histogram(&self, tier: FlightTier) -> Option<LogHistogram> {
        self.tiers
            .iter()
            .find(|t| t.tier == tier)
            .and_then(|t| LogHistogram::from_compact(&t.latency_us).ok())
    }

    /// Where a dump file lands for a given trigger and ordinal.
    pub fn file_name(trigger: &str, ordinal: u64) -> String {
        format!("flightdump_{trigger}_{ordinal:04}.json")
    }

    /// Write the dump under `dir` (created if missing); returns the path.
    pub fn write_to(&self, dir: &std::path::Path, ordinal: u64) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(Self::file_name(&self.trigger, ordinal));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iter_event(iter: u64) -> FlightEvent {
        FlightEvent::Iteration {
            iter,
            gap_us: iter * 10,
            ewma_gap_us: iter * 8,
        }
    }

    #[test]
    fn ring_retains_the_last_k_in_order() {
        let rec = FlightRecorder::new(8);
        for i in 0..20u64 {
            rec.record(i, iter_event(i));
        }
        assert_eq!(rec.total_recorded(), 20);
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 8);
        let seqs: Vec<u64> = snap.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<u64>>());
        assert!(matches!(
            snap[0].event,
            FlightEvent::Iteration { iter: 12, .. }
        ));
    }

    #[test]
    fn partial_fill_snapshots_everything() {
        let rec = FlightRecorder::new(16);
        rec.record(1, iter_event(0));
        rec.record(
            2,
            FlightEvent::Fault {
                kind: FlightFault::WorkerPanic,
                sample: 7,
            },
        );
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].seq, 0);
        assert_eq!(snap[1].seq, 1);
        assert_eq!(
            snap[1].event,
            FlightEvent::Fault {
                kind: FlightFault::WorkerPanic,
                sample: 7
            }
        );
    }

    #[test]
    fn concurrent_writers_lose_nothing() {
        let rec = FlightRecorder::new(1 << 12);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let rec = &rec;
                s.spawn(move || {
                    for i in 0..500u64 {
                        rec.record(i, iter_event(t * 1000 + i));
                    }
                });
            }
        });
        assert_eq!(rec.total_recorded(), 2000);
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 2000, "capacity exceeds total: all retained");
        for (k, r) in snap.iter().enumerate() {
            assert_eq!(r.seq, k as u64, "seq order is dense and sorted");
        }
    }

    #[test]
    fn tier_histograms_aggregate_and_merge() {
        let rec = FlightRecorder::new(4);
        rec.record_fetch_us(FlightTier::Cache, 10);
        rec.record_fetch_us(FlightTier::Cache, 20);
        rec.record_fetch_us(FlightTier::Store, 4000);

        // Barrier-time merge of a per-thread histogram.
        let mut thread_local = LogHistogram::new();
        thread_local.record_all([30, 40]);
        rec.merge_tier(FlightTier::Cache, &thread_local);

        assert_eq!(rec.tier_histogram(FlightTier::Cache).count(), 4);
        assert_eq!(rec.tier_histogram(FlightTier::Store).count(), 1);
        assert_eq!(rec.tier_histogram(FlightTier::Store).max(), Some(4000));
    }

    #[test]
    fn dump_round_trips_with_validation() {
        let rec = FlightRecorder::new(8);
        for i in 0..3 {
            rec.record(i * 100, iter_event(i));
        }
        rec.record(
            350,
            FlightEvent::Stage {
                iter: 2,
                node: 0,
                gpu: 1,
                iter_us: 900,
                stages: StageSample::default(),
            },
        );
        rec.record_fetch_us(FlightTier::Store, 1234);

        let dump = rec.dump("worker_panic");
        let json = dump.to_json();
        let back = FlightDump::from_json(&json).expect("valid dump");
        assert_eq!(back, dump);
        assert_eq!(back.trigger, "worker_panic");
        assert_eq!(back.total_events, 4);
        assert_eq!(back.events.len(), 4);
        assert_eq!(
            back.tier_histogram(FlightTier::Store).unwrap().max(),
            Some(1234)
        );
    }

    #[test]
    fn from_json_rejects_foreign_and_future_documents() {
        assert!(FlightDump::from_json("{}").is_err());
        assert!(FlightDump::from_json("not json").is_err());

        let rec = FlightRecorder::new(2);
        let mut dump = rec.dump("abort");
        dump.kind = "something-else".to_string();
        assert!(FlightDump::from_json(&dump.to_json())
            .unwrap_err()
            .contains("not a flight dump"));

        let mut dump = rec.dump("abort");
        dump.schema_version = FLIGHT_SCHEMA_VERSION + 1;
        assert!(FlightDump::from_json(&dump.to_json())
            .unwrap_err()
            .contains("unsupported"));
    }

    #[test]
    fn dump_file_name_embeds_trigger_and_ordinal() {
        assert_eq!(
            FlightDump::file_name("deadline_escalation", 3),
            "flightdump_deadline_escalation_0003.json"
        );
    }
}
