//! Result persistence: every experiment binary writes its series to
//! `results/<name>.json` (machine-readable) and `.csv` (plot-friendly) so
//! EXPERIMENTS.md can cite the exact numbers a run produced.

use serde::Serialize;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Where experiment outputs land (created on demand).
#[derive(Debug, Clone)]
pub struct ResultSink {
    dir: PathBuf,
}

impl ResultSink {
    pub fn new<P: AsRef<Path>>(dir: P) -> ResultSink {
        ResultSink {
            dir: dir.as_ref().to_path_buf(),
        }
    }

    /// Default sink: `results/` under the workspace root (or cwd).
    pub fn default_location() -> ResultSink {
        ResultSink::new("results")
    }

    fn ensure_dir(&self) -> std::io::Result<()> {
        fs::create_dir_all(&self.dir)
    }

    /// Serialize `value` as pretty JSON to `<dir>/<name>.json`.
    pub fn write_json<T: Serialize>(&self, name: &str, value: &T) -> std::io::Result<PathBuf> {
        self.ensure_dir()?;
        let path = self.dir.join(format!("{name}.json"));
        let json = serde_json::to_string_pretty(value).expect("experiment results serialize");
        fs::write(&path, json)?;
        Ok(path)
    }

    /// Write rows of `(column -> value)` as CSV to `<dir>/<name>.csv`.
    /// `header` fixes the column order.
    pub fn write_csv(
        &self,
        name: &str,
        header: &[&str],
        rows: &[Vec<String>],
    ) -> std::io::Result<PathBuf> {
        self.ensure_dir()?;
        let path = self.dir.join(format!("{name}.csv"));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", header.join(","))?;
        for row in rows {
            debug_assert_eq!(row.len(), header.len(), "CSV row width mismatch");
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    #[derive(Serialize)]
    struct Demo {
        x: u32,
        y: Vec<f64>,
    }

    #[test]
    fn json_roundtrip_via_disk() {
        let dir = std::env::temp_dir().join(format!("lobster-report-{}", std::process::id()));
        let sink = ResultSink::new(&dir);
        let path = sink
            .write_json(
                "demo",
                &Demo {
                    x: 7,
                    y: vec![1.0, 2.5],
                },
            )
            .unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"x\": 7"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let dir = std::env::temp_dir().join(format!("lobster-report-csv-{}", std::process::id()));
        let sink = ResultSink::new(&dir);
        let path = sink
            .write_csv(
                "demo",
                &["loader", "time_s"],
                &[
                    vec!["pytorch".into(), "12.0".into()],
                    vec!["lobster".into(), "6.0".into()],
                ],
            )
            .unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines, vec!["loader,time_s", "pytorch,12.0", "lobster,6.0"]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
