//! Low-overhead event tracing for the runtime engine and the DES simulator.
//!
//! The design goal is *zero cost when disabled*: every instrumentation site
//! goes through a [`Tracer`] handle whose disabled form is a `None` — the
//! event-construction closure is never invoked, so hot loops pay one branch
//! and nothing else. When enabled, events land in a sharded, bounded
//! [`TraceBuffer`] (16 shards keyed by thread, a short critical section per
//! push) and can be exported as Chrome trace-event JSON (loadable in
//! `chrome://tracing` / [Perfetto](https://ui.perfetto.dev)) or as JSONL,
//! one event per line.
//!
//! Timestamps are microseconds (`ts_us`) from an arbitrary per-run origin:
//! the live runtime stamps wall-clock time from the tracer's creation
//! instant, the simulator stamps simulated seconds scaled to µs. `pid`
//! carries the node id and `tid` the worker/GPU/queue id, matching the
//! Chrome trace model so Perfetto groups tracks sensibly.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of independently locked shards in a [`TraceBuffer`].
const SHARDS: usize = 16;

/// Default per-shard capacity (events); 16 shards × 64 Ki ≈ 1 M events.
const DEFAULT_SHARD_CAP: usize = 64 * 1024;

/// A single argument value attached to a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    U(u64),
    I(i64),
    F(f64),
    S(&'static str),
}

impl ArgValue {
    fn to_json(&self) -> serde_json::Value {
        use serde_json::{Number, Value};
        match self {
            ArgValue::U(u) => Value::Number(Number::U(*u)),
            ArgValue::I(i) => Value::Number(Number::I(*i)),
            ArgValue::F(f) => Value::Number(Number::F(*f)),
            ArgValue::S(s) => Value::String((*s).to_string()),
        }
    }
}

/// Span (has a duration) or instant (a point in time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// Complete event — Chrome phase `"X"` with a `dur` field.
    Span { dur_us: u64 },
    /// Instant event — Chrome phase `"i"`.
    Instant,
}

/// One trace event. Names and categories are `&'static str` so recording
/// never allocates for the common case; dynamic context goes in [`args`].
///
/// [`args`]: TraceEvent::args
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name, e.g. `"fetch"`, `"preprocess"`, `"controller_decision"`.
    pub name: &'static str,
    /// Category, e.g. `"io"`, `"queue"`, `"cache"`, `"control"`.
    pub cat: &'static str,
    /// Start time in microseconds from the trace origin.
    pub ts_us: u64,
    /// Process id in the Chrome model — the node id here.
    pub pid: u32,
    /// Thread id in the Chrome model — worker / GPU / queue id here.
    pub tid: u32,
    pub kind: EventKind,
    /// Extra key/value context (storage tier, queue depth, reuse distance…).
    pub args: Vec<(&'static str, ArgValue)>,
}

impl TraceEvent {
    /// A span covering `[ts_us, ts_us + dur_us]`.
    pub fn span(name: &'static str, cat: &'static str, ts_us: u64, dur_us: u64) -> TraceEvent {
        TraceEvent {
            name,
            cat,
            ts_us,
            pid: 0,
            tid: 0,
            kind: EventKind::Span { dur_us },
            args: Vec::new(),
        }
    }

    /// A point event at `ts_us`.
    pub fn instant(name: &'static str, cat: &'static str, ts_us: u64) -> TraceEvent {
        TraceEvent {
            name,
            cat,
            ts_us,
            pid: 0,
            tid: 0,
            kind: EventKind::Instant,
            args: Vec::new(),
        }
    }

    pub fn pid(mut self, pid: u32) -> TraceEvent {
        self.pid = pid;
        self
    }

    pub fn tid(mut self, tid: u32) -> TraceEvent {
        self.tid = tid;
        self
    }

    pub fn arg_u(mut self, key: &'static str, v: u64) -> TraceEvent {
        self.args.push((key, ArgValue::U(v)));
        self
    }

    pub fn arg_i(mut self, key: &'static str, v: i64) -> TraceEvent {
        self.args.push((key, ArgValue::I(v)));
        self
    }

    pub fn arg_f(mut self, key: &'static str, v: f64) -> TraceEvent {
        self.args.push((key, ArgValue::F(v)));
        self
    }

    pub fn arg_s(mut self, key: &'static str, v: &'static str) -> TraceEvent {
        self.args.push((key, ArgValue::S(v)));
        self
    }

    /// Render as a Chrome trace-event object (`ph` `"X"` or `"i"`).
    pub fn to_chrome_json(&self) -> serde_json::Value {
        use serde_json::{Map, Number, Value};
        let mut obj = Map::new();
        obj.insert("name".into(), Value::String(self.name.to_string()));
        obj.insert("cat".into(), Value::String(self.cat.to_string()));
        match self.kind {
            EventKind::Span { dur_us } => {
                obj.insert("ph".into(), Value::String("X".into()));
                obj.insert("ts".into(), Value::Number(Number::U(self.ts_us)));
                obj.insert("dur".into(), Value::Number(Number::U(dur_us)));
            }
            EventKind::Instant => {
                obj.insert("ph".into(), Value::String("i".into()));
                obj.insert("ts".into(), Value::Number(Number::U(self.ts_us)));
                // Thread-scoped instant: renders as a small marker on the track.
                obj.insert("s".into(), Value::String("t".into()));
            }
        }
        obj.insert("pid".into(), Value::Number(Number::U(self.pid as u64)));
        obj.insert("tid".into(), Value::Number(Number::U(self.tid as u64)));
        if !self.args.is_empty() {
            let mut args = Map::new();
            for (k, v) in &self.args {
                args.insert((*k).to_string(), v.to_json());
            }
            obj.insert("args".into(), Value::Object(args));
        }
        Value::Object(obj)
    }
}

struct Shard {
    events: Mutex<Vec<TraceEvent>>,
}

/// Sharded, bounded event store. Threads hash to a shard by thread id, so
/// concurrent recorders rarely contend; each shard holds at most
/// `shard_cap` events and counts (rather than stores) overflow.
pub struct TraceBuffer {
    shards: Vec<Shard>,
    shard_cap: usize,
    dropped: AtomicU64,
    origin: Instant,
}

impl TraceBuffer {
    pub fn new() -> TraceBuffer {
        TraceBuffer::with_shard_capacity(DEFAULT_SHARD_CAP)
    }

    pub fn with_shard_capacity(shard_cap: usize) -> TraceBuffer {
        TraceBuffer {
            shards: (0..SHARDS)
                .map(|_| Shard {
                    events: Mutex::new(Vec::new()),
                })
                .collect(),
            shard_cap: shard_cap.max(1),
            dropped: AtomicU64::new(0),
            origin: Instant::now(),
        }
    }

    /// Microseconds since this buffer was created (the trace origin for
    /// wall-clock recorders).
    pub fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    /// Store one event; drops (and counts) it only when every shard it
    /// rotates onto is full.
    ///
    /// Shard choice starts from a per-thread hash (concurrent recorders
    /// rarely collide) and rotates by a thread-local counter, so a
    /// single-threaded recorder still fills the whole buffer rather than
    /// one shard.
    pub fn push(&self, event: TraceEvent) {
        thread_local! {
            static SHARD_SEED: u64 = {
                let mut hasher = DefaultHasher::new();
                std::thread::current().id().hash(&mut hasher);
                hasher.finish()
            };
            static SHARD_TICK: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
        }
        let seed = SHARD_SEED.with(|s| *s);
        let tick = SHARD_TICK.with(|t| {
            let v = t.get();
            t.set(v.wrapping_add(1));
            v
        });
        let shard = &self.shards[(seed.wrapping_add(tick)) as usize % SHARDS];
        let mut events = shard.events.lock().unwrap_or_else(|e| e.into_inner());
        if events.len() < self.shard_cap {
            events.push(event);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Events dropped because a shard hit its capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Drain all shards into one list sorted by timestamp.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut all = Vec::new();
        for shard in &self.shards {
            let events = shard.events.lock().unwrap_or_else(|e| e.into_inner());
            all.extend(events.iter().cloned());
        }
        all.sort_by_key(|e| e.ts_us);
        all
    }

    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.events.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The whole trace as a Chrome trace-event JSON document
    /// (`{"traceEvents": [...]}`), viewable in Perfetto.
    pub fn chrome_trace_json(&self) -> String {
        use serde_json::{Map, Value};
        let events: Vec<Value> = self
            .snapshot()
            .iter()
            .map(TraceEvent::to_chrome_json)
            .collect();
        let mut doc = Map::new();
        doc.insert("traceEvents".into(), Value::Array(events));
        doc.insert("displayTimeUnit".into(), Value::String("ms".into()));
        serde_json::to_string(&Value::Object(doc)).expect("trace render")
    }

    /// The whole trace as JSONL: one Chrome trace-event object per line.
    pub fn jsonl(&self) -> String {
        let mut out = String::new();
        for event in self.snapshot() {
            out.push_str(&serde_json::to_string(&event.to_chrome_json()).expect("trace render"));
            out.push('\n');
        }
        out
    }
}

impl Default for TraceBuffer {
    fn default() -> TraceBuffer {
        TraceBuffer::new()
    }
}

/// Cloneable recording handle. The disabled tracer is a `None` inside — the
/// closure given to [`Tracer::record_with`] is never called, so disabled
/// instrumentation costs a single branch.
#[derive(Clone, Default)]
pub struct Tracer {
    buffer: Option<Arc<TraceBuffer>>,
}

impl Tracer {
    /// A tracer that records nothing.
    pub fn disabled() -> Tracer {
        Tracer { buffer: None }
    }

    /// A tracer recording into a fresh default-capacity buffer.
    pub fn enabled() -> Tracer {
        Tracer {
            buffer: Some(Arc::new(TraceBuffer::new())),
        }
    }

    pub fn with_buffer(buffer: Arc<TraceBuffer>) -> Tracer {
        Tracer {
            buffer: Some(buffer),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.buffer.is_some()
    }

    /// Record the event produced by `make` — which only runs when tracing
    /// is enabled, keeping the disabled path free of any construction work.
    #[inline]
    pub fn record_with<F: FnOnce() -> TraceEvent>(&self, make: F) {
        if let Some(buffer) = &self.buffer {
            buffer.push(make());
        }
    }

    /// Microseconds since the trace origin; 0 when disabled.
    #[inline]
    pub fn now_us(&self) -> u64 {
        self.buffer.as_deref().map_or(0, TraceBuffer::now_us)
    }

    pub fn buffer(&self) -> Option<&Arc<TraceBuffer>> {
        self.buffer.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_never_builds_events() {
        let t = Tracer::disabled();
        let mut built = false;
        t.record_with(|| {
            built = true;
            TraceEvent::instant("x", "t", 0)
        });
        assert!(!built);
        assert_eq!(t.now_us(), 0);
    }

    #[test]
    fn snapshot_is_time_sorted() {
        let buf = TraceBuffer::new();
        buf.push(TraceEvent::instant("b", "t", 20));
        buf.push(TraceEvent::span("a", "t", 10, 5));
        let snap = buf.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].name, "a");
        assert_eq!(snap[1].name, "b");
    }

    #[test]
    fn bounded_buffer_counts_drops() {
        let buf = TraceBuffer::with_shard_capacity(1);
        // Rotation fills every shard once; the rest are dropped.
        for i in 0..(2 * SHARDS as u64) {
            buf.push(TraceEvent::instant("e", "t", i));
        }
        assert_eq!(buf.len(), SHARDS);
        assert_eq!(buf.dropped(), SHARDS as u64);
    }

    #[test]
    fn chrome_json_has_required_fields() {
        let buf = TraceBuffer::new();
        buf.push(
            TraceEvent::span("fetch", "io", 100, 40)
                .pid(1)
                .tid(3)
                .arg_s("tier", "store")
                .arg_u("bytes", 4096),
        );
        buf.push(TraceEvent::instant("evict", "cache", 150).arg_u("victims", 2));
        let doc: serde_json::Value = serde_json::from_str(&buf.chrome_trace_json()).unwrap();
        let events = doc["traceEvents"].as_array().unwrap();
        assert_eq!(events.len(), 2);
        let span = &events[0];
        assert_eq!(span["ph"].as_str().unwrap(), "X");
        assert_eq!(span["ts"].as_u64().unwrap(), 100);
        assert_eq!(span["dur"].as_u64().unwrap(), 40);
        assert_eq!(span["pid"].as_u64().unwrap(), 1);
        assert_eq!(span["tid"].as_u64().unwrap(), 3);
        assert_eq!(span["args"]["tier"].as_str().unwrap(), "store");
        let inst = &events[1];
        assert_eq!(inst["ph"].as_str().unwrap(), "i");
        assert_eq!(inst["args"]["victims"].as_u64().unwrap(), 2);
    }

    #[test]
    fn jsonl_one_object_per_line() {
        let buf = TraceBuffer::new();
        buf.push(TraceEvent::instant("a", "t", 1));
        buf.push(TraceEvent::instant("b", "t", 2));
        let jsonl = buf.jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert!(v["name"].as_str().is_some());
        }
    }
}
