//! Controller decision log.
//!
//! Every adaptive thread-reassignment — the live engine's controller tick
//! and every Algorithm 1 solve inside `LobsterPolicy` — is captured as a
//! [`DecisionRecord`]: the inputs the controller saw (per-queue load and
//! the model's predicted per-queue cost), the thread vector it produced,
//! and the search's convergence status. The log is bounded; overflow is
//! counted, not stored.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

/// Which controller produced a decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecisionSource {
    /// The live runtime engine's periodic reassignment tick.
    EngineController,
    /// An Algorithm 1 (binary-search thread assignment) solve in a policy.
    Algorithm1,
    /// The elastic worker pool flipping preproc↔loader roles at an
    /// iteration boundary.
    ElasticPool,
}

/// One adaptive thread-reassignment decision.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionRecord {
    /// Microseconds from the trace origin (wall clock for the runtime,
    /// simulated time for the DES).
    pub ts_us: u64,
    pub source: DecisionSource,
    /// Node the decision applies to (0 for the single-node runtime).
    pub node: u32,
    /// Input: observed per-queue load (queue depth for the live engine,
    /// queued bytes-cost seconds for the simulator).
    pub queue_loads: Vec<f64>,
    /// Input: model-predicted per-queue cost in seconds.
    pub predicted_cost: Vec<f64>,
    /// Thread vector before the decision (empty if unknown).
    pub threads_before: Vec<u32>,
    /// Output: thread vector after the decision.
    pub threads_after: Vec<u32>,
    /// Remaining straggler gap in seconds after the solve, if the source
    /// computes one.
    pub gap_s: Option<f64>,
    /// Model evaluations the search spent.
    pub evals: u32,
    /// Whether the search converged (closed the gap / stopped inside its
    /// tolerance window) rather than exhausting its budget.
    pub converged: bool,
    /// Telemetry anomalies observed before this decision (the hub's
    /// running count at decision time). Joins each Algorithm-1 / elastic
    /// decision to the anomaly state that preceded it: a decision with
    /// `anomalies_before` greater than the previous record's reacted to
    /// fresh trouble. Stamped by `Instruments::record_decision`; 0 when
    /// telemetry is off.
    pub anomalies_before: u32,
}

/// Bounded, thread-safe list of decisions.
pub struct DecisionLog {
    records: Mutex<Vec<DecisionRecord>>,
    cap: usize,
    dropped: AtomicU64,
}

const DEFAULT_CAP: usize = 64 * 1024;

impl DecisionLog {
    pub fn new() -> DecisionLog {
        DecisionLog::with_capacity(DEFAULT_CAP)
    }

    pub fn with_capacity(cap: usize) -> DecisionLog {
        DecisionLog {
            records: Mutex::new(Vec::new()),
            cap: cap.max(1),
            dropped: AtomicU64::new(0),
        }
    }

    pub fn push(&self, record: DecisionRecord) {
        let mut records = self.records.lock().unwrap_or_else(|e| e.into_inner());
        if records.len() < self.cap {
            records.push(record);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn len(&self) -> usize {
        self.records.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> Vec<DecisionRecord> {
        self.records
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// JSONL export, one decision per line.
    pub fn jsonl(&self) -> String {
        let mut out = String::new();
        for r in self.snapshot() {
            out.push_str(&serde_json::to_string(&r).expect("decision render"));
            out.push('\n');
        }
        out
    }
}

impl Default for DecisionLog {
    fn default() -> DecisionLog {
        DecisionLog::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(ts: u64) -> DecisionRecord {
        DecisionRecord {
            ts_us: ts,
            source: DecisionSource::Algorithm1,
            node: 0,
            queue_loads: vec![1.0, 2.0],
            predicted_cost: vec![0.5, 0.9],
            threads_before: vec![1, 1],
            threads_after: vec![1, 3],
            gap_s: Some(0.01),
            evals: 4,
            converged: true,
            anomalies_before: 0,
        }
    }

    #[test]
    fn bounded_log_counts_overflow() {
        let log = DecisionLog::with_capacity(2);
        for i in 0..4 {
            log.push(record(i));
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 2);
    }

    #[test]
    fn jsonl_roundtrips_fields() {
        let log = DecisionLog::new();
        log.push(record(7));
        let line = log.jsonl();
        let v: serde_json::Value = serde_json::from_str(line.trim()).unwrap();
        assert_eq!(v["ts_us"].as_u64().unwrap(), 7);
        assert_eq!(v["source"].as_str().unwrap(), "Algorithm1");
        assert_eq!(v["threads_after"][1].as_u64().unwrap(), 3);
        assert!(v["converged"].as_bool().unwrap());
    }
}
