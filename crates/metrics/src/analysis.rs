//! Online bottleneck attribution: who is the straggler, and why?
//!
//! Lobster's objective (Eq. 3) is minimizing the per-iteration gap between
//! the slowest and fastest GPU. The raw observability layer ([`crate::trace`],
//! [`crate::registry`], [`crate::decisions`]) records *events*; this module
//! turns them into *answers*, while the run is still going:
//!
//! 1. **Critical-path attribution** — each GPU-iteration's time is blamed
//!    to a [`BlameCategory`]: local-cache / remote-cache / PFS fetch,
//!    preprocessing, queue wait, barrier wait, training, or unattributed
//!    remainder. Blame rule: a stage's seconds go to its own category; a
//!    mixed fetch is blamed per tier when the producer can split it (the
//!    simulator can, via `LoadTimeParts`) and otherwise on the slowest tier
//!    present in the span.
//! 2. **The live Eq.-3 gap** — `T_max − T_min` over the per-GPU effective
//!    iteration times, with an EWMA trend so a transient blip is
//!    distinguishable from a persistent imbalance, and a log-bucketed gap
//!    histogram so skewed workloads (DESIGN.md §15) report the p50/p99
//!    tail the mean gap alone would hide.
//! 3. **Straggler detection** — a GPU whose share of the cluster's blamed
//!    overage exceeds [`AnalysisConfig::straggler_share`] for
//!    [`AnalysisConfig::straggler_consecutive`] consecutive iterations is
//!    flagged as a straggler episode (emitted by [`crate::Instruments`] as a
//!    `straggler_detected` trace instant and an `analysis.straggler_gpu`
//!    gauge).
//! 4. **Solver efficacy** — every controller decision is joined against the
//!    gap observed immediately before and after it, so "did Algorithm 1
//!    actually close the gap?" is a table, not an archaeology project.
//!
//! The analyzer is deliberately storage-light: per-GPU accumulators, a
//! bounded gap series, and bounded episode/efficacy tables — it is meant to
//! run *inside* the engine's iteration loop.

use serde::{Deserialize, Serialize};

use crate::decisions::{DecisionRecord, DecisionSource};
use crate::histogram::LogHistogram;

/// Where one GPU-iteration's wall time went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlameCategory {
    /// Fetch served by the node-local cache.
    LocalFetch,
    /// Fetch served by a remote node's cache.
    RemoteFetch,
    /// Fetch that reached the PFS.
    PfsFetch,
    /// Sample preprocessing (decode / augment stand-in).
    Preprocess,
    /// Waiting for work to arrive in a request queue.
    QueueWait,
    /// Waiting on the gradient-allreduce barrier for stragglers.
    Barrier,
    /// The training compute itself.
    Train,
    /// Remainder the producer could not attribute.
    Other,
}

impl BlameCategory {
    pub const ALL: [BlameCategory; 8] = [
        BlameCategory::LocalFetch,
        BlameCategory::RemoteFetch,
        BlameCategory::PfsFetch,
        BlameCategory::Preprocess,
        BlameCategory::QueueWait,
        BlameCategory::Barrier,
        BlameCategory::Train,
        BlameCategory::Other,
    ];

    pub fn label(self) -> &'static str {
        match self {
            BlameCategory::LocalFetch => "local_fetch",
            BlameCategory::RemoteFetch => "remote_fetch",
            BlameCategory::PfsFetch => "pfs_fetch",
            BlameCategory::Preprocess => "preprocess",
            BlameCategory::QueueWait => "queue_wait",
            BlameCategory::Barrier => "barrier",
            BlameCategory::Train => "train",
            BlameCategory::Other => "other",
        }
    }

    /// The storage tier name this category maps to, if it is a fetch.
    pub fn tier(self) -> Option<&'static str> {
        match self {
            BlameCategory::LocalFetch => Some("local"),
            BlameCategory::RemoteFetch => Some("remote"),
            BlameCategory::PfsFetch => Some("pfs"),
            _ => None,
        }
    }
}

/// Seconds blamed to each category for one GPU-iteration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StageSample {
    pub local_fetch_s: f64,
    pub remote_fetch_s: f64,
    pub pfs_fetch_s: f64,
    pub preprocess_s: f64,
    pub queue_wait_s: f64,
    pub barrier_s: f64,
    pub train_s: f64,
    pub other_s: f64,
}

impl StageSample {
    pub fn get(&self, cat: BlameCategory) -> f64 {
        match cat {
            BlameCategory::LocalFetch => self.local_fetch_s,
            BlameCategory::RemoteFetch => self.remote_fetch_s,
            BlameCategory::PfsFetch => self.pfs_fetch_s,
            BlameCategory::Preprocess => self.preprocess_s,
            BlameCategory::QueueWait => self.queue_wait_s,
            BlameCategory::Barrier => self.barrier_s,
            BlameCategory::Train => self.train_s,
            BlameCategory::Other => self.other_s,
        }
    }

    pub fn add(&mut self, cat: BlameCategory, secs: f64) {
        let slot = match cat {
            BlameCategory::LocalFetch => &mut self.local_fetch_s,
            BlameCategory::RemoteFetch => &mut self.remote_fetch_s,
            BlameCategory::PfsFetch => &mut self.pfs_fetch_s,
            BlameCategory::Preprocess => &mut self.preprocess_s,
            BlameCategory::QueueWait => &mut self.queue_wait_s,
            BlameCategory::Barrier => &mut self.barrier_s,
            BlameCategory::Train => &mut self.train_s,
            BlameCategory::Other => &mut self.other_s,
        };
        *slot += secs.max(0.0);
    }

    pub fn merge(&mut self, other: &StageSample) {
        for cat in BlameCategory::ALL {
            self.add(cat, other.get(cat));
        }
    }

    pub fn total_s(&self) -> f64 {
        BlameCategory::ALL.iter().map(|&c| self.get(c)).sum()
    }

    /// Seconds not spent training or idling at the barrier — the loading
    /// critical path this GPU contributed (what Algorithm 1 can shrink).
    pub fn pipeline_s(&self) -> f64 {
        self.local_fetch_s
            + self.remote_fetch_s
            + self.pfs_fetch_s
            + self.preprocess_s
            + self.queue_wait_s
            + self.other_s
    }

    /// The category with the most blamed seconds among the pipeline (non
    /// train/barrier) categories; `None` when nothing was blamed.
    pub fn dominant_pipeline_category(&self) -> Option<BlameCategory> {
        BlameCategory::ALL
            .iter()
            .copied()
            .filter(|c| !matches!(c, BlameCategory::Train | BlameCategory::Barrier))
            .filter(|&c| self.get(c) > 0.0)
            .max_by(|&a, &b| {
                self.get(a)
                    .partial_cmp(&self.get(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }
}

/// One GPU's observation for one iteration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GpuIterSample {
    /// Node id (Chrome `pid`).
    pub node: u32,
    /// GPU / consumer id within the node (Chrome `tid`).
    pub gpu: u32,
    /// Effective iteration seconds for the Eq.-3 gap: the per-GPU pipeline
    /// time floored by training (a uniformly slow cluster is a bottleneck,
    /// not an imbalance).
    pub iter_s: f64,
    /// Where the time went.
    pub stages: StageSample,
}

/// Tunables for straggler detection and trend smoothing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalysisConfig {
    /// A GPU is straggling while its share of the cluster's summed per-GPU
    /// overage (`iter_s − T_min`) exceeds this fraction. With `G` GPUs a
    /// perfectly balanced cluster gives every GPU a share of `1/G`.
    pub straggler_share: f64,
    /// Consecutive iterations over the share threshold before an episode is
    /// flagged.
    pub straggler_consecutive: u32,
    /// EWMA weight of the newest gap observation.
    pub ewma_alpha: f64,
    /// Bound on stored gap-series points / episodes / efficacy rows.
    pub max_records: usize,
}

impl Default for AnalysisConfig {
    fn default() -> AnalysisConfig {
        AnalysisConfig {
            straggler_share: 0.5,
            straggler_consecutive: 3,
            ewma_alpha: 0.2,
            max_records: 64 * 1024,
        }
    }
}

/// A flagged straggler episode: `gpu` on `node` held more than the
/// configured blame share from `from_iter` for `iters` iterations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StragglerEpisode {
    pub node: u32,
    pub gpu: u32,
    pub from_iter: u64,
    pub iters: u64,
    /// Mean blame share over the episode.
    pub mean_share: f64,
    /// Dominant pipeline category over the episode, by blamed seconds.
    pub dominant: BlameCategory,
}

/// One controller decision joined with the Eq.-3 gap around it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolverEfficacy {
    pub ts_us: u64,
    pub source: DecisionSource,
    pub node: u32,
    /// Gap observed in the last iteration before the decision.
    pub gap_before_s: f64,
    /// Gap observed in the first iteration after the decision, once known.
    pub gap_after_s: Option<f64>,
    /// The solver's own predicted residual gap, if it reported one.
    pub predicted_gap_s: Option<f64>,
    pub converged: bool,
}

/// What [`BottleneckAnalyzer::observe_iteration`] concluded about one
/// iteration — the caller (normally [`crate::Instruments`]) mirrors this
/// into gauges and trace instants.
#[derive(Debug, Clone)]
pub struct IterationAnalysis {
    pub iter: u64,
    /// Eq.-3 gap of this iteration, seconds.
    pub gap_s: f64,
    /// EWMA-smoothed gap trend, seconds.
    pub ewma_gap_s: f64,
    /// Straggler episode that *completed the threshold* this iteration, if
    /// any (one instant per episode, not per iteration).
    pub flagged: Option<StragglerEpisode>,
    /// Current worst GPU `(node, gpu, share)` of this iteration's overage.
    pub worst: Option<(u32, u32, f64)>,
}

/// Per-GPU running totals.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GpuBlame {
    pub node: u32,
    pub gpu: u32,
    pub iterations: u64,
    pub stages: StageSample,
    /// Iterations in which this GPU was the slowest (arg-max of `iter_s`).
    pub slowest_count: u64,
    /// Summed `iter_s − T_min` overage, seconds.
    pub overage_s: f64,
}

/// Everything the analyzer learned, serializable for `lobster_doctor`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalysisReport {
    pub config: AnalysisConfig,
    pub iterations: u64,
    /// Cluster-level blame totals (all GPUs merged).
    pub cluster: StageSample,
    pub per_gpu: Vec<GpuBlame>,
    /// First observed gap, seconds (warm-up imbalance).
    pub first_gap_s: f64,
    /// Final EWMA gap, seconds.
    pub ewma_gap_s: f64,
    /// Mean gap over all iterations, seconds. On a skewed workload
    /// (DESIGN.md §15) this hides the tail: a handful of giant-sample
    /// iterations can carry the whole imbalance while the mean sits near
    /// zero. Read it together with [`AnalysisReport::p99_gap_s`].
    pub mean_gap_s: f64,
    /// Median per-iteration gap, seconds (from a log-bucketed histogram;
    /// `None` when no iteration was observed or the report predates the
    /// field).
    pub p50_gap_s: Option<f64>,
    /// 99th-percentile per-iteration gap, seconds — the tail the mean
    /// hides under size- or cost-skewed workloads. Same provenance and
    /// `None` semantics as [`AnalysisReport::p50_gap_s`].
    pub p99_gap_s: Option<f64>,
    /// Largest single-iteration gap, seconds.
    pub max_gap_s: f64,
    pub episodes: Vec<StragglerEpisode>,
    pub solver: Vec<SolverEfficacy>,
}

impl AnalysisReport {
    /// The GPU carrying the most summed overage, `(node, gpu)`.
    pub fn top_straggler(&self) -> Option<(u32, u32)> {
        self.per_gpu
            .iter()
            .max_by(|a, b| {
                a.overage_s
                    .partial_cmp(&b.overage_s)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|g| (g.node, g.gpu))
    }

    /// Cluster-dominant pipeline category.
    pub fn dominant_category(&self) -> Option<BlameCategory> {
        self.cluster.dominant_pipeline_category()
    }

    /// Mean `gap_after / gap_before` over decisions with both sides
    /// observed; `None` when no decision was joined. Below 1.0 means the
    /// solver shrank the gap on average.
    pub fn mean_solver_gap_ratio(&self) -> Option<f64> {
        let joined: Vec<(f64, f64)> = self
            .solver
            .iter()
            .filter_map(|s| s.gap_after_s.map(|a| (s.gap_before_s, a)))
            .filter(|&(b, _)| b > 0.0)
            .collect();
        if joined.is_empty() {
            return None;
        }
        Some(joined.iter().map(|&(b, a)| a / b).sum::<f64>() / joined.len() as f64)
    }
}

#[derive(Debug, Clone)]
struct RunState {
    node: u32,
    gpu: u32,
    /// Consecutive iterations over the share threshold.
    streak: u32,
    streak_start: u64,
    share_sum: f64,
    stages: StageSample,
    /// Episode currently being extended (index into `episodes`), if the
    /// streak already crossed the threshold.
    open_episode: Option<usize>,
}

/// The online analyzer. Single-writer by design — wrap it in a `Mutex` (as
/// [`crate::Instruments`] does) to share across threads.
#[derive(Debug, Clone)]
pub struct BottleneckAnalyzer {
    cfg: AnalysisConfig,
    iterations: u64,
    cluster: StageSample,
    per_gpu: Vec<GpuBlame>,
    first_gap_s: Option<f64>,
    ewma_gap_s: Option<f64>,
    gap_sum_s: f64,
    /// Per-iteration gaps in microseconds, log-bucketed, so the report can
    /// answer "what is the *tail* gap" — the question the mean cannot.
    gap_hist_us: LogHistogram,
    max_gap_s: f64,
    streak: Option<RunState>,
    episodes: Vec<StragglerEpisode>,
    solver: Vec<SolverEfficacy>,
    /// Decisions awaiting their first post-decision gap observation.
    pending_after: Vec<usize>,
    last_gap_s: f64,
}

impl Default for BottleneckAnalyzer {
    fn default() -> BottleneckAnalyzer {
        BottleneckAnalyzer::new(AnalysisConfig::default())
    }
}

impl BottleneckAnalyzer {
    pub fn new(cfg: AnalysisConfig) -> BottleneckAnalyzer {
        BottleneckAnalyzer {
            cfg,
            iterations: 0,
            cluster: StageSample::default(),
            per_gpu: Vec::new(),
            first_gap_s: None,
            ewma_gap_s: None,
            gap_sum_s: 0.0,
            gap_hist_us: LogHistogram::new(),
            max_gap_s: 0.0,
            streak: None,
            episodes: Vec::new(),
            solver: Vec::new(),
            pending_after: Vec::new(),
            last_gap_s: 0.0,
        }
    }

    pub fn config(&self) -> AnalysisConfig {
        self.cfg
    }

    fn gpu_slot(&mut self, node: u32, gpu: u32) -> &mut GpuBlame {
        if let Some(i) = self
            .per_gpu
            .iter()
            .position(|g| g.node == node && g.gpu == gpu)
        {
            return &mut self.per_gpu[i];
        }
        self.per_gpu.push(GpuBlame {
            node,
            gpu,
            ..GpuBlame::default()
        });
        self.per_gpu.last_mut().expect("just pushed")
    }

    /// Feed one iteration's per-GPU samples. Samples may come from the live
    /// engine (measured nanoseconds) or the simulator (modelled seconds);
    /// the analyzer does not care which.
    pub fn observe_iteration(&mut self, iter: u64, samples: &[GpuIterSample]) -> IterationAnalysis {
        self.iterations += 1;
        let mut t_min = f64::INFINITY;
        let mut t_max = f64::NEG_INFINITY;
        let mut worst: Option<(u32, u32, f64)> = None;
        for s in samples {
            t_min = t_min.min(s.iter_s);
            t_max = t_max.max(s.iter_s);
        }
        if samples.is_empty() {
            t_min = 0.0;
            t_max = 0.0;
        }
        let gap = (t_max - t_min).max(0.0);

        // Per-GPU accounting.
        let overage_total: f64 = samples.iter().map(|s| (s.iter_s - t_min).max(0.0)).sum();
        let mut slowest: Option<(u32, u32)> = None;
        for s in samples {
            let slot = self.gpu_slot(s.node, s.gpu);
            slot.iterations += 1;
            slot.stages.merge(&s.stages);
            slot.overage_s += (s.iter_s - t_min).max(0.0);
            if s.iter_s >= t_max && slowest.is_none() && gap > 0.0 {
                slowest = Some((s.node, s.gpu));
            }
            self.cluster.merge(&s.stages);
        }
        if let Some((n, g)) = slowest {
            self.gpu_slot(n, g).slowest_count += 1;
        }
        if overage_total > 0.0 {
            for s in samples {
                let share = (s.iter_s - t_min).max(0.0) / overage_total;
                if worst.is_none() || share > worst.expect("set").2 {
                    worst = Some((s.node, s.gpu, share));
                }
            }
        }

        // Gap series.
        if self.first_gap_s.is_none() {
            self.first_gap_s = Some(gap);
        }
        self.gap_sum_s += gap;
        self.gap_hist_us.record((gap * 1e6).round() as u64);
        self.max_gap_s = self.max_gap_s.max(gap);
        let alpha = self.cfg.ewma_alpha;
        self.ewma_gap_s = Some(match self.ewma_gap_s {
            None => gap,
            Some(prev) => alpha * gap + (1.0 - alpha) * prev,
        });
        self.last_gap_s = gap;

        // Join the gap into any decision still waiting for its "after".
        for &idx in &self.pending_after {
            if let Some(s) = self.solver.get_mut(idx) {
                s.gap_after_s = Some(gap);
            }
        }
        self.pending_after.clear();

        // Straggler streak tracking.
        let flagged = self.update_streak(iter, samples, worst);

        IterationAnalysis {
            iter,
            gap_s: gap,
            ewma_gap_s: self.ewma_gap_s.unwrap_or(0.0),
            flagged,
            worst,
        }
    }

    fn update_streak(
        &mut self,
        iter: u64,
        samples: &[GpuIterSample],
        worst: Option<(u32, u32, f64)>,
    ) -> Option<StragglerEpisode> {
        let over = worst.filter(|&(_, _, share)| share > self.cfg.straggler_share);
        match (&mut self.streak, over) {
            (state @ None, Some((node, gpu, share))) => {
                let mut stages = StageSample::default();
                if let Some(s) = samples.iter().find(|s| s.node == node && s.gpu == gpu) {
                    stages = s.stages;
                }
                *state = Some(RunState {
                    node,
                    gpu,
                    streak: 1,
                    streak_start: iter,
                    share_sum: share,
                    stages,
                    open_episode: None,
                });
            }
            (Some(state), Some((node, gpu, share))) if state.node == node && state.gpu == gpu => {
                state.streak += 1;
                state.share_sum += share;
                if let Some(s) = samples.iter().find(|s| s.node == node && s.gpu == gpu) {
                    state.stages.merge(&s.stages);
                }
            }
            (state, over) => {
                // Streak broken (idle, or a different GPU is now worst):
                // close any open episode, then maybe start a new streak.
                *state = over.map(|(node, gpu, share)| {
                    let mut stages = StageSample::default();
                    if let Some(s) = samples.iter().find(|s| s.node == node && s.gpu == gpu) {
                        stages = s.stages;
                    }
                    RunState {
                        node,
                        gpu,
                        streak: 1,
                        streak_start: iter,
                        share_sum: share,
                        stages,
                        open_episode: None,
                    }
                });
            }
        }

        let state = self.streak.as_mut()?;
        if state.streak < self.cfg.straggler_consecutive {
            return None;
        }
        let episode = StragglerEpisode {
            node: state.node,
            gpu: state.gpu,
            from_iter: state.streak_start,
            iters: state.streak as u64,
            mean_share: state.share_sum / state.streak as f64,
            dominant: state
                .stages
                .dominant_pipeline_category()
                .unwrap_or(BlameCategory::Other),
        };
        match state.open_episode {
            // The streak keeps extending one already-flagged episode.
            Some(idx) => {
                self.episodes[idx] = episode;
                None
            }
            None if self.episodes.len() < self.cfg.max_records => {
                self.episodes.push(episode.clone());
                state.open_episode = Some(self.episodes.len() - 1);
                // Flag only once, when the threshold is first crossed.
                Some(episode)
            }
            None => None,
        }
    }

    /// Join a controller decision into the gap series: records the gap of
    /// the last iteration as "before"; the next observed iteration fills
    /// "after".
    pub fn note_decision(&mut self, record: &DecisionRecord) {
        if self.solver.len() >= self.cfg.max_records {
            return;
        }
        self.solver.push(SolverEfficacy {
            ts_us: record.ts_us,
            source: record.source,
            node: record.node,
            gap_before_s: self.last_gap_s,
            gap_after_s: None,
            predicted_gap_s: record.gap_s,
            converged: record.converged,
        });
        self.pending_after.push(self.solver.len() - 1);
    }

    pub fn report(&self) -> AnalysisReport {
        AnalysisReport {
            config: self.cfg,
            iterations: self.iterations,
            cluster: self.cluster,
            per_gpu: self.per_gpu.clone(),
            first_gap_s: self.first_gap_s.unwrap_or(0.0),
            ewma_gap_s: self.ewma_gap_s.unwrap_or(0.0),
            mean_gap_s: if self.iterations == 0 {
                0.0
            } else {
                self.gap_sum_s / self.iterations as f64
            },
            p50_gap_s: self.gap_hist_us.percentile(50.0).map(|us| us / 1e6),
            p99_gap_s: self.gap_hist_us.percentile(99.0).map(|us| us / 1e6),
            max_gap_s: self.max_gap_s,
            episodes: self.episodes.clone(),
            solver: self.solver.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(node: u32, gpu: u32, iter_s: f64, pfs_s: f64) -> GpuIterSample {
        let mut stages = StageSample::default();
        stages.add(BlameCategory::PfsFetch, pfs_s);
        stages.add(BlameCategory::Train, iter_s - pfs_s);
        GpuIterSample {
            node,
            gpu,
            iter_s,
            stages,
        }
    }

    #[test]
    fn gap_is_max_minus_min() {
        let mut a = BottleneckAnalyzer::default();
        let out = a.observe_iteration(0, &[sample(0, 0, 0.10, 0.0), sample(0, 1, 0.25, 0.15)]);
        assert!((out.gap_s - 0.15).abs() < 1e-12);
        assert_eq!(out.worst.map(|w| (w.0, w.1)), Some((0, 1)));
        let r = a.report();
        assert_eq!(r.iterations, 1);
        assert!((r.first_gap_s - 0.15).abs() < 1e-12);
    }

    #[test]
    fn straggler_flagged_after_k_consecutive_iterations() {
        let cfg = AnalysisConfig {
            straggler_consecutive: 3,
            ..AnalysisConfig::default()
        };
        let mut a = BottleneckAnalyzer::new(cfg);
        for i in 0..2 {
            let out = a.observe_iteration(i, &[sample(0, 0, 0.1, 0.0), sample(1, 0, 0.4, 0.3)]);
            assert!(out.flagged.is_none(), "iteration {i} flagged too early");
        }
        let out = a.observe_iteration(2, &[sample(0, 0, 0.1, 0.0), sample(1, 0, 0.4, 0.3)]);
        let ep = out.flagged.expect("third consecutive iteration flags");
        assert_eq!((ep.node, ep.gpu), (1, 0));
        assert_eq!(ep.from_iter, 0);
        assert_eq!(ep.dominant, BlameCategory::PfsFetch);
        // Extending the streak must not re-flag…
        let out = a.observe_iteration(3, &[sample(0, 0, 0.1, 0.0), sample(1, 0, 0.4, 0.3)]);
        assert!(out.flagged.is_none());
        // …but the stored episode keeps growing.
        let r = a.report();
        assert_eq!(r.episodes.len(), 1);
        assert_eq!(r.episodes[0].iters, 4);
        assert_eq!(r.top_straggler(), Some((1, 0)));
    }

    #[test]
    fn streak_resets_when_a_different_gpu_lags() {
        let cfg = AnalysisConfig {
            straggler_consecutive: 2,
            ..AnalysisConfig::default()
        };
        let mut a = BottleneckAnalyzer::new(cfg);
        a.observe_iteration(0, &[sample(0, 0, 0.1, 0.0), sample(0, 1, 0.4, 0.3)]);
        // GPU 0 lags now: GPU 1's streak is broken.
        a.observe_iteration(1, &[sample(0, 0, 0.4, 0.3), sample(0, 1, 0.1, 0.0)]);
        let out = a.observe_iteration(2, &[sample(0, 0, 0.4, 0.3), sample(0, 1, 0.1, 0.0)]);
        let ep = out.flagged.expect("gpu 0 flags after its own 2-streak");
        assert_eq!((ep.node, ep.gpu), (0, 0));
        assert_eq!(ep.from_iter, 1);
    }

    #[test]
    fn solver_efficacy_joins_gap_before_and_after() {
        let mut a = BottleneckAnalyzer::default();
        a.observe_iteration(0, &[sample(0, 0, 0.1, 0.0), sample(0, 1, 0.5, 0.4)]);
        a.note_decision(&DecisionRecord {
            ts_us: 10,
            source: DecisionSource::Algorithm1,
            node: 0,
            queue_loads: vec![],
            predicted_cost: vec![],
            threads_before: vec![],
            threads_after: vec![],
            gap_s: Some(0.05),
            evals: 3,
            converged: true,
            anomalies_before: 0,
        });
        a.observe_iteration(1, &[sample(0, 0, 0.1, 0.0), sample(0, 1, 0.2, 0.1)]);
        let r = a.report();
        assert_eq!(r.solver.len(), 1);
        assert!((r.solver[0].gap_before_s - 0.4).abs() < 1e-12);
        assert!((r.solver[0].gap_after_s.unwrap() - 0.1).abs() < 1e-12);
        let ratio = r.mean_solver_gap_ratio().unwrap();
        assert!((ratio - 0.25).abs() < 1e-12, "ratio {ratio}");
    }

    #[test]
    fn ewma_tracks_the_gap_trend() {
        let mut a = BottleneckAnalyzer::new(AnalysisConfig {
            ewma_alpha: 0.5,
            ..AnalysisConfig::default()
        });
        a.observe_iteration(0, &[sample(0, 0, 0.1, 0.0), sample(0, 1, 0.5, 0.4)]);
        for i in 1..20 {
            a.observe_iteration(i, &[sample(0, 0, 0.1, 0.0), sample(0, 1, 0.1, 0.0)]);
        }
        let r = a.report();
        assert!((r.first_gap_s - 0.4).abs() < 1e-12);
        assert!(r.ewma_gap_s < 0.01, "ewma {}", r.ewma_gap_s);
        assert!(r.mean_gap_s < r.first_gap_s);
    }

    #[test]
    fn empty_and_single_sample_iterations_are_harmless() {
        let mut a = BottleneckAnalyzer::default();
        let out = a.observe_iteration(0, &[]);
        assert_eq!(out.gap_s, 0.0);
        let out = a.observe_iteration(1, &[sample(0, 0, 0.2, 0.1)]);
        assert_eq!(out.gap_s, 0.0, "one GPU has no imbalance gap");
        assert!(out.flagged.is_none());
    }

    #[test]
    fn size_skew_trace_pins_p99_attribution() {
        // 1000× size-skew regression (DESIGN.md §15 heavy-tail family):
        // 196 of 200 iterations are balanced to within 100 µs, but every
        // 50th draws one 1000×-sized sample whose PFS fetch opens a
        // 100 ms gap on GPU (1, 0) — 2% tail mass, so nearest-rank p99
        // lands inside the spikes. The mean gap averages the spikes away;
        // the p99 must keep them, and the straggler attribution must blame
        // the fetch tier, not preprocessing.
        let mut a = BottleneckAnalyzer::default();
        for i in 0..200u64 {
            if i % 50 == 49 {
                a.observe_iteration(i, &[sample(0, 0, 0.010, 0.0), sample(1, 0, 0.110, 0.1)]);
            } else {
                a.observe_iteration(i, &[sample(0, 0, 0.010, 0.0), sample(1, 0, 0.0101, 0.0001)]);
            }
        }
        let r = a.report();
        let p50 = r.p50_gap_s.expect("200 iterations recorded");
        let p99 = r.p99_gap_s.expect("200 iterations recorded");
        // p50 sits with the balanced iterations (~100 µs); p99 must reach
        // the 100 ms spikes. Log buckets are power-of-two, so pin to the
        // containing bucket, not the exact value.
        assert!(p50 < 0.001, "p50 {p50}s must stay at the balanced floor");
        assert!(
            (0.05..=0.15).contains(&p99),
            "p99 {p99}s must sit in the 100ms spike bucket"
        );
        // The mean hides the tail — that is the audit this test pins.
        // (4 spikes of ~100 ms over 200 iterations put the mean near
        // 2 ms, ~50× under the p99; pin with headroom for bucket edges.)
        assert!(
            r.mean_gap_s < p99 / 30.0,
            "mean {} vs p99 {p99}: the spikes must dominate the tail, not the mean",
            r.mean_gap_s
        );
        assert!((r.max_gap_s - 0.1).abs() < 1e-9);
        // Attribution: the straggler is the GPU eating the giant sample,
        // and the blame category is the PFS fetch that paid for its bytes.
        assert_eq!(r.top_straggler(), Some((1, 0)));
        assert_eq!(r.dominant_category(), Some(BlameCategory::PfsFetch));
    }

    #[test]
    fn reports_without_gap_percentiles_still_parse() {
        // Doctor traces recorded before the gap histogram existed carry no
        // p50/p99 fields; they must deserialize to `None`, not error.
        let mut a = BottleneckAnalyzer::default();
        a.observe_iteration(0, &[sample(0, 0, 0.1, 0.0), sample(0, 1, 0.3, 0.2)]);
        let r = a.report();
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("p99_gap_s"));
        let legacy = json
            .replace("\"p50_gap_s\":", "\"p50_gap_s_gone\":")
            .replace("\"p99_gap_s\":", "\"p99_gap_s_gone\":");
        let back: AnalysisReport = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.p50_gap_s, None);
        assert_eq!(back.p99_gap_s, None);
        assert_eq!(back.iterations, r.iterations);
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut a = BottleneckAnalyzer::default();
        for i in 0..4 {
            a.observe_iteration(i, &[sample(0, 0, 0.1, 0.0), sample(1, 1, 0.4, 0.3)]);
        }
        let r = a.report();
        let json = serde_json::to_string(&r).unwrap();
        let back: AnalysisReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.iterations, r.iterations);
        assert_eq!(back.episodes.len(), r.episodes.len());
        assert_eq!(back.top_straggler(), r.top_straggler());
        assert!((back.ewma_gap_s - r.ewma_gap_s).abs() < 1e-12);
    }
}
