//! Deterministic, seeded fault injection shared by the live runtime and the
//! cluster simulator (DESIGN.md §8 "Fault model & recovery").
//!
//! The paper's claim is that load-balance-aware thread assignment absorbs
//! stragglers and uneven I/O cost; exercising that claim requires faults
//! that are *reproducible*. A [`FaultSpec`] describes rates for four fault
//! classes — transient fetch errors, fetch stalls, payload corruption, and
//! injected worker panics ("poison") — plus per-node time-varying slowdown
//! profiles. [`FaultSpec::compile`] turns it into a [`FaultPlan`] whose
//! per-`(node, fetch_index)` schedule is a pure function of the seed: two
//! compilations of the same spec agree on every draw, so any run under
//! injection can be replayed exactly.
//!
//! [`RetryPolicy`] is the recovery side: bounded retries with exponential
//! backoff and decorrelated jitter, clamped so cumulative sleep never
//! exceeds the per-fetch deadline (property-tested).

use lobster_sim::{derive_seed, derive_seed2, SplitMix64};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// A per-node I/O slowdown as a function of run time, multiplying every
/// load/transfer duration on that node. All factors are ≥ 1 (1 = nominal).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SlowdownProfile {
    /// The static fault of the original `ext_robustness` experiment.
    Constant(f64),
    /// Nominal until `at_s`, then `factor` forever — a node degrading
    /// mid-run (disk rebuild, noisy neighbour arriving).
    Step { at_s: f64, factor: f64 },
    /// Square wave: `hi` during the first half of every `period_s` window,
    /// `lo` during the second — a flapping link or a periodic scrub.
    Flap { period_s: f64, lo: f64, hi: f64 },
    /// Linear ramp from `from` at t=0 to `to` at `over_s`, then `to` —
    /// gradual contention build-up.
    Ramp { from: f64, to: f64, over_s: f64 },
}

impl SlowdownProfile {
    /// Nominal speed at all times.
    pub const NOMINAL: SlowdownProfile = SlowdownProfile::Constant(1.0);

    /// The slowdown multiplier at `t_s` seconds into the run.
    pub fn factor_at(&self, t_s: f64) -> f64 {
        match *self {
            SlowdownProfile::Constant(f) => f,
            SlowdownProfile::Step { at_s, factor } => {
                if t_s >= at_s {
                    factor
                } else {
                    1.0
                }
            }
            SlowdownProfile::Flap { period_s, lo, hi } => {
                let phase = (t_s / period_s).rem_euclid(1.0);
                if phase < 0.5 {
                    hi
                } else {
                    lo
                }
            }
            SlowdownProfile::Ramp { from, to, over_s } => {
                let x = (t_s / over_s).clamp(0.0, 1.0);
                from + (to - from) * x
            }
        }
    }

    /// The largest factor the profile ever reaches (for reporting).
    pub fn peak(&self) -> f64 {
        match *self {
            SlowdownProfile::Constant(f) => f,
            SlowdownProfile::Step { factor, .. } => factor.max(1.0),
            SlowdownProfile::Flap { lo, hi, .. } => lo.max(hi),
            SlowdownProfile::Ramp { from, to, .. } => from.max(to),
        }
    }

    /// Check that every factor is finite and ≥ 1 and every duration positive.
    pub fn validate(&self) -> Result<(), FaultConfigError> {
        let bad = |what: &str, v: f64| FaultConfigError::InvalidProfile {
            what: what.to_string(),
            value: v,
        };
        let factor_ok = |what: &str, f: f64| -> Result<(), FaultConfigError> {
            if f.is_finite() && f >= 1.0 {
                Ok(())
            } else {
                Err(bad(what, f))
            }
        };
        match *self {
            SlowdownProfile::Constant(f) => factor_ok("constant factor", f),
            SlowdownProfile::Step { at_s, factor } => {
                factor_ok("step factor", factor)?;
                if at_s.is_finite() && at_s >= 0.0 {
                    Ok(())
                } else {
                    Err(bad("step time", at_s))
                }
            }
            SlowdownProfile::Flap { period_s, lo, hi } => {
                factor_ok("flap lo", lo)?;
                factor_ok("flap hi", hi)?;
                if period_s.is_finite() && period_s > 0.0 {
                    Ok(())
                } else {
                    Err(bad("flap period", period_s))
                }
            }
            SlowdownProfile::Ramp { from, to, over_s } => {
                factor_ok("ramp from", from)?;
                factor_ok("ramp to", to)?;
                if over_s.is_finite() && over_s > 0.0 {
                    Ok(())
                } else {
                    Err(bad("ramp duration", over_s))
                }
            }
        }
    }

    /// A vector of constant profiles — the shape every pre-existing
    /// `node_slowdown: Vec<f64>` call site wants.
    pub fn constants(factors: &[f64]) -> Vec<SlowdownProfile> {
        factors
            .iter()
            .map(|&f| SlowdownProfile::Constant(f))
            .collect()
    }
}

/// What the injector does to one fetch attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Serve normally.
    None,
    /// Fail the request after the round-trip latency (a dropped RPC, an
    /// `EIO` that a re-read clears).
    TransientError,
    /// Serve, but only after an extra stall of the given duration (a hung
    /// OST, a congested metadata server) — recoverable via deadline +
    /// refetch.
    Stall(Duration),
    /// Serve bytes with one flipped bit-pattern (a torn read, bad DMA) —
    /// recoverable via checksum verification + refetch.
    Corrupt,
    /// Panic inside the fetch path (a crashed worker) — recoverable via
    /// the engine's poisoned-worker containment.
    Poison,
    /// The peer node this fetch was routed to is down — the request must
    /// fail fast (`FetchError::PeerDown`) and fail over to the PFS instead
    /// of burning retry rounds.
    NodeCrash,
    /// The peer has rejoined with a cold cache; serve from PFS while its
    /// directory warms up. Distinguished from `None` so callers can
    /// attribute the extra PFS traffic of a warm-up phase.
    NodeRejoin,
}

/// How a node's cluster membership changed at a tick boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MembershipTransition {
    /// The node crashed: cache lost, directory entries purged, its schedule
    /// slice re-sharded across survivors.
    Crashed,
    /// The node rejoined with a cold cache and begins directory warm-up.
    Rejoined,
}

impl MembershipTransition {
    pub fn label(self) -> &'static str {
        match self {
            MembershipTransition::Crashed => "crashed",
            MembershipTransition::Rejoined => "rejoined",
        }
    }
}

/// One scheduled whole-node crash, with an optional rejoin. Tick-indexed
/// (a tick is one global training iteration), so the membership timeline
/// is a pure function of configuration — every executor sees the same
/// transitions at the same iterations regardless of wall-clock timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashSpec {
    /// Node that crashes.
    pub node: u32,
    /// Global iteration at whose boundary the crash lands (the node misses
    /// this iteration and every one after, until rejoin).
    pub tick: u64,
    /// Global iteration at whose boundary the node rejoins with a cold
    /// cache; `None` = the node never comes back.
    pub rejoin: Option<u64>,
}

/// One membership transition on the deterministic timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MembershipEvent {
    /// Tick (global iteration) at whose boundary the transition applies.
    pub tick: u64,
    pub node: u32,
    pub transition: MembershipTransition,
}

/// Errors from validating or parsing a fault configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultConfigError {
    /// A rate outside `[0, 1)`.
    InvalidRate { what: String, value: f64 },
    /// A slowdown profile with a factor < 1 or a non-positive duration.
    InvalidProfile { what: String, value: f64 },
    /// A crash/rejoin schedule that is not well-formed (rejoin ≤ crash
    /// tick, node ≥ 64, or overlapping down-windows for one node).
    InvalidCrash { what: String },
    /// An unparseable `--faults` spec fragment.
    Parse(String),
}

impl fmt::Display for FaultConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultConfigError::InvalidRate { what, value } => {
                write!(f, "fault rate `{what}` must be in [0, 1): got {value}")
            }
            FaultConfigError::InvalidProfile { what, value } => {
                write!(f, "slowdown profile {what} invalid: {value} (factors must be finite and >= 1, durations positive)")
            }
            FaultConfigError::InvalidCrash { what } => {
                write!(f, "crash schedule invalid: {what}")
            }
            FaultConfigError::Parse(msg) => write!(f, "cannot parse fault spec: {msg}"),
        }
    }
}

impl std::error::Error for FaultConfigError {}

/// The complete fault configuration for one run. All rates default to zero
/// (no faults); `Default` is the no-op spec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Probability a fetch attempt fails transiently.
    pub transient_rate: f64,
    /// Probability a fetch attempt stalls for [`FaultSpec::stall`].
    pub stall_rate: f64,
    /// How long an injected stall lasts.
    pub stall: Duration,
    /// Probability a served payload is corrupted.
    pub corrupt_rate: f64,
    /// Probability a fetch attempt panics the worker thread.
    pub poison_rate: f64,
    /// Per-node slowdown profiles (missing entries = nominal).
    pub slowdown: Vec<SlowdownProfile>,
    /// Scheduled whole-node crashes (and rejoins), tick-indexed.
    pub crashes: Vec<CrashSpec>,
    /// Seed of the whole schedule; same seed ⇒ same schedule.
    pub seed: u64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            transient_rate: 0.0,
            stall_rate: 0.0,
            stall: Duration::from_millis(100),
            corrupt_rate: 0.0,
            poison_rate: 0.0,
            slowdown: Vec::new(),
            crashes: Vec::new(),
            seed: 0,
        }
    }
}

impl FaultSpec {
    /// True when the spec can never inject anything.
    pub fn is_noop(&self) -> bool {
        self.transient_rate == 0.0
            && self.stall_rate == 0.0
            && self.corrupt_rate == 0.0
            && self.poison_rate == 0.0
            && self.slowdown.iter().all(|p| *p == SlowdownProfile::NOMINAL)
            && self.crashes.is_empty()
    }

    /// Validate all rates and profiles.
    pub fn validate(&self) -> Result<(), FaultConfigError> {
        let rate_ok = |what: &str, r: f64| -> Result<(), FaultConfigError> {
            // Strictly below 1: a rate of 1.0 would make recovery-by-retry
            // impossible by construction.
            if r.is_finite() && (0.0..1.0).contains(&r) {
                Ok(())
            } else {
                Err(FaultConfigError::InvalidRate {
                    what: what.to_string(),
                    value: r,
                })
            }
        };
        rate_ok("transient", self.transient_rate)?;
        rate_ok("stall", self.stall_rate)?;
        rate_ok("corrupt", self.corrupt_rate)?;
        rate_ok("poison", self.poison_rate)?;
        for p in &self.slowdown {
            p.validate()?;
        }
        let crash_err = |what: String| FaultConfigError::InvalidCrash { what };
        for c in &self.crashes {
            if c.node as usize >= 64 {
                return Err(crash_err(format!(
                    "node {} exceeds the 64-node membership mask",
                    c.node
                )));
            }
            if let Some(r) = c.rejoin {
                if r <= c.tick {
                    return Err(crash_err(format!(
                        "node {} rejoin tick {r} must be after crash tick {}",
                        c.node, c.tick
                    )));
                }
            }
        }
        // Per-node down-windows must not overlap: a node cannot crash
        // again before it rejoined.
        let mut windows: Vec<(u32, u64, Option<u64>)> = self
            .crashes
            .iter()
            .map(|c| (c.node, c.tick, c.rejoin))
            .collect();
        windows.sort();
        for w in windows.windows(2) {
            let (node_a, tick_a, rejoin_a) = w[0];
            let (node_b, tick_b, _) = w[1];
            if node_a == node_b && rejoin_a.is_none_or(|r| tick_b < r) {
                return Err(crash_err(format!(
                    "node {node_a} crashes at tick {tick_b} while already down since {tick_a}"
                )));
            }
        }
        Ok(())
    }

    /// Compile into a replayable [`FaultPlan`].
    pub fn compile(&self) -> Result<FaultPlan, FaultConfigError> {
        self.validate()?;
        Ok(FaultPlan {
            // Independent sub-seeds per fault class so that e.g. raising
            // the transient rate does not reshuffle which fetches corrupt.
            transient_seed: derive_seed(self.seed, 0x7472_616E), // "tran"
            stall_seed: derive_seed(self.seed, 0x7374_616C),     // "stal"
            corrupt_seed: derive_seed(self.seed, 0x636F_7272),   // "corr"
            poison_seed: derive_seed(self.seed, 0x706F_6973),    // "pois"
            spec: self.clone(),
        })
    }

    /// Parse a `--faults` CLI spec: comma-separated `key=value` pairs.
    ///
    /// Keys: `transient`, `stall`, `corrupt`, `poison` (rates in `[0,1)`),
    /// `stall-ms` (stall length), `seed`, and `slow=<node>:<profile>` where
    /// profile is `const:<f>`, `step:<f>:<at_s>`, `flap:<lo>:<hi>:<period_s>`
    /// or `ramp:<from>:<to>:<over_s>`. `slow` may repeat for several nodes.
    ///
    /// Whole-node crashes use `crash@<tick>:node=<n>[,rejoin=<tick>]`: the
    /// node goes down at the boundary of global iteration `<tick>` and (if
    /// `rejoin` follows) comes back with a cold cache at the rejoin tick.
    /// A `rejoin` term attaches to the immediately preceding `crash` term;
    /// `crash` may repeat for several nodes.
    ///
    /// Example: `transient=0.05,corrupt=0.01,stall=0.02,stall-ms=50,seed=7,slow=2:step:2.5:40`
    /// or `crash@6:node=1,rejoin=12,seed=7`
    pub fn parse(s: &str) -> Result<FaultSpec, FaultConfigError> {
        let mut spec = FaultSpec::default();
        let err = |msg: String| FaultConfigError::Parse(msg);
        for part in s.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| err(format!("`{part}` is not key=value")))?;
            let fval = |v: &str| -> Result<f64, FaultConfigError> {
                v.parse::<f64>()
                    .map_err(|_| err(format!("`{v}` is not a number (in `{part}`)")))
            };
            match key.trim() {
                "transient" => spec.transient_rate = fval(value)?,
                "stall" => spec.stall_rate = fval(value)?,
                "corrupt" => spec.corrupt_rate = fval(value)?,
                "poison" => spec.poison_rate = fval(value)?,
                "stall-ms" => spec.stall = Duration::from_secs_f64(fval(value)? / 1e3),
                "seed" => {
                    spec.seed = value
                        .parse::<u64>()
                        .map_err(|_| err(format!("`{value}` is not a u64 seed")))?
                }
                "slow" => {
                    let fields: Vec<&str> = value.split(':').collect();
                    let node: usize = fields
                        .first()
                        .and_then(|n| n.parse().ok())
                        .ok_or_else(|| err(format!("`{value}` must start with a node index")))?;
                    let profile = match fields.get(1).copied() {
                        Some("const") if fields.len() == 3 => {
                            SlowdownProfile::Constant(fval(fields[2])?)
                        }
                        Some("step") if fields.len() == 4 => SlowdownProfile::Step {
                            factor: fval(fields[2])?,
                            at_s: fval(fields[3])?,
                        },
                        Some("flap") if fields.len() == 5 => SlowdownProfile::Flap {
                            lo: fval(fields[2])?,
                            hi: fval(fields[3])?,
                            period_s: fval(fields[4])?,
                        },
                        Some("ramp") if fields.len() == 5 => SlowdownProfile::Ramp {
                            from: fval(fields[2])?,
                            to: fval(fields[3])?,
                            over_s: fval(fields[4])?,
                        },
                        _ => {
                            return Err(err(format!(
                                "`{value}` is not node:const:<f> | node:step:<f>:<at_s> | \
                                 node:flap:<lo>:<hi>:<period_s> | node:ramp:<from>:<to>:<over_s>"
                            )))
                        }
                    };
                    if spec.slowdown.len() <= node {
                        spec.slowdown.resize(node + 1, SlowdownProfile::NOMINAL);
                    }
                    spec.slowdown[node] = profile;
                }
                "rejoin" => {
                    let tick: u64 = value
                        .parse()
                        .map_err(|_| err(format!("`{value}` is not a u64 rejoin tick")))?;
                    let last = spec.crashes.last_mut().ok_or_else(|| {
                        err("`rejoin` must follow a `crash@<tick>:node=<n>` term".to_string())
                    })?;
                    if last.rejoin.is_some() {
                        return Err(err(format!(
                            "duplicate `rejoin` for the crash of node {}",
                            last.node
                        )));
                    }
                    last.rejoin = Some(tick);
                }
                crash if crash.starts_with("crash@") => {
                    // `crash@<tick>:node` is the key half of
                    // `crash@<tick>:node=<n>`.
                    let rest = &crash["crash@".len()..];
                    let (tick_str, node_key) = rest
                        .split_once(':')
                        .ok_or_else(|| err(format!("`{part}` is not crash@<tick>:node=<n>")))?;
                    if node_key != "node" {
                        return Err(err(format!("`{part}` is not crash@<tick>:node=<n>")));
                    }
                    let tick: u64 = tick_str
                        .parse()
                        .map_err(|_| err(format!("`{tick_str}` is not a u64 tick")))?;
                    let node: u32 = value
                        .parse()
                        .map_err(|_| err(format!("`{value}` is not a node index")))?;
                    spec.crashes.push(CrashSpec {
                        node,
                        tick,
                        rejoin: None,
                    });
                }
                other => return Err(err(format!("unknown key `{other}`"))),
            }
        }
        spec.validate()?;
        Ok(spec)
    }
}

/// A compiled, replayable fault schedule. [`FaultPlan::action`] is a pure
/// function of `(seed, node, fetch_index)` — no interior state — so two
/// plans compiled from the same spec agree everywhere, and a concurrent
/// engine consuming indices in any order still draws from one fixed
/// schedule.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    spec: FaultSpec,
    transient_seed: u64,
    stall_seed: u64,
    corrupt_seed: u64,
    poison_seed: u64,
}

/// One uniform draw in `[0, 1)` for a `(seed, node, index)` coordinate.
fn draw(seed: u64, node: usize, index: u64) -> f64 {
    let bits = SplitMix64::new(derive_seed2(seed, node as u64, index)).next_u64();
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultPlan {
    /// The spec this plan was compiled from.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// True when the plan can never inject anything.
    pub fn is_noop(&self) -> bool {
        self.spec.is_noop()
    }

    /// What happens to fetch attempt `fetch_index` on `node`. At most one
    /// fault class fires per attempt; poison wins over stall over transient
    /// over corrupt (each class draws independently, so changing one rate
    /// does not reshuffle the others).
    pub fn action(&self, node: usize, fetch_index: u64) -> FaultAction {
        if self.spec.poison_rate > 0.0
            && draw(self.poison_seed, node, fetch_index) < self.spec.poison_rate
        {
            return FaultAction::Poison;
        }
        if self.spec.stall_rate > 0.0
            && draw(self.stall_seed, node, fetch_index) < self.spec.stall_rate
        {
            return FaultAction::Stall(self.spec.stall);
        }
        if self.spec.transient_rate > 0.0
            && draw(self.transient_seed, node, fetch_index) < self.spec.transient_rate
        {
            return FaultAction::TransientError;
        }
        if self.spec.corrupt_rate > 0.0
            && draw(self.corrupt_seed, node, fetch_index) < self.spec.corrupt_rate
        {
            return FaultAction::Corrupt;
        }
        FaultAction::None
    }

    /// Slowdown multiplier for `node` at `t_s` seconds into the run.
    pub fn slowdown(&self, node: usize, t_s: f64) -> f64 {
        self.spec
            .slowdown
            .get(node)
            .map_or(1.0, |p| p.factor_at(t_s))
    }

    /// The configured crash schedule, verbatim.
    pub fn crashes(&self) -> &[CrashSpec] {
        &self.spec.crashes
    }

    /// True when the plan schedules at least one whole-node crash.
    pub fn has_crashes(&self) -> bool {
        !self.spec.crashes.is_empty()
    }

    /// Membership transitions landing at the boundary of `tick`, in a
    /// fixed deterministic order (rejoins before crashes, then by node).
    /// Every executor applies this same sequence at the same tick, which
    /// is what makes the membership timeline an exact-equality conformance
    /// observable.
    pub fn membership_events_at(&self, tick: u64) -> Vec<MembershipEvent> {
        let mut events: Vec<MembershipEvent> = Vec::new();
        for c in &self.spec.crashes {
            if c.rejoin == Some(tick) {
                events.push(MembershipEvent {
                    tick,
                    node: c.node,
                    transition: MembershipTransition::Rejoined,
                });
            }
            if c.tick == tick {
                events.push(MembershipEvent {
                    tick,
                    node: c.node,
                    transition: MembershipTransition::Crashed,
                });
            }
        }
        events.sort_by_key(|e| (e.transition == MembershipTransition::Crashed, e.node));
        events
    }

    /// The full membership timeline over `ticks` iterations, flattened in
    /// tick order — the reference sequence conformance compares against.
    pub fn membership_timeline(&self, ticks: u64) -> Vec<MembershipEvent> {
        (0..ticks)
            .flat_map(|t| self.membership_events_at(t))
            .collect()
    }

    /// Bitmask of nodes that are down *during* iteration `tick` (crashed at
    /// a tick ≤ this one and not yet rejoined).
    pub fn down_mask_at(&self, tick: u64) -> u64 {
        let mut mask = 0u64;
        for c in &self.spec.crashes {
            if c.tick <= tick && c.rejoin.is_none_or(|r| tick < r) {
                mask |= 1u64 << (c.node as usize % 64);
            }
        }
        mask
    }

    /// Is `node` down during iteration `tick`?
    pub fn node_down(&self, node: u32, tick: u64) -> bool {
        self.down_mask_at(tick) & (1u64 << (node as usize % 64)) != 0
    }

    /// Deterministic byte position to flip when corrupting a payload of
    /// `len` bytes at `fetch_index`.
    pub fn corrupt_position(&self, node: usize, fetch_index: u64, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        let bits = SplitMix64::new(derive_seed2(
            self.corrupt_seed ^ 0xF1,
            node as u64,
            fetch_index,
        ))
        .next_u64();
        (bits % len as u64) as usize
    }
}

/// Recovery parameters for one resilient fetch: bounded attempts with
/// exponential backoff + decorrelated jitter under a per-fetch deadline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Attempts per deadline round (first try included).
    pub max_attempts: u32,
    /// First backoff delay.
    pub base: Duration,
    /// Backoff cap per delay.
    pub cap: Duration,
    /// Per-fetch deadline: one attempt round (tries + backoff sleeps) never
    /// spends longer than this before the caller escalates.
    pub deadline: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base: Duration::from_micros(500),
            cap: Duration::from_millis(50),
            deadline: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// The backoff delay sequence for one fetch, seeded so replays sleep
    /// identically. Guarantees: every delay ≤ `cap`, and the cumulative
    /// sleep never exceeds `deadline` (the final delay is clamped to the
    /// remainder; afterwards the schedule is exhausted).
    pub fn backoff(&self, seed: u64) -> BackoffSchedule {
        BackoffSchedule {
            rng: SplitMix64::new(derive_seed(seed, 0xB0FF)),
            policy: *self,
            prev: self.base,
            slept: Duration::ZERO,
            attempt: 0,
        }
    }
}

/// Iterator of backoff delays (see [`RetryPolicy::backoff`]). Decorrelated
/// jitter after AWS's "Exponential Backoff And Jitter": each delay is
/// uniform in `[base, 3 × previous]`, capped.
#[derive(Debug, Clone)]
pub struct BackoffSchedule {
    rng: SplitMix64,
    policy: RetryPolicy,
    prev: Duration,
    slept: Duration,
    attempt: u32,
}

impl Iterator for BackoffSchedule {
    type Item = Duration;

    fn next(&mut self) -> Option<Duration> {
        // max_attempts tries ⇒ max_attempts − 1 sleeps between them.
        if self.attempt + 1 >= self.policy.max_attempts {
            return None;
        }
        let remaining = self.policy.deadline.checked_sub(self.slept)?;
        if remaining.is_zero() {
            return None;
        }
        let lo = self.policy.base.as_secs_f64();
        let hi = (self.prev.as_secs_f64() * 3.0).max(lo);
        let unit = (self.rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let jittered = Duration::from_secs_f64(lo + (hi - lo) * unit);
        let delay = jittered.min(self.policy.cap).min(remaining);
        self.slept += delay;
        self.prev = delay.max(self.policy.base);
        self.attempt += 1;
        Some(delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_noop_and_valid() {
        let spec = FaultSpec::default();
        assert!(spec.is_noop());
        let plan = spec.compile().unwrap();
        for i in 0..1000 {
            assert_eq!(plan.action(0, i), FaultAction::None);
        }
        assert_eq!(plan.slowdown(0, 123.0), 1.0);
    }

    #[test]
    fn plan_is_reproducible_and_seed_sensitive() {
        let spec = FaultSpec {
            transient_rate: 0.2,
            stall_rate: 0.1,
            corrupt_rate: 0.05,
            poison_rate: 0.01,
            seed: 42,
            ..FaultSpec::default()
        };
        let a = spec.compile().unwrap();
        let b = spec.compile().unwrap();
        let c = FaultSpec {
            seed: 43,
            ..spec.clone()
        }
        .compile()
        .unwrap();
        let actions =
            |p: &FaultPlan| -> Vec<FaultAction> { (0..2048).map(|i| p.action(1, i)).collect() };
        assert_eq!(actions(&a), actions(&b));
        assert_ne!(actions(&a), actions(&c));
    }

    #[test]
    fn rates_roughly_match_frequencies() {
        let spec = FaultSpec {
            transient_rate: 0.25,
            seed: 7,
            ..FaultSpec::default()
        };
        let plan = spec.compile().unwrap();
        let n = 10_000;
        let hits = (0..n)
            .filter(|&i| plan.action(0, i) == FaultAction::TransientError)
            .count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.03, "observed {rate}");
    }

    #[test]
    fn class_seeds_are_independent() {
        // Raising the transient rate must not change which indices corrupt.
        let lo = FaultSpec {
            transient_rate: 0.01,
            corrupt_rate: 0.1,
            seed: 5,
            ..FaultSpec::default()
        };
        let hi = FaultSpec {
            transient_rate: 0.5,
            ..lo.clone()
        };
        let corrupts = |p: &FaultPlan| -> Vec<u64> {
            (0..4096)
                .filter(|&i| p.action(0, i) == FaultAction::Corrupt)
                .collect()
        };
        let a = corrupts(&lo.compile().unwrap());
        let b = corrupts(&hi.compile().unwrap());
        // Transients mask some corrupt draws (priority), so b ⊆ a.
        assert!(!a.is_empty());
        assert!(b.iter().all(|i| a.contains(i)));
    }

    #[test]
    fn invalid_rates_and_profiles_rejected() {
        let mut spec = FaultSpec {
            transient_rate: 1.0,
            ..FaultSpec::default()
        };
        assert!(matches!(
            spec.validate(),
            Err(FaultConfigError::InvalidRate { .. })
        ));
        spec.transient_rate = 0.1;
        spec.slowdown = vec![SlowdownProfile::Constant(0.5)];
        assert!(matches!(
            spec.validate(),
            Err(FaultConfigError::InvalidProfile { .. })
        ));
        spec.slowdown = vec![SlowdownProfile::Flap {
            period_s: 0.0,
            lo: 1.0,
            hi: 2.0,
        }];
        assert!(spec.validate().is_err());
    }

    #[test]
    fn profiles_evaluate_as_described() {
        let step = SlowdownProfile::Step {
            at_s: 10.0,
            factor: 3.0,
        };
        assert_eq!(step.factor_at(9.9), 1.0);
        assert_eq!(step.factor_at(10.0), 3.0);
        assert_eq!(step.peak(), 3.0);

        let flap = SlowdownProfile::Flap {
            period_s: 4.0,
            lo: 1.0,
            hi: 2.0,
        };
        assert_eq!(flap.factor_at(1.0), 2.0); // first half: hi
        assert_eq!(flap.factor_at(3.0), 1.0); // second half: lo
        assert_eq!(flap.factor_at(5.0), 2.0); // periodic

        let ramp = SlowdownProfile::Ramp {
            from: 1.0,
            to: 3.0,
            over_s: 10.0,
        };
        assert_eq!(ramp.factor_at(0.0), 1.0);
        assert!((ramp.factor_at(5.0) - 2.0).abs() < 1e-12);
        assert_eq!(ramp.factor_at(20.0), 3.0);
    }

    #[test]
    fn parse_round_trips_a_full_spec() {
        let spec = FaultSpec::parse(
            "transient=0.05,corrupt=0.01,stall=0.02,stall-ms=50,poison=0.001,seed=9,\
             slow=2:step:2.5:40,slow=0:flap:1.0:3.0:10",
        )
        .unwrap();
        assert_eq!(spec.transient_rate, 0.05);
        assert_eq!(spec.corrupt_rate, 0.01);
        assert_eq!(spec.stall_rate, 0.02);
        assert_eq!(spec.stall, Duration::from_millis(50));
        assert_eq!(spec.poison_rate, 0.001);
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.slowdown.len(), 3);
        assert_eq!(
            spec.slowdown[0],
            SlowdownProfile::Flap {
                lo: 1.0,
                hi: 3.0,
                period_s: 10.0
            }
        );
        assert_eq!(spec.slowdown[1], SlowdownProfile::NOMINAL);
        assert_eq!(
            spec.slowdown[2],
            SlowdownProfile::Step {
                factor: 2.5,
                at_s: 40.0
            }
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultSpec::parse("transient").is_err());
        assert!(FaultSpec::parse("transient=x").is_err());
        assert!(FaultSpec::parse("bogus=1").is_err());
        assert!(FaultSpec::parse("slow=0:wedge:2").is_err());
        assert!(
            FaultSpec::parse("transient=1.5").is_err(),
            "validated after parse"
        );
        assert!(FaultSpec::parse("").map(|s| s.is_noop()).unwrap_or(false));
    }

    #[test]
    fn parse_crash_terms_with_and_without_rejoin() {
        let spec = FaultSpec::parse("crash@6:node=1,rejoin=12,crash@3:node=0,seed=9").unwrap();
        assert_eq!(spec.seed, 9);
        assert_eq!(
            spec.crashes,
            vec![
                CrashSpec {
                    node: 1,
                    tick: 6,
                    rejoin: Some(12)
                },
                CrashSpec {
                    node: 0,
                    tick: 3,
                    rejoin: None
                },
            ]
        );
        assert!(!spec.is_noop());

        assert!(
            FaultSpec::parse("rejoin=5").is_err(),
            "rejoin needs a crash"
        );
        assert!(FaultSpec::parse("crash@6:node=1,rejoin=12,rejoin=13").is_err());
        assert!(FaultSpec::parse("crash@x:node=1").is_err());
        assert!(FaultSpec::parse("crash@6:gpu=1").is_err());
        assert!(
            FaultSpec::parse("crash@6:node=1,rejoin=6").is_err(),
            "rejoin must be after crash"
        );
        assert!(
            FaultSpec::parse("crash@6:node=99").is_err(),
            "node mask is 64 wide"
        );
    }

    #[test]
    fn overlapping_crash_windows_rejected() {
        // Crash again while still down (no rejoin): invalid.
        let spec = FaultSpec {
            crashes: vec![
                CrashSpec {
                    node: 2,
                    tick: 4,
                    rejoin: None,
                },
                CrashSpec {
                    node: 2,
                    tick: 9,
                    rejoin: None,
                },
            ],
            ..FaultSpec::default()
        };
        assert!(matches!(
            spec.validate(),
            Err(FaultConfigError::InvalidCrash { .. })
        ));
        // Disjoint windows on the same node are fine.
        let spec = FaultSpec {
            crashes: vec![
                CrashSpec {
                    node: 2,
                    tick: 4,
                    rejoin: Some(6),
                },
                CrashSpec {
                    node: 2,
                    tick: 9,
                    rejoin: None,
                },
            ],
            ..FaultSpec::default()
        };
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn membership_timeline_is_deterministic_and_tick_exact() {
        let plan = FaultSpec {
            crashes: vec![
                CrashSpec {
                    node: 1,
                    tick: 4,
                    rejoin: Some(8),
                },
                CrashSpec {
                    node: 0,
                    tick: 4,
                    rejoin: None,
                },
            ],
            ..FaultSpec::default()
        }
        .compile()
        .unwrap();
        assert!(plan.has_crashes());
        let tl = plan.membership_timeline(12);
        assert_eq!(
            tl,
            vec![
                MembershipEvent {
                    tick: 4,
                    node: 0,
                    transition: MembershipTransition::Crashed
                },
                MembershipEvent {
                    tick: 4,
                    node: 1,
                    transition: MembershipTransition::Crashed
                },
                MembershipEvent {
                    tick: 8,
                    node: 1,
                    transition: MembershipTransition::Rejoined
                },
            ]
        );
        assert_eq!(plan.down_mask_at(3), 0);
        assert_eq!(plan.down_mask_at(4), 0b11);
        assert_eq!(plan.down_mask_at(7), 0b11);
        assert_eq!(plan.down_mask_at(8), 0b01, "node 1 back at its rejoin tick");
        assert!(plan.node_down(0, 1000), "no rejoin means down forever");
        assert!(!plan.node_down(1, 8));
        // Pure function of the spec: recompilation agrees everywhere.
        let again = plan.spec().clone().compile().unwrap();
        assert_eq!(again.membership_timeline(12), tl);
    }

    #[test]
    fn backoff_respects_cap_deadline_and_attempts() {
        let policy = RetryPolicy {
            max_attempts: 6,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(20),
            deadline: Duration::from_millis(35),
        };
        let delays: Vec<Duration> = policy.backoff(3).collect();
        assert!(delays.len() <= 5, "at most max_attempts - 1 sleeps");
        assert!(delays.iter().all(|d| *d <= policy.cap));
        let total: Duration = delays.iter().sum();
        assert!(total <= policy.deadline, "slept {total:?}");
        // Replays sleep identically.
        assert_eq!(delays, policy.backoff(3).collect::<Vec<_>>());
        assert_ne!(delays, policy.backoff(4).collect::<Vec<_>>());
    }

    #[test]
    fn corrupt_position_is_in_bounds_and_deterministic() {
        let plan = FaultSpec {
            corrupt_rate: 0.5,
            seed: 11,
            ..FaultSpec::default()
        }
        .compile()
        .unwrap();
        for i in 0..100 {
            let p = plan.corrupt_position(0, i, 333);
            assert!(p < 333);
            assert_eq!(p, plan.corrupt_position(0, i, 333));
        }
        assert_eq!(plan.corrupt_position(0, 1, 0), 0, "empty payload safe");
    }
}
