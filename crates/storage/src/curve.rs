//! Piecewise-linear throughput-vs-threads curves.
//!
//! The paper's performance model (§4.3, Table 1) abstracts each storage tier
//! as a throughput function of its thread count: `T_l(α)` for local memory,
//! `T_r(β)` for inter-node reads, `T_PFS(γ)` for the parallel file system.
//! Real tiers scale nearly linearly at low concurrency, saturate, and can
//! degrade slightly past saturation (memory-bandwidth contention — the same
//! effect the paper's Figure 6 shows for preprocessing). A piecewise-linear
//! curve over integer knot points captures all three regimes and is what the
//! paper's own piece-wise linear regression produces.

use serde::{Deserialize, Serialize};

/// Aggregate throughput (bytes/second) as a piecewise-linear function of the
/// number of concurrent threads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputCurve {
    /// Knots `(threads, bytes_per_sec)`, strictly increasing in threads,
    /// starting at 1 thread. Throughput at 0 threads is 0; beyond the last
    /// knot the curve is flat.
    knots: Vec<(u32, f64)>,
}

impl ThroughputCurve {
    /// Build from knot points. Panics on empty/unsorted/non-positive input —
    /// curves are configuration, so failing fast is right.
    pub fn new(knots: Vec<(u32, f64)>) -> ThroughputCurve {
        assert!(!knots.is_empty(), "curve needs at least one knot");
        assert!(knots[0].0 >= 1, "first knot must be at ≥ 1 thread");
        for w in knots.windows(2) {
            assert!(
                w[0].0 < w[1].0,
                "knots must be strictly increasing in threads"
            );
        }
        for &(_, t) in &knots {
            assert!(
                t > 0.0 && t.is_finite(),
                "throughput must be positive and finite"
            );
        }
        ThroughputCurve { knots }
    }

    /// A curve that scales linearly at `per_thread` bytes/s/thread up to
    /// `saturation_threads`, then stays flat: the common shape for
    /// bandwidth-limited tiers.
    pub fn saturating(per_thread: f64, saturation_threads: u32) -> ThroughputCurve {
        assert!(saturation_threads >= 1);
        ThroughputCurve::new(vec![
            (1, per_thread),
            (saturation_threads, per_thread * saturation_threads as f64),
        ])
    }

    /// Like [`saturating`](Self::saturating) but with a linear decline after
    /// the peak, reaching `tail_fraction × peak` at `tail_threads` (models
    /// memory-bandwidth thrashing past the sweet spot, Figure 6's shape).
    pub fn peaked(
        per_thread: f64,
        peak_threads: u32,
        tail_threads: u32,
        tail_fraction: f64,
    ) -> ThroughputCurve {
        assert!(peak_threads >= 1 && tail_threads > peak_threads);
        assert!((0.0..=1.0).contains(&tail_fraction));
        let peak = per_thread * peak_threads as f64;
        ThroughputCurve::new(vec![
            (1, per_thread),
            (peak_threads, peak),
            (tail_threads, peak * tail_fraction.max(1e-9)),
        ])
    }

    /// Aggregate throughput with `threads` concurrent threads, in bytes/s.
    /// Zero threads yield zero throughput.
    pub fn at(&self, threads: u32) -> f64 {
        if threads == 0 {
            return 0.0;
        }
        let first = self.knots[0];
        if threads <= first.0 {
            // Scale down proportionally below the first knot.
            return first.1 * threads as f64 / first.0 as f64;
        }
        for w in self.knots.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            if threads <= x1 {
                let f = (threads - x0) as f64 / (x1 - x0) as f64;
                return y0 + f * (y1 - y0);
            }
        }
        self.knots.last().unwrap().1
    }

    /// The thread count at which throughput peaks, and the peak value.
    /// Among equal-throughput counts the smallest is returned — the paper's
    /// goal is "the minimum number of threads needed to reach the peak".
    pub fn peak(&self) -> (u32, f64) {
        let mut best = (self.knots[0].0, self.knots[0].1);
        for &(x, y) in &self.knots {
            if y > best.1 + 1e-9 {
                best = (x, y);
            }
        }
        best
    }

    /// Smallest thread count whose throughput is at least `fraction` of the
    /// peak. `fraction = 1.0` gives the knee itself.
    pub fn threads_for_fraction_of_peak(&self, fraction: f64) -> u32 {
        let (_, peak) = self.peak();
        let target = peak * fraction;
        let max_knot = self.knots.last().unwrap().0;
        for t in 1..=max_knot {
            if self.at(t) + 1e-9 >= target {
                return t;
            }
        }
        max_knot
    }

    /// Seconds to move `bytes` with `threads` threads; `None` if zero
    /// throughput (zero threads).
    pub fn duration_secs(&self, bytes: f64, threads: u32) -> Option<f64> {
        let t = self.at(threads);
        if t <= 0.0 {
            None
        } else {
            Some(bytes / t)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturating_curve_scales_then_flattens() {
        let c = ThroughputCurve::saturating(100.0, 4);
        assert_eq!(c.at(0), 0.0);
        assert_eq!(c.at(1), 100.0);
        assert_eq!(c.at(2), 200.0);
        assert_eq!(c.at(4), 400.0);
        assert_eq!(c.at(16), 400.0);
    }

    #[test]
    fn peaked_curve_declines_past_peak() {
        let c = ThroughputCurve::peaked(100.0, 6, 16, 0.95);
        assert_eq!(c.at(6), 600.0);
        assert!(c.at(16) < 600.0);
        assert!((c.at(16) - 570.0).abs() < 1e-9);
        // Interpolated decline at 11 threads: halfway between 600 and 570.
        assert!((c.at(11) - 585.0).abs() < 1e-9);
    }

    #[test]
    fn peak_prefers_smallest_thread_count() {
        let c = ThroughputCurve::new(vec![(1, 100.0), (6, 600.0), (16, 600.0)]);
        assert_eq!(c.peak(), (6, 600.0));
    }

    #[test]
    fn threads_for_fraction_of_peak_finds_knee() {
        let c = ThroughputCurve::saturating(100.0, 8);
        assert_eq!(c.threads_for_fraction_of_peak(1.0), 8);
        assert_eq!(c.threads_for_fraction_of_peak(0.5), 4);
        assert_eq!(c.threads_for_fraction_of_peak(0.95), 8);
    }

    #[test]
    fn below_first_knot_scales_proportionally() {
        let c = ThroughputCurve::new(vec![(2, 200.0), (4, 300.0)]);
        assert_eq!(c.at(1), 100.0);
    }

    #[test]
    fn duration_inverts_throughput() {
        let c = ThroughputCurve::saturating(1e6, 4);
        assert_eq!(c.duration_secs(2e6, 1), Some(2.0));
        assert_eq!(c.duration_secs(2e6, 2), Some(1.0));
        assert_eq!(c.duration_secs(2e6, 0), None);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_knots_panic() {
        ThroughputCurve::new(vec![(4, 1.0), (2, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_throughput_panics() {
        ThroughputCurve::new(vec![(1, 0.0)]);
    }
}
