//! The three-tier storage hierarchy of the paper's environment (Figure 2):
//! node-local memory cache, remote node caches over the interconnect, and
//! the parallel file system — each with its own throughput curve, plus a
//! global PFS congestion model.

use crate::curve::ThroughputCurve;
use serde::{Deserialize, Serialize};

/// Where a sample was found when a GPU asked for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tier {
    /// Node-local memory cache (`B_HL`, throughput `T_l(α)`).
    LocalCache,
    /// Another node's cache over the interconnect (`B_HR`, `T_r(β)`).
    RemoteCache,
    /// The parallel file system (`B_M`, `T_PFS(γ)`).
    Pfs,
}

impl Tier {
    pub const ALL: [Tier; 3] = [Tier::LocalCache, Tier::RemoteCache, Tier::Pfs];

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Tier::LocalCache => "local",
            Tier::RemoteCache => "remote",
            Tier::Pfs => "pfs",
        }
    }
}

/// The complete storage model for one node (all nodes are homogeneous in the
/// paper's environment).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StorageModel {
    /// `T_l(α)`: local memory read throughput.
    pub local: ThroughputCurve,
    /// `T_r(β)`: inter-node read throughput.
    pub remote: ThroughputCurve,
    /// `T_PFS(γ)`: PFS read throughput of one node, before congestion.
    pub pfs: ThroughputCurve,
    /// Per-request fixed latency added to every remote-cache fetch (network
    /// round trip), in seconds.
    pub remote_latency_s: f64,
    /// Per-request fixed latency added to every PFS fetch (metadata +
    /// seek-equivalent on random small reads), in seconds.
    pub pfs_latency_s: f64,
    /// PFS congestion: with `n` nodes reading concurrently, each node's PFS
    /// throughput is multiplied by `1 / (1 + pfs_congestion × (n − 1))`.
    /// The paper treats `T_PFS` as "globally stable on the average"; the
    /// factor models the aggregate-bandwidth ceiling it abstracts.
    pub pfs_congestion: f64,
}

impl StorageModel {
    /// Throughput curve for a tier.
    pub fn curve(&self, tier: Tier) -> &ThroughputCurve {
        match tier {
            Tier::LocalCache => &self.local,
            Tier::RemoteCache => &self.remote,
            Tier::Pfs => &self.pfs,
        }
    }

    /// Fixed per-request latency for a tier, in seconds.
    pub fn latency_s(&self, tier: Tier) -> f64 {
        match tier {
            Tier::LocalCache => 0.0,
            Tier::RemoteCache => self.remote_latency_s,
            Tier::Pfs => self.pfs_latency_s,
        }
    }

    /// PFS degradation factor when `reading_nodes` nodes hit it at once.
    pub fn pfs_congestion_factor(&self, reading_nodes: usize) -> f64 {
        if reading_nodes <= 1 {
            1.0
        } else {
            1.0 / (1.0 + self.pfs_congestion * (reading_nodes - 1) as f64)
        }
    }

    /// Seconds to read `bytes` (split into `requests` individual sample
    /// reads) from `tier` using `threads` threads, decomposed into
    /// `(bandwidth_s, latency_s)`. The split matters because the two parts
    /// saturate differently: bandwidth is a shared-medium resource (it stops
    /// scaling at the curve knee and degrades under node overcommit), while
    /// per-request latency is hidden by outstanding-request parallelism and
    /// keeps amortizing with more threads. Returns infinite bandwidth time
    /// for zero threads ("tier unusable").
    pub fn read_secs_parts(
        &self,
        tier: Tier,
        bytes: f64,
        requests: u64,
        threads: u32,
        reading_nodes: usize,
    ) -> (f64, f64) {
        if bytes <= 0.0 && requests == 0 {
            return (0.0, 0.0);
        }
        let mut tput = self.curve(tier).at(threads);
        if tier == Tier::Pfs {
            tput *= self.pfs_congestion_factor(reading_nodes);
        }
        if tput <= 0.0 {
            return (f64::INFINITY, 0.0);
        }
        // Fixed per-request latencies are paid by the threads in parallel,
        // but one request cannot be split across threads.
        let effective = threads.min(requests.min(u32::MAX as u64) as u32).max(1);
        let latency_total = self.latency_s(tier) * requests as f64 / effective as f64;
        (bytes / tput, latency_total)
    }

    /// Total seconds to read `bytes` in `requests` reads from `tier` — see
    /// [`read_secs_parts`](Self::read_secs_parts).
    pub fn read_secs(
        &self,
        tier: Tier,
        bytes: f64,
        requests: u64,
        threads: u32,
        reading_nodes: usize,
    ) -> f64 {
        let (bw, lat) = self.read_secs_parts(tier, bytes, requests, threads, reading_nodes);
        bw + lat
    }
}

/// ThetaGPU-like preset (paper §5.1): DGX A100 nodes, HDR200 fat-tree,
/// Lustre at 250 GB/s aggregate. Values are chosen so the *ratios* between
/// tiers match the paper's qualitative claims: inter-node bandwidth exceeds
/// per-node PFS bandwidth, and PFS random small reads are orders of
/// magnitude slower than local memory.
pub fn thetagpu() -> StorageModel {
    StorageModel {
        // DDR4 reads through the loader path: ~1.5 GB/s/thread, saturating
        // ~18 GB/s (shared with preprocessing traffic).
        local: ThroughputCurve::saturating(1.5e9, 12),
        // HDR200 (200 Gb/s ≈ 25 GB/s raw) with software/MPI overheads:
        // ~0.8 GB/s/thread saturating at ~6.4 GB/s, plus a round trip.
        remote: ThroughputCurve::saturating(8.0e8, 8),
        // Lustre *random small reads* (the access pattern the paper calls
        // out as pathological): ~100 MB/s/thread of streamable payload,
        // ~800 MB/s/node cap, and a multi-millisecond per-file cost
        // (metadata + seek-equivalent). These make an all-miss mini-batch
        // fetch slower than a ResNet-50 training step at low thread counts,
        // matching Figure 3's "data loading 3× longer than training", while
        // leaving slack for prefetching once hits accumulate.
        pfs: ThroughputCurve::saturating(1.0e8, 8),
        remote_latency_s: 100e-6,
        pfs_latency_s: 3e-3,
        pfs_congestion: 0.10,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_ordering_matches_paper_claims() {
        let m = thetagpu();
        // (1) inter-node bandwidth > per-node PFS bandwidth.
        assert!(m.remote.peak().1 > m.pfs.peak().1);
        // Local memory beats everything.
        assert!(m.local.peak().1 > m.remote.peak().1);
    }

    #[test]
    fn read_secs_scales_with_threads() {
        let m = thetagpu();
        let one = m.read_secs(Tier::Pfs, 1e9, 0, 1, 1);
        let four = m.read_secs(Tier::Pfs, 1e9, 0, 4, 1);
        assert!((one / four - 4.0).abs() < 1e-6, "{one} vs {four}");
    }

    #[test]
    fn zero_threads_is_unusable() {
        let m = thetagpu();
        assert!(m.read_secs(Tier::LocalCache, 1.0, 1, 0, 1).is_infinite());
    }

    #[test]
    fn congestion_degrades_pfs_only() {
        let m = thetagpu();
        let alone = m.read_secs(Tier::Pfs, 1e9, 0, 4, 1);
        let crowded = m.read_secs(Tier::Pfs, 1e9, 0, 4, 8);
        assert!(
            crowded > alone * 1.5,
            "8-node congestion should bite: {alone} vs {crowded}"
        );
        let r_alone = m.read_secs(Tier::RemoteCache, 1e9, 0, 4, 1);
        let r_crowded = m.read_secs(Tier::RemoteCache, 1e9, 0, 4, 8);
        assert_eq!(r_alone, r_crowded);
    }

    #[test]
    fn per_request_latency_amortizes_over_threads() {
        let m = thetagpu();
        let t1 = m.read_secs(Tier::Pfs, 0.0, 100, 1, 1);
        let t4 = m.read_secs(Tier::Pfs, 0.0, 100, 4, 1);
        assert!((t1 / t4 - 4.0).abs() < 1e-6);
        assert!((t1 - 100.0 * m.latency_s(Tier::Pfs)).abs() < 1e-9);
    }

    #[test]
    fn latency_cannot_split_a_single_request() {
        let m = thetagpu();
        let t1 = m.read_secs(Tier::Pfs, 0.0, 1, 1, 1);
        let t64 = m.read_secs(Tier::Pfs, 0.0, 1, 64, 1);
        assert_eq!(t1, t64, "one request is indivisible");
    }

    #[test]
    fn all_miss_batch_is_slower_than_resnet50_step() {
        // The paper's premise (Figure 3): with few threads, fetching a
        // 32-sample mini-batch entirely from the PFS exceeds T_train.
        let m = thetagpu();
        let batch_bytes = 32.0 * 105_000.0;
        let t = m.read_secs(Tier::Pfs, batch_bytes, 32, 1, 1);
        assert!(t > 0.115, "all-miss fetch {t}s should exceed a 115 ms step");
    }

    #[test]
    fn empty_read_costs_nothing() {
        let m = thetagpu();
        assert_eq!(m.read_secs(Tier::LocalCache, 0.0, 0, 4, 1), 0.0);
    }

    #[test]
    fn congestion_factor_is_one_for_single_node() {
        let m = thetagpu();
        assert_eq!(m.pfs_congestion_factor(0), 1.0);
        assert_eq!(m.pfs_congestion_factor(1), 1.0);
        assert!(m.pfs_congestion_factor(2) < 1.0);
    }
}
