//! # lobster-storage
//!
//! Storage-hierarchy models for the Lobster reproduction: piecewise-linear
//! throughput-vs-threads curves ([`curve`]) and the three-tier hierarchy —
//! local cache / remote cache / PFS — with latency and congestion ([`tiers`]).
//!
//! These are the `T_l(α)`, `T_r(β)`, `T_PFS(γ)` functions of the paper's
//! Table 1, substituting for the ThetaGPU hardware that is not available in
//! this environment.

pub mod curve;
pub mod faults;
pub mod tiers;

pub use curve::ThroughputCurve;
pub use faults::{
    BackoffSchedule, CrashSpec, FaultAction, FaultConfigError, FaultPlan, FaultSpec,
    MembershipEvent, MembershipTransition, RetryPolicy, SlowdownProfile,
};
pub use tiers::{thetagpu, StorageModel, Tier};
