//! Property tests for the fault-injection subsystem: schedule determinism
//! and retry-backoff deadline safety (ISSUE 2 satellite coverage).

use lobster_storage::faults::{FaultPlan, FaultSpec, RetryPolicy, SlowdownProfile};
use proptest::prelude::*;
use std::time::Duration;

fn spec(transient: f64, stall: f64, corrupt: f64, poison: f64, seed: u64) -> FaultSpec {
    FaultSpec {
        transient_rate: transient,
        stall_rate: stall,
        corrupt_rate: corrupt,
        poison_rate: poison,
        seed,
        ..FaultSpec::default()
    }
}

proptest! {
    /// (a) A `FaultPlan` schedule is a pure function of its seed: two
    /// compilations of the same spec agree on every (node, index) draw and
    /// on every slowdown evaluation.
    #[test]
    fn plan_schedule_is_pure_function_of_seed(
        transient in 0.0f64..0.9,
        stall in 0.0f64..0.5,
        corrupt in 0.0f64..0.5,
        poison in 0.0f64..0.2,
        seed in any::<u64>(),
        nodes in 1usize..6,
    ) {
        let s = spec(transient, stall, corrupt, poison, seed);
        let a: FaultPlan = s.compile().unwrap();
        let b: FaultPlan = s.compile().unwrap();
        for node in 0..nodes {
            for index in 0..256u64 {
                prop_assert_eq!(a.action(node, index), b.action(node, index));
            }
        }
        for t in [0.0, 0.5, 1.0, 17.3, 1e4] {
            for node in 0..nodes {
                prop_assert_eq!(a.slowdown(node, t), b.slowdown(node, t));
            }
        }
    }

    /// A different seed produces a different schedule (for any non-trivial
    /// rate — comparing enough indices that a collision is implausible).
    #[test]
    fn different_seeds_diverge(seed in any::<u64>()) {
        let a = spec(0.3, 0.0, 0.0, 0.0, seed).compile().unwrap();
        let b = spec(0.3, 0.0, 0.0, 0.0, seed.wrapping_add(1)).compile().unwrap();
        let fire = |p: &FaultPlan| (0..4096u64).map(|i| p.action(0, i)).collect::<Vec<_>>();
        prop_assert_ne!(fire(&a), fire(&b));
    }

    /// (b) Retry-with-backoff never sleeps past the configured per-fetch
    /// deadline, never exceeds the per-delay cap, and never yields more
    /// than `max_attempts - 1` delays.
    #[test]
    fn backoff_never_exceeds_deadline(
        max_attempts in 1u32..32,
        base_us in 1u64..10_000,
        cap_us in 1u64..1_000_000,
        deadline_us in 1u64..5_000_000,
        seed in any::<u64>(),
    ) {
        let policy = RetryPolicy {
            max_attempts,
            base: Duration::from_micros(base_us),
            cap: Duration::from_micros(cap_us.max(base_us)),
            deadline: Duration::from_micros(deadline_us),
        };
        let delays: Vec<Duration> = policy.backoff(seed).collect();
        prop_assert!(delays.len() < max_attempts.max(1) as usize
            || (max_attempts == 0 && delays.is_empty()));
        let total: Duration = delays.iter().sum();
        prop_assert!(total <= policy.deadline,
            "cumulative backoff {total:?} exceeds deadline {:?}", policy.deadline);
        for d in &delays {
            prop_assert!(*d <= policy.cap);
        }
        // Replay identically from the same seed.
        prop_assert_eq!(delays, policy.backoff(seed).collect::<Vec<_>>());
    }

    /// Every valid slowdown profile evaluates to a finite factor ≥ 1 at
    /// all times, including far beyond its transition window.
    #[test]
    fn profiles_stay_at_least_nominal(
        kind in 0usize..4,
        f1 in 1.0f64..16.0,
        f2 in 1.0f64..16.0,
        t_cfg in 0.001f64..1e4,
        t_eval in 0.0f64..1e6,
    ) {
        let profile = match kind {
            0 => SlowdownProfile::Constant(f1),
            1 => SlowdownProfile::Step { at_s: t_cfg, factor: f1 },
            2 => SlowdownProfile::Flap { period_s: t_cfg, lo: f1.min(f2), hi: f1.max(f2) },
            _ => SlowdownProfile::Ramp { from: f1, to: f2, over_s: t_cfg },
        };
        profile.validate().unwrap();
        let factor = profile.factor_at(t_eval);
        prop_assert!(factor.is_finite());
        prop_assert!(factor >= 1.0, "{profile:?} at {t_eval} gave {factor}");
        prop_assert!(factor <= profile.peak() + 1e-12);
    }
}
