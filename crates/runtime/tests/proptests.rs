//! Property tests for the live engine: for arbitrary small topologies and
//! seeds, a run must drain the full schedule with the exact
//! schedule-determined integrity fingerprint.

use lobster_data::{Dataset, SizeDistribution};
use lobster_runtime::{expected_integrity, run, schedule_spec, EngineConfig, SyntheticStore};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

proptest! {
    // Each case spins up a real threaded engine; keep the sweep small.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn engine_drains_exactly_what_the_schedule_determines(
        seed in 0u64..1_000,
        consumers in 1usize..3,
        batch_size in 1usize..4,
        len in 16usize..48,
    ) {
        let dataset = Dataset::generate(
            "runtime-prop",
            len,
            SizeDistribution::Uniform { lo: 500, hi: 4_000 },
            seed,
        );
        let cfg = EngineConfig {
            consumers,
            batch_size,
            loader_threads: 2,
            preproc_threads: 1,
            epochs: 2,
            seed,
            train: Duration::ZERO,
            ..EngineConfig::default()
        };
        let spec = schedule_spec(&dataset, &cfg);
        prop_assume!(spec.iterations_per_epoch() > 0);

        let store = Arc::new(SyntheticStore::new(dataset.clone(), Duration::ZERO, 0.0));
        let report = run(store, cfg.clone());
        prop_assert!(!report.aborted);
        let per_epoch = spec.iterations_per_epoch() * consumers * batch_size;
        prop_assert_eq!(report.delivered, (per_epoch as u64) * cfg.epochs);
        prop_assert_eq!(report.integrity, expected_integrity(&dataset, &cfg));
    }
}
