//! The preprocessing transform of the live runtime.
//!
//! Stands in for JPEG decode + augmentation: an invertible byte-mixing pass
//! whose CPU cost is proportional to the sample size (times a configurable
//! work factor), so preprocessing-thread decisions have real, measurable
//! consequences. Invertibility gives tests an exact end-to-end integrity
//! check: applying the same passes again restores the canonical bytes.

/// Preprocess `input`, producing the "decoded" sample. `work_factor`
/// repeats the mixing pass (with a per-pass key) to emulate heavier
/// augmentation pipelines.
pub fn preprocess(input: &[u8], work_factor: u32) -> Vec<u8> {
    let mut out = input.to_vec();
    for pass in 0..work_factor.max(1) {
        mix(&mut out, pass);
    }
    out
}

/// One in-place mixing pass: XOR with a position- and pass-keyed stream.
/// XOR passes are self-inverse and commute, so applying the same set of
/// passes again restores the input.
fn mix(buf: &mut [u8], pass: u32) {
    let mut key = 0x9E37u16 ^ (pass as u16).wrapping_mul(0x58F1);
    for (i, b) in buf.iter_mut().enumerate() {
        key = key.rotate_left(3) ^ (i as u16).wrapping_mul(0x2545);
        *b ^= (key >> 4) as u8;
    }
}

/// Invert [`preprocess`] (tests only — consumers never need it).
pub fn invert(output: &[u8], work_factor: u32) -> Vec<u8> {
    preprocess(output, work_factor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::sample_bytes;
    use lobster_data::SampleId;

    #[test]
    fn transform_is_invertible() {
        let original = sample_bytes(SampleId(42), 1024);
        for wf in [1u32, 2, 5] {
            let cooked = preprocess(&original, wf);
            let restored = invert(&cooked, wf);
            assert_eq!(restored, original, "work_factor {wf}");
        }
    }

    #[test]
    fn transform_changes_the_bytes() {
        let original = sample_bytes(SampleId(7), 512);
        for wf in [1u32, 2, 3] {
            let cooked = preprocess(&original, wf);
            assert_ne!(cooked, original, "work_factor {wf} must not be identity");
            assert_eq!(cooked.len(), original.len());
        }
    }

    #[test]
    fn transform_is_deterministic() {
        let original = sample_bytes(SampleId(9), 256);
        assert_eq!(preprocess(&original, 3), preprocess(&original, 3));
    }

    #[test]
    fn zero_work_factor_clamps_to_one() {
        let original = sample_bytes(SampleId(1), 64);
        assert_eq!(preprocess(&original, 0), preprocess(&original, 1));
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(preprocess(&[], 3).is_empty());
    }
}
