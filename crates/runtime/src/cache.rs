//! A thread-safe byte cache for the live runtime: `lobster-cache`'s
//! priority-indexed eviction mechanics plus actual payload storage, behind
//! one lock. Lock hold times are short (metadata + `Vec` moves); payload
//! generation and simulated I/O happen outside the lock.

use lobster_cache::{EvictOrder, NodeCache};
use lobster_data::SampleId;
use lobster_metrics::{Counter, Instruments, TraceEvent};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, capacity-bounded sample cache.
pub struct ShardCache {
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    instruments: Instruments,
    hits_m: Counter,
    misses_m: Counter,
    evictions_m: Counter,
}

struct Inner {
    meta: NodeCache,
    payload: HashMap<u32, Arc<Vec<u8>>>,
}

impl ShardCache {
    pub fn new(capacity_bytes: u64) -> ShardCache {
        ShardCache::with_instruments(capacity_bytes, Instruments::disabled())
    }

    /// A cache that also feeds the observability layer: `engine.cache_hits`
    /// / `engine.cache_misses` / `engine.cache_evictions` counters and
    /// `evict` trace instants. With a disabled bundle this is identical to
    /// [`ShardCache::new`].
    pub fn with_instruments(capacity_bytes: u64, instruments: Instruments) -> ShardCache {
        ShardCache {
            inner: Mutex::new(Inner {
                meta: NodeCache::new(capacity_bytes, EvictOrder::SmallestKeyFirst),
                payload: HashMap::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            hits_m: instruments.counter("engine.cache_hits"),
            misses_m: instruments.counter("engine.cache_misses"),
            evictions_m: instruments.counter("engine.cache_evictions"),
            instruments,
        }
    }

    /// Look up a sample; counts a hit or miss. On hit the priority key is
    /// refreshed to `touch_key`.
    pub fn get(&self, id: SampleId, touch_key: u64) -> Option<Arc<Vec<u8>>> {
        let mut inner = self.inner.lock();
        if let Some(bytes) = inner.payload.get(&id.0).cloned() {
            inner.meta.set_key(id, touch_key);
            drop(inner);
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.hits_m.inc();
            Some(bytes)
        } else {
            drop(inner);
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.misses_m.inc();
            None
        }
    }

    /// Residency check without stats or key refresh.
    pub fn contains(&self, id: SampleId) -> bool {
        self.inner.lock().meta.contains(id)
    }

    /// Insert a sample with a priority key; evicted payloads are dropped.
    /// Returns false if the sample could not be admitted.
    pub fn insert(&self, id: SampleId, bytes: Arc<Vec<u8>>, key: u64) -> bool {
        let mut inner = self.inner.lock();
        let outcome = inner.meta.insert(id, bytes.len() as u64, key);
        for victim in &outcome.evicted {
            inner.payload.remove(&victim.0);
        }
        if outcome.inserted {
            inner.payload.insert(id.0, bytes);
        }
        drop(inner);
        if !outcome.evicted.is_empty() {
            self.evictions_m.add(outcome.evicted.len() as u64);
            self.instruments.trace(|| {
                TraceEvent::instant("evict", "cache", self.instruments.now_us())
                    .arg_u("victims", outcome.evicted.len() as u64)
                    .arg_s("reason", "capacity")
            });
        }
        outcome.inserted
    }

    /// Explicitly evict (policy-driven). Returns true if resident.
    pub fn evict(&self, id: SampleId) -> bool {
        let mut inner = self.inner.lock();
        let was = inner.meta.evict(id);
        if was {
            inner.payload.remove(&id.0);
        }
        drop(inner);
        if was {
            self.evictions_m.inc();
            self.instruments.trace(|| {
                TraceEvent::instant("evict", "cache", self.instruments.now_us())
                    .arg_u("sample", id.0 as u64)
                    .arg_s("reason", "policy")
            });
        }
        was
    }

    pub fn used_bytes(&self) -> u64 {
        self.inner.lock().meta.used_bytes()
    }

    pub fn len(&self) -> usize {
        self.inner.lock().meta.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn miss_count(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub fn hit_ratio(&self) -> f64 {
        let h = self.hit_count();
        let m = self.miss_count();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Arc<Vec<u8>> {
        Arc::new(vec![0xAB; n])
    }

    #[test]
    fn get_counts_hits_and_misses() {
        let c = ShardCache::new(1000);
        assert!(c.get(SampleId(1), 0).is_none());
        c.insert(SampleId(1), payload(100), 1);
        assert!(c.get(SampleId(1), 2).is_some());
        assert_eq!(c.hit_count(), 1);
        assert_eq!(c.miss_count(), 1);
        assert_eq!(c.hit_ratio(), 0.5);
    }

    #[test]
    fn eviction_drops_payload_and_capacity_is_respected() {
        let c = ShardCache::new(250);
        c.insert(SampleId(1), payload(100), 1);
        c.insert(SampleId(2), payload(100), 2);
        // Needs an eviction: key 1 goes.
        assert!(c.insert(SampleId(3), payload(100), 3));
        assert!(!c.contains(SampleId(1)));
        assert!(c.used_bytes() <= 250);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn explicit_evict_roundtrip() {
        let c = ShardCache::new(1000);
        c.insert(SampleId(9), payload(10), 0);
        assert!(c.evict(SampleId(9)));
        assert!(!c.evict(SampleId(9)));
        assert!(c.is_empty());
    }

    #[test]
    fn concurrent_access_is_safe_and_consistent() {
        let c = Arc::new(ShardCache::new(100_000));
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u32 {
                    let id = SampleId(t * 1000 + i);
                    c.insert(id, Arc::new(vec![t as u8; 50]), i as u64);
                    assert!(c.get(id, i as u64).is_some() || !c.contains(id));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.used_bytes() <= 100_000);
    }
}
