//! # lobster-runtime
//!
//! A real multi-threaded data-loading runtime applying the Lobster policies
//! live — the reproduction's analog of the paper's online C++/DALI
//! component. Unlike `lobster-pipeline` (which *models* stage durations),
//! this crate moves actual bytes through actual threads:
//!
//! * [`store`] — deterministic synthetic samples behind a simulated-PFS
//!   fetch cost.
//! * [`cache`] — a thread-safe, capacity-bounded byte cache with
//!   priority-indexed eviction (shared with the simulator's mechanics).
//! * [`transform`] — an invertible CPU-proportional preprocessing stand-in,
//!   so end-to-end integrity is checkable.
//! * [`engine`] — multi-queue loaders, preprocessing pool, consumer
//!   ("GPU") threads with a barrier, and an adaptive controller that
//!   re-assigns loader workers to queues by measured pressure (§4.2 live).
//!   With [`EngineConfig::elastic`] the two pools merge into one elastic
//!   pool whose preproc↔loader roles flip at iteration boundaries (§4.1).
//! * [`resilient`] — the self-healing fetch path: retries with
//!   backoff + jitter, per-fetch deadlines, checksum-verified refetch.
//! * [`sync`] — abort-aware barrier so a failed worker can never deadlock
//!   the consumer rendezvous, and the elastic pool's shared
//!   [`sync::RoleBoard`].

pub mod cache;
pub mod engine;
pub mod resilient;
pub mod store;
pub mod sync;
pub mod transform;

pub use cache::ShardCache;
pub use engine::{
    compute_assignment, compute_weighted_assignment, expected_integrity, run, run_with,
    schedule_spec, EngineConfig, EngineReport,
};
pub use resilient::{RecoveryStats, ResilientStore};
pub use store::{sample_bytes, sample_checksum, FetchError, InjectedFaults, SyntheticStore};
pub use sync::{AbortableBarrier, BarrierAborted, RoleBoard, ROLE_LOADER, ROLE_PREPROC};
pub use transform::{invert, preprocess};
