//! The live data-loading engine: real threads, real queues, real timings.
//!
//! This is the reproduction's analog of the paper's online C++ runtime: a
//! multi-queue loading stage (one request queue per consumer, §4.2), a
//! preprocessing worker pool, a shared capacity-bounded cache, and consumer
//! threads standing in for GPUs (they assemble mini-batches, "train" for a
//! fixed duration, and synchronize on a barrier like a gradient allreduce).
//! An optional adaptive controller re-assigns loader workers to queues in
//! proportion to measured queue pressure — Lobster's multi-queue thread
//! assignment, driven by live measurements instead of the model.
//!
//! All store I/O goes through the self-healing [`ResilientStore`] path:
//! transient errors are retried with backoff + jitter, stalls are bounded
//! by per-fetch deadlines, corrupted payloads are detected by checksum and
//! refetched, and a loader worker that *panics* (an injected
//! poison fault) is contained — the panic is caught, counted, and the
//! request re-executed — so no fault class can wedge the consumer barrier.
//! Teardown is defensive end to end: channel disconnections unwind each
//! stage instead of panicking, and an [`AbortableBarrier`] plus the store's
//! cancel flag let the engine drain cleanly even if a consumer dies.

use crate::cache::ShardCache;
use crate::resilient::ResilientStore;
use crate::store::{sample_checksum, FetchError, SyntheticStore};
use crate::sync::{AbortableBarrier, RoleBoard, ROLE_LOADER, ROLE_PREPROC};
use crate::transform::{invert, preprocess};
use crossbeam::channel::{bounded, unbounded, Receiver, SendTimeoutError, Sender, TryRecvError};
use lobster_core::elastic::{
    ElasticController, ElasticDecision, ElasticObservation, ElasticParams,
};
use lobster_core::WorkEstimate;
use lobster_data::{
    generate_access, AccessPattern, Dataset, EpochSchedule, PartitionScheme, SampleId, ScheduleSpec,
};
use lobster_metrics::{
    DecisionRecord, DecisionSource, FlightEvent, FlightFault, FlightTier, Instruments, TraceEvent,
};
use lobster_storage::faults::{
    CrashSpec, FaultSpec, MembershipEvent, MembershipTransition, RetryPolicy,
};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Consumer ("GPU") threads.
    pub consumers: usize,
    /// Samples per consumer per iteration.
    pub batch_size: usize,
    /// Loader worker threads.
    pub loader_threads: usize,
    /// Preprocessing worker threads.
    pub preproc_threads: usize,
    /// Cache capacity in bytes.
    pub cache_bytes: u64,
    /// Preprocessing work factor (mixing passes per sample).
    pub work_factor: u32,
    /// Simulated training duration per iteration.
    pub train: Duration,
    /// Adaptive multi-queue assignment (Lobster) vs static round-robin
    /// (PyTorch/DALI-style fixed pools).
    pub adaptive: bool,
    /// Epochs to run.
    pub epochs: u64,
    /// Shuffle seed.
    pub seed: u64,
    /// Retry/backoff/deadline parameters for the resilient fetch path.
    pub retry: RetryPolicy,
    /// Elastic worker pool (§4.1): merge the loader and preprocessing
    /// pools into one pool of `loader_threads + preproc_threads` workers
    /// whose roles the controller flips at iteration boundaries.
    pub elastic: bool,
    /// Stress mode for the elastic pool: force one role swap on every
    /// tick where the split would otherwise stand still.
    pub elastic_churn: bool,
    /// Mid-run preprocessing step: from iteration `.0` on, the work
    /// factor becomes `.1` (the Fig. 6 workload shift, live).
    pub work_factor_step: Option<(u64, u32)>,
    /// Scheduled whole-node crashes and rejoins (tick-indexed). The engine
    /// is one node of the modeled cluster, so a crash manifests here as
    /// peer-routing state: consumer 0 applies the tick's down-mask at each
    /// iteration boundary and any fetch routed at a down peer fails fast
    /// into the immediate-PFS failover.
    pub crashes: Vec<CrashSpec>,
    /// Modeled cluster size for the synthetic peer-routing hash (0 turns
    /// routing off entirely). Must cover every node a [`CrashSpec`] names.
    pub peer_nodes: usize,
    /// Declarative SLOs evaluated over the run's telemetry frames at
    /// teardown (see `lobster_metrics::telemetry::SloSpec::parse` for the
    /// grammar). Empty means no SLO evaluation; verdicts land in
    /// [`EngineReport::slo_verdicts`]. Requires enabled instruments.
    pub slo: Vec<lobster_metrics::SloSpec>,
    /// How the per-epoch sample order is drawn (epoch shuffle,
    /// Zipf-with-replacement, growing prefix — DESIGN.md §15). The feeder,
    /// the integrity fingerprint, and the conformance delivery check all
    /// derive from the same pattern.
    pub access: AccessPattern,
    /// Per-sample work estimate fed to the elastic controller (mean or a
    /// quantile of `size · cost` — DESIGN.md §15).
    pub work_estimate: WorkEstimate,
}

impl EngineConfig {
    /// The preprocessing work factor in force at `iter` — a pure function
    /// of the schedule, used identically by the preprocessing workers, the
    /// consumers' integrity inversion, and the elastic controller.
    pub fn work_factor_at(&self, iter: u64) -> u32 {
        match self.work_factor_step {
            Some((at, wf)) if iter >= at => wf,
            _ => self.work_factor,
        }
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            consumers: 2,
            batch_size: 8,
            loader_threads: 2,
            preproc_threads: 2,
            cache_bytes: 64 << 20,
            work_factor: 1,
            train: Duration::from_millis(2),
            adaptive: true,
            epochs: 2,
            seed: 42,
            retry: RetryPolicy::default(),
            elastic: false,
            elastic_churn: false,
            work_factor_step: None,
            crashes: Vec::new(),
            peer_nodes: 0,
            slo: Vec::new(),
            access: AccessPattern::EpochShuffle,
            work_estimate: WorkEstimate::Mean,
        }
    }
}

/// What the engine measured.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Iterations executed (across all epochs).
    pub iterations: u64,
    /// Wall time of each iteration (barrier to barrier), seconds.
    pub iteration_secs: Vec<f64>,
    /// Cache hit ratio over all demand lookups.
    pub hit_ratio: f64,
    /// Backing-store fetches (misses reaching the "PFS").
    pub store_fetches: u64,
    /// Samples delivered to consumers.
    pub delivered: u64,
    /// XOR of all delivered samples' canonical checksums: an end-to-end
    /// integrity fingerprint that is a pure function of the schedule.
    pub integrity: u64,
    /// Fetch attempts beyond the first (transient retries + corrupt
    /// refetches), from the resilient fetch path.
    pub retries: u64,
    /// Corrupted payloads caught by checksum verification and refetched.
    pub corruptions_detected: u64,
    /// Fetch rounds abandoned at the per-fetch deadline.
    pub deadline_exceeded: u64,
    /// Loader-worker panics contained (request re-executed).
    pub worker_panics: u64,
    /// True if the run was aborted (a consumer died) rather than draining
    /// the full schedule. All counts above still reflect work done.
    pub aborted: bool,
    /// Exactly which samples each consumer received, per iteration:
    /// `delivered_samples[consumer][iter]` is the sorted multiset of sample
    /// ids delivered to that consumer in that iteration. Deterministic — a
    /// pure function of the schedule — even though arrival *order* within
    /// an iteration races. Conformance checking diffs this against the
    /// scheduled batches and the simulators' delivery record.
    pub delivered_samples: Vec<Vec<Vec<u64>>>,
    /// One [`ElasticDecision`] per tick when the elastic pool is on
    /// (empty otherwise) — the role-flip decision sequence the
    /// conformance harness diffs against both simulators.
    pub role_flips: Vec<ElasticDecision>,
    /// Membership transitions consumer 0 applied at tick boundaries, in
    /// application order — the sequence the conformance harness diffs
    /// against both simulators' membership observables.
    pub membership: Vec<MembershipEvent>,
    /// Online detector firings over the run's telemetry frames (empty
    /// when instruments are disabled). Replay-deterministic: re-running
    /// the detector bank over the recorded frames reproduces this
    /// sequence exactly.
    pub anomalies: Vec<lobster_metrics::Anomaly>,
    /// Verdicts for [`EngineConfig::slo`], evaluated over the retained
    /// telemetry frames at teardown.
    pub slo_verdicts: Vec<lobster_metrics::SloVerdict>,
}

#[derive(Debug, Clone, Copy)]
struct Req {
    iter: u64,
    consumer: usize,
    sample: SampleId,
    /// Enqueue timestamp (µs from the trace origin; 0 when uninstrumented)
    /// so the dequeueing loader can attribute queue-wait time.
    enq_us: u64,
}

/// Per-consumer stage-time accumulators feeding the online bottleneck
/// analyzer. Workers add monotonically from their own threads; consumer 0
/// snapshots deltas once per iteration after the barrier (the barrier
/// orders every pre-arrival write before the read).
struct StageAccum {
    /// Fetch nanoseconds served by the local cache, per consumer.
    fetch_local_ns: Vec<AtomicU64>,
    /// Fetch nanoseconds that reached the backing store ("PFS"), per
    /// consumer.
    fetch_store_ns: Vec<AtomicU64>,
    preproc_ns: Vec<AtomicU64>,
    queue_wait_ns: Vec<AtomicU64>,
    /// Barrier-arrival timestamp of each consumer this iteration, µs.
    arrival_us: Vec<AtomicU64>,
}

impl StageAccum {
    fn new(consumers: usize) -> StageAccum {
        let cells = |n: usize| (0..n).map(|_| AtomicU64::new(0)).collect();
        StageAccum {
            fetch_local_ns: cells(consumers),
            fetch_store_ns: cells(consumers),
            preproc_ns: cells(consumers),
            queue_wait_ns: cells(consumers),
            arrival_us: cells(consumers),
        }
    }
}

struct Raw {
    req: Req,
    bytes: Arc<Vec<u8>>,
}

struct Cooked {
    iter: u64,
    sample: SampleId,
    bytes: Vec<u8>,
}

/// Pure helper: distribute `workers` loader threads across queues in
/// proportion to their pending *cost* — queue depth weighted by the
/// measured per-request service time (§4.2's "data loading intensity",
/// driven by live measurements instead of the model). `costs_per_req` may
/// be empty or zero-filled, in which case depths alone decide. Returns a
/// queue index per worker.
pub fn compute_weighted_assignment(
    depths: &[usize],
    costs_per_req: &[f64],
    workers: usize,
) -> Vec<usize> {
    let costs: Vec<f64> = depths
        .iter()
        .enumerate()
        .map(|(q, &d)| {
            let unit = costs_per_req.get(q).copied().unwrap_or(0.0);
            d as f64 * if unit > 0.0 { unit } else { 1.0 }
        })
        .collect();
    assignment_from_costs(&costs, workers)
}

/// Distribute `workers` loader threads across queues in proportion to
/// their pending depths alone.
pub fn compute_assignment(depths: &[usize], workers: usize) -> Vec<usize> {
    let costs: Vec<f64> = depths.iter().map(|&d| d as f64).collect();
    assignment_from_costs(&costs, workers)
}

fn assignment_from_costs(costs: &[f64], workers: usize) -> Vec<usize> {
    let queues = costs.len().max(1);
    let total: f64 = costs.iter().filter(|c| c.is_finite()).sum();
    if total <= 0.0 {
        // Every queue is idle: spread round-robin rather than letting the
        // proportional path's rounding pile the pool onto the low queues.
        return (0..workers).map(|w| w % queues).collect();
    }
    let alloc = lobster_core::proportional_allocation(costs, workers as u32);
    if alloc.iter().map(|&a| a as usize).sum::<usize>() > workers {
        // More busy queues than workers: `proportional_allocation` floors
        // every busy queue at one thread, which used to truncate to the
        // *first* queues regardless of load. Cover the deepest first.
        let mut order: Vec<usize> = (0..costs.len()).filter(|&q| costs[q] > 0.0).collect();
        order.sort_by(|&a, &b| {
            costs[b]
                .partial_cmp(&costs[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        return (0..workers).map(|w| order[w % order.len()]).collect();
    }
    assignment_from_alloc(&alloc, costs.len(), workers)
}

fn assignment_from_alloc(alloc: &[u32], queues: usize, workers: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(workers);
    for (queue, &count) in alloc.iter().enumerate() {
        for _ in 0..count {
            if out.len() < workers {
                out.push(queue);
            }
        }
    }
    // Any leftover workers (rounding) go round-robin.
    let mut q = 0;
    while out.len() < workers {
        out.push(q % queues.max(1));
        q += 1;
    }
    out
}

/// Publish a controller tick to the shared state the workers read: the
/// role board mirrors the controller's role vector, and each loader-role
/// worker gets its primary queue by expanding the per-queue counts of
/// `d.loader_queues` over the loaders in worker-index order.
fn apply_elastic_decision(
    ctl: &ElasticController,
    d: &ElasticDecision,
    board: &RoleBoard,
    assignment: &[AtomicUsize],
) {
    let queues = &d.loader_queues;
    let nq = queues.len().max(1);
    let mut q = 0usize;
    let mut used = 0u32;
    for (w, &role) in ctl.roles().iter().enumerate() {
        match role {
            lobster_core::Role::Loader => {
                board.set_role(w, ROLE_LOADER);
                while q < queues.len() && used >= queues[q] {
                    q += 1;
                    used = 0;
                }
                let qi = if q < queues.len() { q } else { w % nq };
                assignment[w].store(qi, Ordering::Relaxed);
                used += 1;
            }
            lobster_core::Role::Preproc => board.set_role(w, ROLE_PREPROC),
        }
    }
}

/// One resilient fetch through the cache, with poisoned-worker
/// containment (the panic is caught, counted, and the request
/// re-executed). `None` means the store was cancelled and the calling
/// worker should unwind. Shared by the static loader pool and the
/// elastic pool's loader-role pass.
#[allow(clippy::too_many_arguments)]
fn fetch_one(
    req: &Req,
    w: usize,
    cache: &ShardCache,
    clock: &AtomicU64,
    rstore: &ResilientStore,
    worker_panics: &AtomicU64,
    panics_m: &lobster_metrics::Counter,
    fetches_m: &lobster_metrics::Counter,
    stage_accum: &StageAccum,
    service_ns: &[AtomicU64],
    ins: &Instruments,
) -> Option<Arc<Vec<u8>>> {
    let t0 = Instant::now();
    let ts_us = ins.now_us();
    if ins.is_enabled() {
        stage_accum.queue_wait_ns[req.consumer]
            .fetch_add(ts_us.saturating_sub(req.enq_us) * 1_000, Ordering::Relaxed);
    }
    let key = clock.fetch_add(1, Ordering::Relaxed);
    fetches_m.inc();
    let (bytes, tier) = match cache.get(req.sample, key) {
        Some(b) => (b, "cache"),
        None => {
            // Poisoned-worker containment: an injected poison fault panics
            // inside the fetch. The panic is caught here (no locks are held
            // across the fetch), logged, and the request re-executed — the
            // worker "restarts" instead of taking the whole scope down.
            let fetched = loop {
                let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    rstore.fetch(req.sample)
                }));
                match attempt {
                    Ok(Ok(bytes)) => break Arc::new(bytes),
                    Ok(Err(FetchError::Cancelled)) => return None,
                    Ok(Err(_)) => {
                        unreachable!("ResilientStore absorbs non-cancel errors")
                    }
                    Err(_) => {
                        worker_panics.fetch_add(1, Ordering::Relaxed);
                        panics_m.inc();
                        let ts = ins.now_us();
                        ins.trace(|| {
                            TraceEvent::instant("worker_panic", "fault", ts)
                                .tid(w as u32)
                                .arg_u("sample", req.sample.0 as u64)
                        });
                        ins.flight(|| FlightEvent::Fault {
                            kind: FlightFault::WorkerPanic,
                            sample: req.sample.0 as u64,
                        });
                    }
                }
            };
            cache.insert(req.sample, Arc::clone(&fetched), key);
            (fetched, "store")
        }
    };
    ins.trace(|| {
        TraceEvent::span("fetch", "io", ts_us, ins.now_us() - ts_us)
            .tid(w as u32)
            .arg_s("tier", tier)
            .arg_u("sample", req.sample.0 as u64)
            .arg_u("bytes", bytes.len() as u64)
    });
    if ins.is_enabled() {
        let cell = if tier == "cache" {
            &stage_accum.fetch_local_ns[req.consumer]
        } else {
            &stage_accum.fetch_store_ns[req.consumer]
        };
        cell.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        let flight_tier = if tier == "cache" {
            FlightTier::Cache
        } else {
            FlightTier::Store
        };
        ins.flight_fetch_us(flight_tier, t0.elapsed().as_micros() as u64);
        ins.telemetry_fetch_us(flight_tier, t0.elapsed().as_micros() as u64);
    }
    // EWMA (α = 1/4) of this queue's service cost.
    let obs = t0.elapsed().as_nanos() as u64;
    let cell = &service_ns[req.consumer];
    let prev = cell.load(Ordering::Relaxed);
    let next = if prev == 0 {
        obs
    } else {
        prev - prev / 4 + obs / 4
    };
    cell.store(next, Ordering::Relaxed);
    Some(bytes)
}

/// The canonical integrity fingerprint of a full run: XOR of every
/// scheduled sample's canonical checksum (order-independent). Tests compare
/// the engine's delivered fingerprint against this — it depends only on the
/// schedule, so a fault-injected run must produce the same value as a
/// fault-free one.
pub fn expected_integrity(dataset: &Dataset, cfg: &EngineConfig) -> u64 {
    let spec = schedule_spec(dataset, cfg);
    let mut acc = 0u64;
    for epoch in 0..cfg.epochs {
        let sched = engine_schedule(spec, epoch, cfg);
        for &s in sched.all_accesses() {
            let bytes = crate::store::sample_bytes(s, dataset.size_of(s) as usize);
            acc ^= sample_checksum(&bytes);
        }
    }
    acc
}

/// The exact epoch schedule the engine's feeder walks: the configured
/// access pattern applied to the engine's single-node spec. Public so
/// external checkers (conformance delivery, integrity) regenerate the same
/// batches the feeder sent.
pub fn engine_schedule(spec: ScheduleSpec, epoch: u64, cfg: &EngineConfig) -> EpochSchedule {
    generate_access(spec, epoch, PartitionScheme::GlobalShuffle, cfg.access)
}

/// The schedule the engine executes: one "node", one queue per consumer.
/// Public so external checkers can regenerate the exact expected batches.
pub fn schedule_spec(dataset: &Dataset, cfg: &EngineConfig) -> ScheduleSpec {
    ScheduleSpec {
        nodes: 1,
        gpus_per_node: cfg.consumers,
        batch_size: cfg.batch_size,
        dataset_len: dataset.len(),
        seed: cfg.seed,
    }
}

/// Run the engine to completion and report.
pub fn run(store: Arc<SyntheticStore>, cfg: EngineConfig) -> EngineReport {
    run_with(store, cfg, Instruments::disabled())
}

/// Run the engine with an observability bundle attached. Every pipeline
/// stage is instrumented — fetch spans (with storage tier), queue
/// enqueue/dequeue instants (with depth), preprocess spans, barrier-wait
/// spans, cache hit/miss/evict counters, fault/recovery instants, and one
/// [`DecisionRecord`] per adaptive controller tick. With
/// [`Instruments::disabled`] this is exactly [`run`].
pub fn run_with(store: Arc<SyntheticStore>, cfg: EngineConfig, ins: Instruments) -> EngineReport {
    assert!(cfg.consumers > 0 && cfg.batch_size > 0);
    assert!(cfg.loader_threads > 0 && cfg.preproc_threads > 0);
    let spec = schedule_spec(store.dataset(), &cfg);
    let iters_per_epoch = spec.iterations_per_epoch();
    assert!(iters_per_epoch > 0, "dataset too small for one iteration");
    let total_iters = iters_per_epoch as u64 * cfg.epochs;

    let cache = Arc::new(ShardCache::with_instruments(cfg.cache_bytes, ins.clone()));
    let clock = Arc::new(AtomicU64::new(0));
    let fetches_m = ins.counter("engine.fetches");
    let delivered_m = ins.counter("engine.delivered");
    let decisions_m = ins.counter("engine.controller_decisions");
    let barrier_m = ins.counter("engine.barrier_waits");
    let panics_m = ins.counter("engine.worker_panics");
    // One release of snapshot-alias grace for the pre-convention bare
    // spellings of the fault counters (now `engine.*`).
    for (legacy, canonical) in [
        ("worker_panics", "engine.worker_panics"),
        ("retries", "engine.retries"),
        ("corruptions_detected", "engine.corruptions_detected"),
        ("deadline_exceeded", "engine.deadline_exceeded"),
    ] {
        ins.metric_alias(legacy, canonical);
    }

    // Tick-deterministic membership: compile the crash schedule once and
    // let consumer 0 apply each tick's down-mask at the iteration
    // boundary. Timing of *which* in-flight fetch observes the mask races
    // (benign: a PeerDown fails over to the PFS and still delivers
    // verified bytes); the membership event sequence itself is a pure
    // function of the schedule.
    let crash_plan = (!cfg.crashes.is_empty()).then(|| {
        FaultSpec {
            crashes: cfg.crashes.clone(),
            seed: cfg.seed,
            ..FaultSpec::default()
        }
        .compile()
        .expect("engine crash schedule must be valid")
    });
    if cfg.peer_nodes > 0 {
        store.configure_peers(cfg.peer_nodes);
    }
    let membership_log: Arc<parking_lot::Mutex<Vec<MembershipEvent>>> =
        Arc::new(parking_lot::Mutex::new(Vec::new()));

    // The self-healing fetch path every loader goes through.
    let cancel = store.cancel_handle();
    let rstore = Arc::new(ResilientStore::new(
        Arc::clone(&store),
        cfg.retry,
        ins.clone(),
    ));
    let worker_panics = Arc::new(AtomicU64::new(0));

    // Per-consumer request queues (the §4.2 multi-queue) and cooked-sample
    // delivery channels.
    let mut req_tx: Vec<Sender<Req>> = Vec::new();
    let mut req_rx: Vec<Receiver<Req>> = Vec::new();
    let mut cooked_tx: Vec<Sender<Cooked>> = Vec::new();
    let mut cooked_rx: Vec<Receiver<Cooked>> = Vec::new();
    for _ in 0..cfg.consumers {
        let (tx, rx) = bounded::<Req>(2 * cfg.batch_size);
        req_tx.push(tx);
        req_rx.push(rx);
        // Unbounded so a preprocessing worker can never block on one
        // consumer's channel while other consumers starve behind it
        // (deadlock via the barrier); total in-flight work is bounded by
        // the feeder's credit pacing, not by this channel.
        let (tx, rx) = unbounded::<Cooked>();
        cooked_tx.push(tx);
        cooked_rx.push(rx);
    }
    let (raw_tx, raw_rx) = bounded::<Raw>(4 * cfg.batch_size * cfg.consumers);

    // Total worker pool: split statically, or elastically re-rolled.
    let pool = cfg.loader_threads + cfg.preproc_threads;
    // Loader→queue assignment, rewritten by the controller. In elastic
    // mode every pool slot has an entry (any worker may become a loader).
    let assignment: Arc<Vec<AtomicUsize>> = Arc::new(
        (0..if cfg.elastic {
            pool
        } else {
            cfg.loader_threads
        })
            .map(|w| AtomicUsize::new(w % cfg.consumers))
            .collect(),
    );
    // Elastic-pool state: the shared role table, the "feed is exhausted"
    // latch that lets loader-role workers hand their raw senders back, and
    // the per-tick decision log surfaced in the report.
    let board = Arc::new(RoleBoard::new(cfg.loader_threads, cfg.preproc_threads));
    let feed_done = Arc::new(AtomicBool::new(false));
    let role_flip_log: Arc<parking_lot::Mutex<Vec<ElasticDecision>>> =
        Arc::new(parking_lot::Mutex::new(Vec::new()));
    let preproc_g = ins.gauge("engine.preproc_workers");
    let loader_g = ins.gauge("engine.loader_workers");
    let mean_sample_bytes = cfg.work_estimate.per_sample_bytes(store.dataset());
    // Per-sample preprocessing cost multipliers (unit on classic datasets),
    // shared with every transform site so the live engine spends the same
    // work the simulators account for.
    let sample_costs: Arc<Vec<u32>> = Arc::new(
        (0..store.dataset().len())
            .map(|i| store.dataset().cost_of(SampleId(i as u32)))
            .collect(),
    );
    let batch_samples = (cfg.consumers * cfg.batch_size) as u64;
    let mut elastic_ctl = if cfg.elastic {
        let mut params = ElasticParams::for_pool(pool as u32, cfg.consumers as u32);
        params.force_churn = cfg.elastic_churn;
        let mut ctl = ElasticController::new(params, cfg.preproc_threads as u32);
        // Tick 0 runs before any worker spawns: the pool starts on the
        // regression's split for the first iteration.
        let obs = ElasticObservation::for_iteration(
            0,
            mean_sample_bytes,
            cfg.work_factor_at(0),
            batch_samples,
            cfg.train.as_secs_f64(),
        );
        let d = ctl.tick(&obs).clone();
        apply_elastic_decision(&ctl, &d, &board, &assignment);
        preproc_g.set(d.preproc_after as i64);
        loader_g.set(pool as i64 - d.preproc_after as i64);
        role_flip_log.lock().push(d);
        Some(ctl)
    } else {
        None
    };
    // Measured per-queue service cost in nanoseconds (EWMA, α = 1/4),
    // updated by the loaders and consumed by the controller.
    let service_ns: Arc<Vec<AtomicU64>> =
        Arc::new((0..cfg.consumers).map(|_| AtomicU64::new(0)).collect());
    let done = Arc::new(AtomicBool::new(false));
    let aborted = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(AbortableBarrier::new(cfg.consumers));
    let delivered = Arc::new(AtomicU64::new(0));
    let integrity = Arc::new(AtomicU64::new(0));
    // Credit pacing: at most `inflight_limit` samples per consumer between
    // the feeder and the consumer's consumption counter.
    let consumed: Arc<Vec<AtomicU64>> =
        Arc::new((0..cfg.consumers).map(|_| AtomicU64::new(0)).collect());
    let inflight_limit = (4 * cfg.batch_size) as u64;
    let iter_times: Arc<parking_lot::Mutex<Vec<f64>>> = Arc::new(parking_lot::Mutex::new(
        Vec::with_capacity(total_iters as usize),
    ));
    let stage_accum = Arc::new(StageAccum::new(cfg.consumers));
    // Per-consumer delivery log, written once per consumer at thread exit.
    let delivered_log: Arc<parking_lot::Mutex<Vec<Vec<Vec<u64>>>>> =
        Arc::new(parking_lot::Mutex::new(vec![Vec::new(); cfg.consumers]));

    crossbeam::scope(|scope| {
        // ---- Feeder: streams every request in schedule order. ----
        {
            let req_tx = req_tx.clone();
            let cfg = cfg.clone();
            let consumed = Arc::clone(&consumed);
            let done = Arc::clone(&done);
            let ins = ins.clone();
            scope.spawn(move |_| {
                let mut sent = vec![0u64; cfg.consumers];
                for epoch in 0..cfg.epochs {
                    let sched = engine_schedule(spec, epoch, &cfg);
                    for h in 0..iters_per_epoch {
                        let iter = epoch * iters_per_epoch as u64 + h as u64;
                        for consumer in 0..cfg.consumers {
                            for &sample in sched.batch(h, 0, consumer) {
                                // Credit pacing bounds total in-flight work
                                // per consumer regardless of queue sizes.
                                while sent[consumer] - consumed[consumer].load(Ordering::Relaxed)
                                    >= inflight_limit
                                {
                                    if done.load(Ordering::Relaxed) {
                                        // Aborted mid-run: nobody will ever
                                        // consume again; stop feeding.
                                        return;
                                    }
                                    std::thread::sleep(Duration::from_micros(50));
                                }
                                // A disconnected queue means the loaders are
                                // gone (engine unwinding): stop feeding
                                // instead of panicking mid-teardown.
                                if req_tx[consumer]
                                    .send(Req {
                                        iter,
                                        consumer,
                                        sample,
                                        enq_us: ins.now_us(),
                                    })
                                    .is_err()
                                {
                                    return;
                                }
                                sent[consumer] += 1;
                                ins.trace(|| {
                                    TraceEvent::instant("queue_enqueue", "queue", ins.now_us())
                                        .tid(consumer as u32)
                                        .arg_u("depth", req_tx[consumer].len() as u64)
                                        .arg_u("sample", sample.0 as u64)
                                });
                            }
                        }
                    }
                }
                // Senders drop here: loaders drain and exit.
            });
        }
        drop(req_tx); // feeder holds the only request senders now

        if cfg.elastic {
            // ---- Elastic pool: every worker can load or preprocess. ----
            // A worker reads its role off the shared board at the top of
            // every serve pass: loader-role workers pull requests and push
            // raw bytes, preproc-role workers drain the raw channel. Each
            // worker holds its own raw sender inside an `Option` and hands
            // it back once the feed is exhausted (`feed_done`), so the raw
            // channel disconnects and the pool drains without a join.
            for w in 0..pool {
                let req_rx = req_rx.clone();
                let raw_rx = raw_rx.clone();
                let raw_tx = raw_tx.clone();
                let cooked_tx = cooked_tx.clone();
                let cache = Arc::clone(&cache);
                let clock = Arc::clone(&clock);
                let rstore = Arc::clone(&rstore);
                let assignment = Arc::clone(&assignment);
                let service_ns = Arc::clone(&service_ns);
                let worker_panics = Arc::clone(&worker_panics);
                let stage_accum = Arc::clone(&stage_accum);
                let board = Arc::clone(&board);
                let feed_done = Arc::clone(&feed_done);
                let done = Arc::clone(&done);
                let cfg2 = cfg.clone();
                let sample_costs = Arc::clone(&sample_costs);
                let ins = ins.clone();
                let fetches_m = fetches_m.clone();
                let panics_m = panics_m.clone();
                scope.spawn(move |_| {
                    let mut raw_tx = Some(raw_tx);
                    loop {
                        if raw_tx.is_some() && feed_done.load(Ordering::Relaxed) {
                            raw_tx = None;
                        }
                        let loading = raw_tx.is_some() && board.role(w) == ROLE_LOADER;
                        if loading {
                            // Serve the assigned queue first, then steal.
                            let primary = assignment[w].load(Ordering::Relaxed) % req_rx.len();
                            let mut got = None;
                            let mut all_disconnected = true;
                            let n = req_rx.len();
                            for offset in 0..n {
                                let q = (primary + offset) % n;
                                match req_rx[q].try_recv() {
                                    Ok(r) => {
                                        got = Some(r);
                                        all_disconnected = false;
                                        break;
                                    }
                                    Err(TryRecvError::Empty) => all_disconnected = false,
                                    Err(TryRecvError::Disconnected) => {}
                                }
                            }
                            match got {
                                Some(req) => {
                                    ins.trace(|| {
                                        TraceEvent::instant("queue_dequeue", "queue", ins.now_us())
                                            .tid(req.consumer as u32)
                                            .arg_u("depth", req_rx[req.consumer].len() as u64)
                                            .arg_u("worker", w as u64)
                                    });
                                    let bytes = match fetch_one(
                                        &req,
                                        w,
                                        &cache,
                                        &clock,
                                        &rstore,
                                        &worker_panics,
                                        &panics_m,
                                        &fetches_m,
                                        &stage_accum,
                                        &service_ns,
                                        &ins,
                                    ) {
                                        Some(b) => b,
                                        None => return, // store cancelled
                                    };
                                    // A bounded send could block forever if
                                    // the run aborts while the raw channel is
                                    // full (the other pool slots hold live
                                    // receivers, so it never disconnects);
                                    // time-boxed sends re-check the abort
                                    // latch instead.
                                    let mut item = Raw { req, bytes };
                                    loop {
                                        let tx = raw_tx.as_ref().expect("loading implies sender");
                                        match tx.send_timeout(item, Duration::from_millis(5)) {
                                            Ok(()) => break,
                                            Err(SendTimeoutError::Timeout(it)) => {
                                                if done.load(Ordering::Relaxed) {
                                                    return;
                                                }
                                                item = it;
                                            }
                                            Err(SendTimeoutError::Disconnected(_)) => return,
                                        }
                                    }
                                }
                                None if all_disconnected => {
                                    // Feed exhausted: latch it for the whole
                                    // pool and fall through to preproc mode.
                                    feed_done.store(true, Ordering::Relaxed);
                                    raw_tx = None;
                                }
                                None => std::thread::sleep(Duration::from_micros(50)),
                            }
                        } else {
                            match raw_rx.try_recv() {
                                Ok(raw) => {
                                    let ts_us = ins.now_us();
                                    let t0 = Instant::now();
                                    let cooked = preprocess(
                                        &raw.bytes,
                                        cfg2.work_factor_at(raw.req.iter)
                                            .saturating_mul(sample_costs[raw.req.sample.index()]),
                                    );
                                    ins.trace(|| {
                                        TraceEvent::span(
                                            "preprocess",
                                            "compute",
                                            ts_us,
                                            ins.now_us() - ts_us,
                                        )
                                        .tid(w as u32)
                                        .arg_u("consumer", raw.req.consumer as u64)
                                        .arg_u("bytes", raw.bytes.len() as u64)
                                    });
                                    if ins.is_enabled() {
                                        stage_accum.preproc_ns[raw.req.consumer].fetch_add(
                                            t0.elapsed().as_nanos() as u64,
                                            Ordering::Relaxed,
                                        );
                                    }
                                    if cooked_tx[raw.req.consumer]
                                        .send(Cooked {
                                            iter: raw.req.iter,
                                            sample: raw.req.sample,
                                            bytes: cooked,
                                        })
                                        .is_err()
                                    {
                                        return;
                                    }
                                }
                                Err(TryRecvError::Empty) => {
                                    std::thread::sleep(Duration::from_micros(50));
                                }
                                // All raw senders handed back and the channel
                                // drained: the pool's work is over.
                                Err(TryRecvError::Disconnected) => return,
                            }
                        }
                    }
                });
            }
        } else {
            // ---- Loader workers (static split). ----
            for w in 0..cfg.loader_threads {
                let req_rx = req_rx.clone();
                let raw_tx = raw_tx.clone();
                let cache = Arc::clone(&cache);
                let clock = Arc::clone(&clock);
                let rstore = Arc::clone(&rstore);
                let assignment = Arc::clone(&assignment);
                let service_ns = Arc::clone(&service_ns);
                let worker_panics = Arc::clone(&worker_panics);
                let stage_accum = Arc::clone(&stage_accum);
                let ins = ins.clone();
                let fetches_m = fetches_m.clone();
                let panics_m = panics_m.clone();
                scope.spawn(move |_| loop {
                    // Serve the assigned queue first, then steal from the rest.
                    let primary = assignment[w].load(Ordering::Relaxed) % req_rx.len();
                    let mut got = None;
                    let mut all_disconnected = true;
                    let n = req_rx.len();
                    for offset in 0..n {
                        let q = (primary + offset) % n;
                        match req_rx[q].try_recv() {
                            Ok(r) => {
                                got = Some(r);
                                all_disconnected = false;
                                break;
                            }
                            Err(TryRecvError::Empty) => all_disconnected = false,
                            Err(TryRecvError::Disconnected) => {}
                        }
                    }
                    match got {
                        Some(req) => {
                            ins.trace(|| {
                                TraceEvent::instant("queue_dequeue", "queue", ins.now_us())
                                    .tid(req.consumer as u32)
                                    .arg_u("depth", req_rx[req.consumer].len() as u64)
                                    .arg_u("worker", w as u64)
                            });
                            let bytes = match fetch_one(
                                &req,
                                w,
                                &cache,
                                &clock,
                                &rstore,
                                &worker_panics,
                                &panics_m,
                                &fetches_m,
                                &stage_accum,
                                &service_ns,
                                &ins,
                            ) {
                                Some(b) => b,
                                None => break, // store cancelled
                            };
                            if raw_tx.send(Raw { req, bytes }).is_err() {
                                break;
                            }
                        }
                        None if all_disconnected => break,
                        None => std::thread::sleep(Duration::from_micros(100)),
                    }
                });
            }

            // ---- Preprocessing workers (static split). ----
            for p in 0..cfg.preproc_threads {
                let raw_rx = raw_rx.clone();
                let cooked_tx = cooked_tx.clone();
                let cfg2 = cfg.clone();
                let sample_costs = Arc::clone(&sample_costs);
                let stage_accum = Arc::clone(&stage_accum);
                let ins = ins.clone();
                scope.spawn(move |_| {
                    for raw in raw_rx.iter() {
                        let ts_us = ins.now_us();
                        let t0 = Instant::now();
                        let cooked = preprocess(
                            &raw.bytes,
                            cfg2.work_factor_at(raw.req.iter)
                                .saturating_mul(sample_costs[raw.req.sample.index()]),
                        );
                        ins.trace(|| {
                            TraceEvent::span("preprocess", "compute", ts_us, ins.now_us() - ts_us)
                                .tid(p as u32)
                                .arg_u("consumer", raw.req.consumer as u64)
                                .arg_u("bytes", raw.bytes.len() as u64)
                        });
                        if ins.is_enabled() {
                            stage_accum.preproc_ns[raw.req.consumer]
                                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        }
                        if cooked_tx[raw.req.consumer]
                            .send(Cooked {
                                iter: raw.req.iter,
                                sample: raw.req.sample,
                                bytes: cooked,
                            })
                            .is_err()
                        {
                            break;
                        }
                    }
                });
            }
        }
        drop(raw_tx);
        drop(cooked_tx);
        drop(raw_rx);

        // ---- Controller (adaptive multi-queue assignment). ----
        // In elastic mode the elastic controller owns the assignment table;
        // the measured-pressure controller stands down.
        if cfg.adaptive && !cfg.elastic {
            let req_rx = req_rx.clone();
            let assignment = Arc::clone(&assignment);
            let service_ns = Arc::clone(&service_ns);
            let done = Arc::clone(&done);
            let ins = ins.clone();
            let decisions_m = decisions_m.clone();
            let consumers = cfg.consumers;
            scope.spawn(move |_| {
                while !done.load(Ordering::Relaxed) {
                    let depths: Vec<usize> = req_rx.iter().map(|rx| rx.len()).collect();
                    let costs: Vec<f64> = service_ns
                        .iter()
                        .map(|c| c.load(Ordering::Relaxed) as f64 / 1e9)
                        .collect();
                    let plan = compute_weighted_assignment(&depths, &costs, assignment.len());
                    if ins.is_enabled() {
                        // Per-queue worker counts before and after this tick.
                        let count = |qs: &mut dyn Iterator<Item = usize>| {
                            let mut per_queue = vec![0u32; consumers];
                            for q in qs {
                                per_queue[q % consumers] += 1;
                            }
                            per_queue
                        };
                        let before =
                            count(&mut assignment.iter().map(|a| a.load(Ordering::Relaxed)));
                        let after = count(&mut plan.iter().copied());
                        decisions_m.inc();
                        ins.record_decision(DecisionRecord {
                            ts_us: ins.now_us(),
                            source: DecisionSource::EngineController,
                            node: 0,
                            queue_loads: depths.iter().map(|&d| d as f64).collect(),
                            predicted_cost: costs.clone(),
                            threads_before: before,
                            threads_after: after,
                            gap_s: None,
                            evals: 1,
                            converged: true,
                            anomalies_before: 0,
                        });
                    }
                    for (w, &q) in plan.iter().enumerate() {
                        assignment[w].store(q, Ordering::Relaxed);
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
        }

        // ---- Consumers ("GPUs"). ----
        let remaining = Arc::new(AtomicUsize::new(cfg.consumers));
        for consumer in 0..cfg.consumers {
            let rx = cooked_rx[consumer].clone();
            let cfg2 = cfg.clone();
            let barrier = Arc::clone(&barrier);
            let delivered = Arc::clone(&delivered);
            let integrity = Arc::clone(&integrity);
            let iter_times = Arc::clone(&iter_times);
            let done = Arc::clone(&done);
            let aborted = Arc::clone(&aborted);
            let cancel = Arc::clone(&cancel);
            let remaining = Arc::clone(&remaining);
            let consumed = Arc::clone(&consumed);
            let stage_accum = Arc::clone(&stage_accum);
            let delivered_log = Arc::clone(&delivered_log);
            let ins = ins.clone();
            let delivered_m = delivered_m.clone();
            let barrier_m = barrier_m.clone();
            // Consumer 0 drives the elastic controller at tick boundaries.
            let mut ctl = if consumer == 0 {
                elastic_ctl.take()
            } else {
                None
            };
            let board = Arc::clone(&board);
            let assignment = Arc::clone(&assignment);
            let role_flip_log = Arc::clone(&role_flip_log);
            let membership_log = Arc::clone(&membership_log);
            let crash_plan = crash_plan.clone();
            let member_store = Arc::clone(&store);
            let preproc_g = preproc_g.clone();
            let loader_g = loader_g.clone();
            let decisions_m = decisions_m.clone();
            let cache = Arc::clone(&cache);
            let rstore = Arc::clone(&rstore);
            let sample_costs = Arc::clone(&sample_costs);
            let evictions_m = ins.counter("engine.cache_evictions");
            scope.spawn(move |_| {
                // Samples may arrive slightly out of iteration order when
                // several workers serve one queue; stash early arrivals.
                let mut stash: std::collections::HashMap<u64, Vec<Cooked>> =
                    std::collections::HashMap::new();
                let mut t0 = Instant::now();
                // Consumer 0's analyzer state: last cumulative stage totals
                // per consumer and the previous iteration boundary.
                let mut prev_stage = vec![[0u64; 4]; cfg2.consumers];
                let mut iter_start_us = 0u64;
                let mut my_deliveries: Vec<Vec<u64>> = Vec::with_capacity(total_iters as usize);
                // Telemetry: cumulative counter values at the previous
                // barrier — each frame carries per-tick deltas, not
                // running totals. [hits, misses, evictions, retries,
                // delivered].
                let mut tele_prev = [0u64; 5];
                'iters: for iter in 0..total_iters {
                    // Membership first: the tick's crashes/rejoins take
                    // effect before any of this iteration's arrivals are
                    // consumed, mirroring the simulators' tick-boundary
                    // ordering.
                    if consumer == 0 {
                        if let Some(plan) = crash_plan.as_ref() {
                            for e in plan.membership_events_at(iter) {
                                let crashed = e.transition == MembershipTransition::Crashed;
                                let ts = ins.now_us();
                                ins.trace(|| {
                                    TraceEvent::instant(
                                        if crashed { "node_crash" } else { "node_rejoin" },
                                        "membership",
                                        ts,
                                    )
                                    .arg_u("iter", iter)
                                    .arg_u("node", e.node as u64)
                                });
                                ins.flight(|| FlightEvent::MembershipChange {
                                    tick: iter,
                                    node: e.node,
                                    crashed,
                                });
                                membership_log.lock().push(e);
                            }
                            member_store.set_down_mask(plan.down_mask_at(iter));
                        }
                    }
                    let mut have = stash.remove(&iter).unwrap_or_default();
                    while have.len() < cfg2.batch_size {
                        match rx.recv() {
                            Ok(c) if c.iter == iter => have.push(c),
                            Ok(c) => {
                                stash.entry(c.iter).or_default().push(c);
                            }
                            Err(_) => {
                                // The upstream pipeline died. Abort the run:
                                // wake the other consumers off the barrier,
                                // cancel in-flight simulated transfers, and
                                // drain instead of deadlocking.
                                aborted.store(true, Ordering::Relaxed);
                                done.store(true, Ordering::Relaxed);
                                cancel.store(true, Ordering::Relaxed);
                                barrier.abort();
                                break 'iters;
                            }
                        }
                    }
                    // End-to-end integrity: un-mix and fingerprint.
                    let mut acc = 0u64;
                    for c in &have {
                        let original = invert(
                            &c.bytes,
                            cfg2.work_factor_at(iter)
                                .saturating_mul(sample_costs[c.sample.index()]),
                        );
                        acc ^= sample_checksum(&original);
                    }
                    let mut ids: Vec<u64> = have.iter().map(|c| c.sample.0 as u64).collect();
                    ids.sort_unstable();
                    my_deliveries.push(ids);
                    integrity.fetch_xor(acc, Ordering::Relaxed);
                    delivered.fetch_add(have.len() as u64, Ordering::Relaxed);
                    delivered_m.add(have.len() as u64);
                    consumed[consumer].fetch_add(have.len() as u64, Ordering::Relaxed);
                    // "Training".
                    std::thread::sleep(cfg2.train);
                    // Gradient-allreduce stand-in.
                    let wait_ts = ins.now_us();
                    if ins.is_enabled() {
                        // Published before the barrier, so every arrival is
                        // visible to consumer 0's post-barrier snapshot.
                        stage_accum.arrival_us[consumer].store(wait_ts, Ordering::Relaxed);
                    }
                    if barrier.wait().is_err() {
                        // Another consumer aborted the run.
                        break 'iters;
                    }
                    barrier_m.inc();
                    ins.trace(|| {
                        TraceEvent::span("barrier_wait", "sync", wait_ts, ins.now_us() - wait_ts)
                            .tid(consumer as u32)
                            .arg_u("iter", iter)
                    });
                    if consumer == 0 {
                        let iter_wall = t0.elapsed();
                        iter_times.lock().push(iter_wall.as_secs_f64());
                        t0 = Instant::now();
                        if ins.is_enabled() {
                            let end_us = ins.now_us();
                            let train_s = cfg2.train.as_secs_f64();
                            let samples: Vec<lobster_metrics::GpuIterSample> = (0..cfg2.consumers)
                                .map(|c| {
                                    use lobster_metrics::analysis::BlameCategory as B;
                                    let cur = [
                                        stage_accum.fetch_local_ns[c].load(Ordering::Relaxed),
                                        stage_accum.fetch_store_ns[c].load(Ordering::Relaxed),
                                        stage_accum.preproc_ns[c].load(Ordering::Relaxed),
                                        stage_accum.queue_wait_ns[c].load(Ordering::Relaxed),
                                    ];
                                    let mut stages = lobster_metrics::StageSample::default();
                                    for (cat, (now, before)) in
                                        [B::LocalFetch, B::PfsFetch, B::Preprocess, B::QueueWait]
                                            .into_iter()
                                            .zip(cur.into_iter().zip(prev_stage[c]))
                                    {
                                        stages.add(cat, now.saturating_sub(before) as f64 / 1e9);
                                    }
                                    prev_stage[c] = cur;
                                    let arrival = stage_accum.arrival_us[c].load(Ordering::Relaxed);
                                    stages.add(B::Train, train_s);
                                    stages.add(
                                        B::Barrier,
                                        end_us.saturating_sub(arrival) as f64 / 1e6,
                                    );
                                    lobster_metrics::GpuIterSample {
                                        node: 0,
                                        gpu: c as u32,
                                        iter_s: arrival.saturating_sub(iter_start_us) as f64 / 1e6,
                                        stages,
                                    }
                                })
                                .collect();
                            iter_start_us = end_us;
                            for s in &samples {
                                let (node, gpu, stages) = (s.node, s.gpu, s.stages);
                                let iter_us = (s.iter_s * 1e6) as u64;
                                ins.flight(|| FlightEvent::Stage {
                                    iter,
                                    node,
                                    gpu,
                                    iter_us,
                                    stages,
                                });
                            }
                            if let Some(out) = ins.observe_iteration(iter, end_us, || samples) {
                                ins.flight(|| FlightEvent::Iteration {
                                    iter,
                                    gap_us: (out.gap_s * 1e6) as u64,
                                    ewma_gap_us: (out.ewma_gap_s * 1e6) as u64,
                                });
                                // Telemetry frame for this tick: cache /
                                // retry / delivery counters as deltas since
                                // the previous barrier, the measured gap and
                                // wall time quantized to µs, and the live
                                // membership mask.
                                let cum = [
                                    cache.hit_count(),
                                    cache.miss_count(),
                                    evictions_m.value(),
                                    rstore.stats().retries,
                                    delivered.load(Ordering::Relaxed),
                                ];
                                let mut d = [0u64; 5];
                                for (i, c) in cum.into_iter().enumerate() {
                                    d[i] = c.saturating_sub(tele_prev[i]);
                                    tele_prev[i] = c;
                                }
                                let (pw, lw) = if cfg2.adaptive {
                                    (
                                        preproc_g.value().max(0) as u32,
                                        loader_g.value().max(0) as u32,
                                    )
                                } else {
                                    (cfg2.preproc_threads as u32, cfg2.loader_threads as u32)
                                };
                                ins.record_tick(lobster_metrics::TickScalars {
                                    tick: iter,
                                    gap_us: (out.gap_s * 1e6) as u64,
                                    iter_us: iter_wall.as_micros() as u64,
                                    local_hits: d[0],
                                    remote_hits: 0,
                                    misses: d[1],
                                    prefetched: 0,
                                    evictions: d[2],
                                    retries: d[3],
                                    delivered: d[4],
                                    preproc_workers: pw,
                                    loader_workers: lw,
                                    down_mask: crash_plan
                                        .as_ref()
                                        .map_or(0, |p| p.down_mask_at(iter)),
                                });
                            }
                        }
                        // Elastic tick for the next iteration: decide the
                        // preproc↔loader split from the deterministic model
                        // inputs, publish it on the role board, and log the
                        // decision. Measured stage times flow into the
                        // decision *record* only — never into the decision
                        // itself — so the flip sequence is reproducible by
                        // the simulators.
                        if let Some(ctl) = ctl.as_mut() {
                            let next = iter + 1;
                            if next < total_iters {
                                let obs = ElasticObservation::for_iteration(
                                    next,
                                    mean_sample_bytes,
                                    cfg2.work_factor_at(next),
                                    batch_samples,
                                    cfg2.train.as_secs_f64(),
                                );
                                let d = ctl.tick(&obs);
                                let pool2 = cfg2.loader_threads + cfg2.preproc_threads;
                                preproc_g.set(d.preproc_after as i64);
                                loader_g.set(pool2 as i64 - d.preproc_after as i64);
                                if !d.flipped.is_empty() && ins.is_enabled() {
                                    decisions_m.inc();
                                    let ts = ins.now_us();
                                    ins.trace(|| {
                                        TraceEvent::instant("role_flip", "controller", ts)
                                            .arg_u("iter", next)
                                            .arg_u("preproc_workers", d.preproc_after as u64)
                                            .arg_u("flips", d.flipped.len() as u64)
                                    });
                                    ins.flight(|| FlightEvent::RoleFlip {
                                        tick: next,
                                        loaders: pool2 as u32 - d.preproc_after,
                                        preprocs: d.preproc_after,
                                        flips: d.flipped.len() as u32,
                                    });
                                    ins.record_decision(DecisionRecord {
                                        ts_us: ts,
                                        source: DecisionSource::ElasticPool,
                                        node: 0,
                                        queue_loads: (0..cfg2.consumers)
                                            .map(|c| {
                                                stage_accum.preproc_ns[c].load(Ordering::Relaxed)
                                                    as f64
                                                    / 1e9
                                            })
                                            .collect(),
                                        predicted_cost: vec![d.predicted_batch_secs],
                                        threads_before: vec![
                                            pool2 as u32 - d.preproc_before,
                                            d.preproc_before,
                                        ],
                                        threads_after: vec![
                                            pool2 as u32 - d.preproc_after,
                                            d.preproc_after,
                                        ],
                                        gap_s: Some(
                                            cfg2.train.as_secs_f64() - d.predicted_batch_secs,
                                        ),
                                        evals: d.evals,
                                        converged: d.converged,
                                        anomalies_before: 0,
                                    });
                                }
                                let d = d.clone();
                                apply_elastic_decision(ctl, &d, &board, &assignment);
                                role_flip_log.lock().push(d);
                            }
                        }
                    }
                }
                delivered_log.lock()[consumer] = my_deliveries;
                if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    done.store(true, Ordering::Relaxed);
                }
            });
        }
        drop(cooked_rx);
        drop(req_rx);
    })
    .expect("engine threads must not panic");

    // Flight-dump at teardown: an aborted run or one scarred by contained
    // worker panics leaves its last-K event window on disk (when a flight
    // dir is configured) so the doctor can diagnose without a full trace.
    if aborted.load(Ordering::Relaxed) {
        let _ = ins.flight_dump_to_disk("abort");
    } else if worker_panics.load(Ordering::Relaxed) > 0 {
        let _ = ins.flight_dump_to_disk("worker_panic");
    }

    let stats = rstore.stats();
    let anomalies = ins.telemetry_anomalies();
    let slo_verdicts = ins.evaluate_slos(&cfg.slo);
    ins.flush_telemetry();
    let iteration_secs = iter_times.lock().clone();
    let delivered_samples = delivered_log.lock().clone();
    let role_flips = role_flip_log.lock().clone();
    let membership = membership_log.lock().clone();
    EngineReport {
        iterations: total_iters,
        iteration_secs,
        hit_ratio: cache.hit_ratio(),
        store_fetches: store.fetch_count(),
        delivered: delivered.load(Ordering::Relaxed),
        integrity: integrity.load(Ordering::Relaxed),
        retries: stats.retries,
        corruptions_detected: stats.corruptions_detected,
        deadline_exceeded: stats.deadline_exceeded,
        worker_panics: worker_panics.load(Ordering::Relaxed),
        aborted: aborted.load(Ordering::Relaxed),
        delivered_samples,
        role_flips,
        membership,
        anomalies,
        slo_verdicts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobster_data::{Dataset, SizeDistribution};
    use lobster_storage::faults::FaultSpec;

    fn small_store(samples: usize, latency_us: u64) -> Arc<SyntheticStore> {
        let ds = Dataset::generate(
            "engine-test",
            samples,
            SizeDistribution::Constant { bytes: 2_000 },
            9,
        );
        Arc::new(SyntheticStore::new(
            ds,
            Duration::from_micros(latency_us),
            0.0,
        ))
    }

    fn fast_cfg() -> EngineConfig {
        EngineConfig {
            consumers: 2,
            batch_size: 4,
            loader_threads: 2,
            preproc_threads: 2,
            cache_bytes: 16 << 20,
            work_factor: 1,
            train: Duration::from_micros(200),
            adaptive: true,
            epochs: 2,
            seed: 7,
            retry: RetryPolicy::default(),
            ..EngineConfig::default()
        }
    }

    #[test]
    fn engine_delivers_every_sample_with_integrity() {
        let store = small_store(64, 0);
        let cfg = fast_cfg();
        let expected = expected_integrity(store.dataset(), &cfg);
        let report = run(Arc::clone(&store), cfg);
        // 64 samples / (4 × 2) = 8 iterations per epoch × 2 epochs.
        assert_eq!(report.iterations, 16);
        assert_eq!(report.delivered, 128);
        assert_eq!(
            report.integrity, expected,
            "payloads must survive the pipeline intact"
        );
        assert_eq!(report.iteration_secs.len(), 16);
        assert!(!report.aborted);
        assert_eq!(report.retries, 0);
        assert_eq!(report.worker_panics, 0);
    }

    #[test]
    fn warm_cache_eliminates_store_refetches() {
        let store = small_store(32, 0);
        let mut cfg = fast_cfg();
        cfg.epochs = 3;
        // Cache far larger than the dataset: epoch 2+ must be all hits.
        let report = run(Arc::clone(&store), cfg);
        assert_eq!(report.store_fetches, 32, "each sample fetched exactly once");
        assert!(report.hit_ratio > 0.6, "hit ratio {}", report.hit_ratio);
    }

    #[test]
    fn static_assignment_also_completes() {
        let store = small_store(64, 50);
        let mut cfg = fast_cfg();
        cfg.adaptive = false;
        let expected = expected_integrity(store.dataset(), &cfg);
        let report = run(store, cfg);
        assert_eq!(report.integrity, expected);
    }

    #[test]
    fn single_consumer_single_worker_degenerate_case() {
        let store = small_store(16, 0);
        let cfg = EngineConfig {
            consumers: 1,
            batch_size: 4,
            loader_threads: 1,
            preproc_threads: 1,
            epochs: 1,
            ..fast_cfg()
        };
        let report = run(store, cfg);
        assert_eq!(report.iterations, 4);
        assert_eq!(report.delivered, 16);
    }

    #[test]
    fn compute_assignment_tracks_queue_depths() {
        // Queue 1 is ten times deeper: it must get most workers.
        let a = compute_assignment(&[10, 100, 10], 6);
        assert_eq!(a.len(), 6);
        let q1 = a.iter().filter(|&&q| q == 1).count();
        assert!(q1 >= 3, "deep queue got {q1} of 6 workers: {a:?}");
        // Every index is a valid queue.
        assert!(a.iter().all(|&q| q < 3));
    }

    #[test]
    fn weighted_assignment_prefers_expensive_queues() {
        // Equal depths, but queue 0's requests cost 10× more: it should
        // receive the majority of workers.
        let a = compute_weighted_assignment(&[50, 50], &[10e-3, 1e-3], 6);
        let q0 = a.iter().filter(|&&q| q == 0).count();
        assert!(q0 >= 4, "expensive queue got {q0} of 6: {a:?}");
    }

    #[test]
    fn weighted_assignment_without_costs_equals_plain() {
        let depths = [10usize, 100, 10];
        assert_eq!(
            compute_weighted_assignment(&depths, &[], 6),
            compute_assignment(&depths, 6)
        );
        assert_eq!(
            compute_weighted_assignment(&depths, &[0.0, 0.0, 0.0], 6),
            compute_assignment(&depths, 6)
        );
    }

    #[test]
    fn compute_assignment_handles_idle_queues() {
        let a = compute_assignment(&[0, 0], 4);
        assert_eq!(a.len(), 4);
        assert!(a.iter().all(|&q| q < 2));
    }

    #[test]
    fn idle_queues_spread_round_robin() {
        // All-zero depths used to pile every worker onto queue 0 through
        // the proportional path's per-queue floor; now they round-robin.
        assert_eq!(compute_assignment(&[0, 0, 0], 6), vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(
            compute_weighted_assignment(&[0, 0], &[5e-3, 1e-3], 3),
            vec![0, 1, 0]
        );
    }

    #[test]
    fn undersized_pool_covers_deepest_queues_first() {
        // Four busy queues, two workers: the floor-at-one allocation used
        // to hand both workers to the *first* queues regardless of load.
        // They must go to the deepest queues (1 and 3) instead.
        let a = compute_assignment(&[1, 50, 5, 30], 2);
        assert_eq!(a.len(), 2);
        assert!(a.contains(&1), "deepest queue uncovered: {a:?}");
        assert!(a.contains(&3), "second-deepest queue uncovered: {a:?}");
        // Weighted variant: queue 2's cost makes it the deepest load.
        let w = compute_weighted_assignment(&[10, 10, 10], &[1e-3, 1e-3, 50e-3], 1);
        assert_eq!(w, vec![2]);
    }

    #[test]
    fn work_factor_step_switches_at_the_boundary() {
        let cfg = EngineConfig {
            work_factor: 1,
            work_factor_step: Some((8, 6)),
            ..EngineConfig::default()
        };
        assert_eq!(cfg.work_factor_at(0), 1);
        assert_eq!(cfg.work_factor_at(7), 1);
        assert_eq!(cfg.work_factor_at(8), 6);
        assert_eq!(cfg.work_factor_at(100), 6);
    }

    #[test]
    fn elastic_pool_delivers_every_sample_with_integrity() {
        let store = small_store(64, 0);
        let cfg = EngineConfig {
            elastic: true,
            ..fast_cfg()
        };
        let expected = expected_integrity(store.dataset(), &cfg);
        let report = run(Arc::clone(&store), cfg);
        assert!(!report.aborted);
        assert_eq!(report.delivered, 128);
        assert_eq!(report.integrity, expected);
        // One decision per tick, and every decision conserves the pool:
        // loader assignments + preproc workers == N.
        assert_eq!(report.role_flips.len() as u64, report.iterations);
        for d in &report.role_flips {
            let loaders: u32 = d.loader_queues.iter().sum();
            assert_eq!(loaders + d.preproc_after, 4, "pool leak at tick {}", d.tick);
        }
    }

    #[test]
    fn elastic_pool_absorbs_a_work_factor_step() {
        // The §5 workload shift, live: preprocessing becomes 64× heavier
        // mid-run. The controller must steal loaders for preprocessing
        // without corrupting a single delivered sample.
        let store = small_store(64, 0);
        let cfg = EngineConfig {
            elastic: true,
            work_factor_step: Some((8, 64)),
            ..fast_cfg()
        };
        let expected = expected_integrity(store.dataset(), &cfg);
        let report = run(Arc::clone(&store), cfg);
        assert!(!report.aborted);
        assert_eq!(report.integrity, expected);
        let first = report.role_flips.first().expect("tick 0 decision");
        let max_after = report
            .role_flips
            .iter()
            .map(|d| d.preproc_after)
            .max()
            .unwrap();
        assert!(
            max_after > first.preproc_after,
            "64× heavier preprocessing must grow the preproc share \
             (start {}, max {max_after})",
            first.preproc_after
        );
    }

    #[test]
    fn elastic_churn_flips_roles_every_tick() {
        let store = small_store(64, 0);
        let cfg = EngineConfig {
            elastic: true,
            elastic_churn: true,
            ..fast_cfg()
        };
        let expected = expected_integrity(store.dataset(), &cfg);
        let report = run(Arc::clone(&store), cfg);
        assert!(!report.aborted);
        assert_eq!(report.integrity, expected);
        let churned = report
            .role_flips
            .iter()
            .filter(|d| !d.flipped.is_empty())
            .count();
        // Churned workers respect the dwell window, so with a single
        // preproc slot a swap is possible at most every `dwell` ticks.
        assert!(
            churned >= report.role_flips.len() / 4,
            "forced churn should flip on a steady cadence: {churned}/{}",
            report.role_flips.len()
        );
    }

    #[test]
    fn run_is_data_deterministic() {
        // Timings vary; delivered data must not.
        let cfg = fast_cfg();
        let r1 = run(small_store(48, 0), cfg.clone());
        let r2 = run(small_store(48, 0), cfg);
        assert_eq!(r1.integrity, r2.integrity);
        assert_eq!(r1.delivered, r2.delivered);
    }

    #[test]
    fn instrumented_run_feeds_the_analyzer() {
        let store = small_store(64, 0);
        let ins = Instruments::enabled();
        let report = run_with(store, fast_cfg(), ins.clone());
        assert!(!report.aborted);
        let analysis = ins.analysis_report().expect("enabled bundle");
        assert_eq!(analysis.iterations, 16);
        assert_eq!(analysis.per_gpu.len(), 2);
        assert!(
            analysis.cluster.train_s > 0.0,
            "training time must be blamed"
        );
        let snap = ins.metrics_snapshot();
        assert!(snap.get("analysis.gap_us").is_some(), "gap gauge mirrored");
        assert!(snap.get("analysis.ewma_gap_us").is_some());
        assert_eq!(
            snap.get("worker_panics"),
            snap.get("engine.worker_panics"),
            "legacy alias mirrors the canonical counter"
        );
    }

    #[test]
    fn engine_heals_through_transients_and_corruption() {
        let plan = FaultSpec {
            transient_rate: 0.10,
            corrupt_rate: 0.05,
            seed: 77,
            ..FaultSpec::default()
        }
        .compile()
        .unwrap();
        let ds = Dataset::generate(
            "engine-faults",
            64,
            SizeDistribution::Constant { bytes: 2_000 },
            9,
        );
        let store = Arc::new(SyntheticStore::with_faults(ds, Duration::ZERO, 0.0, plan));
        let cfg = fast_cfg();
        let expected = expected_integrity(store.dataset(), &cfg);
        let report = run(Arc::clone(&store), cfg);
        assert!(!report.aborted);
        assert_eq!(report.delivered, 128);
        assert_eq!(
            report.integrity, expected,
            "faults must be absorbed, never delivered"
        );
        assert!(report.retries > 0, "10% transients must trigger retries");
    }

    #[test]
    fn engine_contains_poisoned_workers() {
        let plan = FaultSpec {
            poison_rate: 0.05,
            seed: 1234,
            ..FaultSpec::default()
        }
        .compile()
        .unwrap();
        let ds = Dataset::generate(
            "engine-poison",
            64,
            SizeDistribution::Constant { bytes: 2_000 },
            9,
        );
        let store = Arc::new(SyntheticStore::with_faults(ds, Duration::ZERO, 0.0, plan));
        let cfg = fast_cfg();
        let expected = expected_integrity(store.dataset(), &cfg);
        let report = run(Arc::clone(&store), cfg);
        assert!(!report.aborted, "poison faults must not abort the run");
        assert_eq!(report.integrity, expected);
        assert_eq!(report.worker_panics, store.injected().poisons);
        assert!(report.worker_panics > 0, "5% poison over 64+ fetches");
    }
}
