//! Abort-aware synchronization primitives for the live engine.
//!
//! `std::sync::Barrier` has no escape hatch: if one consumer exits early
//! (poisoned worker, disconnected pipeline), every other consumer blocks on
//! the barrier forever and the engine deadlocks at teardown. The
//! [`AbortableBarrier`] below is a generation-counted barrier whose
//! [`abort`](AbortableBarrier::abort) wakes all waiters immediately and
//! makes every future `wait` return [`BarrierAborted`] — so the engine
//! drains cleanly instead of hanging.
//!
//! The [`RoleBoard`] is the elastic pool's shared role table: one atomic
//! role cell per worker, written by the controller at iteration boundaries
//! and read by each worker at the top of its serve loop. Flipping a role is
//! a single relaxed store — no thread is ever spawned or joined mid-run.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Condvar, Mutex};

/// Returned by [`AbortableBarrier::wait`] when the barrier was aborted; the
/// caller should stop iterating and unwind its pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierAborted;

struct BarrierState {
    /// Threads still expected in the current generation.
    remaining: usize,
    /// Bumped each time a generation completes; waiters key off it.
    generation: u64,
    aborted: bool,
}

/// A reusable barrier for `parties` threads that can be aborted.
pub struct AbortableBarrier {
    parties: usize,
    state: Mutex<BarrierState>,
    cv: Condvar,
}

impl AbortableBarrier {
    pub fn new(parties: usize) -> AbortableBarrier {
        AbortableBarrier {
            parties: parties.max(1),
            state: Mutex::new(BarrierState {
                remaining: parties.max(1),
                generation: 0,
                aborted: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Block until all parties arrive (Ok) or the barrier is aborted (Err).
    pub fn wait(&self) -> Result<(), BarrierAborted> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if s.aborted {
            return Err(BarrierAborted);
        }
        s.remaining -= 1;
        if s.remaining == 0 {
            // Last arrival: open the next generation and release everyone.
            s.remaining = self.parties;
            s.generation += 1;
            self.cv.notify_all();
            return Ok(());
        }
        let gen = s.generation;
        loop {
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
            if s.aborted {
                return Err(BarrierAborted);
            }
            if s.generation != gen {
                return Ok(());
            }
        }
    }

    /// Abort the barrier: all current waiters wake with `Err`, and every
    /// later `wait` fails fast. Idempotent.
    pub fn abort(&self) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.aborted = true;
        self.cv.notify_all();
    }

    /// Whether [`abort`](AbortableBarrier::abort) has been called.
    pub fn is_aborted(&self) -> bool {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).aborted
    }
}

/// A worker slot currently serving request queues.
pub const ROLE_LOADER: u8 = 0;
/// A worker slot currently preprocessing raw samples.
pub const ROLE_PREPROC: u8 = 1;

/// Shared role table of the elastic worker pool: `roles[w]` is worker
/// `w`'s current job. The controller writes at tick boundaries; workers
/// read at the top of every serve-loop pass, so a flip takes effect the
/// next time the worker looks for work — without any spawn/join.
pub struct RoleBoard {
    roles: Vec<AtomicU8>,
    flips: AtomicU64,
}

impl RoleBoard {
    /// A board of `loaders + preproc` slots: the first `loaders` hold
    /// [`ROLE_LOADER`], the rest [`ROLE_PREPROC`].
    pub fn new(loaders: usize, preproc: usize) -> RoleBoard {
        let roles = (0..loaders + preproc)
            .map(|w| {
                AtomicU8::new(if w < loaders {
                    ROLE_LOADER
                } else {
                    ROLE_PREPROC
                })
            })
            .collect();
        RoleBoard {
            roles,
            flips: AtomicU64::new(0),
        }
    }

    /// Pool size N.
    pub fn len(&self) -> usize {
        self.roles.len()
    }

    pub fn is_empty(&self) -> bool {
        self.roles.is_empty()
    }

    /// Worker `w`'s current role.
    #[inline]
    pub fn role(&self, w: usize) -> u8 {
        self.roles[w].load(Ordering::Relaxed)
    }

    /// Set worker `w`'s role; counts an actual change as one flip.
    pub fn set_role(&self, w: usize, role: u8) {
        debug_assert!(role == ROLE_LOADER || role == ROLE_PREPROC);
        if self.roles[w].swap(role, Ordering::Relaxed) != role {
            self.flips.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// `(loaders, preproc)` at this instant.
    pub fn counts(&self) -> (usize, usize) {
        let preproc = self
            .roles
            .iter()
            .filter(|r| r.load(Ordering::Relaxed) == ROLE_PREPROC)
            .count();
        (self.roles.len() - preproc, preproc)
    }

    /// Total role changes since construction.
    pub fn flips(&self) -> u64 {
        self.flips.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn barrier_synchronizes_generations() {
        let b = Arc::new(AbortableBarrier::new(3));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10 {
                    b.wait().unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn abort_releases_stuck_waiters() {
        let b = Arc::new(AbortableBarrier::new(2));
        let b2 = Arc::clone(&b);
        let waiter = std::thread::spawn(move || b2.wait());
        std::thread::sleep(Duration::from_millis(20));
        b.abort();
        assert_eq!(waiter.join().unwrap(), Err(BarrierAborted));
        // Future waits fail fast rather than blocking.
        assert_eq!(b.wait(), Err(BarrierAborted));
        assert!(b.is_aborted());
    }

    #[test]
    fn single_party_barrier_never_blocks() {
        let b = AbortableBarrier::new(1);
        for _ in 0..5 {
            b.wait().unwrap();
        }
    }

    #[test]
    fn role_board_counts_and_flips() {
        let board = RoleBoard::new(3, 2);
        assert_eq!(board.len(), 5);
        assert_eq!(board.counts(), (3, 2));
        assert_eq!(board.role(0), ROLE_LOADER);
        assert_eq!(board.role(4), ROLE_PREPROC);

        board.set_role(0, ROLE_PREPROC);
        assert_eq!(board.counts(), (2, 3));
        assert_eq!(board.flips(), 1);
        // Setting the same role again is not a flip.
        board.set_role(0, ROLE_PREPROC);
        assert_eq!(board.flips(), 1);
        board.set_role(0, ROLE_LOADER);
        assert_eq!(board.flips(), 2);
        assert_eq!(board.counts(), (3, 2));
    }

    #[test]
    fn role_board_is_visible_across_threads() {
        let board = Arc::new(RoleBoard::new(1, 1));
        let b2 = Arc::clone(&board);
        let reader = std::thread::spawn(move || {
            // Spin until the flip becomes visible; bounded by the test
            // harness timeout, not a wall-clock assertion.
            while b2.role(0) != ROLE_PREPROC {
                std::thread::yield_now();
            }
        });
        board.set_role(0, ROLE_PREPROC);
        reader.join().unwrap();
        assert_eq!(board.counts(), (0, 2));
    }
}
