//! Abort-aware synchronization primitives for the live engine.
//!
//! `std::sync::Barrier` has no escape hatch: if one consumer exits early
//! (poisoned worker, disconnected pipeline), every other consumer blocks on
//! the barrier forever and the engine deadlocks at teardown. The
//! [`AbortableBarrier`] below is a generation-counted barrier whose
//! [`abort`](AbortableBarrier::abort) wakes all waiters immediately and
//! makes every future `wait` return [`BarrierAborted`] — so the engine
//! drains cleanly instead of hanging.

use std::sync::{Condvar, Mutex};

/// Returned by [`AbortableBarrier::wait`] when the barrier was aborted; the
/// caller should stop iterating and unwind its pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierAborted;

struct BarrierState {
    /// Threads still expected in the current generation.
    remaining: usize,
    /// Bumped each time a generation completes; waiters key off it.
    generation: u64,
    aborted: bool,
}

/// A reusable barrier for `parties` threads that can be aborted.
pub struct AbortableBarrier {
    parties: usize,
    state: Mutex<BarrierState>,
    cv: Condvar,
}

impl AbortableBarrier {
    pub fn new(parties: usize) -> AbortableBarrier {
        AbortableBarrier {
            parties: parties.max(1),
            state: Mutex::new(BarrierState {
                remaining: parties.max(1),
                generation: 0,
                aborted: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Block until all parties arrive (Ok) or the barrier is aborted (Err).
    pub fn wait(&self) -> Result<(), BarrierAborted> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if s.aborted {
            return Err(BarrierAborted);
        }
        s.remaining -= 1;
        if s.remaining == 0 {
            // Last arrival: open the next generation and release everyone.
            s.remaining = self.parties;
            s.generation += 1;
            self.cv.notify_all();
            return Ok(());
        }
        let gen = s.generation;
        loop {
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
            if s.aborted {
                return Err(BarrierAborted);
            }
            if s.generation != gen {
                return Ok(());
            }
        }
    }

    /// Abort the barrier: all current waiters wake with `Err`, and every
    /// later `wait` fails fast. Idempotent.
    pub fn abort(&self) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.aborted = true;
        self.cv.notify_all();
    }

    /// Whether [`abort`](AbortableBarrier::abort) has been called.
    pub fn is_aborted(&self) -> bool {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).aborted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn barrier_synchronizes_generations() {
        let b = Arc::new(AbortableBarrier::new(3));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10 {
                    b.wait().unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn abort_releases_stuck_waiters() {
        let b = Arc::new(AbortableBarrier::new(2));
        let b2 = Arc::clone(&b);
        let waiter = std::thread::spawn(move || b2.wait());
        std::thread::sleep(Duration::from_millis(20));
        b.abort();
        assert_eq!(waiter.join().unwrap(), Err(BarrierAborted));
        // Future waits fail fast rather than blocking.
        assert_eq!(b.wait(), Err(BarrierAborted));
        assert!(b.is_aborted());
    }

    #[test]
    fn single_party_barrier_never_blocks() {
        let b = AbortableBarrier::new(1);
        for _ in 0..5 {
            b.wait().unwrap();
        }
    }
}
