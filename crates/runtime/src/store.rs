//! Synthetic sample storage for the live runtime.
//!
//! The paper's online component reads JPEG files from Lustre; here a
//! [`SyntheticStore`] generates each sample's bytes deterministically from
//! its id (so correctness is checkable end-to-end) and charges a simulated
//! fetch cost — a per-request latency plus bytes/bandwidth delay — standing
//! in for the PFS. The delay is real wall-clock time, so the engine's
//! measured timings and the adaptive controller's decisions are exercised
//! for real.

use lobster_data::{Dataset, SampleId};
use lobster_sim::SplitMix64;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Generate the canonical bytes of a sample: a SplitMix64 stream seeded by
/// the sample id. Cheap, deterministic, and incompressible enough to defeat
/// accidental shortcuts.
pub fn sample_bytes(id: SampleId, len: usize) -> Vec<u8> {
    let mut rng = SplitMix64::new(0x5A4D_0000_0000_0000 ^ id.0 as u64);
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        out.extend_from_slice(&rng.next_u64().to_le_bytes());
    }
    out.truncate(len);
    out
}

/// Reference checksum of a sample's canonical bytes (FNV-1a), used by tests
/// and the preprocessing transform to verify integrity end-to-end.
pub fn sample_checksum(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A backing store with simulated fetch cost.
pub struct SyntheticStore {
    dataset: Dataset,
    /// Per-request latency.
    latency: Duration,
    /// Simulated bandwidth in bytes/second (0 = infinite).
    bytes_per_sec: f64,
    fetches: AtomicU64,
    bytes_fetched: AtomicU64,
}

impl SyntheticStore {
    pub fn new(dataset: Dataset, latency: Duration, bytes_per_sec: f64) -> SyntheticStore {
        SyntheticStore {
            dataset,
            latency,
            bytes_per_sec,
            fetches: AtomicU64::new(0),
            bytes_fetched: AtomicU64::new(0),
        }
    }

    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Fetch a sample's bytes, sleeping for the simulated transfer time.
    pub fn fetch(&self, id: SampleId) -> Vec<u8> {
        let len = self.dataset.size_of(id) as usize;
        let mut wait = self.latency;
        if self.bytes_per_sec > 0.0 {
            wait += Duration::from_secs_f64(len as f64 / self.bytes_per_sec);
        }
        if !wait.is_zero() {
            std::thread::sleep(wait);
        }
        self.fetches.fetch_add(1, Ordering::Relaxed);
        self.bytes_fetched.fetch_add(len as u64, Ordering::Relaxed);
        sample_bytes(id, len)
    }

    /// Total fetches served (for hit-ratio accounting).
    pub fn fetch_count(&self) -> u64 {
        self.fetches.load(Ordering::Relaxed)
    }

    /// Total bytes served.
    pub fn bytes_served(&self) -> u64 {
        self.bytes_fetched.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobster_data::SizeDistribution;

    fn dataset() -> Dataset {
        Dataset::generate("rt", 64, SizeDistribution::Uniform { lo: 100, hi: 1000 }, 5)
    }

    #[test]
    fn sample_bytes_are_deterministic_and_sized() {
        let a = sample_bytes(SampleId(7), 333);
        let b = sample_bytes(SampleId(7), 333);
        let c = sample_bytes(SampleId(8), 333);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 333);
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut v = sample_bytes(SampleId(1), 128);
        let h = sample_checksum(&v);
        v[5] ^= 0xFF;
        assert_ne!(h, sample_checksum(&v));
    }

    #[test]
    fn store_fetch_returns_canonical_bytes_and_counts() {
        let ds = dataset();
        let want_len = ds.size_of(SampleId(3)) as usize;
        let store = SyntheticStore::new(ds, Duration::ZERO, 0.0);
        let got = store.fetch(SampleId(3));
        assert_eq!(got, sample_bytes(SampleId(3), want_len));
        assert_eq!(store.fetch_count(), 1);
        assert_eq!(store.bytes_served(), want_len as u64);
    }

    #[test]
    fn store_latency_is_charged() {
        let store = SyntheticStore::new(dataset(), Duration::from_millis(5), 0.0);
        let t0 = std::time::Instant::now();
        store.fetch(SampleId(0));
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }
}
