//! Synthetic sample storage for the live runtime.
//!
//! The paper's online component reads JPEG files from Lustre; here a
//! [`SyntheticStore`] generates each sample's bytes deterministically from
//! its id (so correctness is checkable end-to-end) and charges a simulated
//! fetch cost — a per-request latency plus bytes/bandwidth delay — standing
//! in for the PFS. The delay is real wall-clock time, so the engine's
//! measured timings and the adaptive controller's decisions are exercised
//! for real.
//!
//! A store may carry a [`FaultPlan`]: each fetch attempt then consults the
//! seeded schedule and may fail transiently, stall, corrupt its payload, or
//! panic ([`FaultAction::Poison`]), and all transfer waits are multiplied
//! by the plan's time-varying node slowdown. [`SyntheticStore::try_fetch`]
//! is the fallible/deadline-aware entry point the resilient fetch path
//! uses; the simulated-transfer sleep is chunked against a cancel flag so
//! engine shutdown never blocks on a multi-second simulated PFS read.

use lobster_data::{Dataset, SampleId};
use lobster_sim::SplitMix64;
use lobster_storage::faults::{FaultAction, FaultPlan};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Generate the canonical bytes of a sample: a SplitMix64 stream seeded by
/// the sample id. Cheap, deterministic, and incompressible enough to defeat
/// accidental shortcuts.
pub fn sample_bytes(id: SampleId, len: usize) -> Vec<u8> {
    let mut rng = SplitMix64::new(0x5A4D_0000_0000_0000 ^ id.0 as u64);
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        out.extend_from_slice(&rng.next_u64().to_le_bytes());
    }
    out.truncate(len);
    out
}

/// Reference checksum of a sample's canonical bytes (FNV-1a), used by tests
/// and the preprocessing transform to verify integrity end-to-end.
pub fn sample_checksum(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Why a [`SyntheticStore::try_fetch`] attempt did not return bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchError {
    /// An injected transient failure; a retry may succeed.
    Transient { fetch_index: u64 },
    /// The fetch (including any injected stall) did not finish within the
    /// caller's deadline.
    DeadlineExceeded { fetch_index: u64 },
    /// The sample's peer-routed source is a crashed node. Fails *fast*
    /// (no simulated wait, no fault-index consumed): the caller should
    /// immediately fail over to the PFS via
    /// [`SyntheticStore::try_fetch_direct`] instead of retrying.
    PeerDown { peer: u32 },
    /// The store's cancel flag was raised mid-transfer (engine shutdown).
    Cancelled,
}

impl fmt::Display for FetchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FetchError::Transient { fetch_index } => {
                write!(f, "transient fetch error (attempt #{fetch_index})")
            }
            FetchError::DeadlineExceeded { fetch_index } => {
                write!(f, "fetch deadline exceeded (attempt #{fetch_index})")
            }
            FetchError::PeerDown { peer } => {
                write!(f, "peer node {peer} is down; fail over to the PFS")
            }
            FetchError::Cancelled => write!(f, "fetch cancelled by shutdown"),
        }
    }
}

impl std::error::Error for FetchError {}

/// Counts of injected faults, for reports and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectedFaults {
    pub transients: u64,
    pub stalls: u64,
    pub corruptions: u64,
    pub poisons: u64,
    /// Peer-routed attempts that failed fast because the peer was down.
    pub peer_down: u64,
}

/// Granularity of the interruptible simulated-transfer sleep: long waits
/// are chunked so a raised cancel flag or an expiring deadline is noticed
/// within this window instead of after the full simulated read.
const SLEEP_CHUNK: Duration = Duration::from_millis(2);

enum SleepOutcome {
    Completed,
    Cancelled,
    DeadlinePassed,
}

/// Sleep `total`, checking the cancel flag and deadline every
/// [`SLEEP_CHUNK`]. `elapsed` is how much of the deadline budget the fetch
/// had already spent when the sleep started.
fn interruptible_sleep(
    total: Duration,
    cancel: &AtomicBool,
    started: Instant,
    deadline: Option<Duration>,
) -> SleepOutcome {
    let mut slept = Duration::ZERO;
    while slept < total {
        if cancel.load(Ordering::Relaxed) {
            return SleepOutcome::Cancelled;
        }
        if let Some(d) = deadline {
            if started.elapsed() >= d {
                return SleepOutcome::DeadlinePassed;
            }
        }
        let chunk = SLEEP_CHUNK.min(total - slept);
        std::thread::sleep(chunk);
        slept += chunk;
    }
    SleepOutcome::Completed
}

/// A backing store with simulated fetch cost and optional fault injection.
pub struct SyntheticStore {
    dataset: Dataset,
    /// Per-request latency.
    latency: Duration,
    /// Simulated bandwidth in bytes/second (0 = infinite).
    bytes_per_sec: f64,
    fetches: AtomicU64,
    bytes_fetched: AtomicU64,
    /// Compiled fault schedule; `None` = the infallible store of PR 1.
    faults: Option<FaultPlan>,
    /// Which node this store represents in the fault plan.
    node: usize,
    /// Monotone per-attempt index into the fault schedule.
    fault_index: AtomicU64,
    /// Wall-clock origin for time-varying slowdown profiles.
    epoch: Instant,
    /// Raised by the engine on shutdown; cuts simulated transfers short.
    cancel: Arc<AtomicBool>,
    /// Peer-routing topology: samples hash onto `0..peer_nodes` peers
    /// (0 = peer routing disabled — every fetch is a direct PFS read).
    peer_nodes: AtomicU64,
    /// Bitmask of currently-crashed peers; set by the engine's consumer 0
    /// at tick boundaries from the compiled crash plan.
    down_mask: AtomicU64,
    injected_transients: AtomicU64,
    injected_stalls: AtomicU64,
    injected_corruptions: AtomicU64,
    injected_poisons: AtomicU64,
    injected_peer_down: AtomicU64,
}

impl SyntheticStore {
    pub fn new(dataset: Dataset, latency: Duration, bytes_per_sec: f64) -> SyntheticStore {
        SyntheticStore {
            dataset,
            latency,
            bytes_per_sec,
            fetches: AtomicU64::new(0),
            bytes_fetched: AtomicU64::new(0),
            faults: None,
            node: 0,
            fault_index: AtomicU64::new(0),
            epoch: Instant::now(),
            cancel: Arc::new(AtomicBool::new(false)),
            peer_nodes: AtomicU64::new(0),
            down_mask: AtomicU64::new(0),
            injected_transients: AtomicU64::new(0),
            injected_stalls: AtomicU64::new(0),
            injected_corruptions: AtomicU64::new(0),
            injected_poisons: AtomicU64::new(0),
            injected_peer_down: AtomicU64::new(0),
        }
    }

    /// A store whose fetches follow the given fault plan (as node 0).
    pub fn with_faults(
        dataset: Dataset,
        latency: Duration,
        bytes_per_sec: f64,
        plan: FaultPlan,
    ) -> SyntheticStore {
        let mut store = SyntheticStore::new(dataset, latency, bytes_per_sec);
        if !plan.is_noop() {
            store.faults = Some(plan);
        }
        store
    }

    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The fault plan attached to this store, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// The shutdown flag: raising it makes in-flight simulated transfers
    /// return [`FetchError::Cancelled`] within one sleep chunk, so teardown
    /// never waits out a multi-second simulated PFS read.
    pub fn cancel_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.cancel)
    }

    /// Enable peer routing: samples hash onto `nodes` peers and a fetch of
    /// a sample whose peer is marked down fails fast with
    /// [`FetchError::PeerDown`]. 0 disables routing.
    pub fn configure_peers(&self, nodes: usize) {
        self.peer_nodes.store(nodes as u64, Ordering::Relaxed);
    }

    /// Mark the set of crashed peers (bit `n` = peer `n` down). Applied by
    /// the engine's consumer 0 at tick boundaries from the crash plan, so
    /// the peer-down window is tick-deterministic.
    pub fn set_down_mask(&self, mask: u64) {
        self.down_mask.store(mask, Ordering::Relaxed);
    }

    /// The current crashed-peer bitmask.
    pub fn down_mask(&self) -> u64 {
        self.down_mask.load(Ordering::Relaxed)
    }

    /// The peer a sample routes through, when peer routing is enabled.
    /// Deterministic (seeded hash of the id), mirroring the simulators'
    /// KV hash-owner rule.
    pub fn peer_of(&self, id: SampleId) -> Option<u32> {
        let nodes = self.peer_nodes.load(Ordering::Relaxed);
        if nodes == 0 {
            return None;
        }
        Some((lobster_sim::derive_seed(0x5045_4552, id.0 as u64) % nodes) as u32)
    }

    /// One fetch attempt. Consults the fault schedule (when present),
    /// charges the simulated transfer time — scaled by the plan's
    /// time-varying slowdown and cut short by cancellation or `deadline` —
    /// and returns the payload, which an injected corruption may have
    /// damaged (callers verify via [`sample_checksum`]).
    ///
    /// # Panics
    /// An injected [`FaultAction::Poison`] panics deliberately, modelling a
    /// crashed loader worker; the engine's containment path catches it.
    pub fn try_fetch(
        &self,
        id: SampleId,
        deadline: Option<Duration>,
    ) -> Result<Vec<u8>, FetchError> {
        // Peer routing: a sample whose hash-peer is down fails *fast* —
        // no simulated wait, and no fault-schedule index consumed (the
        // attempt never reached the wire), so the crash window does not
        // perturb the seeded transient/stall/corrupt streams.
        if let Some(peer) = self.peer_of(id) {
            if self.down_mask.load(Ordering::Relaxed) & (1u64 << peer) != 0 {
                self.injected_peer_down.fetch_add(1, Ordering::Relaxed);
                return Err(FetchError::PeerDown { peer });
            }
        }
        self.try_fetch_direct(id, deadline)
    }

    /// One fetch attempt straight at the PFS, bypassing peer routing —
    /// the failover path a [`FetchError::PeerDown`] caller takes.
    pub fn try_fetch_direct(
        &self,
        id: SampleId,
        deadline: Option<Duration>,
    ) -> Result<Vec<u8>, FetchError> {
        let started = Instant::now();
        let len = self.dataset.size_of(id) as usize;
        let (action, fetch_index) = match &self.faults {
            Some(plan) => {
                let idx = self.fault_index.fetch_add(1, Ordering::Relaxed);
                (plan.action(self.node, idx), idx)
            }
            None => (FaultAction::None, 0),
        };

        if action == FaultAction::Poison {
            self.injected_poisons.fetch_add(1, Ordering::Relaxed);
            panic!("injected poison fault: loader worker crash on fetch #{fetch_index}");
        }

        let mut wait = self.latency;
        if self.bytes_per_sec > 0.0 {
            wait += Duration::from_secs_f64(len as f64 / self.bytes_per_sec);
        }
        if let Some(plan) = &self.faults {
            let factor = plan.slowdown(self.node, self.epoch.elapsed().as_secs_f64());
            if factor > 1.0 {
                wait = wait.mul_f64(factor);
            }
        }
        if action == FaultAction::TransientError {
            // A dropped request fails after the round trip, not the full
            // transfer: charge the latency only.
            self.injected_transients.fetch_add(1, Ordering::Relaxed);
            match interruptible_sleep(self.latency, &self.cancel, started, deadline) {
                SleepOutcome::Cancelled => return Err(FetchError::Cancelled),
                _ => return Err(FetchError::Transient { fetch_index }),
            }
        }
        if let FaultAction::Stall(extra) = action {
            self.injected_stalls.fetch_add(1, Ordering::Relaxed);
            wait += extra;
        }
        if !wait.is_zero() {
            match interruptible_sleep(wait, &self.cancel, started, deadline) {
                SleepOutcome::Completed => {}
                SleepOutcome::Cancelled => return Err(FetchError::Cancelled),
                SleepOutcome::DeadlinePassed => {
                    return Err(FetchError::DeadlineExceeded { fetch_index })
                }
            }
        }

        self.fetches.fetch_add(1, Ordering::Relaxed);
        self.bytes_fetched.fetch_add(len as u64, Ordering::Relaxed);
        let mut bytes = sample_bytes(id, len);
        if action == FaultAction::Corrupt {
            self.injected_corruptions.fetch_add(1, Ordering::Relaxed);
            if let Some(plan) = &self.faults {
                let pos = plan.corrupt_position(self.node, fetch_index, len);
                if let Some(b) = bytes.get_mut(pos) {
                    *b ^= 0xFF;
                }
            }
        }
        Ok(bytes)
    }

    /// Fetch a sample's bytes, sleeping for the simulated transfer time.
    ///
    /// The infallible legacy path: on a fault-free store this is exactly
    /// the PR-1 behaviour. On a fault-injected store it retries transient
    /// errors inline and may return a *corrupted* payload — resilient
    /// callers should go through `ResilientStore` instead, which verifies
    /// checksums and enforces deadlines.
    pub fn fetch(&self, id: SampleId) -> Vec<u8> {
        let mut direct = false;
        loop {
            let result = if direct {
                self.try_fetch_direct(id, None)
            } else {
                self.try_fetch(id, None)
            };
            match result {
                Ok(bytes) => return bytes,
                Err(FetchError::Cancelled) => {
                    // Shutdown: serve canonical bytes without charging the
                    // remaining simulated transfer so teardown stays prompt.
                    return sample_bytes(id, self.dataset.size_of(id) as usize);
                }
                Err(FetchError::PeerDown { .. }) => direct = true,
                Err(_) => continue,
            }
        }
    }

    /// Total fetches served (for hit-ratio accounting).
    pub fn fetch_count(&self) -> u64 {
        self.fetches.load(Ordering::Relaxed)
    }

    /// Total bytes served.
    pub fn bytes_served(&self) -> u64 {
        self.bytes_fetched.load(Ordering::Relaxed)
    }

    /// Faults injected so far.
    pub fn injected(&self) -> InjectedFaults {
        InjectedFaults {
            transients: self.injected_transients.load(Ordering::Relaxed),
            stalls: self.injected_stalls.load(Ordering::Relaxed),
            corruptions: self.injected_corruptions.load(Ordering::Relaxed),
            poisons: self.injected_poisons.load(Ordering::Relaxed),
            peer_down: self.injected_peer_down.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobster_data::SizeDistribution;
    use lobster_storage::faults::FaultSpec;

    fn dataset() -> Dataset {
        Dataset::generate("rt", 64, SizeDistribution::Uniform { lo: 100, hi: 1000 }, 5)
    }

    #[test]
    fn sample_bytes_are_deterministic_and_sized() {
        let a = sample_bytes(SampleId(7), 333);
        let b = sample_bytes(SampleId(7), 333);
        let c = sample_bytes(SampleId(8), 333);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 333);
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut v = sample_bytes(SampleId(1), 128);
        let h = sample_checksum(&v);
        v[5] ^= 0xFF;
        assert_ne!(h, sample_checksum(&v));
    }

    #[test]
    fn store_fetch_returns_canonical_bytes_and_counts() {
        let ds = dataset();
        let want_len = ds.size_of(SampleId(3)) as usize;
        let store = SyntheticStore::new(ds, Duration::ZERO, 0.0);
        let got = store.fetch(SampleId(3));
        assert_eq!(got, sample_bytes(SampleId(3), want_len));
        assert_eq!(store.fetch_count(), 1);
        assert_eq!(store.bytes_served(), want_len as u64);
    }

    #[test]
    fn store_latency_is_charged() {
        let store = SyntheticStore::new(dataset(), Duration::from_millis(5), 0.0);
        let t0 = std::time::Instant::now();
        store.fetch(SampleId(0));
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn cancel_cuts_a_long_simulated_transfer_short() {
        // 10 bytes/s on a >=100-byte sample: a ~10 s simulated read.
        let store = Arc::new(SyntheticStore::new(dataset(), Duration::ZERO, 10.0));
        let cancel = store.cancel_handle();
        let s2 = Arc::clone(&store);
        let t0 = Instant::now();
        let worker = std::thread::spawn(move || s2.try_fetch(SampleId(0), None));
        std::thread::sleep(Duration::from_millis(20));
        cancel.store(true, Ordering::Relaxed);
        let result = worker.join().unwrap();
        assert_eq!(result, Err(FetchError::Cancelled));
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "cancel took {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn deadline_bounds_a_stalled_fetch() {
        let plan = FaultSpec {
            stall_rate: 0.999_999, // rates must be < 1; this fires every time
            stall: Duration::from_secs(5),
            seed: 1,
            ..FaultSpec::default()
        }
        .compile()
        .unwrap();
        let store = SyntheticStore::with_faults(dataset(), Duration::ZERO, 0.0, plan);
        let t0 = Instant::now();
        let err = store
            .try_fetch(SampleId(0), Some(Duration::from_millis(20)))
            .unwrap_err();
        assert!(matches!(err, FetchError::DeadlineExceeded { .. }));
        assert!(t0.elapsed() < Duration::from_secs(1), "{:?}", t0.elapsed());
        assert_eq!(store.injected().stalls, 1);
    }

    #[test]
    fn transient_errors_follow_the_plan_and_legacy_fetch_retries() {
        let plan = FaultSpec {
            transient_rate: 0.5,
            seed: 9,
            ..FaultSpec::default()
        }
        .compile()
        .unwrap();
        let ds = dataset();
        let want = sample_bytes(SampleId(2), ds.size_of(SampleId(2)) as usize);
        let store = SyntheticStore::with_faults(ds, Duration::ZERO, 0.0, plan);
        // The legacy path retries transients inline and still delivers
        // canonical bytes.
        for _ in 0..32 {
            assert_eq!(store.fetch(SampleId(2)), want);
        }
        assert!(
            store.injected().transients > 0,
            "rate 0.5 over many attempts"
        );
    }

    #[test]
    fn corruption_damages_exactly_one_byte() {
        let plan = FaultSpec {
            corrupt_rate: 0.999_999,
            seed: 3,
            ..FaultSpec::default()
        }
        .compile()
        .unwrap();
        let ds = dataset();
        let want = sample_bytes(SampleId(5), ds.size_of(SampleId(5)) as usize);
        let store = SyntheticStore::with_faults(ds, Duration::ZERO, 0.0, plan);
        let got = store.try_fetch(SampleId(5), None).unwrap();
        assert_ne!(got, want, "payload must be corrupted");
        let diff = got.iter().zip(&want).filter(|(a, b)| a != b).count();
        assert_eq!(diff, 1);
        assert_ne!(sample_checksum(&got), sample_checksum(&want));
    }

    #[test]
    fn peer_down_fails_fast_and_direct_path_bypasses() {
        let ds = dataset();
        let store = SyntheticStore::new(ds, Duration::from_millis(50), 0.0);
        store.configure_peers(2);
        // Find a sample routed through peer 1, then crash peer 1.
        let id = (0..64u32)
            .map(SampleId)
            .find(|&s| store.peer_of(s) == Some(1))
            .expect("some sample hashes to peer 1");
        store.set_down_mask(1 << 1);
        let t0 = Instant::now();
        let err = store.try_fetch(id, None).unwrap_err();
        assert_eq!(err, FetchError::PeerDown { peer: 1 });
        assert!(
            t0.elapsed() < Duration::from_millis(40),
            "peer-down must fail fast, not charge the transfer: {:?}",
            t0.elapsed()
        );
        assert_eq!(store.injected().peer_down, 1);
        // The direct path serves the sample regardless of the mask.
        let want_len = store.dataset().size_of(id) as usize;
        assert_eq!(
            store.try_fetch_direct(id, None).unwrap(),
            sample_bytes(id, want_len)
        );
        // Rejoin: the routed path works again.
        store.set_down_mask(0);
        assert!(store.try_fetch(id, None).is_ok());
    }

    #[test]
    fn legacy_fetch_survives_a_down_peer() {
        let store = SyntheticStore::new(dataset(), Duration::ZERO, 0.0);
        store.configure_peers(1);
        store.set_down_mask(1);
        let want = sample_bytes(SampleId(9), store.dataset().size_of(SampleId(9)) as usize);
        assert_eq!(store.fetch(SampleId(9)), want);
        assert_eq!(store.injected().peer_down, 1);
    }

    #[test]
    fn poison_panics_the_fetching_thread() {
        let plan = FaultSpec {
            poison_rate: 0.999_999,
            seed: 4,
            ..FaultSpec::default()
        }
        .compile()
        .unwrap();
        let store = SyntheticStore::with_faults(dataset(), Duration::ZERO, 0.0, plan);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            store.try_fetch(SampleId(0), None)
        }));
        assert!(r.is_err());
        assert_eq!(store.injected().poisons, 1);
    }
}
