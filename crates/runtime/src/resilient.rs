//! Self-healing fetch path: [`ResilientStore`] wraps a [`SyntheticStore`]
//! with bounded retries (exponential backoff + decorrelated jitter),
//! per-fetch deadlines, and checksum verification with automatic refetch on
//! corruption. Every recovery action is instrumented through
//! `lobster-metrics` so a trace shows each injected fault and the engine
//! healing around it.
//!
//! The contract to callers is simple: `fetch` returns verified canonical
//! bytes, or [`FetchError::Cancelled`] when the engine is shutting down.
//! Transient errors, stalls, deadline overruns, and corrupted payloads are
//! absorbed here — a deadline overrun ends the current *round* and the next
//! round doubles its budget (capped), so even a pathological stall schedule
//! eventually converges while a single slow fetch can never wedge a loader
//! forever.

use crate::store::{sample_checksum, FetchError, SyntheticStore};
use lobster_data::SampleId;
use lobster_metrics::{FlightEvent, FlightFault, Instruments};
use lobster_sim::derive_seed2;
use lobster_storage::faults::RetryPolicy;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Stream constant separating backoff jitter draws from every other seeded
/// stream in the workspace.
const BACKOFF_STREAM: u64 = 0x4241_434B_4F46_4621;

/// Rounds double the fetch deadline up to this shift (×64), then stay flat.
const MAX_DEADLINE_DOUBLINGS: u32 = 6;

/// Hard ceiling on deadline rounds per fetch; hitting it means the store
/// can never serve the sample (a schedule bug, not an injected fault).
const MAX_ROUNDS: u64 = 64;

/// A fetch entering this round (budget ×2^round) is escalating past normal
/// stall recovery; the first such fetch triggers a flight dump so the
/// window leading up to the escalation survives even if the run later
/// converges or wedges.
const ESCALATION_DUMP_ROUND: u64 = 3;

/// Counts of recovery actions taken, for [`EngineReport`] and tests.
///
/// [`EngineReport`]: crate::engine::EngineReport
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Fetch attempts beyond the first (transient errors + corrupt refetches).
    pub retries: u64,
    /// Payloads that failed checksum verification and were refetched.
    pub corruptions_detected: u64,
    /// Rounds abandoned because the per-fetch deadline expired.
    pub deadline_exceeded: u64,
    /// Peer-routed fetches that found the peer crashed and failed over to
    /// the PFS immediately (no backoff, no retry round burned).
    pub peer_failovers: u64,
}

/// A store wrapper that turns the fallible, fault-injected
/// [`SyntheticStore::try_fetch`] into a verified-or-cancelled fetch.
pub struct ResilientStore {
    store: Arc<SyntheticStore>,
    policy: RetryPolicy,
    instruments: Instruments,
    retries: AtomicU64,
    corruptions: AtomicU64,
    deadlines: AtomicU64,
    peer_failovers: AtomicU64,
    /// One escalation dump per store lifetime: set by the first fetch
    /// whose deadline round reaches [`ESCALATION_DUMP_ROUND`].
    escalation_dumped: AtomicBool,
}

impl ResilientStore {
    pub fn new(
        store: Arc<SyntheticStore>,
        policy: RetryPolicy,
        instruments: Instruments,
    ) -> ResilientStore {
        ResilientStore {
            store,
            policy,
            instruments,
            retries: AtomicU64::new(0),
            corruptions: AtomicU64::new(0),
            deadlines: AtomicU64::new(0),
            peer_failovers: AtomicU64::new(0),
            escalation_dumped: AtomicBool::new(false),
        }
    }

    pub fn inner(&self) -> &Arc<SyntheticStore> {
        &self.store
    }

    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    pub fn stats(&self) -> RecoveryStats {
        RecoveryStats {
            retries: self.retries.load(Ordering::Relaxed),
            corruptions_detected: self.corruptions.load(Ordering::Relaxed),
            deadline_exceeded: self.deadlines.load(Ordering::Relaxed),
            peer_failovers: self.peer_failovers.load(Ordering::Relaxed),
        }
    }

    fn note_retry(&self, id: SampleId, round: u64) {
        self.retries.fetch_add(1, Ordering::Relaxed);
        self.instruments.counter("engine.retries").inc();
        self.instruments.flight(|| FlightEvent::Retry {
            sample: id.0 as u64,
            round,
        });
    }

    /// Fetch `id`, retrying until the payload verifies against its canonical
    /// checksum. Only engine shutdown escapes as an error.
    pub fn fetch(&self, id: SampleId) -> Result<Vec<u8>, FetchError> {
        let len = self.store.dataset().size_of(id) as usize;
        let want = sample_checksum(&crate::store::sample_bytes(id, len));
        let mut first_attempt = true;
        // After a PeerDown the fetch goes straight at the PFS for the rest
        // of its life: the peer's crash window is tick-scoped, retrying the
        // routed path would just fail fast again.
        let mut direct = false;
        for round in 0..MAX_ROUNDS {
            let budget = self
                .policy
                .deadline
                .saturating_mul(1 << round.min(MAX_DEADLINE_DOUBLINGS as u64) as u32);
            if round >= ESCALATION_DUMP_ROUND {
                self.instruments.flight(|| FlightEvent::Escalation {
                    sample: id.0 as u64,
                    round,
                    budget_ms: budget.as_millis() as u64,
                });
                if !self.escalation_dumped.swap(true, Ordering::Relaxed) {
                    let _ = self.instruments.flight_dump_to_disk("deadline_escalation");
                }
            }
            let round_start = Instant::now();
            let mut backoff = self
                .policy
                .backoff(derive_seed2(BACKOFF_STREAM, id.0 as u64, round));
            let mut attempt = 0;
            while attempt < self.policy.max_attempts.max(1) {
                if !first_attempt {
                    self.note_retry(id, round);
                }
                let remaining = budget.saturating_sub(round_start.elapsed());
                if remaining.is_zero() {
                    break;
                }
                let result = if direct {
                    self.store.try_fetch_direct(id, Some(remaining))
                } else {
                    self.store.try_fetch(id, Some(remaining))
                };
                match result {
                    Ok(bytes) => {
                        if sample_checksum(&bytes) == want {
                            if !first_attempt {
                                let ts = self.instruments.now_us();
                                self.instruments.trace(|| {
                                    lobster_metrics::TraceEvent::instant(
                                        "fault_recovered",
                                        "fault",
                                        ts,
                                    )
                                    .arg_u("sample", id.0 as u64)
                                });
                            }
                            return Ok(bytes);
                        }
                        // Corrupted payload: count, trace, refetch.
                        first_attempt = false;
                        self.corruptions.fetch_add(1, Ordering::Relaxed);
                        self.instruments
                            .counter("engine.corruptions_detected")
                            .inc();
                        let ts = self.instruments.now_us();
                        self.instruments.trace(|| {
                            lobster_metrics::TraceEvent::instant("fault_corruption", "fault", ts)
                                .arg_u("sample", id.0 as u64)
                        });
                        self.instruments.flight(|| FlightEvent::Fault {
                            kind: FlightFault::Corruption,
                            sample: id.0 as u64,
                        });
                    }
                    Err(FetchError::Transient { .. }) => {
                        first_attempt = false;
                        let ts = self.instruments.now_us();
                        self.instruments.trace(|| {
                            lobster_metrics::TraceEvent::instant("fault_transient", "fault", ts)
                                .arg_u("sample", id.0 as u64)
                        });
                        self.instruments.flight(|| FlightEvent::Fault {
                            kind: FlightFault::Transient,
                            sample: id.0 as u64,
                        });
                    }
                    Err(FetchError::DeadlineExceeded { .. }) => {
                        first_attempt = false;
                        self.deadlines.fetch_add(1, Ordering::Relaxed);
                        self.instruments.counter("engine.deadline_exceeded").inc();
                        let ts = self.instruments.now_us();
                        self.instruments.trace(|| {
                            lobster_metrics::TraceEvent::instant("fault_deadline", "fault", ts)
                                .arg_u("sample", id.0 as u64)
                                .arg_u("round", round)
                        });
                        self.instruments.flight(|| FlightEvent::Fault {
                            kind: FlightFault::Deadline,
                            sample: id.0 as u64,
                        });
                        // Give the next round a doubled budget instead of
                        // burning this round's remaining attempts.
                        break;
                    }
                    Err(FetchError::PeerDown { peer }) => {
                        // Immediate PFS failover: no backoff, no attempt
                        // consumed, no retry counted — the peer-down
                        // fast-fail is routing, not a storage fault.
                        direct = true;
                        self.peer_failovers.fetch_add(1, Ordering::Relaxed);
                        self.instruments.counter("engine.peer_failovers").inc();
                        let ts = self.instruments.now_us();
                        self.instruments.trace(|| {
                            lobster_metrics::TraceEvent::instant("fault_peer_down", "fault", ts)
                                .arg_u("sample", id.0 as u64)
                                .arg_u("peer", peer as u64)
                        });
                        self.instruments.flight(|| FlightEvent::Fault {
                            kind: FlightFault::PeerDown,
                            sample: id.0 as u64,
                        });
                        continue;
                    }
                    Err(FetchError::Cancelled) => return Err(FetchError::Cancelled),
                }
                attempt += 1;
                // Backoff before the next attempt, clamped to the round's
                // remaining budget (the schedule's cumulative sum already
                // respects `policy.deadline`, this guards the doubled
                // budgets of later rounds too).
                match backoff.next() {
                    Some(delay) => {
                        let sleep = delay.min(budget.saturating_sub(round_start.elapsed()));
                        if !sleep.is_zero() {
                            std::thread::sleep(sleep);
                        }
                    }
                    None => break,
                }
            }
        }
        panic!(
            "resilient fetch of sample {} exhausted {MAX_ROUNDS} deadline rounds \
             — fault schedule denies all service",
            id.0
        );
    }

    /// Convenience for fault-free callers: fetch and unwrap, panicking on
    /// shutdown (used only in tests).
    #[cfg(test)]
    fn fetch_verified(&self, id: SampleId) -> Vec<u8> {
        self.fetch(id).expect("not cancelled")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::sample_bytes;
    use lobster_data::{Dataset, SizeDistribution};
    use lobster_storage::faults::FaultSpec;
    use std::time::Duration;

    fn dataset() -> Dataset {
        Dataset::generate("rs", 64, SizeDistribution::Uniform { lo: 100, hi: 1000 }, 5)
    }

    fn policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 8,
            base: Duration::from_micros(100),
            cap: Duration::from_millis(2),
            deadline: Duration::from_millis(250),
        }
    }

    #[test]
    fn fault_free_fetch_passes_through() {
        let ds = dataset();
        let want = sample_bytes(SampleId(1), ds.size_of(SampleId(1)) as usize);
        let store = Arc::new(SyntheticStore::new(ds, Duration::ZERO, 0.0));
        let rs = ResilientStore::new(store, policy(), Instruments::disabled());
        assert_eq!(rs.fetch_verified(SampleId(1)), want);
        assert_eq!(rs.stats(), RecoveryStats::default());
    }

    #[test]
    fn transient_errors_are_retried_to_success() {
        let plan = FaultSpec {
            transient_rate: 0.4,
            seed: 11,
            ..FaultSpec::default()
        }
        .compile()
        .unwrap();
        let ds = dataset();
        let store = Arc::new(SyntheticStore::with_faults(ds, Duration::ZERO, 0.0, plan));
        let rs = ResilientStore::new(store, policy(), Instruments::enabled());
        for i in 0..48u32 {
            let id = SampleId(i % 64);
            let want = sample_bytes(id, rs.inner().dataset().size_of(id) as usize);
            assert_eq!(rs.fetch_verified(id), want);
        }
        assert!(rs.stats().retries > 0, "rate 0.4 over 48 fetches");
        assert!(
            rs.instruments
                .metrics_snapshot()
                .get("engine.retries")
                .unwrap_or(0)
                > 0,
            "retries exported to the metric registry"
        );
    }

    #[test]
    fn peer_down_fails_over_to_direct_without_burning_retries() {
        let ds = dataset();
        let store = Arc::new(SyntheticStore::new(ds, Duration::ZERO, 0.0));
        store.configure_peers(2);
        // Find a sample routed to peer 1, then mark that peer down.
        let victim = (0..64u32)
            .map(SampleId)
            .find(|&s| store.peer_of(s) == Some(1))
            .expect("some sample routes to peer 1");
        store.set_down_mask(1 << 1);
        let rs = ResilientStore::new(store, policy(), Instruments::enabled());
        let want = sample_bytes(victim, rs.inner().dataset().size_of(victim) as usize);
        assert_eq!(rs.fetch_verified(victim), want);
        let stats = rs.stats();
        assert!(stats.peer_failovers > 0, "failover path taken");
        assert_eq!(stats.retries, 0, "failover is not a retry");
        assert!(
            rs.instruments
                .metrics_snapshot()
                .get("engine.peer_failovers")
                .unwrap_or(0)
                > 0,
            "failovers exported to the metric registry"
        );
    }

    #[test]
    fn corruption_is_detected_and_refetched() {
        let plan = FaultSpec {
            corrupt_rate: 0.5,
            seed: 21,
            ..FaultSpec::default()
        }
        .compile()
        .unwrap();
        let store = Arc::new(SyntheticStore::with_faults(
            dataset(),
            Duration::ZERO,
            0.0,
            plan,
        ));
        let rs = ResilientStore::new(store, policy(), Instruments::disabled());
        for i in 0..32u32 {
            let id = SampleId(i);
            let want = sample_bytes(id, rs.inner().dataset().size_of(id) as usize);
            // Every delivered payload is canonical even though half the raw
            // fetches come back damaged.
            assert_eq!(rs.fetch_verified(id), want);
        }
        assert!(rs.stats().corruptions_detected > 0);
        assert_eq!(
            rs.stats().corruptions_detected,
            rs.inner().injected().corruptions
        );
    }

    #[test]
    fn stalls_hit_the_deadline_then_recover_with_a_larger_budget() {
        let plan = FaultSpec {
            stall_rate: 0.5,
            stall: Duration::from_millis(40),
            seed: 31,
            ..FaultSpec::default()
        }
        .compile()
        .unwrap();
        let store = Arc::new(SyntheticStore::with_faults(
            dataset(),
            Duration::ZERO,
            0.0,
            plan,
        ));
        let tight = RetryPolicy {
            deadline: Duration::from_millis(5),
            ..policy()
        };
        let rs = ResilientStore::new(store, tight, Instruments::disabled());
        for i in 0..16u32 {
            let id = SampleId(i);
            let want = sample_bytes(id, rs.inner().dataset().size_of(id) as usize);
            assert_eq!(rs.fetch_verified(id), want);
        }
        assert!(
            rs.stats().deadline_exceeded > 0,
            "40 ms stalls vs 5 ms deadline"
        );
    }

    #[test]
    fn cancellation_escapes_immediately() {
        let store = Arc::new(SyntheticStore::new(dataset(), Duration::ZERO, 10.0));
        let cancel = store.cancel_handle();
        let rs = Arc::new(ResilientStore::new(
            store,
            policy(),
            Instruments::disabled(),
        ));
        let rs2 = Arc::clone(&rs);
        let worker = std::thread::spawn(move || rs2.fetch(SampleId(0)));
        std::thread::sleep(Duration::from_millis(20));
        cancel.store(true, Ordering::Relaxed);
        assert_eq!(worker.join().unwrap(), Err(FetchError::Cancelled));
    }
}
