//! Property tests for the paper's algorithms: Algorithm 1 stays within
//! bounds and respects monotonicity, the regression fit is well-formed, and
//! the performance model behaves like a cost function should.

use lobster_core::{
    assign_threads, load_time_secs, normalize_to_budget, proportional_allocation, Algorithm1Params,
    PiecewiseLinear, ThreadAlloc, TierBreakdown,
};
use lobster_storage::thetagpu;
use proptest::prelude::*;

proptest! {
    /// Algorithm 1 never assigns more than T_L threads to a GPU, and its
    /// result's |gap| is no worse than the initial allocation's.
    #[test]
    fn algorithm1_bounded_and_never_worse(
        work_ms in proptest::collection::vec(0.0f64..10_000.0, 1..8),
        initial in 1u32..16,
        max_threads in 4u32..64,
        tau_ms in 1.0f64..50.0,
    ) {
        let params = Algorithm1Params::new(tau_ms / 1e3, max_threads);
        let gap = |g: usize, k: u32| {
            let load = if k == 0 { f64::INFINITY } else { work_ms[g] / k as f64 };
            (200.0 - (load + 20.0)) / 1e3
        };
        let init: Vec<u32> = vec![initial.min(max_threads); work_ms.len()];
        let got = assign_threads(&params, &init, gap);
        prop_assert_eq!(got.len(), work_ms.len());
        for (g, &k) in got.iter().enumerate() {
            prop_assert!(k <= max_threads, "gpu {g} got {k} > {max_threads}");
            // Not worse than the starting point.
            let before = gap(g, init[g]).abs();
            let after = gap(g, k).abs();
            prop_assert!(
                after <= before + 1e-9,
                "gpu {g}: |gap| worsened {before} -> {after}"
            );
        }
    }

    /// The stage gap is monotone non-decreasing in the thread count
    /// (more threads never make loading slower), which is the property the
    /// bisection relies on.
    #[test]
    fn load_time_is_monotone_in_threads(
        local_mb in 0.0f64..64.0,
        remote_mb in 0.0f64..64.0,
        pfs_mb in 0.0f64..64.0,
        count in 1u64..64,
    ) {
        let storage = thetagpu();
        let split = TierBreakdown {
            local_bytes: local_mb * 1e6,
            remote_bytes: remote_mb * 1e6,
            pfs_bytes: pfs_mb * 1e6,
            local_count: count,
            remote_count: count,
            pfs_count: count,
        };
        let mut prev = f64::INFINITY;
        for k in 1..=32u32 {
            let t = load_time_secs(&storage, &split, ThreadAlloc::uniform(k), 4);
            prop_assert!(t <= prev + 1e-12, "threads {k}: {t} > {prev}");
            prop_assert!(t >= 0.0);
            prev = t;
        }
    }

    /// Proportional allocation: never exceeds the budget (beyond per-queue
    /// minimums), gives zero to empty queues, at least 1 to non-empty ones.
    #[test]
    fn proportional_allocation_invariants(
        queues in proptest::collection::vec(0.0f64..1000.0, 1..12),
        budget in 1u32..64,
    ) {
        let alloc = proportional_allocation(&queues, budget);
        prop_assert_eq!(alloc.len(), queues.len());
        let nonzero = queues.iter().filter(|&&q| q > 0.0).count() as u32;
        for (q, &a) in queues.iter().zip(&alloc) {
            if *q <= 0.0 && queues.iter().any(|&x| x > 0.0) {
                prop_assert_eq!(a, 0, "idle queue got threads");
            }
            if *q > 0.0 {
                prop_assert!(a >= 1, "active queue starved");
            }
        }
        // Budget respected up to the at-least-one floor.
        prop_assert!(alloc.iter().sum::<u32>() <= budget.max(nonzero));
    }

    /// normalize_to_budget preserves relative order and never zeroes a
    /// non-zero share.
    #[test]
    fn normalize_preserves_order(
        mut alloc in proptest::collection::vec(0u32..100, 1..12),
        budget in 1u32..64,
    ) {
        let before = alloc.clone();
        normalize_to_budget(&mut alloc, budget);
        for (b, a) in before.iter().zip(&alloc) {
            prop_assert!(*a <= *b || before.iter().sum::<u32>() <= budget);
            if *b > 0 {
                prop_assert!(*a >= 1, "non-zero share zeroed");
            } else {
                prop_assert_eq!(*a, 0);
            }
        }
        // Relative ordering preserved.
        for i in 0..alloc.len() {
            for j in 0..alloc.len() {
                if before[i] > before[j] {
                    prop_assert!(alloc[i] >= alloc[j], "order inverted at {i},{j}");
                }
            }
        }
    }

    /// Segmented least squares: segments tile the x-range in order, and the
    /// fit's SSE never increases when the penalty decreases.
    #[test]
    fn regression_fit_is_well_formed(
        ys in proptest::collection::vec(0.0f64..100.0, 2..24),
    ) {
        let pts: Vec<(f64, f64)> =
            ys.iter().enumerate().map(|(i, &y)| (i as f64 + 1.0, y)).collect();
        let coarse = PiecewiseLinear::fit(&pts, 1e6);
        let fine = PiecewiseLinear::fit(&pts, 1e-3);
        prop_assert!(fine.sse <= coarse.sse + 1e-9);
        for m in [&coarse, &fine] {
            let segs = m.segments();
            prop_assert!(!segs.is_empty());
            for w in segs.windows(2) {
                prop_assert!(w[0].x_hi <= w[1].x_lo + 1e-12, "segments out of order");
            }
            prop_assert!((segs[0].x_lo - 1.0).abs() < 1e-12);
            prop_assert!((segs.last().unwrap().x_hi - pts.len() as f64) < 1e-9);
            // Prediction is finite everywhere in range.
            for x in 1..=pts.len() {
                prop_assert!(m.predict(x as f64).is_finite());
            }
        }
    }
}

// ---------------------------------------------------------------------
// Elastic controller (§4.1 role board): conservation, hysteresis, and
// regression-target monotonicity under arbitrary workloads.
// ---------------------------------------------------------------------

use lobster_core::elastic::{ElasticController, ElasticObservation, ElasticParams};
use std::collections::HashMap;

proptest! {
    /// Role-board conservation: at every tick, the Algorithm-1 loader
    /// assignment plus the preprocessing share account for exactly the N
    /// workers of the pool — no leak, no phantom worker, with or without
    /// forced churn, across arbitrary work-factor trajectories.
    #[test]
    fn elastic_role_board_conserves_the_pool(
        workers in 4u32..48,
        queues in 1u32..9,
        initial in 1u32..48,
        churn in any::<bool>(),
        wfs in proptest::collection::vec(1u32..64, 4..32),
    ) {
        let mut params = ElasticParams::for_pool(workers, queues);
        params.force_churn = churn;
        let mut ctl = ElasticController::new(params, initial % workers);
        for (t, &wf) in wfs.iter().enumerate() {
            let obs = ElasticObservation::for_iteration(
                t as u64, 16_384.0, wf, (queues * 4) as u64, 2e-4,
            );
            let d = ctl.tick(&obs).clone();
            let loaders: u32 = d.loader_queues.iter().sum();
            prop_assert_eq!(
                loaders + d.preproc_after, workers,
                "pool leak at tick {}: {:?}", t, d
            );
            prop_assert_eq!(d.loader_queues.len(), queues as usize);
            prop_assert_eq!(d.preproc_after, ctl.preproc_count());
            prop_assert_eq!(
                ctl.preproc_count() + ctl.loader_count(), workers,
                "role vector out of sync at tick {}", t
            );
        }
    }

    /// Hysteresis bound: no worker's role flips twice within the dwell
    /// window, even under forced churn and adversarial work-factor swings.
    #[test]
    fn elastic_dwell_window_is_respected(
        workers in 4u32..48,
        queues in 1u32..9,
        initial in 1u32..48,
        churn in any::<bool>(),
        wfs in proptest::collection::vec(1u32..64, 4..40),
    ) {
        let mut params = ElasticParams::for_pool(workers, queues);
        params.force_churn = churn;
        let dwell = params.dwell_ticks;
        let mut ctl = ElasticController::new(params, initial % workers);
        let mut last_flip: HashMap<u32, u64> = HashMap::new();
        for (t, &wf) in wfs.iter().enumerate() {
            let obs = ElasticObservation::for_iteration(
                t as u64, 16_384.0, wf, (queues * 4) as u64, 2e-4,
            );
            let d = ctl.tick(&obs).clone();
            for &w in &d.flipped {
                if let Some(&prev) = last_flip.get(&w) {
                    prop_assert!(
                        d.tick - prev >= dwell,
                        "worker {} flipped at ticks {} and {} (dwell {})",
                        w, prev, d.tick, dwell
                    );
                }
                last_flip.insert(w, d.tick);
            }
        }
    }

    /// Regression-knee monotonicity: a heavier preprocessing work factor
    /// never lowers the regression target — the fewest threads that hide
    /// preprocessing under training can only grow as samples get more
    /// expensive, saturating at the knee of the fitted curve.
    #[test]
    fn elastic_target_is_monotone_in_work_factor(
        workers in 4u32..48,
        queues in 1u32..9,
        bytes in 1_000u64..1_000_000,
        batch in 1u64..64,
        t_train_us in 10u64..100_000,
    ) {
        let t_train = t_train_us as f64 * 1e-6;
        let mut prev_target = 0u32;
        for wf in [1u32, 2, 4, 8, 16, 32, 64] {
            // A fresh controller per work factor isolates the regression
            // target from dwell/hysteresis state.
            let params = ElasticParams::for_pool(workers, queues);
            let mut ctl = ElasticController::new(params, 1);
            let obs = ElasticObservation::for_iteration(0, bytes as f64, wf, batch, t_train);
            let d = ctl.tick(&obs).clone();
            prop_assert!(
                d.target_preproc >= prev_target,
                "target dropped from {} to {} at wf {}",
                prev_target, d.target_preproc, wf
            );
            prop_assert!(d.target_preproc <= d.knee.max(1));
            prev_target = d.target_preproc;
        }
    }
}
