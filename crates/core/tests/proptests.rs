//! Property tests for the paper's algorithms: Algorithm 1 stays within
//! bounds and respects monotonicity, the regression fit is well-formed, and
//! the performance model behaves like a cost function should.

use lobster_core::{
    assign_threads, load_time_secs, normalize_to_budget, proportional_allocation, Algorithm1Params,
    PiecewiseLinear, ThreadAlloc, TierBreakdown,
};
use lobster_storage::thetagpu;
use proptest::prelude::*;

proptest! {
    /// Algorithm 1 never assigns more than T_L threads to a GPU, and its
    /// result's |gap| is no worse than the initial allocation's.
    #[test]
    fn algorithm1_bounded_and_never_worse(
        work_ms in proptest::collection::vec(0.0f64..10_000.0, 1..8),
        initial in 1u32..16,
        max_threads in 4u32..64,
        tau_ms in 1.0f64..50.0,
    ) {
        let params = Algorithm1Params::new(tau_ms / 1e3, max_threads);
        let gap = |g: usize, k: u32| {
            let load = if k == 0 { f64::INFINITY } else { work_ms[g] / k as f64 };
            (200.0 - (load + 20.0)) / 1e3
        };
        let init: Vec<u32> = vec![initial.min(max_threads); work_ms.len()];
        let got = assign_threads(&params, &init, gap);
        prop_assert_eq!(got.len(), work_ms.len());
        for (g, &k) in got.iter().enumerate() {
            prop_assert!(k <= max_threads, "gpu {g} got {k} > {max_threads}");
            // Not worse than the starting point.
            let before = gap(g, init[g]).abs();
            let after = gap(g, k).abs();
            prop_assert!(
                after <= before + 1e-9,
                "gpu {g}: |gap| worsened {before} -> {after}"
            );
        }
    }

    /// The stage gap is monotone non-decreasing in the thread count
    /// (more threads never make loading slower), which is the property the
    /// bisection relies on.
    #[test]
    fn load_time_is_monotone_in_threads(
        local_mb in 0.0f64..64.0,
        remote_mb in 0.0f64..64.0,
        pfs_mb in 0.0f64..64.0,
        count in 1u64..64,
    ) {
        let storage = thetagpu();
        let split = TierBreakdown {
            local_bytes: local_mb * 1e6,
            remote_bytes: remote_mb * 1e6,
            pfs_bytes: pfs_mb * 1e6,
            local_count: count,
            remote_count: count,
            pfs_count: count,
        };
        let mut prev = f64::INFINITY;
        for k in 1..=32u32 {
            let t = load_time_secs(&storage, &split, ThreadAlloc::uniform(k), 4);
            prop_assert!(t <= prev + 1e-12, "threads {k}: {t} > {prev}");
            prop_assert!(t >= 0.0);
            prev = t;
        }
    }

    /// Proportional allocation: never exceeds the budget (beyond per-queue
    /// minimums), gives zero to empty queues, at least 1 to non-empty ones.
    #[test]
    fn proportional_allocation_invariants(
        queues in proptest::collection::vec(0.0f64..1000.0, 1..12),
        budget in 1u32..64,
    ) {
        let alloc = proportional_allocation(&queues, budget);
        prop_assert_eq!(alloc.len(), queues.len());
        let nonzero = queues.iter().filter(|&&q| q > 0.0).count() as u32;
        for (q, &a) in queues.iter().zip(&alloc) {
            if *q <= 0.0 && queues.iter().any(|&x| x > 0.0) {
                prop_assert_eq!(a, 0, "idle queue got threads");
            }
            if *q > 0.0 {
                prop_assert!(a >= 1, "active queue starved");
            }
        }
        // Budget respected up to the at-least-one floor.
        prop_assert!(alloc.iter().sum::<u32>() <= budget.max(nonzero));
    }

    /// normalize_to_budget preserves relative order and never zeroes a
    /// non-zero share.
    #[test]
    fn normalize_preserves_order(
        mut alloc in proptest::collection::vec(0u32..100, 1..12),
        budget in 1u32..64,
    ) {
        let before = alloc.clone();
        normalize_to_budget(&mut alloc, budget);
        for (b, a) in before.iter().zip(&alloc) {
            prop_assert!(*a <= *b || before.iter().sum::<u32>() <= budget);
            if *b > 0 {
                prop_assert!(*a >= 1, "non-zero share zeroed");
            } else {
                prop_assert_eq!(*a, 0);
            }
        }
        // Relative ordering preserved.
        for i in 0..alloc.len() {
            for j in 0..alloc.len() {
                if before[i] > before[j] {
                    prop_assert!(alloc[i] >= alloc[j], "order inverted at {i},{j}");
                }
            }
        }
    }

    /// Segmented least squares: segments tile the x-range in order, and the
    /// fit's SSE never increases when the penalty decreases.
    #[test]
    fn regression_fit_is_well_formed(
        ys in proptest::collection::vec(0.0f64..100.0, 2..24),
    ) {
        let pts: Vec<(f64, f64)> =
            ys.iter().enumerate().map(|(i, &y)| (i as f64 + 1.0, y)).collect();
        let coarse = PiecewiseLinear::fit(&pts, 1e6);
        let fine = PiecewiseLinear::fit(&pts, 1e-3);
        prop_assert!(fine.sse <= coarse.sse + 1e-9);
        for m in [&coarse, &fine] {
            let segs = m.segments();
            prop_assert!(!segs.is_empty());
            for w in segs.windows(2) {
                prop_assert!(w[0].x_hi <= w[1].x_lo + 1e-12, "segments out of order");
            }
            prop_assert!((segs[0].x_lo - 1.0).abs() < 1e-12);
            prop_assert!((segs.last().unwrap().x_hi - pts.len() as f64) < 1e-9);
            // Prediction is finite everywhere in range.
            for x in 1..=pts.len() {
                prop_assert!(m.predict(x as f64).is_finite());
            }
        }
    }
}
