//! Algorithm 1: the heuristic thread-assignment search (§4.4).
//!
//! Solving Equations 2–3 exactly is an ILP ("NP-complete … not tractable"),
//! so Lobster runs, per GPU, a binary search over its data-loading thread
//! count, driving the signed stage gap `T_dif = T_train − (T_L + T_P)`
//! toward zero. A bounded history window `W` (length `T_L`, the node's
//! maximum loading threads) detects non-convergence; when it fills with
//! non-improving entries the search stops and the thread count with the
//! minimum `|T_dif|` seen so far is chosen.
//!
//! The gap is monotone non-increasing in the thread count (more threads
//! never slow loading), so the binary-search direction is: gap negative
//! (pipeline is the bottleneck) → raise `ℓ_min`; gap positive (slack) →
//! lower `ℓ_max`.

use serde::{Deserialize, Serialize};

/// Tunables of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Algorithm1Params {
    /// τ: the load-balance threshold, in seconds. Gaps smaller than this are
    /// considered balanced ("can be fine-tuned as needed to prune the
    /// search space").
    pub tau_s: f64,
    /// `T_L`: the maximum number of data-loading threads on the node; also
    /// the capacity of the history window `W`.
    pub max_threads: u32,
}

impl Algorithm1Params {
    pub fn new(tau_s: f64, max_threads: u32) -> Algorithm1Params {
        assert!(tau_s > 0.0, "τ must be positive");
        assert!(max_threads >= 1);
        Algorithm1Params { tau_s, max_threads }
    }
}

/// Outcome of one per-GPU search, for diagnostics and tests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// Chosen thread count.
    pub threads: u32,
    /// Signed gap at the chosen count.
    pub gap_s: f64,
    /// Gap evaluations performed.
    pub evals: u32,
    /// True if the search ended via the window-full stagnation rule rather
    /// than converging below τ or exhausting the bisection range.
    pub stopped_by_window: bool,
}

/// `IsConsistent(W)`: the window shows no progress — the recent `|T_dif|`
/// values are non-improving.
fn is_consistent(window: &[f64]) -> bool {
    if window.len() < 2 {
        return false;
    }
    let tail = &window[window.len().saturating_sub(3)..];
    tail.windows(2).all(|w| w[1].abs() + 1e-12 >= w[0].abs())
}

/// Run the per-GPU binary search. `gap(threads)` evaluates
/// `T_train − (T_L(threads) + T_P)` for this GPU's pending mini-batch.
pub fn search_one_gpu<F>(params: &Algorithm1Params, initial: u32, mut gap: F) -> SearchOutcome
where
    F: FnMut(u32) -> f64,
{
    let mut l_min = 0u32;
    let mut l_max = params.max_threads;
    let mut k = initial.min(l_max);
    let mut t = gap(k);
    let mut evals = 1u32;
    let mut best = (t.abs(), k, t);
    let mut stopped_by_window = false;

    if t.abs() >= params.tau_s {
        let mut window: Vec<f64> = Vec::with_capacity(params.max_threads as usize + 1);
        while t.abs() >= params.tau_s {
            window.push(t);
            if window.len() > params.max_threads as usize && is_consistent(&window) {
                stopped_by_window = true;
                break;
            }
            if t < 0.0 {
                l_min = k; // bottleneck: need more threads
            } else {
                l_max = k; // slack: release threads
            }
            // Ceil midpoint so the search can reach `l_max` itself when the
            // gap stays negative all the way up.
            let next = l_min + (l_max - l_min).div_ceil(2);
            if next == k {
                break; // bisection range collapsed
            }
            k = next;
            t = gap(k);
            evals += 1;
            // Strictly better gap wins; on (near-)ties prefer fewer threads —
            // they are a shared resource.
            if t.abs() < best.0 - 1e-12 || (t.abs() <= best.0 + 1e-12 && k < best.1) {
                best = (t.abs(), k, t);
            }
        }
        // "choose the solution that has the minimum T_dif among all those
        // recorded": keep the best point seen.
        let (_, bk, bt) = best;
        k = bk;
        t = bt;
    }
    SearchOutcome {
        threads: k,
        gap_s: t,
        evals,
        stopped_by_window,
    }
}

/// Run Algorithm 1 across all co-located GPUs: `initial` is the
/// queue-proportional allocation `L_th`; `gap(gpu, threads)` evaluates the
/// stage gap. Returns the per-GPU assignment `L_final`.
///
/// ```
/// use lobster_core::{assign_threads, Algorithm1Params};
/// // Two GPUs: GPU 0 needs ~720ms of single-thread loading, GPU 1 ~90ms;
/// // training takes 200ms and preprocessing 20ms.
/// let work_ms = [720.0, 90.0];
/// let params = Algorithm1Params::new(0.005, 32);
/// let threads = assign_threads(&params, &[4, 4], |g, k| {
///     let load = if k == 0 { f64::INFINITY } else { work_ms[g] / k as f64 };
///     (200.0 - (load + 20.0)) / 1e3
/// });
/// assert!(threads[0] > threads[1], "the loaded GPU gets more threads");
/// ```
pub fn assign_threads<F>(params: &Algorithm1Params, initial: &[u32], gap: F) -> Vec<u32>
where
    F: FnMut(usize, u32) -> f64,
{
    assign_threads_detailed(params, initial, gap)
        .iter()
        .map(|o| o.threads)
        .collect()
}

/// Like [`assign_threads`], but returns the full per-GPU [`SearchOutcome`]s
/// (gap, evaluation count, stop reason) so callers can log the solve.
pub fn assign_threads_detailed<F>(
    params: &Algorithm1Params,
    initial: &[u32],
    mut gap: F,
) -> Vec<SearchOutcome>
where
    F: FnMut(usize, u32) -> f64,
{
    initial
        .iter()
        .enumerate()
        .map(|(i, &init)| search_one_gpu(params, init, |k| gap(i, k)))
        .collect()
}

/// Scale a per-GPU allocation down to `budget` total threads if it exceeds
/// it, proportionally, never dropping a non-zero share below 1. (The paper's
/// per-GPU searches each range over the full `T_L`; the shared pool enforces
/// the node budget.)
pub fn normalize_to_budget(alloc: &mut [u32], budget: u32) {
    let total: u32 = alloc.iter().sum();
    if total <= budget || total == 0 {
        return;
    }
    let original: Vec<u32> = alloc.to_vec();
    let mut assigned = 0u32;
    let n = alloc.len();
    for a in alloc.iter_mut() {
        let share = ((*a as u64 * budget as u64) / total as u64) as u32;
        *a = if *a > 0 { share.max(1) } else { 0 };
        assigned += *a;
    }
    // Trim overflow from the largest shares; among equal shares trim the
    // one with the *smaller* original request so the relative ordering of
    // the input is never inverted.
    let mut guard = 0;
    while assigned > budget && guard < 10_000 {
        if let Some(max_idx) = (0..n).max_by_key(|&i| (alloc[i], std::cmp::Reverse(original[i]))) {
            if alloc[max_idx] > 1 {
                alloc[max_idx] -= 1;
                assigned -= 1;
            } else {
                break; // all at 1: accept the minimal overshoot
            }
        }
        guard += 1;
    }
}

/// Queue-proportional initial allocation (§4.2: "the number of threads
/// assigned to the request queue is proportional to the size of the
/// queue"). Zero-load GPUs get zero threads; non-zero loads get at least 1.
pub fn proportional_allocation(queue_bytes: &[f64], budget: u32) -> Vec<u32> {
    let total: f64 = queue_bytes.iter().sum();
    if total <= 0.0 {
        // Idle queues: spread evenly.
        let n = queue_bytes.len().max(1) as u32;
        return queue_bytes.iter().map(|_| (budget / n).max(1)).collect();
    }
    let mut alloc: Vec<u32> = queue_bytes
        .iter()
        .map(|&q| {
            if q <= 0.0 {
                0
            } else {
                ((q / total * budget as f64).round() as u32).max(1)
            }
        })
        .collect();
    normalize_to_budget(&mut alloc, budget);
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic gap: training 200 ms, loading `work / threads`, prep 20 ms.
    fn make_gap(work_ms: f64) -> impl Fn(u32) -> f64 {
        move |threads: u32| {
            let load = if threads == 0 {
                f64::INFINITY
            } else {
                work_ms / threads as f64
            };
            (200.0 - (load + 20.0)) / 1e3
        }
    }

    fn params() -> Algorithm1Params {
        Algorithm1Params::new(0.005, 32)
    }

    #[test]
    fn converges_to_balanced_thread_count() {
        // work = 720 ms → gap zero at 4 threads (720/4 = 180; 180+20 = 200).
        let out = search_one_gpu(&params(), 1, make_gap(720.0));
        assert_eq!(out.threads, 4);
        assert!(out.gap_s.abs() < 0.005);
        assert!(!out.stopped_by_window);
    }

    #[test]
    fn balanced_initial_allocation_is_kept() {
        let out = search_one_gpu(&params(), 4, make_gap(720.0));
        assert_eq!(out.threads, 4);
        assert_eq!(out.evals, 1, "no search needed below τ");
    }

    #[test]
    fn releases_threads_when_over_provisioned() {
        // Tiny load: even 1 thread has huge slack; search walks down and
        // picks the minimum-|gap| point (1 thread; 0 is worse: ∞ load).
        let out = search_one_gpu(&params(), 16, make_gap(10.0));
        assert!(out.threads <= 2, "got {}", out.threads);
    }

    #[test]
    fn demands_many_threads_when_loading_heavy() {
        // work = 5600 ms: needs ≥ ~31 threads to balance (5600/31 ≈ 180).
        let out = search_one_gpu(&params(), 2, make_gap(5600.0));
        assert!(out.threads >= 28, "got {}", out.threads);
    }

    #[test]
    fn impossible_balance_returns_best_effort_max() {
        // Even T_L = 32 threads can't hide this load; best is max threads.
        let out = search_one_gpu(&params(), 1, make_gap(100_000.0));
        assert_eq!(out.threads, 32);
        assert!(out.gap_s < 0.0);
    }

    #[test]
    fn window_detects_flat_gap() {
        // Gap independent of threads (e.g. loading fully tier-saturated):
        // window fills with identical values → stagnation stop, not a hang.
        let out = search_one_gpu(&params(), 8, |_k| -0.5);
        assert_eq!(out.gap_s, -0.5);
        // Either the range collapsed or the window fired; both are bounded.
        assert!(out.evals <= 40);
    }

    #[test]
    fn assign_threads_handles_mixed_gpus() {
        let work = [720.0, 180.0, 3600.0, 0.0];
        let got = assign_threads(&params(), &[4, 4, 4, 4], |g, k| make_gap(work[g])(k));
        assert_eq!(got[0], 4);
        assert!(got[1] <= 2);
        assert!(got[2] >= 18);
        assert!(got[3] <= 1);
    }

    #[test]
    fn proportional_allocation_tracks_queue_sizes() {
        let alloc = proportional_allocation(&[100.0, 300.0, 0.0, 100.0], 10);
        assert_eq!(alloc[2], 0);
        assert!(alloc[1] > alloc[0]);
        assert!(alloc.iter().sum::<u32>() <= 10);
        assert!(alloc[0] >= 1 && alloc[3] >= 1);
    }

    #[test]
    fn proportional_allocation_idle_spreads_evenly() {
        let alloc = proportional_allocation(&[0.0, 0.0], 8);
        assert_eq!(alloc, vec![4, 4]);
    }

    #[test]
    fn normalize_caps_total() {
        let mut a = vec![10, 20, 30];
        normalize_to_budget(&mut a, 12);
        assert!(a.iter().sum::<u32>() <= 12);
        assert!(a.iter().all(|&x| x >= 1));
        // Ordering is preserved.
        assert!(a[2] >= a[1] && a[1] >= a[0]);
    }

    #[test]
    fn normalize_noop_when_within_budget() {
        let mut a = vec![1, 2, 3];
        normalize_to_budget(&mut a, 10);
        assert_eq!(a, vec![1, 2, 3]);
    }

    #[test]
    fn search_cost_is_logarithmic() {
        let out = search_one_gpu(&Algorithm1Params::new(0.005, 1024), 1, {
            let g = make_gap(7200.0);
            move |k| g(k)
        });
        // Bisection over 1024 → ≤ ~12 evals (plus initial).
        assert!(out.evals <= 14, "evals {}", out.evals);
    }
}
