//! The concrete loader policies under evaluation (§5.1 baselines, §5.6
//! ablations).

use crate::algorithm1::{
    assign_threads_detailed, normalize_to_budget, proportional_allocation, Algorithm1Params,
};
use crate::policy::{CachingStrategy, LoaderPolicy, NodePlan, PlanContext, PlanDecision};

/// Split `total` loading threads evenly across `gpus` (the "serve all GPUs
/// equally" scheme the paper criticizes in §4.2).
fn even_split(total: u32, gpus: usize) -> Vec<u32> {
    let g = gpus as u32;
    (0..g)
        .map(|i| total / g + u32::from(i < total % g))
        .collect()
}

/// PyTorch DataLoader: "a constant number of threads for data loading and
/// another constant number of threads for preprocessing".
#[derive(Debug, Clone)]
pub struct PyTorchPolicy {
    /// Loading threads per GPU (DataLoader workers per rank).
    pub load_per_gpu: u32,
    /// Preprocessing threads for the whole node.
    pub preproc_threads: u32,
}

impl Default for PyTorchPolicy {
    fn default() -> Self {
        PyTorchPolicy {
            load_per_gpu: 2,
            preproc_threads: 16,
        }
    }
}

impl LoaderPolicy for PyTorchPolicy {
    fn name(&self) -> &'static str {
        "pytorch"
    }

    fn caching(&self) -> CachingStrategy {
        CachingStrategy::Lru
    }

    fn plan(&mut self, ctx: &PlanContext<'_>) -> NodePlan {
        let gpus = ctx.gpus();
        let load_total = (self.load_per_gpu * gpus as u32).min(ctx.total_threads.saturating_sub(1));
        let preproc = self
            .preproc_threads
            .min(ctx.total_threads - load_total)
            .max(1);
        NodePlan {
            preproc_threads: preproc,
            load_threads: even_split(load_total, gpus),
            prefetch: false,
            prefetch_lookahead: 0,
        }
    }

    fn loading_efficiency(&self) -> f64 {
        // Python DataLoader workers: interpreter + IPC overhead per sample.
        0.65
    }
}

/// NVIDIA DALI: "three threads for data loading by default and leaves other
/// threads for preprocessing". No fine-grained thread-level coordination.
#[derive(Debug, Clone)]
pub struct DaliPolicy {
    /// Loading threads for the whole node (DALI default: 3).
    pub load_threads: u32,
}

impl Default for DaliPolicy {
    fn default() -> Self {
        DaliPolicy { load_threads: 3 }
    }
}

impl LoaderPolicy for DaliPolicy {
    fn name(&self) -> &'static str {
        "dali"
    }

    fn caching(&self) -> CachingStrategy {
        // DALI double-buffers the next batches it already knows from the
        // sampler stream (read-ahead, not clairvoyance), over an LRU cache.
        CachingStrategy::PrefetchLru
    }

    fn plan(&mut self, ctx: &PlanContext<'_>) -> NodePlan {
        let gpus = ctx.gpus();
        let load_total = self
            .load_threads
            .min(ctx.total_threads.saturating_sub(1))
            .max(1);
        let preproc = (ctx.total_threads - load_total).max(1);
        NodePlan {
            preproc_threads: preproc,
            load_threads: even_split(load_total, gpus),
            prefetch: true,
            // Double buffering: the pipeline holds ~2 batches in flight.
            prefetch_lookahead: 2,
        }
    }

    fn distributed_cache(&self) -> bool {
        // DALI has no cross-node cache: misses always go to the PFS.
        false
    }
}

/// NoPFS: deterministic prefetching over a distributed cache; "the thread
/// management for NoPFS is the same as that with PyTorch I/O".
#[derive(Debug, Clone, Default)]
pub struct NoPfsPolicy {
    inner: PyTorchPolicy,
}

impl NoPfsPolicy {
    pub fn new() -> NoPfsPolicy {
        NoPfsPolicy::default()
    }
}

impl LoaderPolicy for NoPfsPolicy {
    fn name(&self) -> &'static str {
        "nopfs"
    }

    fn caching(&self) -> CachingStrategy {
        CachingStrategy::PrefetchLru
    }

    fn plan(&mut self, ctx: &PlanContext<'_>) -> NodePlan {
        let mut plan = self.inner.plan(ctx);
        plan.prefetch = true;
        // NoPFS's staging buffers hold the next couple of mini-batches per
        // GPU; its prefetcher cannot reach deeper without evicting what the
        // buffers still need.
        plan.prefetch_lookahead = 8;
        plan
    }

    fn loading_efficiency(&self) -> f64 {
        // NoPFS plugs into PyTorch, but its I/O engine (fetch, staging,
        // distributed cache) is native C++; only the hand-off pays the
        // Python tax.
        0.85
    }
}

/// MinIO (related work, §6): PyTorch-style static threads over a cache that
/// never evicts — "for MinIO, once data samples are cached, they are never
/// evicted out of the cache". Included as an extension baseline: it shows
/// why *which* fraction of the dataset is pinned matters more than *that* a
/// fraction is pinned.
#[derive(Debug, Clone, Default)]
pub struct MinIoPolicy {
    inner: PyTorchPolicy,
}

impl MinIoPolicy {
    pub fn new() -> MinIoPolicy {
        MinIoPolicy::default()
    }
}

impl LoaderPolicy for MinIoPolicy {
    fn name(&self) -> &'static str {
        "minio"
    }

    fn caching(&self) -> CachingStrategy {
        CachingStrategy::InsertOnly
    }

    fn plan(&mut self, ctx: &PlanContext<'_>) -> NodePlan {
        self.inner.plan(ctx)
    }

    fn loading_efficiency(&self) -> f64 {
        // MinIO (CoorDL) is a native DataLoader replacement.
        0.85
    }

    fn distributed_cache(&self) -> bool {
        false
    }
}

/// Which halves of Lobster are active — `full()` is the paper's system,
/// the other two are the §5.6 ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LobsterOptions {
    /// §4.1/§4.2/§4.4 thread management (preproc governor + multi-queue +
    /// Algorithm 1 + thread stealing).
    pub thread_management: bool,
    /// §4.4 reuse-distance eviction coordinated with prefetching.
    pub reuse_eviction: bool,
}

/// The Lobster runtime.
#[derive(Debug, Clone)]
pub struct LobsterPolicy {
    options: LobsterOptions,
    /// τ as a fraction of `T_train` (the gap below which a GPU is balanced).
    pub tau_fraction: f64,
    /// Static fallback used when thread management is ablated away
    /// (Lobster_evict keeps DALI-style static threads).
    fallback: DaliPolicy,
    /// Algorithm 1 solves since the last [`LoaderPolicy::drain_decisions`].
    pending_decisions: Vec<PlanDecision>,
}

impl LobsterPolicy {
    /// The full system.
    pub fn full() -> LobsterPolicy {
        LobsterPolicy::with_options(LobsterOptions {
            thread_management: true,
            reuse_eviction: true,
        })
    }

    /// Ablation *Lobster_th*: "includes thread management but excludes cache
    /// eviction based on reuse distance".
    pub fn thread_management_only() -> LobsterPolicy {
        LobsterPolicy::with_options(LobsterOptions {
            thread_management: true,
            reuse_eviction: false,
        })
    }

    /// Ablation *Lobster_evict*: "the precise opposite".
    pub fn eviction_only() -> LobsterPolicy {
        LobsterPolicy::with_options(LobsterOptions {
            thread_management: false,
            reuse_eviction: true,
        })
    }

    pub fn with_options(options: LobsterOptions) -> LobsterPolicy {
        LobsterPolicy {
            options,
            tau_fraction: 0.05,
            fallback: DaliPolicy::default(),
            pending_decisions: Vec::new(),
        }
    }

    pub fn options(&self) -> LobsterOptions {
        self.options
    }

    /// The full planning pipeline of §4: (1) preprocessing threads from the
    /// governor; (2) queue-proportional loading threads; (3) Algorithm 1 on
    /// predicted stragglers; then §4.1 Step 2's thread stealing.
    fn plan_managed(&mut self, ctx: &PlanContext<'_>) -> NodePlan {
        let gpus = ctx.gpus();
        let tau = (self.tau_fraction * ctx.t_train_s).max(1e-6);

        // (1) Minimum preprocessing threads reaching peak throughput,
        // leaving at least one loading thread per GPU.
        let p_opt = ctx.governor.optimal_threads(ctx.mean_sample_bytes);
        let mut p = p_opt
            .min(ctx.total_threads.saturating_sub(gpus as u32))
            .max(1);
        let budget = ctx.total_threads - p;

        // (2) Multi-queue allocation proportional to loading intensity
        // (§4.2): predicted single-thread load cost, not raw bytes.
        let queues = ctx.queue_cost_secs();
        let mut alloc = proportional_allocation(&queues, budget);

        // (3) Straggler predicted (pipeline cannot hide behind training)?
        // Run Algorithm 1.
        let straggler = (0..gpus).any(|g| ctx.gap_secs(g, alloc[g].max(1), p) <= -tau);
        if straggler {
            let params = Algorithm1Params::new(tau, budget.max(1));
            let before = alloc.clone();
            let outcomes = assign_threads_detailed(&params, &alloc, |g, k| ctx.gap_secs(g, k, p));
            alloc = outcomes.iter().map(|o| o.threads).collect();
            self.pending_decisions.push(PlanDecision {
                queue_loads: queues.clone(),
                predicted_cost: outcomes.iter().map(|o| o.gap_s).collect(),
                threads_before: before,
                threads_after: alloc.clone(),
                gap_s: outcomes
                    .iter()
                    .map(|o| o.gap_s)
                    .fold(f64::INFINITY, f64::min),
                evals: outcomes.iter().map(|o| o.evals).sum(),
                converged: outcomes.iter().all(|o| !o.stopped_by_window),
            });
            normalize_to_budget(&mut alloc, budget);
        }

        // §4.1 Step 2: while some GPU's pipeline still cannot hide behind
        // training and preprocessing has slack, move one thread over.
        let mut guard = 0u32;
        while guard < ctx.total_threads {
            guard += 1;
            let (worst, gap) = (0..gpus)
                .map(|g| (g, ctx.gap_secs(g, alloc[g], p)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite gaps"))
                .expect("at least one GPU");
            if gap >= -tau || p <= 1 {
                break;
            }
            // Would preprocessing become the bottleneck with one fewer
            // thread? Then stop stealing.
            if ctx.preproc_secs(p - 1) >= ctx.t_train_s {
                break;
            }
            p -= 1;
            alloc[worst] += 1;
        }

        NodePlan {
            preproc_threads: p,
            load_threads: alloc,
            prefetch: true,
            // Reuse-distance coordination makes deep lookahead safe.
            prefetch_lookahead: 64,
        }
    }
}

impl LoaderPolicy for LobsterPolicy {
    fn name(&self) -> &'static str {
        match (self.options.thread_management, self.options.reuse_eviction) {
            (true, true) => "lobster",
            (true, false) => "lobster_th",
            (false, true) => "lobster_evict",
            (false, false) => "lobster_none",
        }
    }

    fn caching(&self) -> CachingStrategy {
        if self.options.reuse_eviction {
            CachingStrategy::ReuseAware
        } else {
            CachingStrategy::PrefetchLru
        }
    }

    fn plan(&mut self, ctx: &PlanContext<'_>) -> NodePlan {
        if self.options.thread_management {
            self.plan_managed(ctx)
        } else {
            let mut plan = self.fallback.plan(ctx);
            plan.prefetch = true;
            plan.prefetch_lookahead = 64;
            plan
        }
    }

    fn drain_decisions(&mut self) -> Vec<PlanDecision> {
        std::mem::take(&mut self.pending_decisions)
    }
}

/// Every system compared in the paper's evaluation, in presentation order.
pub fn all_baselines() -> Vec<Box<dyn LoaderPolicy>> {
    vec![
        Box::new(PyTorchPolicy::default()),
        Box::new(DaliPolicy::default()),
        Box::new(NoPfsPolicy::new()),
        Box::new(LobsterPolicy::full()),
    ]
}

/// Factory by report name.
pub fn policy_by_name(name: &str) -> Option<Box<dyn LoaderPolicy>> {
    match name {
        "pytorch" => Some(Box::new(PyTorchPolicy::default())),
        "dali" => Some(Box::new(DaliPolicy::default())),
        "nopfs" => Some(Box::new(NoPfsPolicy::new())),
        "lobster" => Some(Box::new(LobsterPolicy::full())),
        "lobster_th" => Some(Box::new(LobsterPolicy::thread_management_only())),
        "lobster_evict" => Some(Box::new(LobsterPolicy::eviction_only())),
        "minio" => Some(Box::new(MinIoPolicy::new())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TierBreakdown;
    use crate::preproc::{PreprocGovernor, PreprocModel};
    use lobster_storage::thetagpu;

    fn governor() -> PreprocGovernor {
        let truth = PreprocModel::default_imagenet();
        PreprocGovernor::calibrate(&[100_000], 16, 1e-9, |b, t| truth.per_sample_secs(b, t))
    }

    fn split(local_mb: f64, pfs_mb: f64, n: u64) -> TierBreakdown {
        TierBreakdown {
            local_bytes: local_mb * 1e6,
            remote_bytes: 0.0,
            pfs_bytes: pfs_mb * 1e6,
            local_count: if local_mb > 0.0 { n } else { 0 },
            remote_count: 0,
            pfs_count: if pfs_mb > 0.0 { n } else { 0 },
        }
    }

    fn ctx<'a>(
        storage: &'a lobster_storage::StorageModel,
        gov: &'a PreprocGovernor,
        splits: &'a [TierBreakdown],
    ) -> PlanContext<'a> {
        PlanContext {
            node: 0,
            iter_in_epoch: 10,
            iters_per_epoch: 1000,
            t_train_s: 0.115,
            storage,
            splits,
            total_threads: 32,
            reading_nodes: 1,
            batch_samples: 32,
            mean_sample_bytes: 100_000,
            governor: gov,
        }
    }

    #[test]
    fn pytorch_splits_evenly_and_never_prefetches() {
        let storage = thetagpu();
        let gov = governor();
        let splits = vec![split(3.2, 0.0, 32); 4];
        let plan = PyTorchPolicy::default().plan(&ctx(&storage, &gov, &splits));
        assert_eq!(plan.load_threads, vec![2, 2, 2, 2]);
        assert!(!plan.prefetch);
        assert!(plan.total_threads() <= 32);
    }

    #[test]
    fn dali_uses_three_loading_threads() {
        let storage = thetagpu();
        let gov = governor();
        let splits = vec![split(3.2, 0.0, 32); 8];
        let plan = DaliPolicy::default().plan(&ctx(&storage, &gov, &splits));
        assert_eq!(plan.load_threads.iter().sum::<u32>(), 3);
        assert_eq!(plan.preproc_threads, 29);
    }

    #[test]
    fn nopfs_is_pytorch_with_prefetching() {
        let storage = thetagpu();
        let gov = governor();
        let splits = vec![split(3.2, 0.0, 32); 4];
        let mut nopfs = NoPfsPolicy::new();
        let plan = nopfs.plan(&ctx(&storage, &gov, &splits));
        assert_eq!(plan.load_threads, vec![2, 2, 2, 2]);
        assert!(plan.prefetch);
        assert_eq!(nopfs.caching(), CachingStrategy::PrefetchLru);
    }

    #[test]
    fn lobster_gives_straggler_more_threads() {
        let storage = thetagpu();
        let gov = governor();
        // GPU 2 must fetch everything from the PFS; the rest are local.
        let splits = vec![
            split(3.2, 0.0, 32),
            split(3.2, 0.0, 32),
            split(0.0, 3.2, 32),
            split(3.2, 0.0, 32),
        ];
        let plan = LobsterPolicy::full().plan(&ctx(&storage, &gov, &splits));
        let max = *plan.load_threads.iter().max().unwrap();
        assert_eq!(
            plan.load_threads[2], max,
            "the PFS-bound GPU should get the most threads: {:?}",
            plan.load_threads
        );
        assert!(plan.load_threads[2] > plan.load_threads[0]);
        assert!(plan.prefetch);
        assert!(plan.total_threads() <= 32 + 3, "≈budget: {:?}", plan);
    }

    #[test]
    fn lobster_balanced_load_uses_proportional_shares() {
        let storage = thetagpu();
        let gov = governor();
        let splits = vec![split(3.2, 0.0, 32); 4];
        let plan = LobsterPolicy::full().plan(&ctx(&storage, &gov, &splits));
        let min = plan.load_threads.iter().min().unwrap();
        let max = plan.load_threads.iter().max().unwrap();
        assert!(
            max - min <= 1,
            "equal queues → near-equal threads: {:?}",
            plan.load_threads
        );
    }

    #[test]
    fn lobster_preproc_threads_near_the_knee() {
        let storage = thetagpu();
        let gov = governor();
        let splits = vec![split(3.2, 0.0, 32); 4];
        let plan = LobsterPolicy::full().plan(&ctx(&storage, &gov, &splits));
        assert!(
            (4..=8).contains(&plan.preproc_threads),
            "preproc threads {} should sit at the Figure-6 knee",
            plan.preproc_threads
        );
    }

    #[test]
    fn lobster_steals_from_preprocessing_under_io_pressure() {
        let storage = thetagpu();
        let gov = governor();
        // Every GPU hammers the PFS: loading cannot hide behind training, so
        // Step 2 must pull preprocessing down toward 1.
        let splits = vec![split(0.0, 6.4, 64); 8];
        let plan = LobsterPolicy::full().plan(&ctx(&storage, &gov, &splits));
        let p_opt = gov.optimal_threads(100_000);
        assert!(
            plan.preproc_threads < p_opt,
            "should steal below the knee ({}): got {}",
            p_opt,
            plan.preproc_threads
        );
    }

    #[test]
    fn ablation_names_and_strategies() {
        assert_eq!(LobsterPolicy::full().name(), "lobster");
        assert_eq!(LobsterPolicy::thread_management_only().name(), "lobster_th");
        assert_eq!(LobsterPolicy::eviction_only().name(), "lobster_evict");
        assert_eq!(LobsterPolicy::full().caching(), CachingStrategy::ReuseAware);
        assert_eq!(
            LobsterPolicy::thread_management_only().caching(),
            CachingStrategy::PrefetchLru
        );
        assert_eq!(
            LobsterPolicy::eviction_only().caching(),
            CachingStrategy::ReuseAware
        );
    }

    #[test]
    fn eviction_only_uses_static_threads() {
        let storage = thetagpu();
        let gov = governor();
        let splits = vec![split(0.0, 6.4, 64); 8];
        let plan = LobsterPolicy::eviction_only().plan(&ctx(&storage, &gov, &splits));
        // DALI-style static: 3 loading threads total, regardless of load.
        assert_eq!(plan.load_threads.iter().sum::<u32>(), 3);
        assert!(plan.prefetch);
    }

    #[test]
    fn factory_covers_all_names() {
        for name in [
            "pytorch",
            "dali",
            "nopfs",
            "lobster",
            "lobster_th",
            "lobster_evict",
            "minio",
        ] {
            let p = policy_by_name(name).expect(name);
            assert_eq!(p.name(), name);
        }
        assert!(policy_by_name("bogus").is_none());
        assert_eq!(all_baselines().len(), 4);
    }

    #[test]
    fn even_split_distributes_remainder() {
        assert_eq!(even_split(7, 3), vec![3, 2, 2]);
        assert_eq!(even_split(3, 8), vec![1, 1, 1, 0, 0, 0, 0, 0]);
    }
}
