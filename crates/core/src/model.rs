//! The holistic performance model of §4.3 (Table 1, Equations 1–3).
//!
//! Notation mapping (paper → code):
//!
//! | Paper | Code |
//! |---|---|
//! | `N`, `M` | [`ClusterSpec::nodes`], [`ClusterSpec::gpus_per_node`] |
//! | `Mem` | [`ClusterSpec::cache_bytes`] |
//! | `|B|` | [`ClusterSpec::batch_size`] |
//! | `I` | [`ClusterSpec::iterations_per_epoch`] |
//! | `B_HL`, `B_HR`, `B_M` | [`TierBreakdown`] local/remote/pfs fields |
//! | `T_l(α)`, `T_r(β)`, `T_PFS(γ)` | `lobster_storage::StorageModel` curves |
//! | `α_{i,j}, β_{i,j}, γ_{i,j}` | [`ThreadAlloc`] |
//! | Eq. 1 `T_L(n_i, B^{h,i,j})` | [`load_time_secs`] |
//! | Eq. 2 objective | [`stage_gap_secs`] |
//! | Eq. 3 objective | [`imbalance_gap_secs`] |

use lobster_storage::{StorageModel, Tier};
use serde::{Deserialize, Serialize};

/// Static cluster topology and training parameters (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of compute nodes `N`.
    pub nodes: usize,
    /// GPUs per node `M`.
    pub gpus_per_node: usize,
    /// Host memory dedicated to the sample cache per node, `Mem`.
    pub cache_bytes: u64,
    /// CPU threads available to the data pipeline per node (loading +
    /// preprocessing combined).
    pub pipeline_threads: u32,
    /// Mini-batch size per GPU `|B|`.
    pub batch_size: usize,
}

impl ClusterSpec {
    /// Iterations per epoch for a dataset of `dataset_len` samples:
    /// `I = ⌊|D| / (|B|·N·M)⌋`.
    pub fn iterations_per_epoch(&self, dataset_len: usize) -> usize {
        dataset_len / (self.batch_size * self.nodes * self.gpus_per_node)
    }

    /// Total GPU count `N × M`.
    pub fn world_size(&self) -> usize {
        self.nodes * self.gpus_per_node
    }
}

/// Where a mini-batch's bytes come from: the split of `B^{h,i,j}` into
/// `B_HL ∪ B_HR ∪ B_M`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TierBreakdown {
    pub local_bytes: f64,
    pub remote_bytes: f64,
    pub pfs_bytes: f64,
    pub local_count: u64,
    pub remote_count: u64,
    pub pfs_count: u64,
}

impl TierBreakdown {
    pub fn total_bytes(&self) -> f64 {
        self.local_bytes + self.remote_bytes + self.pfs_bytes
    }

    pub fn total_count(&self) -> u64 {
        self.local_count + self.remote_count + self.pfs_count
    }

    /// Add one sample's bytes to the given tier.
    pub fn add(&mut self, tier: Tier, bytes: u64) {
        match tier {
            Tier::LocalCache => {
                self.local_bytes += bytes as f64;
                self.local_count += 1;
            }
            Tier::RemoteCache => {
                self.remote_bytes += bytes as f64;
                self.remote_count += 1;
            }
            Tier::Pfs => {
                self.pfs_bytes += bytes as f64;
                self.pfs_count += 1;
            }
        }
    }

    /// Fold another breakdown into this one — used when a dead node's
    /// batch is fostered onto a survivor, whose loader then carries both.
    pub fn merge(&mut self, other: &TierBreakdown) {
        self.local_bytes += other.local_bytes;
        self.remote_bytes += other.remote_bytes;
        self.pfs_bytes += other.pfs_bytes;
        self.local_count += other.local_count;
        self.remote_count += other.remote_count;
        self.pfs_count += other.pfs_count;
    }

    /// Local-cache hit fraction of this batch (by sample count).
    pub fn local_hit_fraction(&self) -> f64 {
        let t = self.total_count();
        if t == 0 {
            0.0
        } else {
            self.local_count as f64 / t as f64
        }
    }
}

/// Per-GPU data-loading thread allocation: `α`, `β`, `γ` of Eq. 1. Lobster's
/// planner usually sets all three to the GPU's thread share; keeping them
/// separate preserves the paper's formulation (and lets tests skew them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadAlloc {
    /// Threads reading the local cache (`α`).
    pub alpha: u32,
    /// Threads reading remote caches (`β`).
    pub beta: u32,
    /// Threads reading the PFS (`γ`).
    pub gamma: u32,
}

impl ThreadAlloc {
    /// All three tiers served by the same `threads` threads — the common
    /// case where a GPU's loading threads pull from wherever the sample is.
    pub fn uniform(threads: u32) -> ThreadAlloc {
        ThreadAlloc {
            alpha: threads,
            beta: threads,
            gamma: threads,
        }
    }

    /// The largest of the three allocations (the GPU's effective thread
    /// footprint on the shared pool).
    pub fn footprint(&self) -> u32 {
        self.alpha.max(self.beta).max(self.gamma)
    }
}

/// Equation 1, decomposed: per-tier bandwidth and latency durations of
/// loading mini-batch `B^{h,i,j}`. The executor uses the decomposition to
/// apply intra-node overcommit corrections to the *bandwidth* parts only —
/// per-request latency keeps amortizing with threads even when the shared
/// medium is saturated.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LoadTimeParts {
    pub local_bw_s: f64,
    pub local_lat_s: f64,
    pub remote_bw_s: f64,
    pub remote_lat_s: f64,
    pub pfs_bw_s: f64,
    pub pfs_lat_s: f64,
}

impl LoadTimeParts {
    /// Total load time without overcommit corrections (Eq. 1 as written).
    pub fn total_secs(&self) -> f64 {
        self.local_bw_s
            + self.local_lat_s
            + self.remote_bw_s
            + self.remote_lat_s
            + self.pfs_bw_s
            + self.pfs_lat_s
    }

    /// Total with bandwidth-overcommit factors applied to the shared tiers.
    pub fn total_with_overcommit(&self, remote_factor: f64, pfs_factor: f64) -> f64 {
        self.local_bw_s
            + self.local_lat_s
            + self.remote_bw_s * remote_factor.max(1.0)
            + self.remote_lat_s
            + self.pfs_bw_s * pfs_factor.max(1.0)
            + self.pfs_lat_s
    }
}

/// Compute the Eq. 1 decomposition for one GPU's tier split. `reading_nodes`
/// feeds the PFS congestion factor (the paper folds this into its "globally
/// stable average" `T_PFS`).
pub fn load_time_parts(
    storage: &StorageModel,
    split: &TierBreakdown,
    alloc: ThreadAlloc,
    reading_nodes: usize,
) -> LoadTimeParts {
    let mut parts = LoadTimeParts::default();
    if split.local_count > 0 {
        let (bw, lat) = storage.read_secs_parts(
            Tier::LocalCache,
            split.local_bytes,
            split.local_count,
            alloc.alpha,
            1,
        );
        parts.local_bw_s = bw;
        parts.local_lat_s = lat;
    }
    if split.remote_count > 0 {
        let (bw, lat) = storage.read_secs_parts(
            Tier::RemoteCache,
            split.remote_bytes,
            split.remote_count,
            alloc.beta,
            1,
        );
        parts.remote_bw_s = bw;
        parts.remote_lat_s = lat;
    }
    if split.pfs_count > 0 {
        let (bw, lat) = storage.read_secs_parts(
            Tier::Pfs,
            split.pfs_bytes,
            split.pfs_count,
            alloc.gamma,
            reading_nodes,
        );
        parts.pfs_bw_s = bw;
        parts.pfs_lat_s = lat;
    }
    parts
}

/// Equation 1: the total duration of loading mini-batch `B^{h,i,j}` given
/// its tier breakdown and thread allocation.
pub fn load_time_secs(
    storage: &StorageModel,
    split: &TierBreakdown,
    alloc: ThreadAlloc,
    reading_nodes: usize,
) -> f64 {
    load_time_parts(storage, split, alloc, reading_nodes).total_secs()
}

/// Equation 2 (inner expression): how far loading + preprocessing is from
/// hiding behind training. We return the *signed* difference
/// `T_train − (T_L + T_P)` so that a **negative** value means the pipeline
/// is the bottleneck (needs more threads) and a positive value means slack
/// (threads can be reclaimed) — the orientation Algorithm 1's binary search
/// uses.
pub fn stage_gap_secs(t_load: f64, t_preproc: f64, t_train: f64) -> f64 {
    t_train - (t_load + t_preproc)
}

/// Equation 3: the straggler gap `|T_max − T_min|` across a node's GPUs for
/// one iteration, where each GPU's iteration time is the larger of the
/// training stage and its pipeline stages.
pub fn imbalance_gap_secs(per_gpu_iter_secs: &[f64]) -> f64 {
    if per_gpu_iter_secs.is_empty() {
        return 0.0;
    }
    let max = per_gpu_iter_secs
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    let min = per_gpu_iter_secs
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    max - min
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobster_storage::thetagpu;

    fn split(local: f64, remote: f64, pfs: f64) -> TierBreakdown {
        TierBreakdown {
            local_bytes: local,
            remote_bytes: remote,
            pfs_bytes: pfs,
            local_count: (local > 0.0) as u64,
            remote_count: (remote > 0.0) as u64,
            pfs_count: (pfs > 0.0) as u64,
        }
    }

    #[test]
    fn iterations_match_paper_configurations() {
        // §5.3: single node 8 GPUs, ImageNet-22K, batch 32 → 55,457 iters.
        let single = ClusterSpec {
            nodes: 1,
            gpus_per_node: 8,
            cache_bytes: 40 << 30,
            pipeline_threads: 32,
            batch_size: 32,
        };
        assert_eq!(single.iterations_per_epoch(14_197_103), 55_457);
        // §5.3: 8 nodes × 8 GPUs → 6932 iterations.
        let multi = ClusterSpec { nodes: 8, ..single };
        assert_eq!(multi.iterations_per_epoch(14_197_103), 6_932);
        assert_eq!(multi.world_size(), 64);
    }

    #[test]
    fn load_time_is_additive_over_tiers() {
        let m = thetagpu();
        let a = ThreadAlloc::uniform(4);
        let local_only = load_time_secs(&m, &split(1e9, 0.0, 0.0), a, 1);
        let pfs_only = load_time_secs(&m, &split(0.0, 0.0, 1e9), a, 1);
        let both = load_time_secs(&m, &split(1e9, 0.0, 1e9), a, 1);
        assert!((both - (local_only + pfs_only)).abs() < 1e-9);
    }

    #[test]
    fn pfs_reads_dominate_local_reads() {
        // The premise of the whole paper: a miss is orders of magnitude
        // slower than a local hit.
        let m = thetagpu();
        let a = ThreadAlloc::uniform(2);
        let local = load_time_secs(&m, &split(1e8, 0.0, 0.0), a, 1);
        let pfs = load_time_secs(&m, &split(0.0, 0.0, 1e8), a, 8);
        assert!(pfs > 10.0 * local, "pfs {pfs} vs local {local}");
    }

    #[test]
    fn more_threads_reduce_load_time_until_saturation() {
        let m = thetagpu();
        let s = split(0.0, 0.0, 1e9);
        let t1 = load_time_secs(&m, &s, ThreadAlloc::uniform(1), 1);
        let t4 = load_time_secs(&m, &s, ThreadAlloc::uniform(4), 1);
        let t64 = load_time_secs(&m, &s, ThreadAlloc::uniform(64), 1);
        assert!(t4 < t1);
        assert!(t64 <= t4);
        // Saturation: beyond the knee (and with the single request already
        // indivisible) more threads stop helping.
        let t128 = load_time_secs(&m, &s, ThreadAlloc::uniform(128), 1);
        assert!((t128 - t64).abs() < 1e-9, "t64={t64} t128={t128}");
    }

    #[test]
    fn stage_gap_sign_convention() {
        // Loading bottleneck → negative.
        assert!(stage_gap_secs(0.3, 0.1, 0.2) < 0.0);
        // Fully hidden → positive slack.
        assert!(stage_gap_secs(0.05, 0.05, 0.2) > 0.0);
        assert_eq!(stage_gap_secs(0.1, 0.1, 0.2), 0.0);
    }

    #[test]
    fn imbalance_gap_measures_spread() {
        assert_eq!(imbalance_gap_secs(&[0.2, 0.2, 0.2]), 0.0);
        assert!((imbalance_gap_secs(&[0.2, 0.5, 0.3]) - 0.3).abs() < 1e-12);
        assert_eq!(imbalance_gap_secs(&[]), 0.0);
    }

    #[test]
    fn empty_split_loads_instantly() {
        let m = thetagpu();
        assert_eq!(
            load_time_secs(&m, &TierBreakdown::default(), ThreadAlloc::uniform(4), 1),
            0.0
        );
    }

    #[test]
    fn thread_alloc_footprint() {
        let a = ThreadAlloc {
            alpha: 2,
            beta: 5,
            gamma: 3,
        };
        assert_eq!(a.footprint(), 5);
        assert_eq!(ThreadAlloc::uniform(4).footprint(), 4);
    }
}
