//! The elastic preproc↔loader role controller (§4.1 + §4.4, live).
//!
//! Lobster's central online mechanism: run "the minimum number of threads
//! that reach the peak" preprocessing throughput (the knee of the §4.1
//! piece-wise regression) and *steal* every remaining worker for data
//! loading, re-assigning the stolen workers across per-consumer request
//! queues with Algorithm 1. This module is the pure decision core shared by
//! the live engine (`lobster-runtime`), the analytical executor
//! (`lobster-pipeline`) and the conformance DES: one `tick` per iteration
//! boundary maps an [`ElasticObservation`] to an [`ElasticDecision`].
//!
//! ## Why decisions come from a reference curve, not the wall clock
//!
//! The controller fits the regression over a *deterministic reference
//! efficiency curve* ([`throughput_factor`]: linear speed-up to a
//! saturation knee, then a mild decline — the Figure 6 shape) scaled by the
//! iteration's preprocessing demand (`mean sample bytes × work factor`).
//! Every input is a pure function of the schedule, so the engine, the
//! executor and the DES produce bit-identical decision sequences and the
//! differential harness can compare them exactly. Wall-clock `StageAccum`
//! measurements still flow into every emitted `DecisionRecord` (and the
//! [`ElasticController::calibrate`] hook lets a live deployment refit
//! `unit_secs` from measured throughput), but they never steer a
//! conformance-checked decision.
//!
//! ## Hysteresis
//!
//! Two guards keep roles from thrashing: the pool split may only change
//! once per [`ElasticParams::dwell_ticks`] window and only when the
//! predicted improvement clears [`ElasticParams::improve_frac`]; and each
//! *worker* carries its own dwell stamp, so no individual worker flips
//! twice within the window even under forced churn.

use crate::algorithm1::{
    assign_threads_detailed, normalize_to_budget, proportional_allocation, Algorithm1Params,
};
use crate::regression::PiecewiseLinear;
use serde::{Deserialize, Serialize};

/// Minimum ticks the pool split (and each worker) dwells in a role.
pub const DEFAULT_DWELL_TICKS: u64 = 3;
/// Relative predicted improvement required before the split moves.
pub const DEFAULT_IMPROVE_FRAC: f64 = 0.10;
/// Reference-curve saturation knee in threads (the Figure 6 shape).
pub const DEFAULT_SAT_THREADS: u32 = 6;
/// Reference seconds for one preprocessing pass over one byte, one thread.
pub const DEFAULT_UNIT_SECS: f64 = 1.2e-9;
/// Reference seconds to load one byte with one thread.
pub const DEFAULT_LOAD_UNIT_SECS: f64 = 0.4e-9;
/// Segmentation penalty as a fraction of the squared curve scale.
pub const DEFAULT_PENALTY_FRAC: f64 = 1e-4;
/// Predictions within this fraction of the minimum count as "at the peak";
/// the knee is the smallest such thread count.
pub const KNEE_TOL: f64 = 0.02;

/// Reference efficiency curve: effective parallelism of `threads`
/// preprocessing threads. Linear to `sat_threads`, then mildly declining
/// (contention past the knee), never below half the peak.
pub fn throughput_factor(threads: u32, sat_threads: u32) -> f64 {
    let sat = sat_threads.max(1) as f64;
    let k = threads.max(1) as f64;
    if k <= sat {
        k
    } else {
        (sat - 0.05 * (k - sat)).max(sat * 0.5)
    }
}

/// Fit the §4.1 regression over `(threads, batch_secs)` points and return
/// the knee: the smallest integer thread count whose prediction is within
/// [`KNEE_TOL`] of the fitted minimum. Points must be sorted by x.
pub fn knee_from_points(points: &[(f64, f64)], penalty: f64) -> u32 {
    let model = PiecewiseLinear::fit(points, penalty);
    let lo = points[0].0.ceil().max(1.0) as u32;
    let hi = (points[points.len() - 1].0.floor() as u32).max(lo);
    let (best_k, best_s) = model.argmin_int(lo, hi);
    for k in lo..best_k {
        if model.predict(k as f64) <= best_s * (1.0 + KNEE_TOL) {
            return k;
        }
    }
    best_k
}

/// A worker's current job in the elastic pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Role {
    /// Serving per-consumer request queues (fetch + cache).
    Loader,
    /// Draining raw samples through the preprocessing transform.
    Preproc,
}

/// Static tunables of the elastic controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElasticParams {
    /// Total pool size N (loaders + preprocessors, conserved).
    pub workers: u32,
    /// Per-consumer request queues the loader side covers.
    pub queues: u32,
    /// Floor on the loader side (≥ 1: the feed must never stall).
    pub min_loaders: u32,
    /// Floor on the preprocessing side (≥ 1: raw must always drain).
    pub min_preproc: u32,
    /// Minimum ticks between split changes, and per-worker re-flips.
    pub dwell_ticks: u64,
    /// Relative predicted improvement required to move the split.
    pub improve_frac: f64,
    /// Saturation knee of the reference curve, in threads.
    pub sat_threads: u32,
    /// Reference preprocessing seconds per byte per pass on one thread.
    pub unit_secs: f64,
    /// Reference loading seconds per byte on one thread.
    pub load_unit_secs: f64,
    /// Regression segmentation penalty, relative to the curve scale.
    pub penalty_frac: f64,
    /// Swap one eligible loader/preproc pair on every no-change tick
    /// (stress-test mode: maximum role churn the dwell guard allows).
    pub force_churn: bool,
    /// Observe and predict but never flip (the `never-steal` mutation).
    pub frozen: bool,
}

impl ElasticParams {
    /// Paper defaults for a pool of `workers` covering `queues` queues.
    pub fn for_pool(workers: u32, queues: u32) -> ElasticParams {
        assert!(workers >= 2, "elastic pool needs ≥ 2 workers (1 per role)");
        assert!(queues >= 1);
        ElasticParams {
            workers,
            queues,
            min_loaders: 1,
            min_preproc: 1,
            dwell_ticks: DEFAULT_DWELL_TICKS,
            improve_frac: DEFAULT_IMPROVE_FRAC,
            sat_threads: DEFAULT_SAT_THREADS,
            unit_secs: DEFAULT_UNIT_SECS,
            load_unit_secs: DEFAULT_LOAD_UNIT_SECS,
            penalty_frac: DEFAULT_PENALTY_FRAC,
            force_churn: false,
            frozen: false,
        }
    }
}

/// How the controller estimates per-sample preprocessing demand from the
/// dataset (the `mean_sample_bytes` input of [`ElasticObservation`]).
///
/// The paper sizes the preprocessing side from the *mean* sample; under a
/// bimodal fast/slow cost mixture the mean under-provisions — heavy
/// batches routinely blow past `t_train` and stall the barrier while the
/// average still looks fine. [`WorkEstimate::Quantile`] provisions for the
/// chosen per-mille rank of the per-sample *work* distribution
/// (`size · cost`, [`lobster_data::Dataset::work_quantile_bytes`]) so tail
/// batches also hide under training. For unit-cost, near-uniform datasets
/// the two collapse to the same value.
///
/// Like every controller input this is a pure function of the dataset, so
/// the engine, the analytical executor, and the DES stay bit-equal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkEstimate {
    /// Mean per-sample work bytes (the paper's policy).
    #[default]
    Mean,
    /// The given per-mille rank of per-sample work bytes (e.g.
    /// `Quantile(900)` = p90) — the cost-quantile extension.
    Quantile(u32),
}

impl WorkEstimate {
    /// The per-sample work estimate in bytes for `dataset`. For
    /// [`WorkEstimate::Mean`] on a unit-cost dataset this is bit-identical
    /// to `dataset.mean_sample_bytes()` (the pre-workload input).
    pub fn per_sample_bytes(self, dataset: &lobster_data::Dataset) -> f64 {
        match self {
            WorkEstimate::Mean => dataset.mean_work_bytes(),
            WorkEstimate::Quantile(q) => dataset.work_quantile_bytes(q),
        }
    }
}

/// Deterministic per-tick inputs. Every executor builds this through
/// [`ElasticObservation::for_iteration`] so the f64 inputs are bit-equal
/// across the engine, the analytical executor, and the DES.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ElasticObservation {
    /// Tick index == global iteration index the decision applies to.
    pub tick: u64,
    /// Mean sample size of the dataset, bytes.
    pub mean_sample_bytes: f64,
    /// Preprocessing work factor in force at this iteration.
    pub work_factor: u32,
    /// Samples delivered per iteration across all queues (node batch).
    pub batch_samples: u64,
    /// Training time per iteration, seconds.
    pub t_train_s: f64,
}

impl ElasticObservation {
    /// The one constructor every executor must use (bit-equal inputs).
    pub fn for_iteration(
        tick: u64,
        mean_sample_bytes: f64,
        work_factor: u32,
        batch_samples: u64,
        t_train_s: f64,
    ) -> ElasticObservation {
        ElasticObservation {
            tick,
            mean_sample_bytes,
            work_factor,
            batch_samples,
            t_train_s,
        }
    }
}

/// What one controller tick decided. Pure function of the observation
/// sequence — the conformance harness compares these across executors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElasticDecision {
    /// Tick (global iteration) this decision applies to.
    pub tick: u64,
    /// Preprocessing workers before the tick.
    pub preproc_before: u32,
    /// Preprocessing workers after the tick (may trail `target_preproc`
    /// when hysteresis or per-worker dwell blocked part of the move).
    pub preproc_after: u32,
    /// The clamped regression target the controller steered toward.
    pub target_preproc: u32,
    /// Knee of the fitted curve (minimum threads at peak throughput).
    pub knee: u32,
    /// Predicted preprocessing seconds per batch at `preproc_after`.
    pub predicted_batch_secs: f64,
    /// Per-queue loader assignment over the remainder (sums to N −
    /// `preproc_after`), from Algorithm 1.
    pub loader_queues: Vec<u32>,
    /// Workers whose role flipped this tick, ascending.
    pub flipped: Vec<u32>,
    /// Algorithm 1 gap evaluations behind `loader_queues` (0 while the
    /// memoized plan is reused).
    pub evals: u32,
    /// True when the pool reached the regression target this tick.
    pub converged: bool,
}

/// The controller. One instance per run; `tick` once per iteration
/// boundary. Steady-state ticks (same observation, no flip, no churn) are
/// allocation-free: the fit and the loader plan are memoized on their
/// inputs and the decision buffers are reused in place.
#[derive(Debug, Clone)]
pub struct ElasticController {
    params: ElasticParams,
    roles: Vec<Role>,
    last_flip: Vec<Option<u64>>,
    last_change: Option<u64>,
    points: Vec<(f64, f64)>,
    fit: Option<PiecewiseLinear>,
    fit_key: Option<u64>,
    loader_key: Option<(u32, u64, u64)>,
    decision: ElasticDecision,
}

impl ElasticController {
    /// Build a controller over `params.workers` workers, the first
    /// `N − initial_preproc` holding [`Role::Loader`]. `initial_preproc`
    /// is clamped into the feasible band.
    pub fn new(params: ElasticParams, initial_preproc: u32) -> ElasticController {
        assert!(
            params.workers >= params.min_loaders.max(1) + params.min_preproc.max(1),
            "pool of {} cannot satisfy min_loaders {} + min_preproc {}",
            params.workers,
            params.min_loaders,
            params.min_preproc
        );
        let max_preproc = params.workers - params.min_loaders.max(1);
        let p0 = initial_preproc.clamp(params.min_preproc.max(1), max_preproc);
        let n = params.workers as usize;
        let roles = (0..n)
            .map(|w| {
                if (w as u32) < params.workers - p0 {
                    Role::Loader
                } else {
                    Role::Preproc
                }
            })
            .collect();
        ElasticController {
            roles,
            last_flip: vec![None; n],
            last_change: None,
            points: Vec::new(),
            fit: None,
            fit_key: None,
            loader_key: None,
            decision: ElasticDecision {
                tick: 0,
                preproc_before: p0,
                preproc_after: p0,
                target_preproc: p0,
                knee: p0,
                predicted_batch_secs: 0.0,
                loader_queues: Vec::new(),
                flipped: Vec::new(),
                evals: 0,
                converged: true,
            },
            params,
        }
    }

    /// Current role of every worker, by index.
    pub fn roles(&self) -> &[Role] {
        &self.roles
    }

    pub fn params(&self) -> &ElasticParams {
        &self.params
    }

    /// Workers currently preprocessing.
    pub fn preproc_count(&self) -> u32 {
        self.roles.iter().filter(|&&r| r == Role::Preproc).count() as u32
    }

    /// Workers currently loading.
    pub fn loader_count(&self) -> u32 {
        self.params.workers - self.preproc_count()
    }

    /// Refit the reference curve from a measured per-byte preprocessing
    /// time (live calibration; never used on conformance-checked runs,
    /// where decisions must stay a pure function of the schedule).
    pub fn calibrate(&mut self, measured_unit_secs: f64) {
        assert!(
            measured_unit_secs > 0.0 && measured_unit_secs.is_finite(),
            "unit_secs must be positive"
        );
        self.params.unit_secs = measured_unit_secs;
        self.fit_key = None;
        self.loader_key = None;
    }

    fn eligible(&self, w: usize, tick: u64) -> bool {
        self.last_flip[w].is_none_or(|t| tick.saturating_sub(t) >= self.params.dwell_ticks)
    }

    /// One controller tick at an iteration boundary.
    pub fn tick(&mut self, obs: &ElasticObservation) -> &ElasticDecision {
        let max_preproc = self.params.workers - self.params.min_loaders.max(1);
        let min_preproc = self.params.min_preproc.max(1);
        let per1 = obs.mean_sample_bytes * obs.work_factor as f64 * self.params.unit_secs;
        let per1_bits = per1.to_bits();
        let cur = self.preproc_count();

        // §4.1 fit, memoized on the preprocessing demand. Points are the
        // predicted batch-preprocessing seconds at each feasible count.
        if self.fit_key != Some(per1_bits) {
            self.points.clear();
            for k in 1..=max_preproc {
                let secs =
                    obs.batch_samples as f64 * per1 / throughput_factor(k, self.params.sat_threads);
                self.points.push((k as f64, secs));
            }
            let scale = self.points[0].1;
            let penalty = (scale * scale * self.params.penalty_frac).max(f64::MIN_POSITIVE);
            self.fit = Some(PiecewiseLinear::fit(&self.points, penalty));
            self.fit_key = Some(per1_bits);
            self.loader_key = None;
        }

        let (knee, target, desired) = {
            let model = self.fit.as_ref().expect("fit populated above");
            let (best_k, best_s) = model.argmin_int(1, max_preproc);
            // Knee: minimum threads at (tolerance of) peak throughput.
            let mut knee = best_k;
            for k in 1..best_k {
                if model.predict(k as f64) <= best_s * (1.0 + KNEE_TOL) {
                    knee = k;
                    break;
                }
            }
            // Fewest threads whose predicted batch time hides under the
            // training time; the knee when none does.
            let mut target = knee;
            for k in 1..=knee {
                if model.predict(k as f64) <= obs.t_train_s {
                    target = k;
                    break;
                }
            }
            let target = target.clamp(min_preproc, max_preproc);
            // Hysteresis: dwell window plus improvement threshold.
            let mut desired = cur;
            if !self.params.frozen && target != cur {
                let dwell_ok = self
                    .last_change
                    .is_none_or(|t| obs.tick.saturating_sub(t) >= self.params.dwell_ticks);
                if dwell_ok {
                    let cur_s = model.predict(cur as f64);
                    let new_s = model.predict(target as f64);
                    if target > cur {
                        if cur_s > 0.0 && (cur_s - new_s) / cur_s >= self.params.improve_frac {
                            desired = target;
                        }
                    } else if new_s <= obs.t_train_s * (1.0 - self.params.improve_frac) {
                        // Give threads back to loading only when the slower
                        // preprocessing still hides comfortably.
                        desired = target;
                    }
                }
            }
            (knee, target, desired)
        };

        self.decision.flipped.clear();
        let mut achieved = cur;
        if desired != cur {
            let to_preproc = desired > cur;
            let need = desired.abs_diff(cur);
            let (from, to) = if to_preproc {
                (Role::Loader, Role::Preproc)
            } else {
                (Role::Preproc, Role::Loader)
            };
            let mut flips = 0u32;
            for w in 0..self.roles.len() {
                if flips == need {
                    break;
                }
                if self.roles[w] == from && self.eligible(w, obs.tick) {
                    self.roles[w] = to;
                    self.last_flip[w] = Some(obs.tick);
                    self.decision.flipped.push(w as u32);
                    flips += 1;
                }
            }
            if flips > 0 {
                achieved = if to_preproc { cur + flips } else { cur - flips };
                self.last_change = Some(obs.tick);
            }
        } else if self.params.force_churn && !self.params.frozen {
            // Stress mode: swap the lowest-index eligible pair so roles
            // churn while the split (and the dwell guarantee) holds.
            let l = (0..self.roles.len())
                .find(|&w| self.roles[w] == Role::Loader && self.eligible(w, obs.tick));
            let p = (0..self.roles.len())
                .find(|&w| self.roles[w] == Role::Preproc && self.eligible(w, obs.tick));
            if let (Some(l), Some(p)) = (l, p) {
                self.roles[l] = Role::Preproc;
                self.roles[p] = Role::Loader;
                self.last_flip[l] = Some(obs.tick);
                self.last_flip[p] = Some(obs.tick);
                let (a, b) = if l < p { (l, p) } else { (p, l) };
                self.decision.flipped.push(a as u32);
                self.decision.flipped.push(b as u32);
            }
        }

        // Algorithm 1 over the loader remainder, memoized on its inputs.
        let loaders = self.params.workers - achieved;
        let lq_key = (loaders, per1_bits, obs.t_train_s.to_bits());
        if self.loader_key != Some(lq_key) {
            let nq = self.params.queues as usize;
            let q_cost = obs.batch_samples as f64 / self.params.queues as f64
                * obs.mean_sample_bytes
                * self.params.load_unit_secs;
            let costs = vec![q_cost; nq];
            let initial = proportional_allocation(&costs, loaders);
            let a1 = Algorithm1Params::new((obs.t_train_s * 0.05).max(1e-9), loaders.max(1));
            let outcomes = assign_threads_detailed(&a1, &initial, |q, k| {
                let load = if k == 0 {
                    f64::INFINITY
                } else {
                    costs[q] / k as f64
                };
                obs.t_train_s - load
            });
            let mut alloc: Vec<u32> = outcomes.iter().map(|o| o.threads).collect();
            normalize_to_budget(&mut alloc, loaders);
            // The role board hands out exactly `loaders` workers: pad
            // round-robin, trim from the back, so the counts sum exactly.
            let mut sum: u32 = alloc.iter().sum();
            let mut i = 0usize;
            while sum < loaders {
                alloc[i % nq] += 1;
                sum += 1;
                i += 1;
            }
            let mut j = nq;
            while sum > loaders {
                j = if j == 0 { nq - 1 } else { j - 1 };
                if alloc[j] > 0 {
                    alloc[j] -= 1;
                    sum -= 1;
                }
            }
            self.decision.loader_queues.clear();
            self.decision.loader_queues.extend_from_slice(&alloc);
            self.decision.evals = outcomes.iter().map(|o| o.evals).sum();
            self.loader_key = Some(lq_key);
        }

        let predicted = self
            .fit
            .as_ref()
            .expect("fit populated above")
            .predict(achieved as f64);
        let d = &mut self.decision;
        d.tick = obs.tick;
        d.preproc_before = cur;
        d.preproc_after = achieved;
        d.target_preproc = target;
        d.knee = knee;
        d.predicted_batch_secs = predicted;
        d.converged = achieved == target;
        &self.decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(tick: u64, wf: u32, t_train_s: f64) -> ElasticObservation {
        ElasticObservation::for_iteration(tick, 16_384.0, wf, 16, t_train_s)
    }

    /// Drive to steady state under one observation shape.
    fn settle(ctl: &mut ElasticController, wf: u32, t_train_s: f64, ticks: u64) -> u32 {
        let mut after = ctl.preproc_count();
        for t in 0..ticks {
            after = ctl.tick(&obs(t, wf, t_train_s)).preproc_after;
        }
        after
    }

    #[test]
    fn heavy_preprocessing_steals_loaders() {
        let mut ctl = ElasticController::new(ElasticParams::for_pool(8, 2), 2);
        // wf 8 → ~2.5 ms of single-thread preprocessing vs 300 µs train.
        let after = settle(&mut ctl, 8, 300e-6, 12);
        assert!(
            after >= 5,
            "preproc side should grow to the knee, got {after}"
        );
        assert_eq!(ctl.preproc_count() + ctl.loader_count(), 8);
    }

    #[test]
    fn light_preprocessing_keeps_minimum_threads() {
        let mut ctl = ElasticController::new(ElasticParams::for_pool(8, 2), 6);
        // wf 1 → ~315 µs single-thread; 2 threads hide under 300 µs train.
        let after = settle(&mut ctl, 1, 300e-6, 12);
        assert!(
            after <= 2,
            "light preproc should release workers, got {after}"
        );
    }

    #[test]
    fn frozen_controller_never_flips() {
        let mut params = ElasticParams::for_pool(8, 2);
        params.frozen = true;
        let mut ctl = ElasticController::new(params, 2);
        for t in 0..10 {
            let d = ctl.tick(&obs(t, 8, 300e-6));
            assert_eq!(d.preproc_after, 2);
            assert!(d.flipped.is_empty());
        }
        // It still predicts and reports the target it refuses to chase.
        assert!(ctl.decision.target_preproc > 2);
    }

    #[test]
    fn dwell_blocks_consecutive_split_changes() {
        let mut params = ElasticParams::for_pool(8, 2);
        params.dwell_ticks = 4;
        let mut ctl = ElasticController::new(params, 2);
        let d0 = ctl.tick(&obs(0, 8, 300e-6)).clone();
        assert!(d0.preproc_after > 2, "first tick moves");
        // Flip demand back down immediately: dwell must hold the split.
        for t in 1..4 {
            let d = ctl.tick(&obs(t, 1, 300e-6));
            assert_eq!(d.preproc_after, d.preproc_before, "tick {t} must dwell");
        }
        let d4 = ctl.tick(&obs(4, 1, 300e-6));
        assert!(
            d4.preproc_after < d0.preproc_after,
            "dwell expired, split moves"
        );
    }

    #[test]
    fn churn_swaps_one_pair_and_conserves_counts() {
        let mut params = ElasticParams::for_pool(8, 2);
        params.force_churn = true;
        params.dwell_ticks = 1;
        let mut ctl = ElasticController::new(params, 2);
        let mut churn_ticks = 0;
        for t in 0..8 {
            let d = ctl.tick(&obs(t, 1, 1.0)).clone(); // huge t_train: target == min
            if d.preproc_after == d.preproc_before && d.flipped.len() == 2 {
                churn_ticks += 1;
            }
            assert_eq!(ctl.preproc_count(), d.preproc_after);
            assert_eq!(ctl.preproc_count() + ctl.loader_count(), 8);
        }
        assert!(
            churn_ticks > 0,
            "churn mode must swap pairs on steady ticks"
        );
    }

    #[test]
    fn loader_queues_always_sum_to_loader_count() {
        let mut ctl = ElasticController::new(ElasticParams::for_pool(9, 4), 3);
        for t in 0..10 {
            let wf = if t < 5 { 1 } else { 8 };
            let d = ctl.tick(&obs(t, wf, 300e-6));
            assert_eq!(d.loader_queues.len(), 4);
            assert_eq!(
                d.loader_queues.iter().sum::<u32>(),
                9 - d.preproc_after,
                "tick {t}: {:?}",
                d.loader_queues
            );
        }
    }

    #[test]
    fn calibrate_refits_the_curve() {
        let mut ctl = ElasticController::new(ElasticParams::for_pool(8, 2), 2);
        let before = ctl.tick(&obs(0, 2, 300e-6)).predicted_batch_secs;
        ctl.calibrate(DEFAULT_UNIT_SECS * 10.0);
        let after = ctl.tick(&obs(1, 2, 300e-6)).predicted_batch_secs;
        assert!(
            after > before * 2.0,
            "10× unit cost must reshape predictions"
        );
    }

    #[test]
    fn steady_state_tick_reuses_memoized_fit() {
        let mut ctl = ElasticController::new(ElasticParams::for_pool(8, 2), 2);
        let _ = ctl.tick(&obs(0, 2, 300e-6));
        let evals_warm = ctl.decision.evals;
        let d = ctl.tick(&obs(1, 2, 300e-6)).clone();
        // Memoized loader plan: no new Algorithm 1 evaluations recorded.
        assert_eq!(d.evals, evals_warm);
        assert_eq!(d.loader_queues.iter().sum::<u32>(), 8 - d.preproc_after);
    }

    #[test]
    fn knee_from_points_finds_the_saturation() {
        let pts: Vec<(f64, f64)> = (1..=12)
            .map(|k| (k as f64, 1.0 / throughput_factor(k, 6)))
            .collect();
        let knee = knee_from_points(&pts, 1e-4);
        assert!((5..=7).contains(&knee), "knee {knee} expected ≈6");
    }

    #[test]
    fn throughput_factor_shape() {
        assert_eq!(throughput_factor(1, 6), 1.0);
        assert_eq!(throughput_factor(6, 6), 6.0);
        assert!(throughput_factor(10, 6) < 6.0);
        assert!(throughput_factor(64, 6) >= 3.0);
    }

    #[test]
    fn mean_estimate_matches_the_legacy_input_bit_for_bit() {
        use lobster_data::{Dataset, SizeDistribution};
        let d = Dataset::generate("e", 100, SizeDistribution::Uniform { lo: 100, hi: 900 }, 3);
        assert_eq!(
            WorkEstimate::Mean.per_sample_bytes(&d).to_bits(),
            d.mean_sample_bytes().to_bits()
        );
        // On near-uniform unit-cost data the quantile is close to the mean
        // — the extension is a no-op where the paper's policy already wins.
        let q = WorkEstimate::Quantile(900).per_sample_bytes(&d);
        assert!((q / d.mean_sample_bytes() - 1.0).abs() < 1.0);
    }

    #[test]
    fn quantile_estimate_provisions_for_the_slow_mode() {
        use lobster_data::{Dataset, SizeDistribution};
        // 25% of samples cost 16×: the mean sees 4.75×, p90 sees the full
        // 16× slow mode.
        let mut costs = vec![1u32; 100];
        for c in costs.iter_mut().take(25) {
            *c = 16;
        }
        let d = Dataset::generate("q", 100, SizeDistribution::Constant { bytes: 1000 }, 0)
            .with_costs(costs);
        let mean = WorkEstimate::Mean.per_sample_bytes(&d);
        let p90 = WorkEstimate::Quantile(900).per_sample_bytes(&d);
        assert_eq!(mean, 4750.0);
        assert_eq!(p90, 16_000.0);
        // And the controller steers to more preprocessing threads under
        // the quantile estimate for the same training budget.
        let t_train = 0.8 * 16.0 * 16_000.0 * DEFAULT_UNIT_SECS * 16.0 / 6.0;
        let settle_with = |per_sample: f64| -> u32 {
            let mut ctl = ElasticController::new(ElasticParams::for_pool(12, 2), 1);
            let mut preproc = 0;
            for tick in 0..40 {
                let o = ElasticObservation::for_iteration(tick, per_sample, 16, 16, t_train);
                preproc = ctl.tick(&o).preproc_after;
            }
            preproc
        };
        assert!(
            settle_with(p90) > settle_with(mean),
            "p90 {} vs mean {} threads",
            settle_with(p90),
            settle_with(mean)
        );
    }
}
