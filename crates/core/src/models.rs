//! DNN model profiles for the six benchmark networks (§5.1).
//!
//! The paper treats the training stage as a constant per-iteration duration
//! `T_train` (§4.3); each profile supplies that constant, calibrated to
//! A100-class relative costs at batch size 32, plus the convergence
//! parameters used by the Figure 9 accuracy experiment. Absolute values are
//! substitutes for real GPU kernels — only the *ratios* between models (and
//! between `T_train` and the I/O stages) shape the results.

use serde::{Deserialize, Serialize};

/// A DNN training workload, as the data-loading pipeline sees it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Report name ("resnet50" etc.).
    pub name: String,
    /// Per-iteration training-stage duration `T_train` in seconds
    /// (forward + backward + optimizer, batch 32 per GPU).
    pub t_train_s: f64,
    /// Top-1 accuracy the model converges to (Figure 9's target line).
    pub target_accuracy: f64,
    /// Epochs to reach ~99% of target accuracy with default hyperparameters.
    pub convergence_epochs: f64,
}

impl ModelProfile {
    pub fn new(name: &str, t_train_s: f64, target_accuracy: f64, convergence_epochs: f64) -> Self {
        assert!(t_train_s > 0.0);
        assert!((0.0..=1.0).contains(&target_accuracy));
        ModelProfile {
            name: name.to_string(),
            t_train_s,
            target_accuracy,
            convergence_epochs,
        }
    }
}

/// ResNet-50: the paper's primary workload. Converges to 76.0% top-1 "in
/// around 40 epochs" (Figure 9).
pub fn resnet50() -> ModelProfile {
    ModelProfile::new("resnet50", 0.115, 0.760, 40.0)
}

/// ResNet-32 (the smaller residual stack).
pub fn resnet32() -> ModelProfile {
    ModelProfile::new("resnet32", 0.060, 0.740, 45.0)
}

/// ShuffleNet: small mobile model — training is fast, so I/O dominates.
pub fn shufflenet() -> ModelProfile {
    ModelProfile::new("shufflenet", 0.030, 0.690, 50.0)
}

/// AlexNet.
pub fn alexnet() -> ModelProfile {
    ModelProfile::new("alexnet", 0.042, 0.565, 35.0)
}

/// SqueezeNet (the paper's "SquenceNet"): smallest model in the suite.
pub fn squeezenet() -> ModelProfile {
    ModelProfile::new("squeezenet", 0.028, 0.575, 45.0)
}

/// VGG-11: the heaviest per-iteration model in the suite.
pub fn vgg11() -> ModelProfile {
    ModelProfile::new("vgg11", 0.140, 0.690, 40.0)
}

/// All six benchmark models, in the paper's listing order.
pub fn all_models() -> Vec<ModelProfile> {
    vec![
        resnet50(),
        resnet32(),
        shufflenet(),
        alexnet(),
        squeezenet(),
        vgg11(),
    ]
}

/// Look a model up by its report name.
pub fn model_by_name(name: &str) -> Option<ModelProfile> {
    all_models().into_iter().find(|m| m.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_models_with_unique_names() {
        let models = all_models();
        assert_eq!(models.len(), 6);
        let names: std::collections::HashSet<&str> =
            models.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn small_models_train_faster_than_large_ones() {
        // The §5.6 observation that eviction "is more helpful for small
        // models" depends on this ordering.
        assert!(squeezenet().t_train_s < resnet50().t_train_s);
        assert!(shufflenet().t_train_s < resnet50().t_train_s);
        assert!(vgg11().t_train_s > resnet50().t_train_s);
    }

    #[test]
    fn resnet50_matches_paper_convergence() {
        let m = resnet50();
        assert_eq!(m.target_accuracy, 0.760);
        assert_eq!(m.convergence_epochs, 40.0);
    }

    #[test]
    fn lookup_by_name_roundtrips() {
        for m in all_models() {
            assert_eq!(model_by_name(&m.name).unwrap(), m);
        }
        assert!(model_by_name("transformer").is_none());
    }

    #[test]
    #[should_panic]
    fn zero_train_time_is_rejected() {
        ModelProfile::new("bad", 0.0, 0.5, 10.0);
    }
}
