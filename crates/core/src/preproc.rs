//! The data-preprocessing stage: throughput model and thread governor
//! (§4.1 and Observation 3).
//!
//! Preprocessing (decode, augmentation, batching) is embarrassingly parallel
//! but memory-bandwidth bound: its throughput "peaks at 6 threads, after
//! which it flattens and even slightly becomes worse" (Figure 6). Lobster's
//! first decision is therefore "the minimum number of threads needed to
//! reach the peak preprocessing throughput and not exceed it".
//!
//! [`PreprocModel`] is the ground-truth cost model used by the simulator
//! (substituting for real JPEG decode on real CPUs). [`PreprocGovernor`] is
//! Lobster's *learned* view of it: it measures per-sample times at each
//! thread count, fits the §4.1 piece-wise linear regression per sample size,
//! and answers thread-count queries from the fitted portfolio — exactly the
//! paper's offline planning component.

use crate::regression::{ModelPortfolio, PiecewiseLinear};
use lobster_storage::ThroughputCurve;
use serde::{Deserialize, Serialize};

/// Ground-truth preprocessing cost model: bytes/second as a peaked function
/// of thread count, with throughput proportional to 1/sample-complexity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PreprocModel {
    /// Throughput in *bytes* per second vs thread count (peaked shape).
    curve: ThroughputCurve,
}

impl PreprocModel {
    pub fn new(curve: ThroughputCurve) -> PreprocModel {
        PreprocModel { curve }
    }

    /// Default decode + augmentation model calibrated to the paper's
    /// environment: single-thread rate ≈ 60 MB/s (≈ 1.75 ms for a 105 KB
    /// JPEG on a Rome core), scaling to a peak at 6 threads, then declining
    /// 5% by 16 threads (Figure 6's shape). At the peak the stage clears a
    /// full 8-GPU node's demand with ~1.5× headroom — preprocessing "does
    /// not become a bottleneck by itself" (Observation 2) but loses its
    /// headroom if over- or under-threaded.
    pub fn default_imagenet() -> PreprocModel {
        PreprocModel {
            curve: ThroughputCurve::peaked(60e6, 6, 16, 0.95),
        }
    }

    /// Bytes/second with `threads` preprocessing threads.
    pub fn throughput(&self, threads: u32) -> f64 {
        self.curve.at(threads)
    }

    /// Seconds to preprocess one sample of `bytes` with `threads` threads
    /// active — the quantity the paper's regression predicts.
    pub fn per_sample_secs(&self, bytes: u64, threads: u32) -> f64 {
        let t = self.throughput(threads);
        if t <= 0.0 {
            f64::INFINITY
        } else {
            bytes as f64 / t
        }
    }

    /// Seconds to preprocess `total_bytes` of samples with `threads`
    /// threads.
    pub fn batch_secs(&self, total_bytes: f64, threads: u32) -> f64 {
        let t = self.throughput(threads);
        if t <= 0.0 {
            f64::INFINITY
        } else {
            total_bytes / t
        }
    }

    /// Thread count at the throughput peak (smallest among ties).
    pub fn peak_threads(&self) -> u32 {
        self.curve.peak().0
    }
}

/// Lobster's learned predictor: a portfolio of piece-wise linear per-sample
/// time models, one per calibrated sample size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PreprocGovernor {
    portfolio: ModelPortfolio,
    max_threads: u32,
    /// Relative tolerance when hunting for "minimum threads at peak".
    tolerance: f64,
}

impl PreprocGovernor {
    /// Calibrate from a measurement function `measure(sample_bytes,
    /// threads) → per-sample seconds` (the simulator passes the ground-truth
    /// model, possibly with noise; the live runtime passes real timings).
    /// One regression model is fitted per entry of `sample_sizes`.
    pub fn calibrate<F>(
        sample_sizes: &[u64],
        max_threads: u32,
        penalty: f64,
        mut measure: F,
    ) -> PreprocGovernor
    where
        F: FnMut(u64, u32) -> f64,
    {
        assert!(max_threads >= 1);
        assert!(
            !sample_sizes.is_empty(),
            "calibration needs at least one sample size"
        );
        let mut portfolio = ModelPortfolio::new();
        for &bytes in sample_sizes {
            let points: Vec<(f64, f64)> = (1..=max_threads)
                .map(|t| (t as f64, measure(bytes, t)))
                .collect();
            portfolio.insert(bytes, PiecewiseLinear::fit(&points, penalty));
        }
        PreprocGovernor {
            portfolio,
            max_threads,
            tolerance: 0.02,
        }
    }

    /// Maximum thread count the governor was calibrated over.
    pub fn max_threads(&self) -> u32 {
        self.max_threads
    }

    /// Predicted per-sample preprocessing seconds for `sample_bytes` with
    /// `threads` threads, from the closest model in the portfolio.
    pub fn predict_per_sample_secs(&self, sample_bytes: u64, threads: u32) -> f64 {
        let model = self
            .portfolio
            .closest(sample_bytes)
            .expect("calibrated governor");
        model.predict(threads.max(1) as f64).max(1e-12)
    }

    /// Predicted seconds for a node to preprocess `total_samples` samples of
    /// mean size `sample_bytes` with `threads` threads. With `k` threads the
    /// per-sample *wall* contribution is the predicted per-sample time, and
    /// samples stream through the stage, so the batch time is
    /// `total_samples × per_sample(threads)`.
    pub fn predict_batch_secs(&self, sample_bytes: u64, total_samples: usize, threads: u32) -> f64 {
        total_samples as f64 * self.predict_per_sample_secs(sample_bytes, threads)
    }

    /// §4.1 Step 1: the minimum thread count reaching (within tolerance) the
    /// peak predicted throughput for this sample size.
    pub fn optimal_threads(&self, sample_bytes: u64) -> u32 {
        let model = self
            .portfolio
            .closest(sample_bytes)
            .expect("calibrated governor");
        let (_, best) = model.argmin_int(1, self.max_threads);
        for t in 1..=self.max_threads {
            if model.predict(t as f64) <= best * (1.0 + self.tolerance) {
                return t;
            }
        }
        self.max_threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_peaks_at_six_threads() {
        let m = PreprocModel::default_imagenet();
        assert_eq!(m.peak_threads(), 6);
        // Flat-to-declining tail (Observation 3).
        assert!(m.throughput(16) < m.throughput(6));
        assert!(m.throughput(16) > m.throughput(6) * 0.9);
    }

    #[test]
    fn per_sample_time_decreases_then_increases() {
        let m = PreprocModel::default_imagenet();
        let t1 = m.per_sample_secs(100_000, 1);
        let t6 = m.per_sample_secs(100_000, 6);
        let t16 = m.per_sample_secs(100_000, 16);
        assert!(t6 < t1);
        assert!(t16 > t6);
    }

    #[test]
    fn batch_secs_scales_with_bytes() {
        let m = PreprocModel::default_imagenet();
        assert!((m.batch_secs(2e6, 4) - 2.0 * m.batch_secs(1e6, 4)).abs() < 1e-12);
        assert!(m.batch_secs(1e6, 0).is_infinite());
    }

    fn governor_from_truth() -> PreprocGovernor {
        let truth = PreprocModel::default_imagenet();
        PreprocGovernor::calibrate(&[30_000, 105_000], 16, 1e-9, |b, t| {
            truth.per_sample_secs(b, t)
        })
    }

    #[test]
    fn governor_learns_the_knee() {
        let g = governor_from_truth();
        // The paper's claim: peak at 6; tolerance may admit 5–7.
        let opt = g.optimal_threads(105_000);
        assert!((5..=7).contains(&opt), "got {opt}");
        // Closest-model lookup: a 90 KB sample uses the 105 KB model.
        let opt_small = g.optimal_threads(25_000);
        assert!((5..=7).contains(&opt_small), "got {opt_small}");
    }

    #[test]
    fn governor_prediction_tracks_truth() {
        let truth = PreprocModel::default_imagenet();
        let g = governor_from_truth();
        for t in 1..=16 {
            let want = truth.per_sample_secs(105_000, t);
            let got = g.predict_per_sample_secs(105_000, t);
            assert!(
                (got - want).abs() / want < 0.15,
                "threads {t}: predicted {got}, truth {want}"
            );
        }
    }

    #[test]
    fn governor_is_robust_to_measurement_noise() {
        let truth = PreprocModel::default_imagenet();
        let mut rng = lobster_sim::Xoshiro256StarStar::seed_from_u64(3);
        let g = PreprocGovernor::calibrate(&[105_000], 16, 1e-9, |b, t| {
            truth.per_sample_secs(b, t) * (1.0 + 0.03 * (rng.next_f64() - 0.5))
        });
        let opt = g.optimal_threads(105_000);
        assert!((4..=8).contains(&opt), "noisy knee at {opt}");
    }

    #[test]
    fn batch_prediction_is_linear_in_samples() {
        let g = governor_from_truth();
        let one = g.predict_batch_secs(105_000, 1, 6);
        let many = g.predict_batch_secs(105_000, 256, 6);
        assert!((many - 256.0 * one).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one sample size")]
    fn empty_calibration_panics() {
        PreprocGovernor::calibrate(&[], 8, 1.0, |_, _| 1.0);
    }
}
