//! The loader-policy interface and the reuse-aware eviction engine.
//!
//! Every system the evaluation compares — PyTorch DataLoader, DALI, NoPFS,
//! Lobster, and the two ablations — is expressed as a [`LoaderPolicy`]: once
//! per iteration per node it receives the predicted state of the next
//! mini-batches ([`PlanContext`]) and answers with a thread plan
//! ([`NodePlan`]). The caching side of each system is a
//! [`CachingStrategy`]; Lobster's reuse-distance eviction rules live in
//! [`ReuseAwareEvictor`].

use crate::model::{load_time_secs, stage_gap_secs, ThreadAlloc, TierBreakdown};
use crate::preproc::PreprocGovernor;
use lobster_cache::{Directory, NodeCache};
use lobster_data::{NodeOracle, SampleId};
use lobster_storage::StorageModel;
use serde::{Deserialize, Serialize};

/// How a policy manages the node-local cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CachingStrategy {
    /// Recency keys, demand-fill only (PyTorch DataLoader, DALI: the OS
    /// page-cache behaviour their loaders effectively get).
    Lru,
    /// Recency keys plus deterministic prefetching with next-iteration
    /// samples pinned (NoPFS: clairvoyant prefetch, naive eviction — "NoPFS
    /// evicts the training samples to accommodate the training samples to
    /// be prefetched for the next iteration").
    PrefetchLru,
    /// Lobster: priority = next reuse distance, proactive reuse-count and
    /// reuse-distance eviction, prefetching prioritized by nearest reuse.
    ReuseAware,
    /// MinIO-style (related work, §6): "once data samples are cached, they
    /// are never evicted out of the cache" — first-come-first-kept,
    /// demand-fill only.
    InsertOnly,
}

impl CachingStrategy {
    /// Whether this strategy exploits the deterministic access order.
    pub fn uses_oracle(self) -> bool {
        matches!(
            self,
            CachingStrategy::PrefetchLru | CachingStrategy::ReuseAware
        )
    }

    /// Whether inserts may displace resident samples.
    pub fn evicts(self) -> bool {
        !matches!(self, CachingStrategy::InsertOnly)
    }
}

/// Everything a policy may inspect when planning one iteration on one node.
#[derive(Debug)]
pub struct PlanContext<'a> {
    /// Node id `i`.
    pub node: usize,
    /// Iteration within the epoch, `h`.
    pub iter_in_epoch: usize,
    /// Iterations per epoch, `I`.
    pub iters_per_epoch: usize,
    /// Training-stage duration `T_train` (assumed constant, §4.3).
    pub t_train_s: f64,
    /// Storage throughput curves.
    pub storage: &'a StorageModel,
    /// Predicted tier split of each GPU's next mini-batch, given the current
    /// cache and directory state.
    pub splits: &'a [TierBreakdown],
    /// Total CPU threads available to the pipeline on this node.
    pub total_threads: u32,
    /// Estimated number of nodes concurrently reading the PFS.
    pub reading_nodes: usize,
    /// Samples per GPU mini-batch `|B|`.
    pub batch_samples: usize,
    /// Mean sample size (portfolio lookup key).
    pub mean_sample_bytes: u64,
    /// The calibrated preprocessing predictor.
    pub governor: &'a PreprocGovernor,
}

impl PlanContext<'_> {
    /// Number of GPUs on this node.
    pub fn gpus(&self) -> usize {
        self.splits.len()
    }

    /// Pending load bytes per GPU (the raw "queue size" of §4.2's
    /// multi-queue).
    pub fn queue_bytes(&self) -> Vec<f64> {
        self.splits
            .iter()
            .map(|s| s.remote_bytes + s.pfs_bytes + s.local_bytes)
            .collect()
    }

    /// Per-GPU *data loading intensity* (§4.2): the predicted single-thread
    /// load time of the pending queue. This is what thread shares are
    /// proportional to — a PFS-bound byte is far more expensive than a
    /// local-cache byte, and an intensity-blind split is exactly the
    /// baseline behaviour the paper criticizes.
    pub fn queue_cost_secs(&self) -> Vec<f64> {
        (0..self.gpus()).map(|g| self.load_secs(g, 1)).collect()
    }

    /// Predicted per-GPU preprocessing time with `p` threads: each GPU's
    /// batch streams through the shared stage alongside its peers', so the
    /// per-GPU completion uses the node's whole sample load.
    pub fn preproc_secs(&self, p: u32) -> f64 {
        let total_samples = self.batch_samples * self.gpus();
        self.governor
            .predict_batch_secs(self.mean_sample_bytes, total_samples, p)
    }

    /// Predicted load time of GPU `g`'s next batch with `threads` loading
    /// threads (Eq. 1).
    pub fn load_secs(&self, gpu: usize, threads: u32) -> f64 {
        load_time_secs(
            self.storage,
            &self.splits[gpu],
            ThreadAlloc::uniform(threads),
            self.reading_nodes,
        )
    }

    /// Signed stage gap (Eq. 2 orientation) for GPU `g` with `threads`
    /// loading threads and `p` preprocessing threads.
    pub fn gap_secs(&self, gpu: usize, threads: u32, p: u32) -> f64 {
        stage_gap_secs(
            self.load_secs(gpu, threads),
            self.preproc_secs(p),
            self.t_train_s,
        )
    }
}

/// A policy's decision for one iteration on one node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodePlan {
    /// Threads given to the preprocessing stage.
    pub preproc_threads: u32,
    /// Loading threads per co-located GPU (the multi-queue assignment).
    pub load_threads: Vec<u32>,
    /// Whether spare loader capacity prefetches ahead this iteration.
    pub prefetch: bool,
    /// How many iterations ahead the prefetcher may reach. NoPFS's staging
    /// buffers cover the next few iterations; Lobster's eviction coordination
    /// lets it look much further without displacing near-future samples.
    pub prefetch_lookahead: usize,
}

impl NodePlan {
    /// Total threads the plan consumes.
    pub fn total_threads(&self) -> u32 {
        self.preproc_threads + self.load_threads.iter().sum::<u32>()
    }
}

/// A data-loading runtime under evaluation.
/// One adaptive thread-assignment decision made inside a policy's
/// [`LoaderPolicy::plan`] call — recorded when Lobster runs Algorithm 1.
/// `lobster-core` has no dependency on the metrics crate, so the executor
/// collects these via [`LoaderPolicy::drain_decisions`] and converts them
/// into observability records.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanDecision {
    /// Input: per-queue load the policy saw (predicted single-thread load
    /// seconds per GPU queue).
    pub queue_loads: Vec<f64>,
    /// Input: model-predicted per-queue cost at the chosen allocation, in
    /// seconds.
    pub predicted_cost: Vec<f64>,
    /// Thread vector before the solve (the proportional allocation).
    pub threads_before: Vec<u32>,
    /// Output: thread vector after the solve (before budget normalization
    /// and thread stealing).
    pub threads_after: Vec<u32>,
    /// Worst remaining signed gap across GPUs, in seconds.
    pub gap_s: f64,
    /// Total model evaluations the per-GPU searches spent.
    pub evals: u32,
    /// False if any per-GPU search stopped via the stagnation window
    /// instead of converging below τ.
    pub converged: bool,
}

pub trait LoaderPolicy: Send {
    /// Short name used in reports ("pytorch", "dali", "nopfs", "lobster",
    /// "lobster_th", "lobster_evict").
    fn name(&self) -> &'static str;

    /// The caching behaviour this runtime exhibits.
    fn caching(&self) -> CachingStrategy;

    /// Decide thread allocation for the upcoming iteration.
    fn plan(&mut self, ctx: &PlanContext<'_>) -> NodePlan;

    /// Relative efficiency of this runtime's loading path (1.0 = native
    /// C++/DALI data path). PyTorch's Python worker processes pay
    /// serialization and interpreter overhead per sample, which is a large
    /// part of why DALI and Lobster's C++ runtime exist; policies built on
    /// the PyTorch DataLoader override this.
    fn loading_efficiency(&self) -> f64 {
        1.0
    }

    /// Whether this runtime shares node caches across the cluster (NoPFS
    /// and Lobster run a distributed cache with a distribution manager;
    /// PyTorch DataLoader and DALI only ever see their own node's memory,
    /// so every non-local sample goes to the PFS).
    fn distributed_cache(&self) -> bool {
        self.caching().uses_oracle()
    }

    /// Take (and clear) the adaptive decisions made since the last drain.
    /// Policies without an adaptive controller return nothing; Lobster
    /// returns one [`PlanDecision`] per Algorithm 1 solve.
    fn drain_decisions(&mut self) -> Vec<PlanDecision> {
        Vec::new()
    }
}

/// Report of one proactive-eviction sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvictReport {
    /// Samples evicted because their reuse count on this node hit zero.
    pub by_reuse_count: u64,
    /// Samples evicted because their next reuse distance exceeds `2I − h`.
    pub by_reuse_distance: u64,
    /// Evictions suppressed because no other node holds a copy.
    pub kept_last_copy: u64,
}

/// Why a proactive-eviction sweep dropped a sample. Carried per victim by
/// [`ReuseAwareEvictor::after_iteration_detailed`] so differential checkers
/// can compare victim identity and cause across execution models, not just
/// counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvictCause {
    /// No remaining uses on this node (and a replica exists elsewhere).
    ReuseCount,
    /// Next reuse farther than the `2I − h` horizon.
    ReuseDistance,
}

/// Lobster's eviction policies (§4.4): reuse count, reuse distance, and the
/// priority keys that coordinate capacity eviction with prefetching.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReuseAwareEvictor;

impl ReuseAwareEvictor {
    /// Cache priority key for a sample whose next use (global iteration) is
    /// `next_use`. Victim order is smallest-key-first, so: never reused →
    /// key 0 (first victim); reused sooner → larger key (kept longer). This
    /// realizes "evict the training samples with the largest reuse distance,
    /// while prioritizing ... the nearest reuse distance".
    pub fn priority_key(next_use: Option<u64>) -> u64 {
        match next_use {
            None => 0,
            Some(it) => u64::MAX - it,
        }
    }

    /// Apply both §4.4 sub-policies to the samples the node just accessed
    /// (`batch = B^h` restricted to node `i`), after iteration `h` finished.
    ///
    /// * **Reuse count**: no remaining uses on this node → evict, *unless*
    ///   no other node holds a copy.
    /// * **Reuse distance**: next reuse farther than `2I − h` iterations →
    ///   the sample "will not be accessed by any GPUs on the node during the
    ///   next epoch" → evict.
    #[allow(clippy::too_many_arguments)]
    pub fn after_iteration(
        &self,
        cache: &mut NodeCache,
        directory: &mut Directory,
        oracle: &NodeOracle,
        node: usize,
        batch: &[SampleId],
        h: usize,
        iters_per_epoch: usize,
        current_iteration: u64,
    ) -> EvictReport {
        let mut victims = Vec::new();
        self.after_iteration_detailed(
            cache,
            directory,
            oracle,
            node,
            batch,
            h,
            iters_per_epoch,
            current_iteration,
            &mut victims,
        )
    }

    /// [`Self::after_iteration`], additionally appending every victim (in
    /// sweep order, i.e. batch order) with its cause to `victims`.
    #[allow(clippy::too_many_arguments)]
    pub fn after_iteration_detailed(
        &self,
        cache: &mut NodeCache,
        directory: &mut Directory,
        oracle: &NodeOracle,
        node: usize,
        batch: &[SampleId],
        h: usize,
        iters_per_epoch: usize,
        current_iteration: u64,
        victims: &mut Vec<(SampleId, EvictCause)>,
    ) -> EvictReport {
        let mut report = EvictReport::default();
        let horizon = (2 * iters_per_epoch).saturating_sub(h) as u64;
        for &s in batch {
            if !cache.contains(s) {
                continue;
            }
            match oracle.future_of(s) {
                None => {
                    // Reuse-count policy.
                    if directory.held_elsewhere(s, node) {
                        cache.evict(s);
                        directory.remove(s, node);
                        report.by_reuse_count += 1;
                        victims.push((s, EvictCause::ReuseCount));
                    } else {
                        report.kept_last_copy += 1;
                        // Last copy anywhere: make it the least-attractive
                        // capacity victim is wrong (it is never reused here),
                        // but re-fetching it from the PFS is what eviction
                        // would force — keep it as a cheap remote source.
                        cache.set_key(s, Self::priority_key(None) + 1);
                    }
                }
                Some(fut) => {
                    let distance = fut.next_iteration.saturating_sub(current_iteration);
                    if distance > horizon {
                        // Reuse-distance policy.
                        cache.evict(s);
                        directory.remove(s, node);
                        report.by_reuse_distance += 1;
                        victims.push((s, EvictCause::ReuseDistance));
                    } else {
                        cache.set_key(s, Self::priority_key(Some(fut.next_iteration)));
                    }
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobster_cache::EvictOrder;
    use lobster_data::{EpochSchedule, ScheduleSpec};

    #[test]
    fn priority_keys_order_by_nearness() {
        let near = ReuseAwareEvictor::priority_key(Some(10));
        let far = ReuseAwareEvictor::priority_key(Some(1_000_000));
        let never = ReuseAwareEvictor::priority_key(None);
        assert!(near > far, "nearer reuse must be kept longer");
        assert!(far > never, "any reuse beats no reuse");
        assert_eq!(never, 0);
    }

    fn tiny_oracle() -> (NodeOracle, EpochSchedule, EpochSchedule) {
        let spec = ScheduleSpec {
            nodes: 2,
            gpus_per_node: 2,
            batch_size: 2,
            dataset_len: 64,
            seed: 4,
        };
        let e0 = EpochSchedule::generate(spec, 0);
        let e1 = EpochSchedule::generate(spec, 1);
        let oracle = NodeOracle::build(0, &[&e0, &e1], 0);
        (oracle, e0, e1)
    }

    #[test]
    fn reuse_count_evicts_replicated_dead_samples() {
        let (mut oracle, e0, e1) = tiny_oracle();
        let evictor = ReuseAwareEvictor;
        let mut cache = NodeCache::new(1 << 20, EvictOrder::SmallestKeyFirst);
        let mut dir = Directory::new(2);
        // Walk the whole window; every sample that dies with a replica
        // elsewhere must be evicted.
        let iters = e0.iterations() + e1.iterations();
        let mut evicted_total = 0;
        for h in 0..iters {
            let batch: Vec<SampleId> = oracle.upcoming_iteration(0).to_vec();
            for &s in &batch {
                cache.insert(s, 100, 50);
                dir.add(s, 0);
                dir.add(s, 1); // replicate everywhere → guard never triggers
            }
            oracle.advance();
            let h_in_epoch = h % e0.iterations();
            let rep = evictor.after_iteration(
                &mut cache,
                &mut dir,
                &oracle,
                0,
                &batch,
                h_in_epoch,
                e0.iterations(),
                h as u64,
            );
            evicted_total += rep.by_reuse_count;
            assert_eq!(rep.kept_last_copy, 0);
        }
        assert!(
            evicted_total > 0,
            "samples ending their reuse must be dropped"
        );
    }

    #[test]
    fn last_copy_guard_blocks_reuse_count_eviction() {
        let (mut oracle, e0, _e1) = tiny_oracle();
        let evictor = ReuseAwareEvictor;
        let mut cache = NodeCache::new(1 << 20, EvictOrder::SmallestKeyFirst);
        let mut dir = Directory::new(2);
        let batch: Vec<SampleId> = oracle.upcoming_iteration(0).to_vec();
        for &s in &batch {
            cache.insert(s, 100, 50);
            dir.add(s, 0); // sole copy
        }
        // Drain the oracle so every batch sample is certainly dead.
        while !oracle.exhausted() {
            oracle.advance();
        }
        let rep = evictor.after_iteration(
            &mut cache,
            &mut dir,
            &oracle,
            0,
            &batch,
            0,
            e0.iterations(),
            1_000,
        );
        assert_eq!(rep.by_reuse_count, 0);
        assert_eq!(rep.kept_last_copy as usize, batch.len());
        for &s in &batch {
            assert!(cache.contains(s), "last copies must stay");
        }
    }

    #[test]
    fn reuse_distance_policy_evicts_far_samples() {
        let evictor = ReuseAwareEvictor;
        let (mut oracle, e0, _e1) = tiny_oracle();
        let mut cache = NodeCache::new(1 << 20, EvictOrder::SmallestKeyFirst);
        let mut dir = Directory::new(2);
        let i = e0.iterations();
        // Access iteration 0's batch, then fast-forward the clock far enough
        // that every next use violates 2I − h... simulate by claiming we are
        // at iteration 0 with h close to 2I so the horizon shrinks to ≈ 0.
        let batch: Vec<SampleId> = oracle.upcoming_iteration(0).to_vec();
        for &s in &batch {
            cache.insert(s, 100, 50);
            dir.add(s, 0);
            dir.add(s, 1);
        }
        oracle.advance();
        let h = 2 * i - 1; // horizon = 2I − h = 1 iteration
        let rep = evictor.after_iteration(&mut cache, &mut dir, &oracle, 0, &batch, h, i, 0);
        // With a 1-iteration horizon, any sample reused later than the very
        // next iteration gets evicted by distance.
        let survivors = batch.iter().filter(|&&s| cache.contains(s)).count();
        assert!(
            rep.by_reuse_distance > 0 || survivors < batch.len(),
            "far-future samples must be evicted: {rep:?}"
        );
    }

    #[test]
    fn near_future_samples_get_high_priority_keys() {
        let evictor = ReuseAwareEvictor;
        let (mut oracle, e0, _e1) = tiny_oracle();
        let mut cache = NodeCache::new(1 << 20, EvictOrder::SmallestKeyFirst);
        let mut dir = Directory::new(2);
        let batch: Vec<SampleId> = oracle.upcoming_iteration(0).to_vec();
        for &s in &batch {
            cache.insert(s, 100, 7); // arbitrary initial key
            dir.add(s, 0);
            dir.add(s, 1);
        }
        oracle.advance();
        evictor.after_iteration(
            &mut cache,
            &mut dir,
            &oracle,
            0,
            &batch,
            0,
            e0.iterations(),
            0,
        );
        for &s in &batch {
            if let Some(fut) = oracle.future_of(s) {
                if cache.contains(s) {
                    assert_eq!(
                        cache.key_of(s),
                        Some(ReuseAwareEvictor::priority_key(Some(fut.next_iteration)))
                    );
                }
            }
        }
    }

    #[test]
    fn caching_strategy_oracle_usage() {
        assert!(!CachingStrategy::Lru.uses_oracle());
        assert!(CachingStrategy::PrefetchLru.uses_oracle());
        assert!(CachingStrategy::ReuseAware.uses_oracle());
    }

    #[test]
    fn node_plan_totals() {
        let p = NodePlan {
            preproc_threads: 6,
            load_threads: vec![2, 3],
            prefetch: true,
            prefetch_lookahead: 8,
        };
        assert_eq!(p.total_threads(), 11);
    }
}
