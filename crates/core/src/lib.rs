//! # lobster-core
//!
//! The paper's contribution, implemented as a library:
//!
//! * [`model`] — the holistic performance model of §4.3 (Table 1 notation,
//!   Equations 1–3).
//! * [`regression`] — piece-wise linear regression (segmented least
//!   squares) and the per-sample-size model portfolio of §4.1.
//! * [`preproc`] — the preprocessing throughput model (Observation 3 /
//!   Figure 6) and the thread governor that picks the minimum thread count
//!   reaching peak throughput.
//! * [`algorithm1`] — the heuristic binary-search thread assignment of
//!   §4.4 (Algorithm 1), queue-proportional initial allocation, and budget
//!   normalization.
//! * [`policy`] — the [`policy::LoaderPolicy`] interface, caching
//!   strategies, and the reuse-distance eviction engine of §4.4.
//! * [`policies`] — PyTorch DataLoader, DALI, NoPFS, Lobster, and the two
//!   §5.6 ablations, each as a policy.
//! * [`models`] — the six DNN workloads of §5.1 as `T_train` profiles.
//!
//! The cluster these policies drive is simulated by `lobster-pipeline`
//! (iteration-level executor) and exercised live by `lobster-runtime`
//! (real threads).

pub mod algorithm1;
pub mod model;
pub mod models;
pub mod policies;
pub mod policy;
pub mod preproc;
pub mod regression;

pub use algorithm1::{
    assign_threads, normalize_to_budget, proportional_allocation, Algorithm1Params, SearchOutcome,
};
pub use model::{
    imbalance_gap_secs, load_time_secs, stage_gap_secs, ClusterSpec, ThreadAlloc, TierBreakdown,
};
pub use models::{all_models, model_by_name, ModelProfile};
pub use policies::{
    all_baselines, policy_by_name, DaliPolicy, LobsterOptions, LobsterPolicy, MinIoPolicy,
    NoPfsPolicy, PyTorchPolicy,
};
pub use policy::{
    CachingStrategy, EvictReport, LoaderPolicy, NodePlan, PlanContext, ReuseAwareEvictor,
};
pub use preproc::{PreprocGovernor, PreprocModel};
pub use regression::{ModelPortfolio, PiecewiseLinear, Segment};
