//! # lobster-core
//!
//! The paper's contribution, implemented as a library:
//!
//! * [`model`] — the holistic performance model of §4.3 (Table 1 notation,
//!   Equations 1–3).
//! * [`regression`] — piece-wise linear regression (segmented least
//!   squares) and the per-sample-size model portfolio of §4.1.
//! * [`preproc`] — the preprocessing throughput model (Observation 3 /
//!   Figure 6) and the thread governor that picks the minimum thread count
//!   reaching peak throughput.
//! * [`algorithm1`] — the heuristic binary-search thread assignment of
//!   §4.4 (Algorithm 1), queue-proportional initial allocation, and budget
//!   normalization.
//! * [`elastic`] — the elastic preproc↔loader role controller gluing the
//!   §4.1 knee and Algorithm 1 into one per-iteration decision, shared by
//!   the live engine and both simulators.
//! * [`policy`] — the [`policy::LoaderPolicy`] interface, caching
//!   strategies, and the reuse-distance eviction engine of §4.4.
//! * [`policies`] — PyTorch DataLoader, DALI, NoPFS, Lobster, and the two
//!   §5.6 ablations, each as a policy.
//! * [`models`] — the six DNN workloads of §5.1 as `T_train` profiles.
//!
//! The cluster these policies drive is simulated by `lobster-pipeline`
//! (iteration-level executor) and exercised live by `lobster-runtime`
//! (real threads).
//!
//! ## Similarly named module pairs
//!
//! Two pairs of modules have deceptively close names; the split is
//! deliberate and each name has one canonical meaning:
//!
//! * [`model`] (singular) is the *performance* model — the Table 1
//!   equations predicting load/preprocess/train timing. [`models`]
//!   (plural) is the catalogue of *DNN workloads* (ResNet-50 & co.) used
//!   as `T_train` profiles in the evaluation. They share no types.
//! * [`policy`] (singular) defines the *interface*: the
//!   [`policy::LoaderPolicy`] trait, [`policy::NodePlan`],
//!   [`policy::PlanContext`], caching strategies, and the eviction engine.
//!   [`policies`] (plural) holds the *implementations*: PyTorch, DALI,
//!   NoPFS, MinIO, Lobster and its ablations.
//!
//! Prefer the crate-root re-exports below (`lobster_core::LoaderPolicy`,
//! `lobster_core::LobsterPolicy`, …) over spelling out the module paths;
//! each item is re-exported from exactly one module, so the root is
//! unambiguous even where the module names are not.

pub mod algorithm1;
pub mod elastic;
pub mod model;
pub mod models;
pub mod policies;
pub mod policy;
pub mod preproc;
pub mod regression;

pub use algorithm1::{
    assign_threads, assign_threads_detailed, normalize_to_budget, proportional_allocation,
    Algorithm1Params, SearchOutcome,
};
pub use elastic::{
    knee_from_points, throughput_factor, ElasticController, ElasticDecision, ElasticObservation,
    ElasticParams, Role, WorkEstimate,
};
pub use model::{
    imbalance_gap_secs, load_time_secs, stage_gap_secs, ClusterSpec, ThreadAlloc, TierBreakdown,
};
pub use models::{all_models, model_by_name, ModelProfile};
pub use policies::{
    all_baselines, policy_by_name, DaliPolicy, LobsterOptions, LobsterPolicy, MinIoPolicy,
    NoPfsPolicy, PyTorchPolicy,
};
pub use policy::{
    CachingStrategy, EvictCause, EvictReport, LoaderPolicy, NodePlan, PlanContext, PlanDecision,
    ReuseAwareEvictor,
};
pub use preproc::{PreprocGovernor, PreprocModel};
pub use regression::{ModelPortfolio, PiecewiseLinear, Segment};
