//! Piece-wise linear regression (§4.1).
//!
//! Lobster predicts preprocessing performance with "a piece-wise linear
//! regression model that takes the number of threads as input and predicts
//! the execution time of processing one training sample", keeping "a
//! portfolio of models, each of which corresponds to a training sample
//! size". This module implements both: optimal segmented least squares via
//! the classic Bellman dynamic program, and the closest-size portfolio
//! lookup.

use serde::{Deserialize, Serialize};

/// One linear segment `y = a·x + b` valid on `[x_lo, x_hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    pub x_lo: f64,
    pub x_hi: f64,
    pub slope: f64,
    pub intercept: f64,
}

impl Segment {
    pub fn eval(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// A fitted piecewise-linear model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PiecewiseLinear {
    segments: Vec<Segment>,
    /// Total sum of squared residuals of the fit.
    pub sse: f64,
}

/// Ordinary least squares over a point slice; returns `(slope, intercept,
/// sse)`. A single point yields a flat line through it.
fn fit_line(points: &[(f64, f64)]) -> (f64, f64, f64) {
    let n = points.len() as f64;
    if points.len() == 1 {
        return (0.0, points[0].1, 0.0);
    }
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    let (a, b) = if denom.abs() < 1e-12 {
        // All x equal: flat line through the mean.
        (0.0, sy / n)
    } else {
        let a = (n * sxy - sx * sy) / denom;
        (a, (sy - a * sx) / n)
    };
    let sse: f64 = points
        .iter()
        .map(|&(x, y)| (y - (a * x + b)) * (y - (a * x + b)))
        .sum();
    (a, b, sse)
}

impl PiecewiseLinear {
    /// Fit by segmented least squares: minimizes
    /// `Σ segment SSE + penalty × #segments` over all segmentations
    /// (Bellman's O(n²) DP with precomputed segment fits). Points must be
    /// sorted by x (they are thread counts in practice). `penalty > 0`
    /// controls the bias toward fewer segments.
    ///
    /// ```
    /// use lobster_core::PiecewiseLinear;
    /// // Per-sample time falls to a knee at 4 threads, then flattens.
    /// let pts: Vec<(f64, f64)> = (1..=8)
    ///     .map(|t| (t as f64, if t <= 4 { 8.0 / t as f64 } else { 2.0 }))
    ///     .collect();
    /// let model = PiecewiseLinear::fit(&pts, 0.1);
    /// let (knee, _) = model.argmin_int(1, 8);
    /// assert!((3..=5).contains(&knee));
    /// ```
    pub fn fit(points: &[(f64, f64)], penalty: f64) -> PiecewiseLinear {
        assert!(!points.is_empty(), "cannot fit zero points");
        assert!(
            penalty > 0.0,
            "penalty must be positive (0 ⇒ one segment per pair)"
        );
        for w in points.windows(2) {
            assert!(w[0].0 <= w[1].0, "points must be sorted by x");
        }
        let n = points.len();
        // err[i][j] = SSE of one line through points[i..=j].
        let mut err = vec![vec![0.0f64; n]; n];
        let mut coef = vec![vec![(0.0f64, 0.0f64); n]; n];
        for i in 0..n {
            for j in i..n {
                let (a, b, sse) = fit_line(&points[i..=j]);
                err[i][j] = sse;
                coef[i][j] = (a, b);
            }
        }
        // opt[j] = best cost covering points[0..=j-1]; back[j] = start of the
        // last segment.
        let mut opt = vec![0.0f64; n + 1];
        let mut back = vec![0usize; n + 1];
        for j in 1..=n {
            let mut best = f64::INFINITY;
            let mut arg = 0;
            for i in 0..j {
                let c = opt[i] + err[i][j - 1] + penalty;
                if c < best {
                    best = c;
                    arg = i;
                }
            }
            opt[j] = best;
            back[j] = arg;
        }
        // Reconstruct.
        let mut segments = Vec::new();
        let mut sse = 0.0;
        let mut j = n;
        while j > 0 {
            let i = back[j];
            let (a, b) = coef[i][j - 1];
            segments.push(Segment {
                x_lo: points[i].0,
                x_hi: points[j - 1].0,
                slope: a,
                intercept: b,
            });
            sse += err[i][j - 1];
            j = i;
        }
        segments.reverse();
        PiecewiseLinear { segments, sse }
    }

    /// Number of fitted segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// The fitted segments, in x order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Predict `y` at `x`. Inside a segment: that segment's line. Between
    /// segments / outside the fitted range: nearest segment extended.
    pub fn predict(&self, x: f64) -> f64 {
        let first = &self.segments[0];
        if x <= first.x_lo {
            return first.eval(x);
        }
        for s in &self.segments {
            if x <= s.x_hi {
                return s.eval(x);
            }
        }
        self.segments.last().unwrap().eval(x)
    }

    /// Argmin of the prediction over integer x in `[lo, hi]`, ties broken
    /// toward smaller x. (Used to find the thread count minimizing
    /// per-sample time, i.e. the throughput peak.)
    pub fn argmin_int(&self, lo: u32, hi: u32) -> (u32, f64) {
        assert!(lo <= hi);
        let mut best = (lo, self.predict(lo as f64));
        for x in lo + 1..=hi {
            let y = self.predict(x as f64);
            if y < best.1 - 1e-12 {
                best = (x, y);
            }
        }
        best
    }
}

/// The per-sample-size model portfolio of §4.1: "if the sample size does not
/// have a corresponding model in the portfolio, we choose the model whose
/// sample size is closest".
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ModelPortfolio {
    /// `(sample_bytes, model)` sorted by size.
    entries: Vec<(u64, PiecewiseLinear)>,
}

impl ModelPortfolio {
    pub fn new() -> ModelPortfolio {
        ModelPortfolio::default()
    }

    /// Register a model for a sample size.
    pub fn insert(&mut self, sample_bytes: u64, model: PiecewiseLinear) {
        match self.entries.binary_search_by_key(&sample_bytes, |e| e.0) {
            Ok(i) => self.entries[i].1 = model,
            Err(i) => self.entries.insert(i, (sample_bytes, model)),
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The model whose sample size is closest to `sample_bytes` (ties go to
    /// the smaller size). `None` on an empty portfolio.
    pub fn closest(&self, sample_bytes: u64) -> Option<&PiecewiseLinear> {
        if self.entries.is_empty() {
            return None;
        }
        let i = match self.entries.binary_search_by_key(&sample_bytes, |e| e.0) {
            Ok(i) => i,
            Err(i) => {
                if i == 0 {
                    0
                } else if i == self.entries.len() {
                    i - 1
                } else {
                    let below = sample_bytes - self.entries[i - 1].0;
                    let above = self.entries[i].0 - sample_bytes;
                    if below <= above {
                        i - 1
                    } else {
                        i
                    }
                }
            }
        };
        Some(&self.entries[i].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_line_data_fits_one_segment() {
        let pts: Vec<(f64, f64)> = (1..=10).map(|x| (x as f64, 2.0 * x as f64 + 1.0)).collect();
        let m = PiecewiseLinear::fit(&pts, 0.1);
        assert_eq!(m.num_segments(), 1);
        assert!(m.sse < 1e-9);
        assert!((m.predict(5.0) - 11.0).abs() < 1e-9);
        // Extrapolation continues the line.
        assert!((m.predict(20.0) - 41.0).abs() < 1e-9);
    }

    #[test]
    fn elbow_data_fits_two_segments() {
        // y falls steeply then flattens: the Figure 6 shape (per-sample time
        // vs threads).
        let mut pts = Vec::new();
        for x in 1..=6 {
            pts.push((x as f64, 12.0 - 2.0 * x as f64)); // 10, 8, 6, 4, 2, 0
        }
        for x in 7..=12 {
            pts.push((x as f64, 0.0));
        }
        let m = PiecewiseLinear::fit(&pts, 0.5);
        assert_eq!(m.num_segments(), 2, "segments: {:?}", m.segments());
        assert!(m.sse < 1e-9);
        assert!((m.predict(2.0) - 8.0).abs() < 1e-6);
        assert!(m.predict(10.0).abs() < 1e-6);
    }

    #[test]
    fn penalty_trades_segments_for_fit() {
        // Noisy quadratic: high penalty → few segments, low penalty → many.
        let pts: Vec<(f64, f64)> = (1..=20)
            .map(|x| (x as f64, (x as f64 - 10.0).powi(2)))
            .collect();
        let coarse = PiecewiseLinear::fit(&pts, 1e6);
        let fine = PiecewiseLinear::fit(&pts, 1.0);
        assert!(coarse.num_segments() <= fine.num_segments());
        assert!(coarse.sse >= fine.sse);
    }

    #[test]
    fn argmin_finds_the_knee() {
        // Per-sample time: decreasing to x=6, then slightly increasing —
        // exactly Observation 3's shape. The governor must pick 6.
        let mut pts = Vec::new();
        for x in 1..=6 {
            pts.push((x as f64, 10.0 / x as f64));
        }
        for x in 7..=16 {
            pts.push((x as f64, 10.0 / 6.0 + 0.05 * (x - 6) as f64));
        }
        let m = PiecewiseLinear::fit(&pts, 0.05);
        let (x, _) = m.argmin_int(1, 16);
        assert!((5..=7).contains(&x), "knee at {x}, expected ≈6");
    }

    #[test]
    fn flat_data_fits_flat_line() {
        let pts: Vec<(f64, f64)> = (1..=5).map(|x| (x as f64, 3.0)).collect();
        let m = PiecewiseLinear::fit(&pts, 0.1);
        assert_eq!(m.num_segments(), 1);
        assert!((m.predict(100.0) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn single_point_fit_is_constant() {
        let m = PiecewiseLinear::fit(&[(4.0, 7.0)], 1.0);
        assert_eq!(m.predict(1.0), 7.0);
        assert_eq!(m.predict(9.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_points_panic() {
        PiecewiseLinear::fit(&[(2.0, 1.0), (1.0, 1.0)], 1.0);
    }

    #[test]
    fn portfolio_picks_closest_size() {
        let mut p = ModelPortfolio::new();
        let flat = |v: f64| PiecewiseLinear::fit(&[(1.0, v), (2.0, v)], 1.0);
        p.insert(10_000, flat(1.0));
        p.insert(100_000, flat(2.0));
        p.insert(1_000_000, flat(3.0));
        assert_eq!(p.closest(10_000).unwrap().predict(1.0), 1.0);
        assert_eq!(p.closest(40_000).unwrap().predict(1.0), 1.0);
        assert_eq!(p.closest(90_000).unwrap().predict(1.0), 2.0);
        assert_eq!(p.closest(5_000_000).unwrap().predict(1.0), 3.0);
        assert_eq!(p.closest(1).unwrap().predict(1.0), 1.0);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn portfolio_insert_replaces_same_size() {
        let mut p = ModelPortfolio::new();
        let flat = |v: f64| PiecewiseLinear::fit(&[(1.0, v), (2.0, v)], 1.0);
        p.insert(100, flat(1.0));
        p.insert(100, flat(9.0));
        assert_eq!(p.len(), 1);
        assert_eq!(p.closest(100).unwrap().predict(1.5), 9.0);
    }

    #[test]
    fn empty_portfolio_returns_none() {
        assert!(ModelPortfolio::new().closest(5).is_none());
    }
}
