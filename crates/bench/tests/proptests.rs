//! Property tests for the harness helpers the figure binaries depend on.

use lobster_bench::{scaled_cache_bytes, BASELINE_NAMES};
use lobster_core::policy_by_name;
use proptest::prelude::*;

#[test]
fn every_baseline_name_resolves_to_a_policy() {
    for name in BASELINE_NAMES {
        assert!(
            policy_by_name(name).is_some(),
            "baseline {name:?} missing from the policy registry"
        );
    }
}

proptest! {
    /// Cache scaling divides the paper's 40 GiB exactly, never rounds up,
    /// and treats scale 0 as 1 (no division by zero, no zero-sized cache).
    #[test]
    fn scaled_cache_bytes_is_monotone_and_safe(scale in 0u32..100_000) {
        let bytes = scaled_cache_bytes(scale);
        prop_assert!(bytes > 0);
        prop_assert!(bytes <= 40u64 << 30);
        prop_assert_eq!(bytes, (40u64 << 30) / u64::from(scale.max(1)));
        prop_assert!(scaled_cache_bytes(scale.saturating_add(1)) <= bytes);
    }
}
