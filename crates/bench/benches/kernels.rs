//! Criterion micro-benchmarks for the hot kernels every experiment leans
//! on: epoch shuffling, oracle construction/advance, cache insert/evict,
//! the Algorithm 1 search, piecewise regression fitting, and the
//! processor-sharing link.

use criterion::{criterion_group, criterion_main, Criterion};
use lobster_cache::{EvictOrder, NodeCache};
use lobster_core::{assign_threads, Algorithm1Params, PiecewiseLinear};
use lobster_data::{Dataset, EpochSchedule, NodeOracle, SampleId, ScheduleSpec, SizeDistribution};
use lobster_sim::{PsLink, SimDuration, SimTime, Xoshiro256StarStar};
use std::hint::black_box;

fn bench_shuffle(c: &mut Criterion) {
    let spec = ScheduleSpec {
        nodes: 8,
        gpus_per_node: 8,
        batch_size: 32,
        dataset_len: 100_000,
        seed: 42,
    };
    c.bench_function("schedule/generate_100k", |b| {
        let mut epoch = 0u64;
        b.iter(|| {
            epoch += 1;
            black_box(EpochSchedule::generate(spec, epoch))
        })
    });
}

fn bench_oracle(c: &mut Criterion) {
    let spec = ScheduleSpec {
        nodes: 8,
        gpus_per_node: 8,
        batch_size: 32,
        dataset_len: 100_000,
        seed: 42,
    };
    let e0 = EpochSchedule::generate(spec, 0);
    let e1 = EpochSchedule::generate(spec, 1);
    c.bench_function("oracle/build_2epoch_window", |b| {
        b.iter(|| black_box(NodeOracle::build(0, &[&e0, &e1], 0)))
    });
    c.bench_function("oracle/advance_full_epoch", |b| {
        b.iter(|| {
            let mut o = NodeOracle::build(0, &[&e0, &e1], 0);
            for _ in 0..e0.iterations() {
                o.advance();
            }
            black_box(o.current_iteration())
        })
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache/insert_evict_churn_10k", |b| {
        b.iter(|| {
            let mut cache = NodeCache::new(1_000_000, EvictOrder::SmallestKeyFirst);
            for i in 0..10_000u32 {
                cache.insert(SampleId(i), 1_000, u64::MAX - i as u64);
            }
            black_box(cache.len())
        })
    });
    c.bench_function("cache/touch_hot_set", |b| {
        let mut cache = NodeCache::new(10_000_000, EvictOrder::SmallestKeyFirst);
        for i in 0..10_000u32 {
            cache.insert(SampleId(i), 1_000, i as u64);
        }
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            cache.set_key(SampleId((k % 10_000) as u32), k);
        })
    });
}

fn bench_algorithm1(c: &mut Criterion) {
    let params = Algorithm1Params::new(0.005, 32);
    c.bench_function("algorithm1/assign_8_gpus", |b| {
        let work = [720.0, 180.0, 3600.0, 90.0, 1500.0, 400.0, 2000.0, 60.0];
        b.iter(|| {
            black_box(assign_threads(&params, &[4; 8], |g, k| {
                let load = if k == 0 {
                    f64::INFINITY
                } else {
                    work[g] / k as f64
                };
                (200.0 - (load + 20.0)) / 1e3
            }))
        })
    });
}

fn bench_regression(c: &mut Criterion) {
    let pts: Vec<(f64, f64)> = (1..=32)
        .map(|x| {
            let x = x as f64;
            (
                x,
                if x <= 6.0 {
                    10.0 / x
                } else {
                    10.0 / 6.0 + 0.05 * (x - 6.0)
                },
            )
        })
        .collect();
    c.bench_function("regression/segmented_fit_32pts", |b| {
        b.iter(|| black_box(PiecewiseLinear::fit(&pts, 0.05)))
    });
}

fn bench_pslink(c: &mut Criterion) {
    c.bench_function("pslink/churn_64_flows", |b| {
        b.iter(|| {
            let mut link = PsLink::new(1e9);
            let mut now = SimTime::ZERO;
            for i in 0..64 {
                link.start_flow(now, 1e6 * (i + 1) as f64);
                now += SimDuration::from_micros(100);
            }
            while link.active() > 0 {
                let t = link.next_completion(now).unwrap();
                now = t;
                link.complete(now);
            }
            black_box(link.delivered_bytes)
        })
    });
}

fn bench_dataset(c: &mut Criterion) {
    c.bench_function("dataset/generate_100k_lognormal", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(Dataset::generate(
                "bench",
                100_000,
                SizeDistribution::LogNormal {
                    mu: (90_000f64).ln(),
                    sigma: 0.55,
                    min: 4_096,
                    max: 4_000_000,
                },
                seed,
            ))
        })
    });
    c.bench_function("rng/xoshiro_next_u64", |b| {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        b.iter(|| black_box(rng.next_u64()))
    });
}

fn bench_role_flip(c: &mut Criterion) {
    use lobster_core::elastic::{ElasticController, ElasticObservation, ElasticParams};

    // Steady state: fit and loader plan memoized, no role changes — the
    // per-iteration cost every elastic run pays on the tick path.
    c.bench_function("elastic/tick_no_flip", |b| {
        let mut ctl = ElasticController::new(ElasticParams::for_pool(64, 8), 16);
        let mut t = 0u64;
        ctl.tick(&ElasticObservation::for_iteration(t, 16_384.0, 1, 32, 2e-4));
        b.iter(|| {
            t += 1;
            let obs = ElasticObservation::for_iteration(t, 16_384.0, 1, 32, 2e-4);
            black_box(ctl.tick(&obs).preproc_after)
        })
    });

    // Forced flip every tick: churn swaps a role pair and rebuilds the
    // flip list, the upper bound on controller work at a boundary. The
    // ISSUE budget is < 5 µs over the no-flip path.
    c.bench_function("elastic/tick_with_flip", |b| {
        let mut params = ElasticParams::for_pool(64, 8);
        params.force_churn = true;
        params.dwell_ticks = 0;
        let mut ctl = ElasticController::new(params, 16);
        let mut t = 0u64;
        ctl.tick(&ElasticObservation::for_iteration(t, 16_384.0, 1, 32, 2e-4));
        b.iter(|| {
            t += 1;
            let obs = ElasticObservation::for_iteration(t, 16_384.0, 1, 32, 2e-4);
            black_box(ctl.tick(&obs).flipped.len())
        })
    });

    // Workload swing: alternate the work factor so every other tick
    // invalidates the regression memo and re-plans the loader split.
    c.bench_function("elastic/tick_refit_swing", |b| {
        let mut ctl = ElasticController::new(ElasticParams::for_pool(64, 8), 16);
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            let wf = if t.is_multiple_of(2) { 1 } else { 8 };
            let obs = ElasticObservation::for_iteration(t, 16_384.0, wf, 32, 2e-4);
            black_box(ctl.tick(&obs).preproc_after)
        })
    });
}

criterion_group!(
    benches,
    bench_shuffle,
    bench_oracle,
    bench_cache,
    bench_algorithm1,
    bench_regression,
    bench_pslink,
    bench_dataset,
    bench_role_flip
);
criterion_main!(benches);
