//! Overhead of the observability layer on the engine's hottest path.
//!
//! The fetch-span site — `ins.trace(..)` closure + counter increment +
//! `now_us` — runs once per fetched batch. The contract (DESIGN.md §9) is
//! that a fully-disabled [`Instruments`] bundle costs one branch per site:
//! the `disabled` rows here must be in the low single-digit nanoseconds,
//! orders of magnitude below the `enabled` rows. `tests/zero_cost.rs`
//! asserts the stronger property that the disabled path never allocates.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lobster_metrics::{GpuIterSample, Instruments, TraceEvent};

fn fetch_span_site(ins: &Instruments, counter: &lobster_metrics::Counter) {
    let ts = ins.now_us();
    ins.trace(|| {
        TraceEvent::span("fetch", "io", ts, 10)
            .pid(0)
            .tid(black_box(3))
            .arg_u("bytes", black_box(4096))
            .arg_s("tier", "cache")
    });
    counter.inc();
}

fn bench_fetch_span_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("fetch_span_path");
    let disabled = Instruments::disabled();
    let dctr = disabled.counter("engine.fetches");
    g.bench_function("disabled", |b| b.iter(|| fetch_span_site(&disabled, &dctr)));
    let enabled = Instruments::enabled();
    let ectr = enabled.counter("engine.fetches");
    g.bench_function("enabled", |b| b.iter(|| fetch_span_site(&enabled, &ectr)));
    g.finish();
}

fn bench_observe_iteration(c: &mut Criterion) {
    let mut g = c.benchmark_group("observe_iteration");
    let samples = || {
        (0..8u32)
            .map(|gpu| GpuIterSample {
                node: 0,
                gpu,
                iter_s: 0.1 + f64::from(gpu) * 0.001,
                stages: Default::default(),
            })
            .collect::<Vec<_>>()
    };
    let disabled = Instruments::disabled();
    g.bench_function("disabled", |b| {
        b.iter(|| disabled.observe_iteration(black_box(7), 0, samples))
    });
    let enabled = Instruments::enabled();
    let mut iter = 0u64;
    g.bench_function("enabled", |b| {
        b.iter(|| {
            iter += 1;
            enabled.observe_iteration(black_box(iter), 0, samples)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fetch_span_path, bench_observe_iteration);
criterion_main!(benches);
