//! Criterion benchmarks of the end-to-end machinery: one simulated epoch
//! per loader policy (the unit of work behind every figure), plus one run
//! of the live multi-threaded engine. These measure the *reproduction's*
//! cost, complementing the figure binaries that measure the *simulated
//! cluster's* behaviour.

use criterion::{criterion_group, criterion_main, Criterion};
use lobster_core::policy_by_name;
use lobster_data::{Dataset, SizeDistribution};
use lobster_pipeline::{ClusterSim, ConfigBuilder, ExperimentConfig};
use lobster_runtime::{run as engine_run, EngineConfig, SyntheticStore};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn sim_config(seed: u64) -> ExperimentConfig {
    let dataset = Dataset::generate(
        "bench-epoch",
        8_192,
        SizeDistribution::Constant { bytes: 100_000 },
        seed,
    );
    let cache = dataset.total_bytes() / 4;
    ConfigBuilder::new()
        .nodes(2)
        .gpus_per_node(4)
        .batch_size(16)
        .cache_bytes(cache)
        .epochs(2)
        .seed(seed)
        .dataset(dataset)
        .build()
}

fn bench_policy_epochs(c: &mut Criterion) {
    let mut group = c.benchmark_group("executor");
    for name in [
        "pytorch",
        "dali",
        "nopfs",
        "lobster",
        "lobster_th",
        "lobster_evict",
    ] {
        group.bench_function(format!("two_epochs/{name}"), |b| {
            b.iter(|| {
                let sim = ClusterSim::new(sim_config(42), policy_by_name(name).unwrap());
                black_box(sim.run().0.total_wall_s)
            })
        });
    }
    group.finish();
}

fn bench_live_engine(c: &mut Criterion) {
    c.bench_function("runtime/engine_128_samples", |b| {
        b.iter(|| {
            let ds = Dataset::generate(
                "bench-engine",
                128,
                SizeDistribution::Constant { bytes: 4_000 },
                3,
            );
            let store = Arc::new(SyntheticStore::new(ds, Duration::ZERO, 0.0));
            let cfg = EngineConfig {
                consumers: 2,
                batch_size: 8,
                loader_threads: 2,
                preproc_threads: 2,
                cache_bytes: 16 << 20,
                work_factor: 1,
                train: Duration::from_micros(50),
                adaptive: true,
                epochs: 1,
                seed: 3,
                retry: Default::default(),
                ..EngineConfig::default()
            };
            black_box(engine_run(store, cfg).delivered)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_policy_epochs, bench_live_engine
}
criterion_main!(benches);
