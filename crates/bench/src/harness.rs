//! Shared experiment harness: scaled paper configurations and sweep runners.
//!
//! The paper's full datasets (135 GB / 1.3 TB) and its 8×8-GPU testbed do
//! not fit this reproduction environment, so every experiment runs at a
//! documented *scale factor*: dataset sample count **and** per-node cache
//! size are divided by the same factor, which preserves every ratio the
//! policies observe (cache-to-dataset fraction, tier hit probabilities,
//! per-batch byte volumes are unchanged). EXPERIMENTS.md records the scale
//! used for each figure.

use lobster_core::{LoaderPolicy, ModelProfile};
use lobster_data::{Dataset, WorkloadSpec};
use lobster_metrics::{Instruments, TelemetryLine};
use lobster_pipeline::{ClusterSim, ConfigBuilder, ExperimentConfig, RunReport};
use lobster_storage::FaultSpec;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Which paper dataset an experiment uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetKind {
    ImageNet1k,
    ImageNet22k,
}

impl DatasetKind {
    pub fn label(self) -> &'static str {
        match self {
            DatasetKind::ImageNet1k => "imagenet-1k",
            DatasetKind::ImageNet22k => "imagenet-22k",
        }
    }

    /// Materialize the dataset at `1/scale` of the paper's sample count.
    pub fn dataset(self, scale: u32, seed: u64) -> Dataset {
        match self {
            DatasetKind::ImageNet1k => lobster_data::imagenet_1k(scale, seed),
            DatasetKind::ImageNet22k => lobster_data::imagenet_22k(scale, seed),
        }
    }
}

/// Scaled experiment parameters shared by most figures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenchParams {
    /// Dataset + cache scale divisor (1 = paper scale).
    pub scale: u32,
    /// Epochs to simulate (epoch 0 is warm-up and excluded from means).
    pub epochs: u64,
    /// Base seed.
    pub seed: u64,
}

impl Default for BenchParams {
    fn default() -> Self {
        BenchParams {
            scale: 16,
            epochs: 4,
            seed: 42,
        }
    }
}

/// The paper's 40 GB node cache, scaled.
pub fn scaled_cache_bytes(scale: u32) -> u64 {
    (40u64 << 30) / scale.max(1) as u64
}

/// Build the standard experiment config for `nodes`×8 GPUs on `kind`.
pub fn paper_config(
    kind: DatasetKind,
    nodes: usize,
    model: ModelProfile,
    params: BenchParams,
) -> ExperimentConfig {
    ConfigBuilder::new()
        .nodes(nodes)
        .gpus_per_node(8)
        .cache_bytes(scaled_cache_bytes(params.scale))
        .pipeline_threads(32)
        .batch_size(32)
        .model(model)
        .epochs(params.epochs)
        .seed(params.seed)
        .dataset(kind.dataset(params.scale, params.seed))
        .build()
}

/// Run one policy on one config.
pub fn run_policy(cfg: ExperimentConfig, policy: Box<dyn LoaderPolicy>) -> RunReport {
    run_policy_with(cfg, policy, &Instruments::disabled())
}

/// Run one policy with an observability bundle attached; trace events,
/// metrics, and controller decisions from the run land in `ins`.
pub fn run_policy_with(
    cfg: ExperimentConfig,
    policy: Box<dyn LoaderPolicy>,
    ins: &Instruments,
) -> RunReport {
    ClusterSim::new(cfg, policy)
        .with_instruments(ins.clone())
        .run()
        .0
}

/// A labelled comparison row: one policy's steady-state metrics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyRow {
    pub policy: String,
    pub mean_epoch_s: f64,
    pub hit_ratio: f64,
    pub gpu_utilization: f64,
    pub imbalance_fraction: f64,
    /// Speedup of this policy relative to the row named `pytorch`
    /// (filled by [`compare_policies`]).
    pub speedup_vs_pytorch: f64,
}

/// Run a set of policies on identical configs and tabulate steady-state
/// metrics with speedups relative to the PyTorch baseline.
pub fn compare_policies(
    make_cfg: impl Fn() -> ExperimentConfig,
    policy_names: &[&str],
) -> Vec<PolicyRow> {
    compare_policies_with(make_cfg, policy_names, &Instruments::disabled())
}

/// As [`compare_policies`], with an observability bundle attached to every
/// run (all policies share one bundle; the trace distinguishes them by
/// time order).
pub fn compare_policies_with(
    make_cfg: impl Fn() -> ExperimentConfig,
    policy_names: &[&str],
    ins: &Instruments,
) -> Vec<PolicyRow> {
    let mut rows: Vec<PolicyRow> = policy_names
        .iter()
        .map(|&name| {
            let policy = lobster_core::policy_by_name(name)
                .unwrap_or_else(|| panic!("unknown policy {name}"));
            let report = run_policy_with(make_cfg(), policy, ins);
            PolicyRow {
                policy: name.to_string(),
                mean_epoch_s: report.mean_epoch_s(),
                hit_ratio: report.mean_hit_ratio(),
                gpu_utilization: report.mean_gpu_utilization(),
                imbalance_fraction: report.imbalance_fraction(),
                speedup_vs_pytorch: 1.0,
            }
        })
        .collect();
    if let Some(base) = rows
        .iter()
        .find(|r| r.policy == "pytorch")
        .map(|r| r.mean_epoch_s)
    {
        for r in &mut rows {
            r.speedup_vs_pytorch = base / r.mean_epoch_s;
        }
    }
    rows
}

/// The four systems of §5.1, in presentation order.
pub const BASELINE_NAMES: [&str; 4] = ["pytorch", "dali", "nopfs", "lobster"];

/// Minimal CLI parsing shared by the figure binaries: `--scale N`,
/// `--epochs N`, `--seed N` override the defaults.
pub fn params_from_args(default: BenchParams) -> BenchParams {
    let mut params = default;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < args.len() {
        let value = &args[i + 1];
        match args[i].as_str() {
            "--scale" => params.scale = value.parse().expect("--scale takes a u32"),
            "--epochs" => params.epochs = value.parse().expect("--epochs takes a u64"),
            "--seed" => params.seed = value.parse().expect("--seed takes a u64"),
            _ => {
                i += 1;
                continue;
            }
        }
        i += 2;
    }
    params
}

/// Fault-injection CLI: `--faults <spec>` parses a seeded fault
/// specification (see [`FaultSpec::parse`]), e.g.
///
/// ```text
/// --faults transient=0.05,corrupt=0.01,stall=0.02,stall-ms=50,seed=9,slow=0:step:2.5:40
/// ```
///
/// Returns `default` (typically [`FaultSpec::default`], a no-op) when the
/// flag is absent; an unparsable spec is a usage error (exit 2).
pub fn faults_from_args(default: FaultSpec) -> FaultSpec {
    let args: Vec<String> = std::env::args().collect();
    if let Some(w) = args.windows(2).find(|w| w[0] == "--faults") {
        match FaultSpec::parse(&w[1]) {
            Ok(spec) => return spec,
            Err(e) => {
                eprintln!("error: invalid --faults spec: {e}");
                std::process::exit(2);
            }
        }
    }
    if args.last().map(String::as_str) == Some("--faults") {
        eprintln!("error: --faults requires a spec argument");
        std::process::exit(2);
    }
    default
}

/// Workload CLI: `--workload <family>[:<k>=<v>,...]` parses a seeded
/// workload scenario (see [`WorkloadSpec::parse`]), e.g.
///
/// ```text
/// --workload zipf:s=1.3,samples=1024
/// --workload bimodal:slow-frac=0.25,slow-cost=8
/// ```
///
/// Families: `zipf`, `heavy-tail`, `bimodal`, `growing`, `drift`. Returns
/// `None` when the flag is absent (run the classic uniform epoch-shuffle
/// workload); an unparsable spec is a usage error (exit 2).
pub fn workload_from_args() -> Option<WorkloadSpec> {
    let args: Vec<String> = std::env::args().collect();
    if let Some(w) = args.windows(2).find(|w| w[0] == "--workload") {
        match WorkloadSpec::parse(&w[1]) {
            Ok(spec) => return Some(spec),
            Err(e) => {
                eprintln!("error: invalid --workload spec: {e}");
                std::process::exit(2);
            }
        }
    }
    if args.last().map(String::as_str) == Some("--workload") {
        eprintln!("error: --workload requires a family argument");
        std::process::exit(2);
    }
    None
}

/// Observability CLI: `--trace-out <path>` turns instrumentation on and
/// names the Chrome trace-event JSON output file. Without the flag the
/// returned bundle is disabled and every instrumentation site is a no-op.
pub fn observability_from_args() -> (Instruments, Option<PathBuf>) {
    let args: Vec<String> = std::env::args().collect();
    let path = args
        .windows(2)
        .find(|w| w[0] == "--trace-out")
        .map(|w| PathBuf::from(&w[1]));
    if path.is_none() && args.iter().any(|a| a == "--trace-out") {
        eprintln!("error: --trace-out requires a path argument");
        std::process::exit(2);
    }
    let ins = if path.is_some() {
        Instruments::enabled()
    } else {
        Instruments::disabled()
    };
    (ins, path)
}

/// Sidecar path `<trace>.metrics.json` next to a trace output file.
pub fn metrics_sidecar(trace_out: &Path) -> PathBuf {
    PathBuf::from(format!("{}.metrics.json", trace_out.display()))
}

/// Sidecar path `<trace>.decisions.jsonl` next to a trace output file.
pub fn decisions_sidecar(trace_out: &Path) -> PathBuf {
    PathBuf::from(format!("{}.decisions.jsonl", trace_out.display()))
}

/// Sidecar path `<trace>.telemetry.jsonl` next to a trace output file:
/// the per-tick frame / anomaly / SLO stream `lobster_top` tails and
/// `lobster_doctor --telemetry` joins into its diagnosis.
pub fn telemetry_sidecar(trace_out: &Path) -> PathBuf {
    PathBuf::from(format!("{}.telemetry.jsonl", trace_out.display()))
}

/// End-of-run observability output: print the metrics snapshot, the
/// decision count, and the online analyzer's conclusions, then write the
/// Chrome trace (Perfetto-viewable) to `trace_out` if given, plus the
/// sidecars `lobster_doctor` ingests alongside the trace:
/// `<trace>.metrics.json` (the snapshot), `<trace>.decisions.jsonl`
/// (the controller decision log), and — when the run recorded telemetry
/// ticks — `<trace>.telemetry.jsonl` (retained frames and anomalies, the
/// same line format as a live `--telemetry-out` stream). A disabled
/// bundle prints and writes nothing.
pub fn write_observability(ins: &Instruments, trace_out: Option<&Path>) {
    if !ins.is_enabled() {
        return;
    }
    let snapshot = ins.metrics_snapshot();
    println!("\n-- metrics snapshot --");
    print!("{}", snapshot.to_text());
    println!("controller decisions logged: {}", ins.decisions().len());
    if let Some(report) = ins.analysis_report().filter(|r| r.iterations > 0) {
        println!("-- bottleneck analysis --");
        println!(
            "iterations {}  gap first {:.1}ms  ewma {:.1}ms  max {:.1}ms",
            report.iterations,
            report.first_gap_s * 1e3,
            report.ewma_gap_s * 1e3,
            report.max_gap_s * 1e3
        );
        if let Some(cat) = report.dominant_category() {
            println!("dominant pipeline bottleneck: {}", cat.label());
        }
        if let Some((node, gpu)) = report.top_straggler() {
            println!(
                "top straggler: node {node} gpu {gpu} ({} episode(s) flagged)",
                report.episodes.len()
            );
        }
        if let Some(ratio) = report.mean_solver_gap_ratio() {
            println!("solver efficacy: mean gap_after/gap_before = {ratio:.2}");
        }
    }
    if ins.trace_dropped() > 0 {
        println!(
            "trace events dropped (buffer full): {}",
            ins.trace_dropped()
        );
    }
    if let Some(path) = trace_out {
        let mut outputs = vec![(
            path.to_path_buf(),
            ins.chrome_trace_json().expect("enabled bundle has a trace"),
        )];
        outputs.push((metrics_sidecar(path), snapshot.to_json()));
        if let Some(decisions) = ins.decisions_jsonl() {
            outputs.push((decisions_sidecar(path), decisions));
        }
        if let Some(snap) = ins.telemetry_snapshot().filter(|s| s.ticks > 0) {
            let mut stream = String::new();
            for f in &snap.frames {
                stream.push_str(&TelemetryLine::Frame(f.clone()).to_json());
                stream.push('\n');
            }
            for a in &snap.anomalies {
                stream.push_str(&TelemetryLine::Anomaly(*a).to_json());
                stream.push('\n');
            }
            outputs.push((telemetry_sidecar(path), stream));
        }
        for (out, contents) in outputs {
            match std::fs::write(&out, contents) {
                Ok(()) => println!("trace -> {}", out.display()),
                Err(e) => {
                    eprintln!("error: cannot write trace to {}: {e}", out.display());
                    std::process::exit(2);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobster_core::models::resnet50;

    #[test]
    fn scaled_cache_divides_cleanly() {
        assert_eq!(scaled_cache_bytes(1), 40 << 30);
        assert_eq!(scaled_cache_bytes(16), (40u64 << 30) / 16);
    }

    #[test]
    fn paper_config_preserves_ratio_across_scales() {
        let p = BenchParams {
            scale: 64,
            epochs: 2,
            seed: 1,
        };
        let cfg = paper_config(DatasetKind::ImageNet1k, 1, resnet50(), p);
        let frac = cfg.cluster.cache_bytes as f64 / cfg.dataset.total_bytes() as f64;
        // Paper scale: 40 GB / 135 GB ≈ 0.30. Scaled must match within the
        // size-distribution sampling noise.
        assert!((0.24..=0.36).contains(&frac), "cache fraction {frac}");
    }

    #[test]
    fn compare_policies_computes_speedups() {
        let p = BenchParams {
            scale: 512,
            epochs: 2,
            seed: 3,
        };
        let rows = compare_policies(
            || paper_config(DatasetKind::ImageNet1k, 1, resnet50(), p),
            &["pytorch", "lobster"],
        );
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].speedup_vs_pytorch, 1.0);
        assert!(rows[1].speedup_vs_pytorch > 0.0);
    }
}
