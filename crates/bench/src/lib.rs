//! # lobster-bench
//!
//! The experiment harness that regenerates every figure and table of the
//! paper's evaluation (see DESIGN.md §5 for the full index). [`harness`]
//! holds the scaled paper configurations; each `src/bin/fig*.rs` binary
//! reproduces one figure and writes `results/<name>.{json,csv}`.

pub mod doctor;
pub mod harness;
pub mod perf;

pub use harness::{
    compare_policies, compare_policies_with, decisions_sidecar, faults_from_args, metrics_sidecar,
    observability_from_args, paper_config, params_from_args, run_policy, run_policy_with,
    scaled_cache_bytes, telemetry_sidecar, workload_from_args, write_observability, BenchParams,
    DatasetKind, PolicyRow, BASELINE_NAMES,
};
