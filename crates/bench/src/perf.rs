//! The recorded benchmark trajectory behind `lobster_perf` (DESIGN.md §12).
//!
//! A standardized scenario matrix — steady-state delivery, the same
//! workload with the full telemetry plane live, a mid-run preprocessing
//! shock, a ≥5 % fault storm, elastic churn, and a node crash — runs on
//! the *live* engine at a small fixed scale. Each scenario records
//! p50/p95/p99 per-sample latency (a [`LogHistogram`] over per-iteration
//! delivery times), throughput, and allocation counts into a
//! schema-versioned [`BenchTrajectory`], written as `BENCH_<seq>.json` at
//! the repo root. [`compare`] gates the current run against the newest
//! checked-in trajectory with per-metric regression thresholds, making
//! perf a versioned, CI-gated observable like conformance already is.
//!
//! Thresholds are deliberately coarse (multiplicative factors, see
//! [`Thresholds`]): the gate exists to catch order-of-magnitude
//! regressions — an accidental `O(n²)`, a lock on the hot path, an
//! allocation storm — not ±20 % scheduler noise on a shared CI runner.
//! The `--self-test-regression` mode proves the gate fires by inflating
//! the baseline past every threshold and demanding a non-zero exit.

use lobster_data::{Dataset, SizeDistribution, WorkloadSpec};
use lobster_metrics::{CompactHistogram, Instruments, LogHistogram};
use lobster_runtime::{run_with, EngineConfig, SyntheticStore};
use lobster_storage::{CrashSpec, FaultSpec};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Version stamped into (and required of) every `BENCH_<seq>.json`.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// The `kind` discriminator stamped into every trajectory file.
pub const BENCH_KIND: &str = "lobster-bench-trajectory";

/// Scenarios every trajectory must carry (the acceptance floor).
pub const MIN_SCENARIOS: usize = 4;

/// One standardized workload in the matrix.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub name: &'static str,
    pub cfg: EngineConfig,
    pub dataset_samples: u32,
    pub sample_bytes: u64,
    pub faults: Option<FaultSpec>,
    /// Run with enabled instruments (telemetry plane live): the measured
    /// cost of full observability, vs the disabled hot path everywhere
    /// else in the matrix.
    pub telemetry: bool,
    /// DESIGN.md §15 workload scenario: when set, the dataset (sizes +
    /// cost table) comes from the spec instead of the constant-size
    /// generator, and `cfg.access` carries its access pattern.
    pub workload: Option<WorkloadSpec>,
}

/// The standardized matrix. `quick` halves epochs for the CI smoke run;
/// scenario names and shapes are identical in both modes, but quick and
/// full trajectories are never compared against each other.
pub fn scenario_matrix(quick: bool) -> Vec<Scenario> {
    let epochs = if quick { 2 } else { 4 };
    let samples = if quick { 192 } else { 384 };
    let base = EngineConfig {
        consumers: 2,
        batch_size: 8,
        loader_threads: 2,
        preproc_threads: 2,
        epochs,
        seed: 20220822,
        train: Duration::from_micros(200),
        cache_bytes: 1 << 20,
        ..EngineConfig::default()
    };
    let shock_at = (samples as u64 / (2 * 8)) * epochs / 2;
    let zipf = WorkloadSpec::default_for("zipf", samples as usize).expect("zipf is a known family");
    vec![
        Scenario {
            name: "steady_state",
            cfg: base.clone(),
            dataset_samples: samples,
            sample_bytes: 4_000,
            faults: None,
            telemetry: false,
            workload: None,
        },
        Scenario {
            // The steady-state workload again, but with the full
            // observability stack live (metrics, flight recorder,
            // per-tick telemetry + online detectors): the trajectory
            // records what turning everything on actually costs.
            name: "telemetry_on",
            cfg: base.clone(),
            dataset_samples: samples,
            sample_bytes: 4_000,
            faults: None,
            telemetry: true,
            workload: None,
        },
        Scenario {
            name: "preproc_shock",
            cfg: EngineConfig {
                elastic: true,
                work_factor_step: Some((shock_at, 8)),
                ..base.clone()
            },
            dataset_samples: samples,
            sample_bytes: 4_000,
            faults: None,
            telemetry: false,
            workload: None,
        },
        Scenario {
            name: "fault_storm",
            cfg: base.clone(),
            dataset_samples: samples,
            sample_bytes: 4_000,
            // ≥5 % aggregate fault rate, every class represented.
            faults: Some(
                FaultSpec::parse(
                    "transient=0.04,corrupt=0.02,stall=0.02,stall-ms=1,poison=0.01,seed=20220822",
                )
                .expect("fault storm spec parses"),
            ),
            telemetry: false,
            workload: None,
        },
        Scenario {
            name: "elastic_churn",
            cfg: EngineConfig {
                elastic: true,
                elastic_churn: true,
                ..base.clone()
            },
            dataset_samples: samples,
            sample_bytes: 4_000,
            faults: None,
            telemetry: false,
            workload: None,
        },
        Scenario {
            name: "node_crash",
            cfg: EngineConfig {
                // A peer node dies mid-run and rejoins six ticks later:
                // every fetch routed at it rides the PeerDown fast-fail →
                // immediate PFS failover path while the window is open.
                crashes: vec![CrashSpec {
                    node: 1,
                    tick: shock_at,
                    rejoin: Some(shock_at + 6),
                }],
                peer_nodes: 3,
                ..base.clone()
            },
            dataset_samples: samples,
            sample_bytes: 4_000,
            faults: None,
            telemetry: false,
            workload: None,
        },
        Scenario {
            // Zipf-skewed popularity with replacement (DESIGN.md §15):
            // hot samples recur within the epoch, exercising the cache's
            // reuse path under a non-uniform access stream while the
            // delivery/integrity invariants stay schedule-exact.
            name: "zipf_skew",
            cfg: EngineConfig {
                access: zipf.access(),
                ..base
            },
            dataset_samples: samples,
            sample_bytes: 4_000,
            faults: None,
            telemetry: false,
            workload: Some(zipf),
        },
    ]
}

/// One scenario's measured metrics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioResult {
    pub name: String,
    /// Samples delivered to consumers.
    pub samples: u64,
    pub iterations: u64,
    pub wall_s: f64,
    /// Delivered samples per wall-clock second.
    pub throughput_sps: f64,
    /// Per-sample delivery latency percentiles, microseconds.
    pub p50_us: f64,
    pub p95_us: f64,
    pub p99_us: f64,
    /// The full latency distribution (sparse form) the percentiles came
    /// from, so later tooling can recompute or merge.
    pub latency_us: CompactHistogram,
    /// Heap allocations over the run (counting-allocator delta).
    pub allocations: u64,
    pub allocations_per_sample: f64,
    pub retries: u64,
    pub worker_panics: u64,
    pub role_flips: u64,
}

/// A schema-versioned `BENCH_<seq>.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchTrajectory {
    /// Always [`BENCH_KIND`].
    pub kind: String,
    /// Always [`BENCH_SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Ordinal in the checked-in trajectory (`BENCH_0001.json` → 1).
    pub seq: u32,
    /// Free-form provenance label (e.g. the PR that recorded it).
    pub label: String,
    /// Whether the quick (CI) matrix sizes were used.
    pub quick: bool,
    pub scenarios: Vec<ScenarioResult>,
    /// All scenario latency histograms merged ([`LogHistogram::merge`]).
    pub overall_latency_us: CompactHistogram,
    pub overall_p99_us: f64,
}

impl BenchTrajectory {
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trajectory render")
    }

    pub fn from_json(text: &str) -> Result<BenchTrajectory, String> {
        let t: BenchTrajectory =
            serde_json::from_str(text).map_err(|e| format!("trajectory parse: {e}"))?;
        validate(&t)?;
        Ok(t)
    }

    pub fn scenario(&self, name: &str) -> Option<&ScenarioResult> {
        self.scenarios.iter().find(|s| s.name == name)
    }
}

/// Schema validation beyond what typed parsing enforces: discriminators,
/// the scenario floor, finite metrics, and coherent histograms.
pub fn validate(t: &BenchTrajectory) -> Result<(), String> {
    if t.kind != BENCH_KIND {
        return Err(format!("kind {:?} is not {BENCH_KIND:?}", t.kind));
    }
    if t.schema_version != BENCH_SCHEMA_VERSION {
        return Err(format!(
            "schema version {} unsupported (want {BENCH_SCHEMA_VERSION})",
            t.schema_version
        ));
    }
    if t.seq == 0 {
        return Err("seq must be >= 1".to_string());
    }
    if t.scenarios.len() < MIN_SCENARIOS {
        return Err(format!(
            "{} scenario(s), need at least {MIN_SCENARIOS}",
            t.scenarios.len()
        ));
    }
    for s in &t.scenarios {
        if s.name.is_empty() {
            return Err("scenario with empty name".to_string());
        }
        if t.scenarios.iter().filter(|o| o.name == s.name).count() > 1 {
            return Err(format!("duplicate scenario {:?}", s.name));
        }
        for (what, v) in [
            ("wall_s", s.wall_s),
            ("throughput_sps", s.throughput_sps),
            ("p50_us", s.p50_us),
            ("p95_us", s.p95_us),
            ("p99_us", s.p99_us),
            ("allocations_per_sample", s.allocations_per_sample),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("scenario {:?}: {what} = {v} is not usable", s.name));
            }
        }
        if s.samples == 0 || s.iterations == 0 {
            return Err(format!("scenario {:?} delivered nothing", s.name));
        }
        let h = LogHistogram::from_compact(&s.latency_us)
            .map_err(|e| format!("scenario {:?} latency histogram: {e}", s.name))?;
        if h.count() != s.iterations {
            return Err(format!(
                "scenario {:?}: histogram count {} != iterations {}",
                s.name,
                h.count(),
                s.iterations
            ));
        }
    }
    LogHistogram::from_compact(&t.overall_latency_us)
        .map_err(|e| format!("overall latency histogram: {e}"))?;
    Ok(())
}

/// Run one scenario on the live engine. `allocs` reads the process-wide
/// counting allocator (the `lobster_perf` binary installs one; tests pass
/// their own or `|| 0`).
pub fn run_scenario(s: &Scenario, allocs: &dyn Fn() -> u64) -> ScenarioResult {
    let dataset = match &s.workload {
        Some(w) => w.dataset(s.cfg.seed),
        None => Dataset::generate(
            s.name,
            s.dataset_samples as usize,
            SizeDistribution::Constant {
                bytes: s.sample_bytes,
            },
            s.cfg.seed,
        ),
    };
    let store = match &s.faults {
        Some(spec) => {
            let plan = spec.compile().expect("scenario fault spec compiles");
            Arc::new(SyntheticStore::with_faults(
                dataset,
                Duration::from_micros(50),
                500e6,
                plan,
            ))
        }
        None => Arc::new(SyntheticStore::new(
            dataset,
            Duration::from_micros(50),
            500e6,
        )),
    };

    // The measured run carries disabled instruments — the zero-
    // observability hot path users actually pay for — except in the
    // `telemetry_on` scenario, which deliberately measures the enabled
    // stack.
    let ins = if s.telemetry {
        Instruments::enabled()
    } else {
        Instruments::disabled()
    };
    let a0 = allocs();
    let t0 = Instant::now();
    let report = run_with(store, s.cfg.clone(), ins);
    let wall_s = t0.elapsed().as_secs_f64();
    let allocations = allocs().saturating_sub(a0);

    let per_iter_samples = (s.cfg.consumers * s.cfg.batch_size) as f64;
    let mut hist = LogHistogram::new();
    for &iter_s in &report.iteration_secs {
        hist.record((iter_s * 1e6 / per_iter_samples) as u64);
    }
    let samples = report.delivered;
    ScenarioResult {
        name: s.name.to_string(),
        samples,
        iterations: report.iteration_secs.len() as u64,
        wall_s,
        throughput_sps: samples as f64 / wall_s.max(1e-9),
        p50_us: hist.percentile(50.0).unwrap_or(0.0),
        p95_us: hist.percentile(95.0).unwrap_or(0.0),
        p99_us: hist.percentile(99.0).unwrap_or(0.0),
        latency_us: hist.to_compact(),
        allocations,
        allocations_per_sample: allocations as f64 / samples.max(1) as f64,
        retries: report.retries,
        worker_panics: report.worker_panics,
        role_flips: report
            .role_flips
            .iter()
            .map(|d| d.flipped.len() as u64)
            .sum(),
    }
}

/// Run the whole matrix and assemble the trajectory document.
pub fn run_matrix(quick: bool, label: &str, allocs: &dyn Fn() -> u64) -> BenchTrajectory {
    let scenarios: Vec<ScenarioResult> = scenario_matrix(quick)
        .iter()
        .map(|s| run_scenario(s, allocs))
        .collect();
    // Cross-scenario summary via the mergeable histogram form.
    let mut overall = LogHistogram::new();
    for s in &scenarios {
        if let Ok(h) = LogHistogram::from_compact(&s.latency_us) {
            overall.merge(&h);
        }
    }
    BenchTrajectory {
        kind: BENCH_KIND.to_string(),
        schema_version: BENCH_SCHEMA_VERSION,
        seq: 0, // assigned at record time
        label: label.to_string(),
        quick,
        scenarios,
        overall_p99_us: overall.percentile(99.0).unwrap_or(0.0),
        overall_latency_us: overall.to_compact(),
    }
}

/// Per-metric regression thresholds. Multiplicative and coarse by design
/// (see the module docs): latency may grow up to `latency_factor`×,
/// throughput may shrink to `throughput_floor`× the baseline, and
/// per-sample allocations may grow `alloc_factor`× (small absolute counts
/// are ignored via `alloc_slack`).
#[derive(Debug, Clone, Copy)]
pub struct Thresholds {
    pub latency_factor: f64,
    pub throughput_floor: f64,
    pub alloc_factor: f64,
    /// Allocation regressions below this absolute per-sample delta are
    /// noise, not signal.
    pub alloc_slack: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            latency_factor: 5.0,
            throughput_floor: 0.2,
            alloc_factor: 3.0,
            alloc_slack: 50.0,
        }
    }
}

/// Compare `current` against `baseline`; each returned string is one
/// threshold-crossing regression. Empty means the gate passes.
pub fn compare(
    baseline: &BenchTrajectory,
    current: &BenchTrajectory,
    th: &Thresholds,
) -> Vec<String> {
    let mut regressions = Vec::new();
    if baseline.quick != current.quick {
        regressions.push(format!(
            "trajectory scale mismatch: baseline quick={} vs current quick={} (never comparable)",
            baseline.quick, current.quick
        ));
        return regressions;
    }
    for b in &baseline.scenarios {
        let Some(c) = current.scenario(&b.name) else {
            regressions.push(format!("scenario {:?} missing from current run", b.name));
            continue;
        };
        for (metric, base, cur) in [
            ("p95_us", b.p95_us, c.p95_us),
            ("p99_us", b.p99_us, c.p99_us),
        ] {
            // Sub-microsecond baselines have no meaningful factor.
            let floor = base.max(1.0);
            if cur > floor * th.latency_factor {
                regressions.push(format!(
                    "{}: {metric} {:.1}us exceeds {}x baseline {:.1}us",
                    b.name, cur, th.latency_factor, base
                ));
            }
        }
        if c.throughput_sps < b.throughput_sps * th.throughput_floor {
            regressions.push(format!(
                "{}: throughput {:.0}/s fell below {}x baseline {:.0}/s",
                b.name, c.throughput_sps, th.throughput_floor, b.throughput_sps
            ));
        }
        if c.allocations_per_sample > b.allocations_per_sample * th.alloc_factor
            && c.allocations_per_sample - b.allocations_per_sample > th.alloc_slack
        {
            regressions.push(format!(
                "{}: allocations/sample {:.1} exceeds {}x baseline {:.1}",
                b.name, c.allocations_per_sample, th.alloc_factor, b.allocations_per_sample
            ));
        }
    }
    regressions
}

/// The baseline, inflated past every threshold: latency ×10, throughput
/// ÷20, allocations ×10. [`compare`] against the original must flag every
/// scenario — the gate's self-test.
pub fn inflate_for_self_test(t: &BenchTrajectory) -> BenchTrajectory {
    let mut out = t.clone();
    for s in &mut out.scenarios {
        s.p50_us *= 10.0;
        s.p95_us *= 10.0;
        s.p99_us *= 10.0;
        s.throughput_sps /= 20.0;
        s.allocations = s.allocations.saturating_mul(10);
        s.allocations_per_sample = s.allocations_per_sample * 10.0 + 1000.0;
    }
    out
}

/// `BENCH_<seq>.json` (zero-padded to four digits).
pub fn bench_file_name(seq: u32) -> String {
    format!("BENCH_{seq:04}.json")
}

/// All `BENCH_<seq>.json` files under `dir`, sorted by seq ascending.
pub fn bench_files(dir: &Path) -> Vec<(u32, PathBuf)> {
    let mut out: Vec<(u32, PathBuf)> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .filter_map(|e| {
                    let path = e.path();
                    let name = path.file_name()?.to_str()?;
                    let seq: u32 = name
                        .strip_prefix("BENCH_")?
                        .strip_suffix(".json")?
                        .parse()
                        .ok()?;
                    Some((seq, path))
                })
                .collect()
        })
        .unwrap_or_default();
    out.sort();
    out
}

/// The newest checked-in trajectory under `dir`, parsed and validated.
pub fn load_latest(dir: &Path) -> Option<Result<BenchTrajectory, String>> {
    let (_, path) = bench_files(dir).pop()?;
    Some(
        std::fs::read_to_string(&path)
            .map_err(|e| format!("read {}: {e}", path.display()))
            .and_then(|text| BenchTrajectory::from_json(&text)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_trajectory(seq: u32) -> BenchTrajectory {
        let mut overall = LogHistogram::new();
        let scenarios = scenario_matrix(true)
            .iter()
            .map(|s| {
                let mut hist = LogHistogram::new();
                hist.record_all([100, 120, 150, 400]);
                overall.merge(&hist);
                ScenarioResult {
                    name: s.name.to_string(),
                    samples: 384,
                    iterations: 4,
                    wall_s: 0.5,
                    throughput_sps: 768.0,
                    p50_us: 120.0,
                    p95_us: 400.0,
                    p99_us: 400.0,
                    latency_us: hist.to_compact(),
                    allocations: 10_000,
                    allocations_per_sample: 26.0,
                    retries: 0,
                    worker_panics: 0,
                    role_flips: 0,
                }
            })
            .collect();
        BenchTrajectory {
            kind: BENCH_KIND.to_string(),
            schema_version: BENCH_SCHEMA_VERSION,
            seq,
            label: "test".to_string(),
            quick: true,
            scenarios,
            overall_p99_us: overall.percentile(99.0).unwrap_or(0.0),
            overall_latency_us: overall.to_compact(),
        }
    }

    #[test]
    fn matrix_has_the_standard_scenarios() {
        for quick in [false, true] {
            let m = scenario_matrix(quick);
            let names: Vec<&str> = m.iter().map(|s| s.name).collect();
            assert_eq!(
                names,
                [
                    "steady_state",
                    "telemetry_on",
                    "preproc_shock",
                    "fault_storm",
                    "elastic_churn",
                    "node_crash",
                    "zipf_skew"
                ]
            );
            assert!(
                m[1].telemetry && m.iter().filter(|s| s.telemetry).count() == 1,
                "exactly the telemetry_on scenario runs enabled instruments"
            );
            let storm = m[3].faults.as_ref().expect("fault storm injects");
            let total =
                storm.transient_rate + storm.corrupt_rate + storm.stall_rate + storm.poison_rate;
            assert!(total >= 0.05, "fault storm rate {total} must be >= 5%");
            assert!(
                m[2].cfg.work_factor_step.is_some(),
                "shock steps work factor"
            );
            assert!(m[4].cfg.elastic_churn, "churn scenario churns");
            let crash = &m[5].cfg;
            assert!(
                !crash.crashes.is_empty() && crash.peer_nodes > 0,
                "crash scenario schedules a crash on a routed peer"
            );
            let total_iters = (m[5].dataset_samples as u64
                / (crash.consumers * crash.batch_size) as u64)
                * crash.epochs;
            assert!(
                crash.crashes.iter().all(|c| c.tick < total_iters),
                "crash window must land inside the run"
            );
            let zipf = &m[6];
            assert!(
                zipf.workload.is_some()
                    && zipf.cfg.access != lobster_data::AccessPattern::EpochShuffle,
                "zipf scenario carries a workload with a non-uniform access pattern"
            );
        }
    }

    #[test]
    fn identical_trajectories_pass_the_gate() {
        let base = synthetic_trajectory(1);
        assert!(compare(&base, &base, &Thresholds::default()).is_empty());
    }

    #[test]
    fn inflated_trajectory_trips_every_threshold_family() {
        let base = synthetic_trajectory(1);
        let bad = inflate_for_self_test(&base);
        let regressions = compare(&base, &bad, &Thresholds::default());
        assert!(
            regressions.len() >= base.scenarios.len() * 3,
            "latency + throughput + allocations per scenario: {regressions:?}"
        );
        for family in ["p99_us", "throughput", "allocations/sample"] {
            assert!(
                regressions.iter().any(|r| r.contains(family)),
                "no {family} regression in {regressions:?}"
            );
        }
    }

    #[test]
    fn missing_scenario_and_scale_mismatch_are_regressions() {
        let base = synthetic_trajectory(1);
        let mut cur = base.clone();
        cur.scenarios.remove(0);
        let r = compare(&base, &cur, &Thresholds::default());
        assert!(r.iter().any(|m| m.contains("missing")), "{r:?}");

        let mut full = base.clone();
        full.quick = false;
        let r = compare(&base, &full, &Thresholds::default());
        assert_eq!(r.len(), 1);
        assert!(r[0].contains("scale mismatch"));
    }

    #[test]
    fn trajectory_json_round_trips_and_validates() {
        let t = synthetic_trajectory(3);
        let json = t.to_json();
        let back = BenchTrajectory::from_json(&json).expect("valid");
        assert_eq!(back.seq, 3);
        assert_eq!(back.scenarios.len(), t.scenarios.len());
        assert_eq!(back.to_json(), json, "serialize is a fixed point");
    }

    #[test]
    fn validation_rejects_broken_documents() {
        let t = synthetic_trajectory(1);

        let mut bad = t.clone();
        bad.kind = "other".to_string();
        assert!(validate(&bad).is_err());

        let mut bad = t.clone();
        bad.schema_version += 1;
        assert!(validate(&bad).is_err());

        let mut bad = t.clone();
        bad.seq = 0;
        assert!(validate(&bad).is_err());

        let mut bad = t.clone();
        bad.scenarios.truncate(2);
        assert!(validate(&bad).is_err(), "scenario floor enforced");

        let mut bad = t.clone();
        bad.scenarios[0].p99_us = f64::NAN;
        assert!(validate(&bad).is_err(), "non-finite metric rejected");

        let mut bad = t.clone();
        bad.scenarios[0].iterations += 1;
        assert!(validate(&bad).is_err(), "histogram/iteration coherence");

        let mut bad = t;
        bad.scenarios[1].name = bad.scenarios[0].name.clone();
        assert!(validate(&bad).is_err(), "duplicate scenario names rejected");
    }

    #[test]
    fn bench_files_sort_by_seq() {
        let dir = std::env::temp_dir().join(format!("lobster_perf_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for seq in [3u32, 1, 2] {
            std::fs::write(
                dir.join(bench_file_name(seq)),
                synthetic_trajectory(seq).to_json(),
            )
            .unwrap();
        }
        std::fs::write(dir.join("BENCH_garbage.json"), "{}").unwrap();
        let files = bench_files(&dir);
        assert_eq!(files.iter().map(|(s, _)| *s).collect::<Vec<_>>(), [1, 2, 3]);
        let latest = load_latest(&dir).unwrap().unwrap();
        assert_eq!(latest.seq, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn steady_state_scenario_runs_and_measures() {
        let mut s = scenario_matrix(true)[0].clone();
        // Keep the in-test run tiny: one epoch of the quick shape.
        s.cfg.epochs = 1;
        let r = run_scenario(&s, &|| 0);
        assert_eq!(r.name, "steady_state");
        assert!(r.samples > 0 && r.iterations > 0);
        assert!(r.throughput_sps > 0.0);
        assert!(r.p50_us > 0.0 && r.p99_us >= r.p50_us);
        let h = LogHistogram::from_compact(&r.latency_us).unwrap();
        assert_eq!(h.count(), r.iterations);
        assert_eq!(r.allocations, 0, "null allocator reader reads zero");
    }
}
