//! The `lobster_doctor` diagnosis engine: turn a `--trace-out` export plus
//! its sidecars into an answer to "why was this run slow?".
//!
//! [`diagnose`] ingests a Chrome trace-event document or JSONL (either of
//! the tracer's export forms), an optional metrics snapshot
//! (`<trace>.metrics.json`) and an optional controller decision log
//! (`<trace>.decisions.jsonl`), reconstructs the per-iteration, per-GPU
//! timeline with [`lobster_metrics::timeline`], and runs the *same*
//! [`BottleneckAnalyzer`] the engine runs online — so the offline diagnosis
//! and the live gauges can never drift apart. On top it layers the
//! run-phase split (warm-up / steady / tail thirds), per-tier fetch-latency
//! percentiles, the cache-hit trajectory, the solver-convergence table, and
//! the fault-recovery summary.
//!
//! The result is one [`Diagnosis`] value: [`render`] formats it for humans,
//! and it serializes losslessly to `results/doctor_*.json` for machines
//! (see the round-trip test).

use lobster_metrics::timeline::{parse_trace, Timeline, TimelineError};
use lobster_metrics::{
    AnalysisConfig, AnalysisReport, BottleneckAnalyzer, DecisionRecord, FlightDump, FlightEvent,
    FlightTier, GpuIterSample, MetricsSnapshot, SloVerdict, Table, TelemetryLine,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Fetch-latency percentiles for one storage tier, microseconds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TierLatency {
    pub tier: String,
    pub count: u64,
    pub p50_us: f64,
    pub p95_us: f64,
    pub p99_us: f64,
}

/// Bottleneck verdict for one phase of the run (thirds by iteration).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseDiagnosis {
    pub phase: String,
    pub iterations: u64,
    /// Mean Eq.-3 gap over the phase, milliseconds.
    pub mean_gap_ms: f64,
    /// Dominant pipeline blame category ([`lobster_metrics::BlameCategory`]
    /// label), if anything was blamed.
    pub dominant: Option<String>,
}

/// Cache behaviour over the run, from `cache` instants (simulator) or
/// per-fetch tier tags (engine).
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct CacheTrajectory {
    pub points: u64,
    pub first_hit_ratio: f64,
    pub last_hit_ratio: f64,
    pub local_hits: u64,
    pub remote_hits: u64,
    pub misses: u64,
}

/// One controller decision with the gap around it (when the decision log
/// sidecar was available to join against).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolverRow {
    pub ts_us: u64,
    pub evals: u64,
    pub converged: bool,
    pub gap_before_ms: Option<f64>,
    pub gap_after_ms: Option<f64>,
}

/// One fault-family counter (trace `cat == "fault"` instants and the
/// engine's exported fault counters).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultCount {
    pub name: String,
    pub count: u64,
}

/// One cluster-membership transition placed on the run timeline (from
/// `node_crash`/`node_rejoin` trace instants or `MembershipChange` flight
/// events), attributed to the run phase its tick landed in.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MembershipNote {
    pub tick: u64,
    pub node: u32,
    pub crashed: bool,
    /// Which run phase (warm-up / steady / tail) the tick fell into.
    pub phase: String,
}

/// One detector firing placed on the run timeline (from the telemetry
/// sidecar / stream, or `Anomaly` flight events), attributed to the run
/// phase its tick landed in.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnomalyNote {
    /// Detector label (`gap-spike`, `level-shift`, `throughput-cliff`,
    /// `hit-rate-regression`, `membership-change`).
    pub kind: String,
    pub tick: u64,
    /// First tick of the triggering window (CUSUM onset; otherwise the
    /// firing tick).
    pub onset_tick: u64,
    pub value: u64,
    pub baseline: u64,
    pub severity: u64,
    pub phase: String,
}

/// The straggler call, when the attribution names one.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StragglerCall {
    pub node: u32,
    pub gpu: u32,
    /// Dominant blame category label of the flagged episodes, if any.
    pub dominant: Option<String>,
    pub episodes: u64,
}

/// Everything `lobster_doctor` concluded about one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Diagnosis {
    /// Parsed trace events.
    pub events: u64,
    /// Reconstructed iterations.
    pub iterations: u64,
    /// The full offline analyzer report (same machinery as the online one).
    pub analysis: AnalysisReport,
    pub phases: Vec<PhaseDiagnosis>,
    pub tiers: Vec<TierLatency>,
    pub cache: CacheTrajectory,
    pub solver: Vec<SolverRow>,
    pub faults: Vec<FaultCount>,
    /// Crash/rejoin transitions with phase attribution (empty when the run
    /// had no crash schedule).
    pub membership: Vec<MembershipNote>,
    /// Online detector firings with phase attribution (from the telemetry
    /// sidecar or `Anomaly` flight events).
    pub anomalies: Vec<AnomalyNote>,
    /// SLO verdicts from the telemetry sidecar (empty without one).
    pub slo: Vec<SloVerdict>,
    /// Cluster-dominant pipeline bottleneck label.
    pub top_bottleneck: Option<String>,
    pub straggler: Option<StragglerCall>,
    /// Human-readable findings, most important first.
    pub verdicts: Vec<String>,
}

impl Diagnosis {
    /// An empty diagnosis (no iterations reconstructed and no verdicts) is
    /// a failed one: the doctor exits non-zero on it.
    pub fn is_empty(&self) -> bool {
        self.iterations == 0 || self.verdicts.is_empty()
    }
}

fn phase_name(i: usize) -> &'static str {
    ["warm-up", "steady", "tail"][i]
}

/// Which run phase a tick falls into, given the reconstructed iteration
/// numbers in ascending order (same thirds as the phase split).
fn phase_of(iters: &[u64], tick: u64) -> String {
    let n = iters.len();
    if n == 0 {
        return "unknown".to_string();
    }
    let pos = iters
        .iter()
        .position(|&i| i >= tick)
        .unwrap_or(n.saturating_sub(1));
    let third = if pos < n / 3 {
        0
    } else if pos < 2 * n / 3 {
        1
    } else {
        2
    };
    phase_name(third).to_string()
}

/// Summarize membership transitions into one findings line.
fn membership_verdict(membership: &[MembershipNote]) -> String {
    let crashes = membership.iter().filter(|m| m.crashed).count();
    let detail: Vec<String> = membership
        .iter()
        .map(|m| {
            format!(
                "node {} {} at tick {} ({})",
                m.node,
                if m.crashed { "down" } else { "back" },
                m.tick,
                m.phase
            )
        })
        .collect();
    format!(
        "membership: {crashes} crash(es), {} rejoin(s) — {}",
        membership.len() - crashes,
        detail.join(", ")
    )
}

/// Diagnose a run from its trace text plus optional sidecars. The trace may
/// be a `{"traceEvents": [...]}` document or JSONL.
pub fn diagnose(
    trace_text: &str,
    metrics: Option<&MetricsSnapshot>,
    decisions: &[DecisionRecord],
) -> Result<Diagnosis, TimelineError> {
    let events = parse_trace(trace_text)?;
    let tl = Timeline::build(&events);

    // Re-run the online analyzer over the reconstruction, interleaving the
    // decision log by timestamp so solver efficacy (gap before/after each
    // Algorithm-1 decision) is joined exactly as it was live.
    let mut decisions = decisions.to_vec();
    decisions.sort_by_key(|d| d.ts_us);
    let mut next_decision = 0usize;
    let mut analyzer = BottleneckAnalyzer::new(AnalysisConfig::default());
    for slice in &tl.iterations {
        while next_decision < decisions.len() && decisions[next_decision].ts_us < slice.end_us {
            analyzer.note_decision(&decisions[next_decision]);
            next_decision += 1;
        }
        analyzer.observe_iteration(slice.iter, &slice.per_gpu);
    }
    for d in &decisions[next_decision..] {
        analyzer.note_decision(d);
    }
    let analysis = analyzer.report();

    // Phase split: warm-up / steady / tail thirds of the iteration range,
    // each attributed by its own analyzer pass.
    let mut phases = Vec::new();
    let n = tl.iterations.len();
    if n > 0 {
        let bounds = [(0, n / 3), (n / 3, 2 * n / 3), (2 * n / 3, n)];
        for (i, &(lo, hi)) in bounds.iter().enumerate() {
            if lo >= hi {
                continue;
            }
            let mut pa = BottleneckAnalyzer::default();
            for slice in &tl.iterations[lo..hi] {
                pa.observe_iteration(slice.iter, &slice.per_gpu);
            }
            let r = pa.report();
            phases.push(PhaseDiagnosis {
                phase: phase_name(i).to_string(),
                iterations: (hi - lo) as u64,
                mean_gap_ms: r.mean_gap_s * 1e3,
                dominant: r.dominant_category().map(|c| c.label().to_string()),
            });
        }
    }

    let tiers: Vec<TierLatency> = tl
        .fetch_us_by_tier
        .iter()
        .map(|(tier, h)| TierLatency {
            tier: tier.to_string(),
            count: h.count(),
            p50_us: h.percentile(50.0).unwrap_or(0.0),
            p95_us: h.percentile(95.0).unwrap_or(0.0),
            p99_us: h.percentile(99.0).unwrap_or(0.0),
        })
        .collect();

    let (local, remote, miss) = tl.cache_totals();
    let cache = CacheTrajectory {
        points: tl.cache_points.len() as u64,
        first_hit_ratio: tl.cache_points.first().map_or(0.0, |p| p.hit_ratio()),
        last_hit_ratio: tl.cache_points.last().map_or(0.0, |p| p.hit_ratio()),
        local_hits: local,
        remote_hits: remote,
        misses: miss,
    };

    // Solver table: joined efficacy rows when the sidecar was given,
    // otherwise the bare `controller_decision` instants from the trace.
    let solver: Vec<SolverRow> = if !decisions.is_empty() {
        analysis
            .solver
            .iter()
            .map(|s| SolverRow {
                ts_us: s.ts_us,
                evals: decisions
                    .iter()
                    .find(|d| d.ts_us == s.ts_us)
                    .map_or(0, |d| d.evals as u64),
                converged: s.converged,
                gap_before_ms: Some(s.gap_before_s * 1e3),
                gap_after_ms: s.gap_after_s.map(|g| g * 1e3),
            })
            .collect()
    } else {
        tl.decision_instants
            .iter()
            .map(|&(ts_us, evals, converged)| SolverRow {
                ts_us,
                evals,
                converged,
                gap_before_ms: None,
                gap_after_ms: None,
            })
            .collect()
    };

    // Fault summary: trace instants plus the engine's exported counters
    // (skipping their legacy aliases to avoid double counting).
    let mut faults: Vec<FaultCount> = tl
        .fault_counts
        .iter()
        .map(|(name, &count)| FaultCount {
            name: format!("trace.{name}"),
            count,
        })
        .collect();
    if let Some(snap) = metrics {
        for e in &snap.entries {
            let fault_counter = matches!(
                e.name.as_str(),
                "engine.retries"
                    | "engine.corruptions_detected"
                    | "engine.deadline_exceeded"
                    | "engine.worker_panics"
            );
            if fault_counter && e.kind != "alias" && e.value > 0 {
                faults.push(FaultCount {
                    name: e.name.clone(),
                    count: e.value as u64,
                });
            }
        }
    }

    // Membership transitions: `node_crash` / `node_rejoin` instants from
    // either the live engine (node id in args) or the cluster simulator
    // (node id in pid), attributed to the phase their tick landed in.
    let iter_numbers: Vec<u64> = tl.iterations.iter().map(|s| s.iter).collect();
    let mut membership: Vec<MembershipNote> = events
        .iter()
        .filter(|e| e.name == "node_crash" || e.name == "node_rejoin")
        .map(|e| {
            let tick = e.arg_u("iter").unwrap_or(0);
            MembershipNote {
                tick,
                node: e.arg_u("node").unwrap_or(e.pid as u64) as u32,
                crashed: e.name == "node_crash",
                phase: phase_of(&iter_numbers, tick),
            }
        })
        .collect();
    membership.sort_by_key(|m| (m.tick, m.crashed, m.node));

    let top_bottleneck = analysis.dominant_category().map(|c| c.label().to_string());
    let straggler = analysis.top_straggler().map(|(node, gpu)| StragglerCall {
        node,
        gpu,
        dominant: analysis
            .episodes
            .iter()
            .rfind(|e| e.node == node && e.gpu == gpu)
            .map(|e| e.dominant.label().to_string()),
        episodes: analysis.episodes.len() as u64,
    });

    let mut verdicts = Vec::new();
    if let Some(cat) = &top_bottleneck {
        let share = lobster_metrics::BlameCategory::ALL
            .iter()
            .find(|c| c.label() == cat)
            .map(|&c| analysis.cluster.get(c) / analysis.cluster.pipeline_s().max(1e-12))
            .unwrap_or(0.0);
        verdicts.push(format!(
            "dominant pipeline bottleneck: {cat} ({:.0}% of blamed loading time)",
            share * 100.0
        ));
    }
    if let Some(s) = &straggler {
        verdicts.push(match &s.dominant {
            Some(d) => format!(
                "straggler: node {} gpu {} ({} flagged episode(s), mostly {d})",
                s.node, s.gpu, s.episodes
            ),
            None => format!(
                "straggler: node {} gpu {} (never crossed the episode threshold)",
                s.node, s.gpu
            ),
        });
    }
    if analysis.iterations > 0 {
        verdicts.push(format!(
            "Eq.-3 gap: first {:.1} ms, mean {:.1} ms, max {:.1} ms, final EWMA {:.1} ms",
            analysis.first_gap_s * 1e3,
            analysis.mean_gap_s * 1e3,
            analysis.max_gap_s * 1e3,
            analysis.ewma_gap_s * 1e3
        ));
        // Skewed workloads (DESIGN.md §15) hide their imbalance in the
        // tail; surface it whenever the trace carries the percentiles.
        if let (Some(p50), Some(p99)) = (analysis.p50_gap_s, analysis.p99_gap_s) {
            verdicts.push(format!(
                "Eq.-3 gap tail: p50 {:.1} ms, p99 {:.1} ms{}",
                p50 * 1e3,
                p99 * 1e3,
                if p99 > 10.0 * analysis.mean_gap_s.max(1e-9) {
                    " — heavy-tailed; the mean gap understates the imbalance"
                } else {
                    ""
                }
            ));
        }
    }
    if let Some(ratio) = analysis.mean_solver_gap_ratio() {
        verdicts.push(if ratio < 1.0 {
            format!(
                "solver efficacy: decisions shrank the gap to {:.0}% of its prior value on average",
                ratio * 100.0
            )
        } else {
            format!(
                "solver efficacy: decisions did NOT shrink the gap (mean after/before {ratio:.2})"
            )
        });
    } else if !solver.is_empty() {
        verdicts.push(format!(
            "{} controller decision(s) seen, but no gap join (run the producer with the decision sidecar)",
            solver.len()
        ));
    }
    if cache.points > 0 {
        verdicts.push(format!(
            "cache hit ratio moved {:.0}% -> {:.0}% over {} samples",
            cache.first_hit_ratio * 100.0,
            cache.last_hit_ratio * 100.0,
            cache.points
        ));
    }
    if !faults.is_empty() {
        let total: u64 = faults.iter().map(|f| f.count).sum();
        verdicts.push(format!(
            "{total} fault event(s) recorded and recovered across {} families",
            faults.len()
        ));
    }
    if !membership.is_empty() {
        verdicts.push(membership_verdict(&membership));
    }

    Ok(Diagnosis {
        events: events.len() as u64,
        iterations: tl.iterations.len() as u64,
        analysis,
        phases,
        tiers,
        cache,
        solver,
        faults,
        membership,
        anomalies: Vec::new(),
        slo: Vec::new(),
        top_bottleneck,
        straggler,
        verdicts,
    })
}

/// Join a parsed `--telemetry-out` stream (or `.telemetry.jsonl` sidecar)
/// into an existing diagnosis: anomaly records land on the timeline with
/// phase attribution, SLO verdicts fill the SLO table, and both get a
/// findings line. Anomalies already present (e.g. from `Anomaly` flight
/// events) are deduped by (kind, tick).
pub fn attach_telemetry(d: &mut Diagnosis, lines: &[TelemetryLine]) {
    let iter_numbers: Vec<u64> = (0..d.iterations).collect();
    for line in lines {
        match line {
            TelemetryLine::Anomaly(a) => {
                let kind = a.kind.label().to_string();
                if d.anomalies
                    .iter()
                    .any(|n| n.kind == kind && n.tick == a.tick)
                {
                    continue;
                }
                d.anomalies.push(AnomalyNote {
                    kind,
                    tick: a.tick,
                    onset_tick: a.onset_tick,
                    value: a.value,
                    baseline: a.baseline,
                    severity: a.severity,
                    phase: phase_of(&iter_numbers, a.tick),
                });
            }
            TelemetryLine::Slo(v) => d.slo.push(v.clone()),
            TelemetryLine::Frame(_) => {}
        }
    }
    d.anomalies
        .sort_by(|a, b| (a.tick, a.kind.as_str()).cmp(&(b.tick, b.kind.as_str())));
    if !d.anomalies.is_empty() {
        d.verdicts.push(anomaly_verdict(&d.anomalies));
    }
    let failed = d.slo.iter().filter(|v| !v.pass).count();
    if !d.slo.is_empty() {
        d.verdicts.push(format!(
            "SLO: {} of {} spec(s) violated",
            failed,
            d.slo.len()
        ));
    }
}

/// Summarize the anomaly timeline into one findings line.
fn anomaly_verdict(anomalies: &[AnomalyNote]) -> String {
    let mut kinds: Vec<&str> = anomalies.iter().map(|a| a.kind.as_str()).collect();
    kinds.sort_unstable();
    kinds.dedup();
    format!(
        "anomalies: {} firing(s) across {} detector(s) (first at tick {}, last at tick {})",
        anomalies.len(),
        kinds.len(),
        anomalies.first().map_or(0, |a| a.tick),
        anomalies.last().map_or(0, |a| a.tick),
    )
}

/// The shared fault family behind the three reporting channels: trace
/// `fault_*` instants, flight-recorder `Fault` events, and the engine's
/// exported counters all describe the same underlying incidents, so a
/// merged diagnosis must count each family once, not once per channel.
fn canonical_fault_family(name: &str) -> &str {
    match name {
        "trace.fault_transient" | "flight.transient" => "transient",
        "trace.fault_corruption" | "flight.corruption" | "engine.corruptions_detected" => {
            "corruption"
        }
        "trace.fault_deadline" | "flight.deadline" | "engine.deadline_exceeded" => "deadline",
        "trace.fault_worker_panic" | "flight.worker_panic" | "engine.worker_panics" => {
            "worker_panic"
        }
        "trace.fault_peer_down" | "flight.peer_down" => "peer_down",
        "flight.retry" | "engine.retries" => "retry",
        other => other,
    }
}

/// Merge a trace-based diagnosis with a flight-dump diagnosis of the same
/// run. The trace side is authoritative (full timeline, cache, solver);
/// the flight side contributes only what the trace did not already report:
/// fault families the trace missed, membership transitions outside the
/// trace's instants, anomalies and tier histograms unique to the window —
/// so overlapping findings appear once instead of once per source.
pub fn merge_diagnoses(trace: &Diagnosis, flight: &Diagnosis) -> Diagnosis {
    let mut out = trace.clone();
    out.events = trace.events.max(flight.events);
    out.iterations = trace.iterations.max(flight.iterations);

    // Faults: one row per canonical family; the trace's count wins when
    // both channels saw the family.
    for f in &flight.faults {
        let family = canonical_fault_family(&f.name);
        if !out
            .faults
            .iter()
            .any(|t| canonical_fault_family(&t.name) == family)
        {
            out.faults.push(f.clone());
        }
    }

    // Membership: exact-key dedupe.
    for m in &flight.membership {
        if !out
            .membership
            .iter()
            .any(|t| (t.tick, t.node, t.crashed) == (m.tick, m.node, m.crashed))
        {
            out.membership.push(m.clone());
        }
    }
    out.membership.sort_by_key(|m| (m.tick, m.crashed, m.node));

    // Anomalies: dedupe by (kind, tick).
    for a in &flight.anomalies {
        if !out
            .anomalies
            .iter()
            .any(|t| t.kind == a.kind && t.tick == a.tick)
        {
            out.anomalies.push(a.clone());
        }
    }
    out.anomalies
        .sort_by(|a, b| (a.tick, a.kind.as_str()).cmp(&(b.tick, b.kind.as_str())));

    // Tier latency: the flight histograms fill tiers the trace lacked.
    for t in &flight.tiers {
        if !out.tiers.iter().any(|have| have.tier == t.tier) {
            out.tiers.push(t.clone());
        }
    }

    // SLO verdicts only ever come from one source (the telemetry stream).
    if out.slo.is_empty() {
        out.slo = flight.slo.clone();
    }

    // Findings: keep the trace's, minus the lines we recompute from the
    // merged tables; carry the flight trigger line for provenance.
    out.verdicts.retain(|v| {
        !v.starts_with("membership:")
            && !v.contains("fault event(s)")
            && !v.starts_with("anomalies:")
    });
    if let Some(trigger) = flight
        .verdicts
        .iter()
        .find(|v| v.starts_with("flight dump trigger:"))
    {
        out.verdicts.push(trigger.clone());
    }
    if !out.faults.is_empty() {
        let total: u64 = out.faults.iter().map(|f| f.count).sum();
        out.verdicts.push(format!(
            "{total} fault event(s) recorded and recovered across {} families",
            out.faults.len()
        ));
    }
    if !out.membership.is_empty() {
        out.verdicts.push(membership_verdict(&out.membership));
    }
    if !out.anomalies.is_empty() {
        out.verdicts.push(anomaly_verdict(&out.anomalies));
    }
    out
}

/// Diagnose a run from a flight-recorder dump (`flightdump_*.json`)
/// instead of a full trace: the dump's retained `Stage` events feed the
/// same [`BottleneckAnalyzer`], its tier histograms become the same
/// [`TierLatency`] table, and its fault/retry/escalation events the same
/// fault summary — so a crashed run diagnoses like a traced one, just over
/// the last-K window the recorder kept.
pub fn diagnose_flight(dump_text: &str) -> Result<Diagnosis, String> {
    let dump = FlightDump::from_json(dump_text)?;

    // Rebuild per-iteration GPU samples from the retained Stage events.
    let mut by_iter: BTreeMap<u64, Vec<GpuIterSample>> = BTreeMap::new();
    let mut gap_events = 0u64;
    let mut fault_counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut flip_ticks = 0u64;
    let mut flips_total = 0u64;
    let mut member_raw: Vec<(u64, u32, bool)> = Vec::new();
    let mut anomaly_raw: Vec<(u64, lobster_metrics::DetectorKind, u64, u64)> = Vec::new();
    for rec in &dump.events {
        match rec.event {
            FlightEvent::Stage {
                iter,
                node,
                gpu,
                iter_us,
                stages,
            } => {
                by_iter.entry(iter).or_default().push(GpuIterSample {
                    node,
                    gpu,
                    iter_s: iter_us as f64 / 1e6,
                    stages,
                });
            }
            FlightEvent::Iteration { .. } => gap_events += 1,
            FlightEvent::RoleFlip { flips, .. } => {
                flip_ticks += 1;
                flips_total += flips as u64;
            }
            FlightEvent::Fault { kind, .. } => {
                *fault_counts
                    .entry(format!("flight.{}", kind.label()))
                    .or_default() += 1;
            }
            FlightEvent::Retry { .. } => {
                *fault_counts.entry("flight.retry".to_string()).or_default() += 1;
            }
            FlightEvent::Escalation { .. } => {
                *fault_counts
                    .entry("flight.deadline_escalation".to_string())
                    .or_default() += 1;
            }
            FlightEvent::Divergence { .. } => {
                *fault_counts
                    .entry("flight.conformance_divergence".to_string())
                    .or_default() += 1;
            }
            FlightEvent::MembershipChange {
                tick,
                node,
                crashed,
            } => member_raw.push((tick, node, crashed)),
            FlightEvent::Anomaly {
                kind,
                tick,
                value,
                baseline,
            } => anomaly_raw.push((tick, kind, value, baseline)),
        }
    }

    let mut analyzer = BottleneckAnalyzer::new(AnalysisConfig::default());
    for (&iter, samples) in &by_iter {
        analyzer.observe_iteration(iter, samples);
    }
    let analysis = analyzer.report();

    // Phase split over the retained window, same thirds as the trace path.
    let groups: Vec<(&u64, &Vec<GpuIterSample>)> = by_iter.iter().collect();
    let mut phases = Vec::new();
    let n = groups.len();
    if n > 0 {
        let bounds = [(0, n / 3), (n / 3, 2 * n / 3), (2 * n / 3, n)];
        for (i, &(lo, hi)) in bounds.iter().enumerate() {
            if lo >= hi {
                continue;
            }
            let mut pa = BottleneckAnalyzer::default();
            for &(iter, samples) in &groups[lo..hi] {
                pa.observe_iteration(*iter, samples);
            }
            let r = pa.report();
            phases.push(PhaseDiagnosis {
                phase: phase_name(i).to_string(),
                iterations: (hi - lo) as u64,
                mean_gap_ms: r.mean_gap_s * 1e3,
                dominant: r.dominant_category().map(|c| c.label().to_string()),
            });
        }
    }

    let tiers: Vec<TierLatency> = FlightTier::ALL
        .iter()
        .filter_map(|&t| {
            let h = dump.tier_histogram(t)?;
            (h.count() > 0).then(|| TierLatency {
                tier: t.label().to_string(),
                count: h.count(),
                p50_us: h.percentile(50.0).unwrap_or(0.0),
                p95_us: h.percentile(95.0).unwrap_or(0.0),
                p99_us: h.percentile(99.0).unwrap_or(0.0),
            })
        })
        .collect();

    let faults: Vec<FaultCount> = fault_counts
        .into_iter()
        .map(|(name, count)| FaultCount { name, count })
        .collect();

    let top_bottleneck = analysis.dominant_category().map(|c| c.label().to_string());
    let straggler = analysis.top_straggler().map(|(node, gpu)| StragglerCall {
        node,
        gpu,
        dominant: analysis
            .episodes
            .iter()
            .rfind(|e| e.node == node && e.gpu == gpu)
            .map(|e| e.dominant.label().to_string()),
        episodes: analysis.episodes.len() as u64,
    });

    let mut verdicts = vec![format!(
        "flight dump trigger: {} ({} of {} recorded events retained)",
        dump.trigger,
        dump.events.len(),
        dump.total_events
    )];
    if let Some(cat) = &top_bottleneck {
        let share = lobster_metrics::BlameCategory::ALL
            .iter()
            .find(|c| c.label() == cat)
            .map(|&c| analysis.cluster.get(c) / analysis.cluster.pipeline_s().max(1e-12))
            .unwrap_or(0.0);
        verdicts.push(format!(
            "dominant pipeline bottleneck: {cat} ({:.0}% of blamed loading time)",
            share * 100.0
        ));
    }
    if let Some(s) = &straggler {
        verdicts.push(format!(
            "straggler: node {} gpu {} ({} flagged episode(s))",
            s.node, s.gpu, s.episodes
        ));
    }
    if analysis.iterations > 0 {
        verdicts.push(format!(
            "Eq.-3 gap over the retained window: mean {:.1} ms, max {:.1} ms, final EWMA {:.1} ms",
            analysis.mean_gap_s * 1e3,
            analysis.max_gap_s * 1e3,
            analysis.ewma_gap_s * 1e3
        ));
        if let (Some(p50), Some(p99)) = (analysis.p50_gap_s, analysis.p99_gap_s) {
            verdicts.push(format!(
                "Eq.-3 gap tail: p50 {:.1} ms, p99 {:.1} ms",
                p50 * 1e3,
                p99 * 1e3
            ));
        }
    }
    if flip_ticks > 0 {
        verdicts.push(format!(
            "elastic controller: {flips_total} role flip(s) across {flip_ticks} tick(s) in the window"
        ));
    }
    if !faults.is_empty() {
        let total: u64 = faults.iter().map(|f| f.count).sum();
        verdicts.push(format!(
            "{total} fault event(s) in the window across {} families",
            faults.len()
        ));
    }

    // Membership transitions retained in the window, phase-attributed
    // against the iterations the window actually covers.
    let iter_numbers: Vec<u64> = by_iter.keys().copied().collect();
    member_raw.sort_by_key(|&(tick, node, crashed)| (tick, crashed, node));
    let membership: Vec<MembershipNote> = member_raw
        .into_iter()
        .map(|(tick, node, crashed)| MembershipNote {
            tick,
            node,
            crashed,
            phase: phase_of(&iter_numbers, tick),
        })
        .collect();
    if !membership.is_empty() {
        verdicts.push(membership_verdict(&membership));
    }

    // Anomaly flight events onto the timeline (the dump's fixed-size
    // variant carries no onset/severity; the telemetry sidecar does).
    anomaly_raw.sort_by_key(|&(tick, kind, ..)| (tick, kind.label()));
    let anomalies: Vec<AnomalyNote> = anomaly_raw
        .into_iter()
        .map(|(tick, kind, value, baseline)| AnomalyNote {
            kind: kind.label().to_string(),
            tick,
            onset_tick: tick,
            value,
            baseline,
            severity: 0,
            phase: phase_of(&iter_numbers, tick),
        })
        .collect();
    if !anomalies.is_empty() {
        verdicts.push(anomaly_verdict(&anomalies));
    }

    // Iterations seen: Stage groups are authoritative; fall back to the
    // Iteration gap events when a dump holds only those.
    let iterations = (by_iter.len() as u64).max(gap_events);

    Ok(Diagnosis {
        events: dump.events.len() as u64,
        iterations,
        analysis,
        phases,
        tiers,
        cache: CacheTrajectory::default(),
        solver: Vec::new(),
        faults,
        membership,
        anomalies,
        slo: Vec::new(),
        top_bottleneck,
        straggler,
        verdicts,
    })
}

/// Human-readable report.
pub fn render(d: &Diagnosis) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "lobster_doctor: {} events, {} iterations reconstructed\n\n",
        d.events, d.iterations
    ));
    out.push_str("== findings ==\n");
    for v in &d.verdicts {
        out.push_str(&format!("  * {v}\n"));
    }

    if !d.phases.is_empty() {
        out.push_str("\n== bottleneck by phase ==\n");
        let mut t = Table::new(["phase", "iterations", "mean gap", "dominant"]);
        for p in &d.phases {
            t.row([
                p.phase.clone(),
                p.iterations.to_string(),
                format!("{:.1}ms", p.mean_gap_ms),
                p.dominant.clone().unwrap_or_else(|| "-".to_string()),
            ]);
        }
        out.push_str(&t.render());
    }

    if !d.tiers.is_empty() {
        out.push_str("\n== fetch latency by tier ==\n");
        let mut t = Table::new(["tier", "fetches", "p50", "p95", "p99"]);
        for tier in &d.tiers {
            t.row([
                tier.tier.clone(),
                tier.count.to_string(),
                format!("{:.0}us", tier.p50_us),
                format!("{:.0}us", tier.p95_us),
                format!("{:.0}us", tier.p99_us),
            ]);
        }
        out.push_str(&t.render());
    }

    if !d.membership.is_empty() {
        out.push_str("\n== membership ==\n");
        let mut t = Table::new(["tick", "node", "transition", "phase"]);
        for m in &d.membership {
            t.row([
                m.tick.to_string(),
                m.node.to_string(),
                (if m.crashed { "crash" } else { "rejoin" }).to_string(),
                m.phase.clone(),
            ]);
        }
        out.push_str(&t.render());
    }

    if d.cache.points > 0 {
        out.push_str(&format!(
            "\n== cache ==\nlocal {} / remote {} / miss {} (hit ratio {:.0}% -> {:.0}%)\n",
            d.cache.local_hits,
            d.cache.remote_hits,
            d.cache.misses,
            d.cache.first_hit_ratio * 100.0,
            d.cache.last_hit_ratio * 100.0
        ));
    }

    if !d.solver.is_empty() {
        out.push_str("\n== solver convergence ==\n");
        let mut t = Table::new(["ts", "evals", "converged", "gap before", "gap after"]);
        for s in &d.solver {
            let fmt_gap = |g: Option<f64>| {
                g.map(|v| format!("{v:.1}ms"))
                    .unwrap_or_else(|| "-".to_string())
            };
            t.row([
                format!("{}us", s.ts_us),
                s.evals.to_string(),
                if s.converged { "yes" } else { "no" }.to_string(),
                fmt_gap(s.gap_before_ms),
                fmt_gap(s.gap_after_ms),
            ]);
        }
        out.push_str(&t.render());
    }

    if !d.faults.is_empty() {
        out.push_str("\n== faults ==\n");
        for f in &d.faults {
            out.push_str(&format!("  {}  {}\n", f.name, f.count));
        }
    }

    if !d.anomalies.is_empty() {
        out.push_str("\n== anomaly timeline ==\n");
        let mut t = Table::new(["tick", "detector", "value", "baseline", "onset", "phase"]);
        for a in &d.anomalies {
            t.row([
                a.tick.to_string(),
                a.kind.clone(),
                a.value.to_string(),
                a.baseline.to_string(),
                a.onset_tick.to_string(),
                a.phase.clone(),
            ]);
        }
        out.push_str(&t.render());
    }

    if !d.slo.is_empty() {
        out.push_str("\n== slo ==\n");
        let mut t = Table::new([
            "spec",
            "frames",
            "violations",
            "burn",
            "worst tick",
            "verdict",
        ]);
        for v in &d.slo {
            t.row([
                v.spec.clone(),
                v.frames.to_string(),
                v.violations.to_string(),
                format!("{:.1}%", v.burn_pct),
                if v.violations > 0 {
                    v.worst_tick.to_string()
                } else {
                    "-".to_string()
                },
                if v.pass { "PASS" } else { "FAIL" }.to_string(),
            ]);
        }
        out.push_str(&t.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobster_metrics::{DecisionSource, TraceBuffer, TraceEvent};

    /// Three iterations, two GPUs; GPU 1 straggles on PFS fetches and a
    /// decision lands between iterations 1 and 2, after which the gap
    /// narrows.
    fn synthetic_trace() -> (String, Vec<DecisionRecord>) {
        let buf = TraceBuffer::new();
        let mut t0 = 0u64;
        // (gpu0 pipe, gpu1 pipe) per iteration, µs; train 50 ms.
        for (h, (p0, p1)) in [(10_000u64, 90_000u64), (10_000, 80_000), (10_000, 30_000)]
            .into_iter()
            .enumerate()
        {
            let h = h as u64;
            for (gpu, pipe) in [(0u32, p0), (1u32, p1)] {
                buf.push(
                    TraceEvent::span("fetch", "io", t0, pipe)
                        .pid(0)
                        .tid(gpu)
                        .arg_u("local", (gpu == 0) as u64)
                        .arg_u("pfs", (gpu == 1) as u64),
                );
                buf.push(
                    TraceEvent::span("train", "compute", t0 + pipe, 50_000)
                        .pid(0)
                        .tid(gpu)
                        .arg_u("iter", h),
                );
                let arrival = t0 + pipe + 50_000;
                let barrier_end = t0 + p0.max(p1) + 50_000;
                buf.push(
                    TraceEvent::span("barrier_wait", "sync", arrival, barrier_end - arrival)
                        .pid(0)
                        .tid(gpu)
                        .arg_u("iter", h),
                );
            }
            buf.push(
                TraceEvent::instant("cache", "cache", t0)
                    .pid(0)
                    .arg_u("local_hits", 2 + h)
                    .arg_u("misses", 2 - h.min(2)),
            );
            t0 += p0.max(p1) + 50_000;
        }
        buf.push(TraceEvent::instant("fault_transient", "fault", 1_000).pid(0));
        let decision = DecisionRecord {
            ts_us: 265_000, // between iteration 1's barrier and iteration 2's
            source: DecisionSource::Algorithm1,
            node: 0,
            queue_loads: vec![1.0, 3.0],
            predicted_cost: vec![0.05, 0.05],
            threads_before: vec![2, 2],
            threads_after: vec![1, 3],
            gap_s: Some(0.02),
            evals: 6,
            converged: true,
            anomalies_before: 0,
        };
        (buf.chrome_trace_json(), vec![decision])
    }

    #[test]
    fn diagnoses_the_synthetic_straggler_run() {
        let (trace, decisions) = synthetic_trace();
        let d = diagnose(&trace, None, &decisions).unwrap();
        assert!(!d.is_empty());
        assert_eq!(d.iterations, 3);
        assert_eq!(d.top_bottleneck.as_deref(), Some("pfs_fetch"));
        let s = d.straggler.as_ref().expect("straggler named");
        assert_eq!((s.node, s.gpu), (0, 1));
        // The decision joined against the gap on both sides and shrank it.
        assert_eq!(d.solver.len(), 1);
        assert_eq!(d.solver[0].evals, 6);
        let before = d.solver[0].gap_before_ms.unwrap();
        let after = d.solver[0].gap_after_ms.unwrap();
        assert!(after < before, "gap {before} -> {after}");
        assert_eq!(d.faults.len(), 1);
        assert!(d.faults[0].name.contains("fault_transient"));
        assert!(d.phases.len() == 3 && d.phases[0].phase == "warm-up");
        let text = render(&d);
        assert!(text.contains("straggler: node 0 gpu 1"));
        assert!(text.contains("pfs_fetch"));
        assert!(text.contains("solver convergence"));
    }

    #[test]
    fn diagnosis_round_trips_through_json() {
        let (trace, decisions) = synthetic_trace();
        let d = diagnose(&trace, None, &decisions).unwrap();
        let json = serde_json::to_string_pretty(&d).unwrap();
        let back: Diagnosis = serde_json::from_str(&json).unwrap();
        assert_eq!(back.iterations, d.iterations);
        assert_eq!(back.top_bottleneck, d.top_bottleneck);
        assert_eq!(back.verdicts, d.verdicts);
        assert_eq!(back.solver.len(), d.solver.len());
        assert_eq!(
            serde_json::to_string_pretty(&back).unwrap(),
            json,
            "serialize -> parse -> serialize is a fixed point"
        );
    }

    #[test]
    fn empty_or_garbage_traces_are_errors_not_empty_reports() {
        assert!(diagnose("", None, &[]).is_err());
        assert!(diagnose("no json here", None, &[]).is_err());
    }

    #[test]
    fn diagnoses_a_flight_dump_without_a_trace() {
        use lobster_metrics::analysis::BlameCategory;
        use lobster_metrics::{FlightEvent, FlightFault, FlightRecorder, FlightTier, StageSample};

        // Six iterations, two GPUs; GPU 1 straggles on PFS fetches.
        let rec = FlightRecorder::new(128);
        for iter in 0..6u64 {
            for gpu in 0..2u32 {
                let mut stages = StageSample::default();
                let pipe_s = if gpu == 1 { 0.08 } else { 0.01 };
                stages.add(BlameCategory::PfsFetch, pipe_s);
                stages.add(BlameCategory::Train, 0.05);
                rec.record(
                    iter * 1000,
                    FlightEvent::Stage {
                        iter,
                        node: 0,
                        gpu,
                        iter_us: ((pipe_s + 0.05) * 1e6) as u64,
                        stages,
                    },
                );
            }
            rec.record(
                iter * 1000 + 500,
                FlightEvent::Iteration {
                    iter,
                    gap_us: 70_000,
                    ewma_gap_us: 70_000,
                },
            );
        }
        rec.record(
            9000,
            FlightEvent::Fault {
                kind: FlightFault::WorkerPanic,
                sample: 42,
            },
        );
        rec.record_fetch_us(FlightTier::Cache, 80);
        rec.record_fetch_us(FlightTier::Store, 4000);
        rec.record_fetch_us(FlightTier::Store, 5000);

        let dump = rec.dump("worker_panic");
        let d = diagnose_flight(&dump.to_json()).expect("valid dump");
        assert!(!d.is_empty());
        assert_eq!(d.iterations, 6);
        assert_eq!(d.top_bottleneck.as_deref(), Some("pfs_fetch"));
        assert_eq!(d.tiers.len(), 2);
        let store = d.tiers.iter().find(|t| t.tier == "store").unwrap();
        assert_eq!(store.count, 2);
        assert!(store.p99_us >= 4000.0);
        assert_eq!(d.faults.len(), 1);
        assert_eq!(d.faults[0].name, "flight.worker_panic");
        assert!(d.verdicts[0].contains("worker_panic"), "{:?}", d.verdicts);
        assert_eq!(d.phases.len(), 3);

        let text = render(&d);
        assert!(text.contains("pfs_fetch"));
        assert!(text.contains("store"));
    }

    #[test]
    fn flight_diagnosis_rejects_foreign_json() {
        assert!(diagnose_flight("{}").is_err());
        assert!(diagnose_flight("{\"kind\":\"other\"}").is_err());
    }

    #[test]
    fn telemetry_sidecar_attaches_anomalies_and_slo_sections() {
        use lobster_metrics::{Anomaly, DetectorKind, SloVerdict};

        let (trace, decisions) = synthetic_trace();
        let mut d = diagnose(&trace, None, &decisions).unwrap();
        let lines = vec![
            TelemetryLine::Anomaly(Anomaly {
                kind: DetectorKind::ThroughputCliff,
                tick: 2,
                onset_tick: 2,
                value: 130_000,
                baseline: 60_000,
                severity: 554,
            }),
            TelemetryLine::Slo(SloVerdict {
                spec: "gap_us<100".to_string(),
                frames: 3,
                violations: 3,
                burn_pct: 100.0,
                worst_tick: 0,
                worst_value: 80_000.0,
                pass: false,
            }),
        ];
        attach_telemetry(&mut d, &lines);
        assert_eq!(d.anomalies.len(), 1);
        assert_eq!(d.anomalies[0].kind, "throughput-cliff");
        assert_eq!(d.anomalies[0].phase, "tail", "tick 2 of 3 is the tail");
        assert_eq!(d.slo.len(), 1);
        // Re-attaching the same anomaly dedupes; the SLO table appends.
        attach_telemetry(&mut d, &lines[..1]);
        assert_eq!(d.anomalies.len(), 1);

        let text = render(&d);
        assert!(text.contains("== anomaly timeline =="), "{text}");
        assert!(text.contains("throughput-cliff"));
        assert!(text.contains("== slo =="));
        assert!(text.contains("FAIL"));
        assert!(d.verdicts.iter().any(|v| v.starts_with("anomalies:")));
        assert!(d
            .verdicts
            .iter()
            .any(|v| v.contains("1 of 1 spec(s) violated")));
    }

    /// Satellite regression: a run reported through BOTH the trace and a
    /// flight dump must not double-report the same fault family or
    /// membership transition in the merged diagnosis.
    #[test]
    fn merged_trace_plus_flight_diagnosis_dedupes_overlapping_findings() {
        use lobster_metrics::{FlightEvent, FlightFault, FlightRecorder};

        // Trace side: one transient fault instant plus a membership pair.
        let (trace_json, decisions) = {
            let buf = TraceBuffer::new();
            let mut t0 = 0u64;
            for h in 0..3u64 {
                for gpu in 0..2u32 {
                    let pipe = if gpu == 1 { 60_000 } else { 10_000 };
                    buf.push(
                        TraceEvent::span("fetch", "io", t0, pipe)
                            .pid(0)
                            .tid(gpu)
                            .arg_u("pfs", 1),
                    );
                    buf.push(
                        TraceEvent::span("train", "compute", t0 + pipe, 50_000)
                            .pid(0)
                            .tid(gpu)
                            .arg_u("iter", h),
                    );
                    let arrival = t0 + pipe + 50_000;
                    let end = t0 + 60_000 + 50_000;
                    buf.push(
                        TraceEvent::span("barrier_wait", "sync", arrival, end - arrival)
                            .pid(0)
                            .tid(gpu)
                            .arg_u("iter", h),
                    );
                }
                t0 += 110_000;
            }
            buf.push(TraceEvent::instant("fault_transient", "fault", 1_000).pid(0));
            buf.push(
                TraceEvent::instant("node_crash", "membership", 2_000)
                    .pid(1)
                    .arg_u("iter", 1)
                    .arg_u("node", 1),
            );
            (buf.chrome_trace_json(), Vec::new())
        };
        let trace_d = diagnose(&trace_json, None, &decisions).unwrap();

        // Flight side: the SAME transient fault and crash, plus one fault
        // family (deadline) and one membership event the trace missed.
        let rec = FlightRecorder::new(64);
        rec.record(
            1_000,
            FlightEvent::Fault {
                kind: FlightFault::Transient,
                sample: 7,
            },
        );
        rec.record(
            3_000,
            FlightEvent::Fault {
                kind: FlightFault::Deadline,
                sample: 9,
            },
        );
        rec.record(
            2_000,
            FlightEvent::MembershipChange {
                tick: 1,
                node: 1,
                crashed: true,
            },
        );
        rec.record(
            4_000,
            FlightEvent::MembershipChange {
                tick: 2,
                node: 1,
                crashed: false,
            },
        );
        let flight_d = diagnose_flight(&rec.dump("test").to_json()).unwrap();

        let merged = merge_diagnoses(&trace_d, &flight_d);

        // One transient row (trace's), one deadline row (flight-only).
        let transient: Vec<&FaultCount> = merged
            .faults
            .iter()
            .filter(|f| canonical_fault_family(&f.name) == "transient")
            .collect();
        assert_eq!(transient.len(), 1, "deduped: {:?}", merged.faults);
        assert_eq!(transient[0].name, "trace.fault_transient");
        assert!(merged
            .faults
            .iter()
            .any(|f| canonical_fault_family(&f.name) == "deadline"));

        // Crash at tick 1 appears once; the flight-only rejoin survives.
        let crashes: Vec<&MembershipNote> = merged
            .membership
            .iter()
            .filter(|m| m.crashed && m.tick == 1 && m.node == 1)
            .collect();
        assert_eq!(crashes.len(), 1, "deduped: {:?}", merged.membership);
        assert!(merged.membership.iter().any(|m| !m.crashed && m.tick == 2));

        // Findings mention each family once and carry flight provenance.
        let fault_lines: Vec<&String> = merged
            .verdicts
            .iter()
            .filter(|v| v.contains("fault event(s)"))
            .collect();
        assert_eq!(fault_lines.len(), 1, "{:?}", merged.verdicts);
        let member_lines: Vec<&String> = merged
            .verdicts
            .iter()
            .filter(|v| v.starts_with("membership:"))
            .collect();
        assert_eq!(member_lines.len(), 1);
        assert!(member_lines[0].contains("1 crash(es), 1 rejoin(s)"));
        assert!(merged
            .verdicts
            .iter()
            .any(|v| v.starts_with("flight dump trigger:")));
    }
}
