//! `telemetry_smoke` — CI gate for the telemetry plane (DESIGN.md §14).
//!
//! Two checks, both deterministic:
//!
//! 1. **Seeded slowdown, detected ±1 tick.** A synthetic per-tick stream
//!    runs at a steady iteration time until `--slowdown-at`, where it
//!    slows by `--slowdown-factor`. The stream is fed through the real
//!    `Instruments::record_tick` path (frames and anomalies land on the
//!    `--telemetry-out` JSONL feed `lobster_top` tails), and the first
//!    throughput-cliff firing must sit within ±1 tick of the seeded
//!    onset; the level-shift detector must localize the same onset.
//! 2. **Live crash/rejoin, attributed online.** The live engine runs a
//!    scheduled node crash (tick 2) and rejoin (tick 5); the online
//!    membership-change firings must carry exactly those ticks and masks.
//!
//! ```text
//! telemetry_smoke [--telemetry-out <file>] [--ticks <n>]
//!                 [--slowdown-at <tick>] [--slowdown-factor <n>]
//!                 [--slo <specs>]
//! ```
//!
//! `--slo` evaluates the §14 spec grammar over the synthetic stream's
//! frames at the end (verdicts also land on the JSONL feed). Exit codes:
//! `0` — detections and SLOs all good; `1` — a detector missed its tick
//! budget or an SLO is violated; `2` — usage or I/O errors.

use lobster_metrics::{parse_slo_specs, DetectorKind, Instruments, TickScalars};
use lobster_runtime::{run_with, EngineConfig, SyntheticStore};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: telemetry_smoke [--telemetry-out <file>] [--ticks <n>]\n\
         \x20                      [--slowdown-at <tick>] [--slowdown-factor <n>] [--slo <specs>]"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("TELEMETRY SMOKE FAILED: {msg}");
    std::process::exit(1);
}

/// The synthetic per-tick workload: a healthy pipeline with a small
/// deterministic wiggle, slowed by `factor` from `slow_at` onward.
fn frame(tick: u64, slow_at: u64, factor: u64) -> TickScalars {
    let base_iter = 10_000 + (tick % 5) * 16;
    let iter_us = if tick >= slow_at {
        base_iter * factor
    } else {
        base_iter
    };
    TickScalars {
        tick,
        gap_us: 900 + (tick % 7) * 3,
        iter_us,
        local_hits: 52,
        remote_hits: 9,
        misses: 3,
        prefetched: 12,
        evictions: 4,
        retries: 0,
        delivered: 64,
        preproc_workers: 2,
        loader_workers: 6,
        down_mask: 0,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = PathBuf::from("telemetry_smoke.jsonl");
    let mut ticks = 48u64;
    let mut slow_at = 24u64;
    let mut factor = 3u64;
    let mut slo_text: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--telemetry-out" | "--ticks" | "--slowdown-at" | "--slowdown-factor" | "--slo" => {
                if i + 1 >= args.len() {
                    usage();
                }
                let value = &args[i + 1];
                match args[i].as_str() {
                    "--telemetry-out" => out_path = PathBuf::from(value),
                    "--ticks" => ticks = value.parse().unwrap_or_else(|_| usage()),
                    "--slowdown-at" => slow_at = value.parse().unwrap_or_else(|_| usage()),
                    "--slowdown-factor" => factor = value.parse().unwrap_or_else(|_| usage()),
                    _ => slo_text = Some(value.clone()),
                }
                i += 2;
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if slow_at + 2 > ticks || factor < 3 {
        // The cliff detector wants a > 2x tick-over-tick jump, and the
        // stream needs post-onset room for CUSUM to localize the shift.
        usage();
    }
    let specs = slo_text
        .as_deref()
        .map(|t| {
            parse_slo_specs(t).unwrap_or_else(|e| {
                eprintln!("error: bad --slo spec: {e}");
                std::process::exit(2);
            })
        })
        .unwrap_or_default();

    // ---- 1. Seeded slowdown through the real record path. ----
    let ins = Instruments::enabled();
    if let Err(e) = ins.set_telemetry_out(&out_path) {
        eprintln!("error: cannot open {}: {e}", out_path.display());
        std::process::exit(2);
    }
    for t in 0..ticks {
        ins.record_tick(frame(t, slow_at, factor));
    }
    let verdicts = ins.evaluate_slos(&specs);
    ins.flush_telemetry();

    let anomalies = ins.telemetry_anomalies();
    let first_cliff = anomalies
        .iter()
        .find(|a| a.kind == DetectorKind::ThroughputCliff)
        .unwrap_or_else(|| fail("seeded slowdown fired no throughput-cliff anomaly"));
    if first_cliff.tick.abs_diff(slow_at) > 1 {
        fail(&format!(
            "throughput-cliff at tick {} — outside ±1 of the seeded onset {slow_at}",
            first_cliff.tick
        ));
    }
    println!(
        "telemetry smoke: slowdown seeded at tick {slow_at} (factor {factor}), \
         throughput-cliff fired at tick {} — within ±1",
        first_cliff.tick
    );
    let shift = anomalies
        .iter()
        .find(|a| a.kind == DetectorKind::LevelShift)
        .unwrap_or_else(|| fail("seeded slowdown fired no level-shift anomaly"));
    if shift.onset_tick.abs_diff(slow_at) > 1 {
        fail(&format!(
            "level-shift localized onset tick {} — outside ±1 of the seeded onset {slow_at}",
            shift.onset_tick
        ));
    }
    println!(
        "telemetry smoke: level-shift fired at tick {} with onset localized to tick {}",
        shift.tick, shift.onset_tick
    );
    println!("telemetry smoke: stream -> {}", out_path.display());

    // ---- 2. Live engine crash/rejoin, attributed online. ----
    let dataset = lobster_data::Dataset::generate(
        "telemetry-smoke",
        96,
        lobster_data::SizeDistribution::Uniform {
            lo: 1_000,
            hi: 8_000,
        },
        17,
    );
    let cfg = EngineConfig {
        consumers: 2,
        batch_size: 4,
        loader_threads: 3,
        preproc_threads: 2,
        epochs: 2,
        seed: 17,
        train: Duration::from_micros(200),
        crashes: vec![lobster_storage::CrashSpec {
            node: 1,
            tick: 2,
            rejoin: Some(5),
        }],
        peer_nodes: 3,
        ..EngineConfig::default()
    };
    let store = Arc::new(SyntheticStore::new(dataset, Duration::ZERO, 0.0));
    let eng_ins = Instruments::enabled();
    let report = run_with(store, cfg, eng_ins.clone());
    if report.aborted {
        fail("crash/rejoin engine run aborted");
    }
    let membership: Vec<_> = report
        .anomalies
        .iter()
        .filter(|a| a.kind == DetectorKind::MembershipChange)
        .collect();
    let attributed = membership.len() == 2
        && (membership[0].tick, membership[0].value) == (2, 2)
        && (membership[1].tick, membership[1].value) == (5, 0);
    if !attributed {
        fail(&format!(
            "crash at tick 2 / rejoin at tick 5 misattributed: {membership:?}"
        ));
    }
    println!(
        "telemetry smoke: live engine crash@2/rejoin@5 attributed online \
         ({} total anomaly firing(s))",
        report.anomalies.len()
    );

    // ---- SLO verdicts over the synthetic stream. ----
    let mut violated = false;
    for v in &verdicts {
        println!(
            "telemetry smoke: slo {} — {} of {} frame(s) violating, burn {:.1}% — {}",
            v.spec,
            v.violations,
            v.frames,
            v.burn_pct,
            if v.pass { "PASS" } else { "FAIL" }
        );
        violated |= !v.pass;
    }
    if violated {
        eprintln!("TELEMETRY SMOKE FAILED: violated SLO");
        std::process::exit(1);
    }
    println!("telemetry smoke passed");
}
