//! Figure 9: training-accuracy curves for ResNet-50 on ImageNet-1K with
//! PyTorch DataLoader vs Lobster (8 nodes × 64 GPUs in the paper). The
//! loaders share the sampling order (same data seed); only the weight-init
//! seed differs, so the curves must track each other and both converge to
//! 76.0% top-1 in around 40 epochs — Lobster changes *when* batches arrive,
//! never *which* batches.

use lobster_bench::{params_from_args, BenchParams};
use lobster_metrics::{ResultSink, Table};
use lobster_pipeline::{max_gap, simulate_accuracy};
use serde::Serialize;

#[derive(Serialize)]
struct Fig9Result {
    epochs: usize,
    pytorch: Vec<f64>,
    lobster: Vec<f64>,
    max_gap: f64,
    pytorch_converged_epoch: Option<usize>,
    lobster_converged_epoch: Option<usize>,
}

fn main() {
    let params = params_from_args(BenchParams {
        scale: 1,
        epochs: 60,
        seed: 42,
    });
    let epochs = params.epochs as usize;
    let model = lobster_core::models::resnet50();
    println!(
        "Figure 9 — accuracy curves, ResNet-50 / ImageNet-1K, {} epochs\n",
        epochs
    );

    // Identical data seed (shared sampling), different weight seeds.
    let pytorch = simulate_accuracy("pytorch", &model, epochs, params.seed, 1001);
    let lobster = simulate_accuracy("lobster", &model, epochs, params.seed, 2002);

    let mut t = Table::new(["epoch", "pytorch top-1", "lobster top-1"]);
    for e in (4..=epochs).step_by(5) {
        t.row([
            e.to_string(),
            format!("{:.1}%", pytorch.per_epoch[e - 1] * 100.0),
            format!("{:.1}%", lobster.per_epoch[e - 1] * 100.0),
        ]);
    }
    print!("{}", t.render());

    let gap = max_gap(&pytorch, &lobster);
    let pt_conv = pytorch.epochs_to_reach(0.755);
    let lb_conv = lobster.epochs_to_reach(0.755);
    println!(
        "\nmax per-epoch gap between loaders: {:.2} points",
        gap * 100.0
    );
    println!(
        "epochs to 75.5%: pytorch {:?}, lobster {:?} (paper: ~40 for both)",
        pt_conv, lb_conv
    );

    let result = Fig9Result {
        epochs,
        pytorch: pytorch.per_epoch.clone(),
        lobster: lobster.per_epoch.clone(),
        max_gap: gap,
        pytorch_converged_epoch: pt_conv,
        lobster_converged_epoch: lb_conv,
    };
    let path = ResultSink::default_location()
        .write_json("fig09_accuracy", &result)
        .expect("write results");
    println!("results -> {}", path.display());
}
