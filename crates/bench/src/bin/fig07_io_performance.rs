//! Figure 7: I/O performance of Lobster vs PyTorch DataLoader, DALI, NoPFS.
//!
//! (a) single node × 8 GPUs, ImageNet-1K;
//! (b) single node × 8 GPUs, ImageNet-22K;
//! (c) 8 nodes × 8 GPUs, ImageNet-22K;
//! (d) scalability: 1–8 nodes, ImageNet-22K, speedup vs PyTorch.
//!
//! Paper shape targets: Lobster ≈1.6×/1.8× PyTorch on (a)/(b), ≈1.7× DALI,
//! ≈1.2× NoPFS; on (c) 2.0×/1.4×/1.2×; consistent 1.2–2.0× across scales.

use lobster_bench::{
    compare_policies, paper_config, params_from_args, BenchParams, DatasetKind, PolicyRow,
    BASELINE_NAMES,
};
use lobster_core::models::resnet50;
use lobster_metrics::{fmt_pct, fmt_secs, fmt_speedup, ResultSink, Table};
use serde::Serialize;

#[derive(Serialize)]
struct Fig7Result {
    params: BenchParams,
    single_node_1k: Vec<PolicyRow>,
    single_node_22k: Vec<PolicyRow>,
    multi_node_22k: Vec<PolicyRow>,
    scalability: Vec<(usize, Vec<PolicyRow>)>,
}

fn print_rows(title: &str, rows: &[PolicyRow]) {
    println!("-- {title} --");
    let mut t = Table::new(["loader", "epoch", "speedup", "hit", "util"]);
    for r in rows {
        t.row([
            r.policy.clone(),
            fmt_secs(r.mean_epoch_s),
            fmt_speedup(r.speedup_vs_pytorch),
            fmt_pct(r.hit_ratio),
            fmt_pct(r.gpu_utilization),
        ]);
    }
    print!("{}", t.render());
    println!();
}

fn main() {
    let params = params_from_args(BenchParams {
        scale: 64,
        epochs: 4,
        seed: 42,
    });
    println!(
        "Figure 7 — I/O performance (scale 1/{}, {} epochs)\n",
        params.scale, params.epochs
    );

    let single_node_1k = compare_policies(
        || paper_config(DatasetKind::ImageNet1k, 1, resnet50(), params),
        &BASELINE_NAMES,
    );
    print_rows("(a) 1 node x 8 GPUs, ImageNet-1K", &single_node_1k);

    let single_node_22k = compare_policies(
        || paper_config(DatasetKind::ImageNet22k, 1, resnet50(), params),
        &BASELINE_NAMES,
    );
    print_rows("(b) 1 node x 8 GPUs, ImageNet-22K", &single_node_22k);

    let multi_node_22k = compare_policies(
        || paper_config(DatasetKind::ImageNet22k, 8, resnet50(), params),
        &BASELINE_NAMES,
    );
    print_rows("(c) 8 nodes x 8 GPUs, ImageNet-22K", &multi_node_22k);

    println!("-- (d) scalability, ImageNet-22K, speedup vs PyTorch --");
    let mut scalability = Vec::new();
    let mut t = Table::new(["nodes", "pytorch", "dali", "nopfs", "lobster"]);
    for nodes in [1usize, 2, 4, 8] {
        let rows = compare_policies(
            || paper_config(DatasetKind::ImageNet22k, nodes, resnet50(), params),
            &BASELINE_NAMES,
        );
        t.row([
            nodes.to_string(),
            fmt_speedup(rows[0].speedup_vs_pytorch),
            fmt_speedup(rows[1].speedup_vs_pytorch),
            fmt_speedup(rows[2].speedup_vs_pytorch),
            fmt_speedup(rows[3].speedup_vs_pytorch),
        ]);
        scalability.push((nodes, rows));
    }
    print!("{}", t.render());

    let result = Fig7Result {
        params,
        single_node_1k,
        single_node_22k,
        multi_node_22k,
        scalability,
    };
    let sink = ResultSink::default_location();
    let path = sink
        .write_json("fig07_io_performance", &result)
        .expect("write results");

    // Plot-friendly CSV: one row per (config, loader).
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut push = |config: &str, nodes: usize, policy_rows: &[PolicyRow]| {
        for r in policy_rows {
            rows.push(vec![
                config.to_string(),
                nodes.to_string(),
                r.policy.clone(),
                format!("{:.6}", r.mean_epoch_s),
                format!("{:.4}", r.speedup_vs_pytorch),
                format!("{:.4}", r.hit_ratio),
                format!("{:.4}", r.gpu_utilization),
            ]);
        }
    };
    push("1k_single", 1, &result.single_node_1k);
    push("22k_single", 1, &result.single_node_22k);
    push("22k_multi", 8, &result.multi_node_22k);
    for (nodes, policy_rows) in &result.scalability {
        push("22k_scaling", *nodes, policy_rows);
    }
    let csv = sink
        .write_csv(
            "fig07_io_performance",
            &[
                "config",
                "nodes",
                "loader",
                "epoch_s",
                "speedup",
                "hit_ratio",
                "gpu_util",
            ],
            &rows,
        )
        .expect("write csv");
    println!("\nresults -> {} and {}", path.display(), csv.display());
}
