//! Extension experiment (ISSUE 9, DESIGN.md §15): the workload diversity
//! suite beyond ImageNet epochs, and the scenario where the paper's
//! mean-based preprocessing estimate measurably loses.
//!
//! Section 1 runs every §15 workload family — Zipf-skewed popularity,
//! heavy-tailed sizes, bimodal preprocessing cost, a growing dataset, and
//! heterogeneous compute drift — through the analytical executor under the
//! adaptive policy and tabulates steady-state epoch time and hit ratio.
//!
//! Section 2 is the headline: on the bimodal-cost workload the elastic
//! pool provisioned from the *mean* per-sample work hides the average
//! batch under training but stalls the barrier whenever a batch draws more
//! slow samples than average — and light batches cannot give the time back
//! (a Jensen gap, `max(t_train, pipe)` floors at `t_train`). Provisioning
//! from the p90 work quantile ([`WorkEstimate::Quantile`]) covers the tail
//! mix; the target is ≥ 10% steady-state epoch-time improvement.
//!
//! ```sh
//! cargo run --release --bin ext_workloads
//! cargo run --release --bin ext_workloads -- --seed 7
//! cargo run --release --bin ext_workloads -- --workload bimodal:slow-frac=0.25,slow-cost=8
//! ```

use lobster_bench::workload_from_args;
use lobster_core::{policy_by_name, ModelProfile, WorkEstimate};
use lobster_data::{WorkloadFamily, WorkloadSpec};
use lobster_metrics::{fmt_secs, ResultSink, Table};
use lobster_pipeline::{ClusterSim, ConfigBuilder, ElasticSimConfig, ExperimentConfig};
use serde::Serialize;

#[derive(Serialize)]
struct FamilyRow {
    family: String,
    label: String,
    mean_epoch_s: f64,
    hit_ratio: f64,
}

#[derive(Serialize)]
struct WorkloadsResult {
    seed: u64,
    families: Vec<FamilyRow>,
    showdown_workload: String,
    mean_estimate_epoch_s: f64,
    quantile_estimate_epoch_s: f64,
    quantile_permille: u32,
    improvement_pct: f64,
    target_met: bool,
}

fn fail(msg: &str) -> ! {
    eprintln!("ext_workloads: {msg}");
    std::process::exit(1);
}

/// Every family at default parameters through the adaptive policy: the
/// same seeded configuration the conformance harness proves byte-equal
/// across all three executors.
fn family_section(seed: u64) -> Vec<FamilyRow> {
    let mut rows = Vec::new();
    let mut t = Table::new(["family", "workload", "mean epoch", "hit ratio"]);
    for w in WorkloadSpec::all_families(384) {
        let cfg = lobster_conformance::workload_conformance_config(&w, seed);
        let (report, _) = ClusterSim::new(cfg, policy_by_name("lobster").unwrap()).run_observed();
        let row = FamilyRow {
            family: w.family.token().to_string(),
            label: w.label(),
            mean_epoch_s: report.mean_epoch_s(),
            hit_ratio: report.mean_hit_ratio(),
        };
        t.row([
            row.family.clone(),
            row.label.clone(),
            fmt_secs(row.mean_epoch_s),
            format!("{:.3}", row.hit_ratio),
        ]);
        rows.push(row);
    }
    print!("{}", t.render());
    rows
}

/// The mean-vs-quantile showdown configuration: two nodes, an elastic
/// pool per node, and a training time sized so the mean-provisioned
/// split hides the *average* bimodal batch but not the tail mixes.
fn showdown_cfg(w: &WorkloadSpec, seed: u64, estimate: WorkEstimate) -> ExperimentConfig {
    let dataset = w.dataset(seed);
    // Full node cache: loading is all local-tier after warm-up, isolating
    // the preprocessing side the two estimates provision differently.
    let cache_bytes = dataset.total_bytes();
    ConfigBuilder::new()
        .nodes(2)
        .gpus_per_node(2)
        .batch_size(8)
        .pipeline_threads(8)
        .cache_bytes(cache_bytes)
        .dataset(dataset)
        .epochs(4)
        .seed(seed)
        .access(w.access())
        .model(ModelProfile::new("bimodal-showdown", 4e-4, 0.7, 10.0))
        .elastic(ElasticSimConfig {
            workers: 8,
            initial_preproc: 1,
            work_factor: 1,
            work_factor_step: None,
            churn: false,
            frozen: false,
            estimate,
        })
        .build()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 42u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| fail("--seed needs an integer"));
            }
            "--workload" => i += 1, // parsed by workload_from_args below
            other => fail(&format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    let showdown = workload_from_args().unwrap_or_else(|| {
        WorkloadSpec::parse("bimodal:samples=768").expect("default showdown workload parses")
    });
    if !matches!(showdown.family, WorkloadFamily::BimodalCost { .. }) {
        fail("the showdown needs a bimodal workload (--workload bimodal:...)");
    }

    println!("Extension — workload diversity suite (DESIGN.md §15), seed {seed}\n");
    println!("-- every family, adaptive policy, analytical executor --");
    let families = family_section(seed);
    println!();

    // ---- Mean vs quantile work estimate on the bimodal workload. ----
    println!(
        "-- elastic provisioning on {}: mean vs p90 work estimate --",
        showdown.label()
    );
    let run = |estimate: WorkEstimate| -> f64 {
        let cfg = showdown_cfg(&showdown, seed, estimate);
        let (report, _) = ClusterSim::new(cfg, policy_by_name("lobster").unwrap()).run_observed();
        // Steady state: skip the warm-up epoch the controller spends
        // converging from the initial split.
        let steady = &report.epochs[1..];
        steady.iter().map(|e| e.wall_s).sum::<f64>() / steady.len() as f64
    };
    let mean_s = run(WorkEstimate::Mean);
    let quant_s = run(WorkEstimate::Quantile(900));
    let improvement = (mean_s - quant_s) / mean_s * 100.0;
    let target_met = improvement >= 10.0;

    let mut t = Table::new(["estimate", "steady epoch", "vs mean"]);
    t.row(["mean (paper)".into(), fmt_secs(mean_s), "—".into()]);
    t.row([
        "p90 quantile".into(),
        fmt_secs(quant_s),
        format!("{improvement:+.1}%"),
    ]);
    print!("{}", t.render());
    println!(
        "steady-state improvement from quantile provisioning: {improvement:.1}% -> {}",
        if target_met {
            "ok (>= 10% target)"
        } else {
            "BELOW the 10% target"
        }
    );

    let result = WorkloadsResult {
        seed,
        families,
        showdown_workload: showdown.label(),
        mean_estimate_epoch_s: mean_s,
        quantile_estimate_epoch_s: quant_s,
        quantile_permille: 900,
        improvement_pct: improvement,
        target_met,
    };
    let path = ResultSink::default_location()
        .write_json("ext_workloads", &result)
        .expect("write results");
    println!("\nresults -> {}", path.display());
}
