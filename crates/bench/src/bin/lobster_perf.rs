//! `lobster_perf` — the recorded benchmark trajectory and its regression
//! gate (DESIGN.md §12).
//!
//! ```text
//! lobster_perf [--quick] [--bench-dir <dir>] [--out <file>]
//! lobster_perf --record [<label>] [--quick] [--bench-dir <dir>]
//! lobster_perf --validate <file>
//! lobster_perf --self-test-regression [--quick] [--bench-dir <dir>]
//! lobster_perf --flight-out <dir> [--quick]
//! ```
//!
//! Default mode runs the standardized scenario matrix on the live engine
//! and compares against the newest checked-in `BENCH_<seq>.json` under
//! `--bench-dir` (default: current directory). Exit 0 = gate passes,
//! 1 = regression (or self-test fired, which is its success), 2 = usage,
//! I/O, schema, or quick/full scale-mismatch errors.
//!
//! `--record` runs the matrix and writes the next `BENCH_<seq>.json` —
//! this is how a PR refreshes the trajectory after an intentional perf
//! change. `--validate` only schema-checks an existing file. `--flight-out`
//! additionally runs one small poisoned engine run with enabled
//! instruments so a worker panic leaves a `flightdump_*.json` under the
//! given directory (the CI hook feeding `lobster_doctor --flight`).
//!
//! Allocation counts come from the process-global counting allocator
//! installed below; the measured runs use `Instruments::disabled()`, so
//! they also re-prove the zero-alloc-when-disabled observability claim at
//! the whole-engine level.

use lobster_bench::perf::{
    bench_file_name, bench_files, compare, inflate_for_self_test, load_latest, run_matrix,
    scenario_matrix, validate, BenchTrajectory, Thresholds,
};
use lobster_metrics::Instruments;
use lobster_runtime::{run_with, SyntheticStore};
use lobster_storage::FaultSpec;
use std::alloc::{GlobalAlloc, Layout, System};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Counts every heap allocation in the process; the benchmark reads the
/// counter deltas around each scenario run.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTING_ALLOC: CountingAlloc = CountingAlloc;

fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn usage() -> ! {
    eprintln!(
        "usage: lobster_perf [--quick] [--bench-dir <dir>] [--out <file>]\n\
         \x20      lobster_perf --record [<label>] [--quick] [--bench-dir <dir>]\n\
         \x20      lobster_perf --validate <file>\n\
         \x20      lobster_perf --self-test-regression [--quick] [--bench-dir <dir>]\n\
         \x20      lobster_perf --flight-out <dir> [--quick]"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Load the newest baseline under `dir`, or exit 2 with a clear message.
fn baseline_or_exit(dir: &Path) -> BenchTrajectory {
    match load_latest(dir) {
        Some(Ok(t)) => t,
        Some(Err(e)) => fail(&format!("baseline under {}: {e}", dir.display())),
        None => fail(&format!(
            "no BENCH_*.json under {} — record one with --record",
            dir.display()
        )),
    }
}

/// One small poisoned run with enabled instruments: the injected worker
/// panic makes the engine's teardown hook leave a flight dump in `dir`.
fn flight_out(dir: &Path, quick: bool) {
    std::fs::create_dir_all(dir)
        .unwrap_or_else(|e| fail(&format!("create {}: {e}", dir.display())));
    let mut scenario = scenario_matrix(quick)
        .into_iter()
        .find(|s| s.name == "fault_storm")
        .expect("matrix has a fault storm");
    scenario.cfg.epochs = 1;
    // Poison hard enough that a quick single-epoch run is certain to panic
    // a worker at least once.
    scenario.faults =
        Some(FaultSpec::parse("poison=0.2,seed=20220822").expect("poison spec parses"));
    let dataset = lobster_data::Dataset::generate(
        "flight_out",
        scenario.dataset_samples as usize,
        lobster_data::SizeDistribution::Constant {
            bytes: scenario.sample_bytes,
        },
        scenario.cfg.seed,
    );
    let plan = scenario
        .faults
        .as_ref()
        .unwrap()
        .compile()
        .expect("compiles");
    let store = Arc::new(SyntheticStore::with_faults(
        dataset,
        Duration::from_micros(50),
        500e6,
        plan,
    ));
    let ins = Instruments::enabled();
    ins.set_flight_dir(dir);
    let report = run_with(store, scenario.cfg, ins.clone());
    if report.worker_panics == 0 {
        fail("flight-out run produced no worker panic; dump not triggered");
    }
    let dumped = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .any(|e| e.file_name().to_string_lossy().starts_with("flightdump_"))
        })
        .unwrap_or(false);
    if !dumped {
        fail(&format!(
            "engine reported {} worker panic(s) but no flightdump_*.json in {}",
            report.worker_panics,
            dir.display()
        ));
    }
    println!(
        "flight-out: {} worker panic(s), dump written under {}",
        report.worker_panics,
        dir.display()
    );
}

fn render_summary(t: &BenchTrajectory) {
    println!(
        "lobster_perf trajectory ({} scenarios, {}):",
        t.scenarios.len(),
        if t.quick { "quick" } else { "full" }
    );
    for s in &t.scenarios {
        println!(
            "  {:<14} {:>7} samples  {:>9.0}/s  p50 {:>7.1}us  p95 {:>7.1}us  p99 {:>7.1}us  {:>6.1} allocs/sample",
            s.name, s.samples, s.throughput_sps, s.p50_us, s.p95_us, s.p99_us,
            s.allocations_per_sample
        );
    }
    println!("  overall p99 {:.1}us", t.overall_p99_us);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut record = false;
    let mut label: Option<String> = None;
    let mut bench_dir = PathBuf::from(".");
    let mut out: Option<PathBuf> = None;
    let mut validate_path: Option<PathBuf> = None;
    let mut self_test = false;
    let mut flight_dir: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                quick = true;
                i += 1;
            }
            "--record" => {
                record = true;
                i += 1;
                if i < args.len() && !args[i].starts_with("--") {
                    label = Some(args[i].clone());
                    i += 1;
                }
            }
            "--self-test-regression" => {
                self_test = true;
                i += 1;
            }
            "--bench-dir" | "--out" | "--validate" | "--flight-out" => {
                if i + 1 >= args.len() {
                    usage();
                }
                let value = PathBuf::from(&args[i + 1]);
                match args[i].as_str() {
                    "--bench-dir" => bench_dir = value,
                    "--out" => out = Some(value),
                    "--validate" => validate_path = Some(value),
                    _ => flight_dir = Some(value),
                }
                i += 2;
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    // Validate-only mode: schema-check one file, run nothing.
    if let Some(path) = validate_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| fail(&format!("read {}: {e}", path.display())));
        match BenchTrajectory::from_json(&text) {
            Ok(t) => {
                validate(&t).unwrap_or_else(|e| fail(&e));
                println!(
                    "{}: valid trajectory (seq {}, {} scenarios, {})",
                    path.display(),
                    t.seq,
                    t.scenarios.len(),
                    if t.quick { "quick" } else { "full" }
                );
                return;
            }
            Err(e) => fail(&format!("{}: {e}", path.display())),
        }
    }

    // Self-test mode: prove the gate fires without re-running the engine.
    if self_test {
        let baseline = baseline_or_exit(&bench_dir);
        if baseline.quick != quick {
            fail(&format!(
                "baseline seq {} is {}, run requested {} — use the matching flag",
                baseline.seq,
                if baseline.quick { "quick" } else { "full" },
                if quick { "quick" } else { "full" }
            ));
        }
        let inflated = inflate_for_self_test(&baseline);
        let regressions = compare(&baseline, &inflated, &Thresholds::default());
        if regressions.is_empty() {
            fail("self-test failed: inflated trajectory tripped no threshold");
        }
        eprintln!("self-test regressions (expected):");
        for r in &regressions {
            eprintln!("  REGRESSION {r}");
        }
        std::process::exit(1);
    }

    if let Some(dir) = &flight_dir {
        flight_out(dir, quick);
        if !record {
            // --flight-out alone does not run the matrix.
            return;
        }
    }

    let label_text = label.unwrap_or_else(|| "unlabelled".to_string());
    let mut current = run_matrix(quick, &label_text, &allocation_count);
    render_summary(&current);

    if record {
        let next_seq = bench_files(&bench_dir).last().map_or(1, |(s, _)| s + 1);
        current.seq = next_seq;
        validate(&current).unwrap_or_else(|e| fail(&format!("recorded trajectory invalid: {e}")));
        let path = bench_dir.join(bench_file_name(next_seq));
        std::fs::write(&path, current.to_json())
            .unwrap_or_else(|e| fail(&format!("write {}: {e}", path.display())));
        println!("recorded -> {}", path.display());
        return;
    }

    if let Some(path) = &out {
        current.seq = bench_files(&bench_dir)
            .last()
            .map_or(1, |(s, _)| s.saturating_add(1));
        std::fs::write(path, current.to_json())
            .unwrap_or_else(|e| fail(&format!("write {}: {e}", path.display())));
        println!("current run -> {}", path.display());
    }

    let baseline = baseline_or_exit(&bench_dir);
    if baseline.quick != quick {
        fail(&format!(
            "baseline seq {} is {}, this run is {} — scales are never comparable",
            baseline.seq,
            if baseline.quick { "quick" } else { "full" },
            if quick { "quick" } else { "full" }
        ));
    }
    current.seq = baseline.seq; // comparison only; nothing is written
    let regressions = compare(&baseline, &current, &Thresholds::default());
    if regressions.is_empty() {
        println!(
            "gate: PASS vs baseline seq {} ({})",
            baseline.seq, baseline.label
        );
        return;
    }
    eprintln!(
        "gate: FAIL vs baseline seq {} ({})",
        baseline.seq, baseline.label
    );
    for r in &regressions {
        eprintln!("  REGRESSION {r}");
    }
    std::process::exit(1);
}
