//! §5.5 memory-cache hit-ratio table: ResNet-50 + ImageNet-1K on one node
//! with eight GPUs, whole-training hit ratio per loader. Paper values:
//! PyTorch 24.5%, DALI 32.6%, NoPFS 48.9%, Lobster 63.2% — the ordering and
//! the sizeable Lobster-over-NoPFS gap (+14.3 points, the abstract's
//! headline cache number) are the reproduction targets.

use lobster_bench::{
    observability_from_args, paper_config, params_from_args, run_policy_with, write_observability,
    BenchParams, DatasetKind, BASELINE_NAMES,
};
use lobster_core::models::resnet50;
use lobster_core::policy_by_name;
use lobster_metrics::{fmt_pct, ResultSink, Table};
use serde::Serialize;

#[derive(Serialize)]
struct HitRow {
    policy: String,
    hit_ratio: f64,
    remote_hit_ratio: f64,
    prefetched: u64,
    paper_hit_ratio: f64,
}

#[derive(Serialize)]
struct TabResult {
    params: BenchParams,
    rows: Vec<HitRow>,
    lobster_minus_nopfs_points: f64,
}

fn main() {
    let params = params_from_args(BenchParams {
        scale: 64,
        epochs: 6,
        seed: 42,
    });
    let (ins, trace_out) = observability_from_args();
    println!(
        "§5.5 table — cache hit ratio, ResNet-50 / ImageNet-1K, 1 node x 8 GPUs (1/{} scale)\n",
        params.scale
    );

    let paper = [
        ("pytorch", 0.245),
        ("dali", 0.326),
        ("nopfs", 0.489),
        ("lobster", 0.632),
    ];
    let mut rows = Vec::new();
    let mut t = Table::new(["loader", "hit ratio", "remote hits", "prefetched", "paper"]);
    for (i, name) in BASELINE_NAMES.iter().enumerate() {
        let report = run_policy_with(
            paper_config(DatasetKind::ImageNet1k, 1, resnet50(), params),
            policy_by_name(name).unwrap(),
            &ins,
        );
        let steady = report.steady_epochs();
        let remote: u64 = steady.iter().map(|e| e.remote_hits).sum();
        let total: u64 = steady
            .iter()
            .map(|e| e.local_hits + e.remote_hits + e.misses)
            .sum();
        let prefetched: u64 = steady.iter().map(|e| e.prefetched).sum();
        let row = HitRow {
            policy: name.to_string(),
            hit_ratio: report.mean_hit_ratio(),
            remote_hit_ratio: remote as f64 / total.max(1) as f64,
            prefetched,
            paper_hit_ratio: paper[i].1,
        };
        t.row([
            name.to_string(),
            fmt_pct(row.hit_ratio),
            fmt_pct(row.remote_hit_ratio),
            row.prefetched.to_string(),
            fmt_pct(row.paper_hit_ratio),
        ]);
        rows.push(row);
    }
    print!("{}", t.render());

    let gap = rows[3].hit_ratio - rows[2].hit_ratio;
    println!(
        "\nLobster − NoPFS: {:+.1} points (paper: +14.3 — the abstract's headline)",
        gap * 100.0
    );

    let result = TabResult {
        params,
        rows,
        lobster_minus_nopfs_points: gap,
    };
    let path = ResultSink::default_location()
        .write_json("tab_cache_hit_ratio", &result)
        .expect("write results");
    println!("results -> {}", path.display());
    write_observability(&ins, trace_out.as_deref());
}
