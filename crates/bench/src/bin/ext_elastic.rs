//! Extension experiment (ISSUE 5, DESIGN.md §11): the elastic
//! preproc↔loader pool against a static split in the *live* engine, under
//! the Fig. 6 workload shift — preprocessing becomes 32× heavier mid-run.
//!
//! The static engine keeps the thread split it started with (tuned for
//! the light phase); the elastic engine re-rolls loader workers into
//! preprocessing roles at tick boundaries as the §4.1 regression reacts
//! to the step. The headline is steady-state mean iteration time after
//! the step: the ISSUE target is elastic ≥ 15% better (printed, not
//! asserted — this is an experiment, not a unit test).
//!
//! A second section arms the `never-steal` mutation canary (a controller
//! that refuses to flip roles) inside the conformance DES and shows the
//! differential harness catching it at the work-factor step.
//!
//! ```sh
//! cargo run --release --bin ext_elastic
//! cargo run --release --bin ext_elastic -- --seed 7 --samples 512
//! ```

use lobster_conformance::{elastic_conformance_config, run_canary, CanaryOutcome, Mutation};
use lobster_data::{Dataset, SizeDistribution};
use lobster_metrics::{fmt_secs, Instruments, ResultSink, Table};
use lobster_runtime::{expected_integrity, run_with, EngineConfig, SyntheticStore};
use serde::Serialize;
use std::sync::Arc;
use std::time::Duration;

#[derive(Serialize)]
struct ElasticResult {
    seed: u64,
    samples: usize,
    step_iter: u64,
    work_factor_after: u32,
    static_pre_step_s: f64,
    static_post_step_s: f64,
    elastic_pre_step_s: f64,
    elastic_post_step_s: f64,
    improvement_pct: f64,
    target_met: bool,
    elastic_max_preproc: u32,
    canary_detected: bool,
}

fn fail(msg: &str) -> ! {
    eprintln!("ext_elastic: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 42u64;
    let mut samples = 512usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| fail("--seed needs an integer"));
            }
            "--samples" => {
                i += 1;
                samples = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| fail("--samples needs an integer"));
            }
            other => fail(&format!("unknown argument {other:?}")),
        }
        i += 1;
    }

    // 4 consumers × batch 8 = 32 samples/iteration; 2 epochs. The work
    // factor steps 1 → 32 a quarter of the way through the run.
    let iters_per_epoch = (samples / 32) as u64;
    let total_iters = iters_per_epoch * 2;
    let step_iter = total_iters / 4;
    let wf_after = 32u32;

    let dataset = Dataset::generate(
        "ext-elastic",
        samples,
        SizeDistribution::Uniform {
            lo: 8_000,
            hi: 24_000,
        },
        seed,
    );
    let base = EngineConfig {
        consumers: 4,
        batch_size: 8,
        loader_threads: 6,
        preproc_threads: 2,
        epochs: 2,
        seed,
        work_factor: 1,
        work_factor_step: Some((step_iter, wf_after)),
        train: Duration::from_micros(300),
        elastic: false,
        ..EngineConfig::default()
    };

    println!(
        "Extension — elastic worker pool vs static split, live engine\n\
         {samples} samples, {total_iters} iterations, work factor 1 -> {wf_after} at iteration {step_iter}\n"
    );

    // Steady-state windows: skip the warm-up before the step and the
    // controller's reaction window right after it.
    let pre = |secs: &[f64]| mean(&secs[(step_iter / 2) as usize..step_iter as usize]);
    let post_from = (step_iter + 6).min(total_iters - 1) as usize;
    let post = |secs: &[f64]| mean(&secs[post_from..]);

    let run_engine = |elastic: bool| {
        let cfg = EngineConfig {
            elastic,
            ..base.clone()
        };
        let expected = expected_integrity(&dataset, &cfg);
        let store = Arc::new(SyntheticStore::new(
            dataset.clone(),
            Duration::from_micros(20),
            0.0,
        ));
        let report = run_with(store, cfg, Instruments::enabled());
        if report.aborted || report.integrity != expected {
            fail(&format!(
                "{} run lost integrity",
                if elastic { "elastic" } else { "static" }
            ));
        }
        report
    };

    let static_report = run_engine(false);
    let elastic_report = run_engine(true);

    let static_pre = pre(&static_report.iteration_secs);
    let static_post = post(&static_report.iteration_secs);
    let elastic_pre = pre(&elastic_report.iteration_secs);
    let elastic_post = post(&elastic_report.iteration_secs);
    let improvement = (static_post - elastic_post) / static_post * 100.0;
    let max_preproc = elastic_report
        .role_flips
        .iter()
        .map(|d| d.preproc_after)
        .max()
        .unwrap_or(0);

    let mut t = Table::new(["pool", "pre-step iter", "post-step iter", "max preproc"]);
    t.row([
        "static 6L+2P".into(),
        fmt_secs(static_pre),
        fmt_secs(static_post),
        "2".into(),
    ]);
    t.row([
        "elastic 8".into(),
        fmt_secs(elastic_pre),
        fmt_secs(elastic_post),
        max_preproc.to_string(),
    ]);
    print!("{}", t.render());
    let target_met = improvement >= 15.0;
    println!(
        "steady-state improvement after the step: {improvement:.1}% -> {}",
        if target_met {
            "ok (>= 15% target)"
        } else {
            "BELOW the 15% target"
        }
    );
    println!();

    // ---- The harness catches a controller that refuses to flip. ----
    println!("-- never-steal canary: frozen controller vs the differential harness --");
    let canary_detected = match run_canary(
        &elastic_conformance_config(seed),
        "lobster",
        Mutation::NeverSteal,
    ) {
        CanaryOutcome::Detected(d) => {
            println!("DETECTED — first observable effect:\n{d}");
            true
        }
        CanaryOutcome::Undetected => {
            println!("UNDETECTED — the harness has a blind spot");
            false
        }
    };

    let result = ElasticResult {
        seed,
        samples,
        step_iter,
        work_factor_after: wf_after,
        static_pre_step_s: static_pre,
        static_post_step_s: static_post,
        elastic_pre_step_s: elastic_pre,
        elastic_post_step_s: elastic_post,
        improvement_pct: improvement,
        target_met,
        elastic_max_preproc: max_preproc,
        canary_detected,
    };
    let path = ResultSink::default_location()
        .write_json("ext_elastic", &result)
        .expect("write results");
    println!("\nresults -> {}", path.display());
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}
