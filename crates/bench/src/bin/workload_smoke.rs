//! Workload diversity smoke check for CI (DESIGN.md §15).
//!
//! Drives every workload family — Zipf-skewed popularity, heavy-tailed
//! sizes, bimodal preprocessing cost, a growing dataset, and compute drift
//! — through the differential harness over five seeds and demands
//! byte-exact agreement between the analytical executor and the
//! event-driven DES on every invariant observable. Then runs the *live*
//! engine once per family (first seed) under the family's access pattern
//! and per-sample cost table and replays its delivery record and integrity
//! fingerprint against the seeded schedule. Exits non-zero on any
//! divergence; CI wraps it in a hard timeout so a hang fails fast.
//!
//! ```sh
//! cargo run --release --bin workload_smoke
//! cargo run --release --bin workload_smoke -- --seeds 3,5,7
//! cargo run --release --bin workload_smoke -- --workload zipf:s=1.4
//! ```

use lobster_bench::workload_from_args;
use lobster_conformance::{check_engine_delivery, run_differential, workload_conformance_config};
use lobster_data::WorkloadSpec;
use lobster_metrics::Instruments;
use lobster_runtime::{run_with, EngineConfig, SyntheticStore};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fail(msg: &str) -> ! {
    eprintln!("WORKLOAD SMOKE FAILED: {msg}");
    std::process::exit(1);
}

fn main() {
    let t0 = Instant::now();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seeds: Vec<u64> = vec![3, 5, 7, 11, 13];
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seeds" => {
                i += 1;
                seeds = args
                    .get(i)
                    .unwrap_or_else(|| fail("--seeds needs a comma-separated list"))
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| fail("bad seed")))
                    .collect();
            }
            "--workload" => i += 1, // parsed by workload_from_args below
            other => fail(&format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    // `--workload` narrows the matrix to one family; default is all five.
    let families: Vec<WorkloadSpec> = match workload_from_args() {
        Some(w) => vec![w],
        None => WorkloadSpec::all_families(192),
    };

    // ---- Differential: ClusterSim vs the DES, every family × seed. ----
    let mut runs = 0usize;
    for &seed in &seeds {
        for w in &families {
            let cfg = workload_conformance_config(w, seed);
            match run_differential(&cfg, "lobster") {
                Ok(s) => {
                    runs += 1;
                    println!(
                        "workload: seed {seed} {}: {} iterations, {} demand accesses — agree",
                        w.label(),
                        s.iterations,
                        s.demand_accesses
                    );
                }
                Err(d) => {
                    eprintln!("{d}");
                    fail(&format!("seed {seed} workload {} diverged", w.label()));
                }
            }
        }
    }

    // ---- Live engine per family: delivery + integrity under the
    // family's access pattern and cost table. ----
    let seed = seeds[0];
    for w in &families {
        let dataset = w.dataset(seed);
        let cfg = EngineConfig {
            consumers: 2,
            batch_size: 4,
            loader_threads: 2,
            preproc_threads: 2,
            epochs: 2,
            seed,
            train: Duration::from_micros(200),
            access: w.access(),
            ..EngineConfig::default()
        };
        let store = Arc::new(SyntheticStore::new(dataset.clone(), Duration::ZERO, 0.0));
        let ins = Instruments::enabled();
        let report = run_with(store, cfg.clone(), ins.clone());
        match check_engine_delivery(&dataset, &cfg, &report, &ins) {
            Ok(()) => println!(
                "workload: engine {}: {} samples delivered exactly as scheduled",
                w.label(),
                report.delivered
            ),
            Err(d) => {
                eprintln!("{d}");
                fail(&format!("live engine diverged on workload {}", w.label()));
            }
        }
        runs += 1;
    }

    println!(
        "workload smoke passed: {runs} runs across {} families × {} seeds in {:.2}s",
        families.len(),
        seeds.len(),
        t0.elapsed().as_secs_f64()
    );
}
