//! Figure 3: execution-time breakdown of the training pipeline on three
//! GPUs — two co-located, one on another node — for 24 sampled iterations
//! of the second epoch (8 at the beginning, middle, and end), under the
//! DALI baseline. Reproduces the motivation observations: per-GPU idle time
//! caused by *other* GPUs' loading (Obs. 1) and the bottleneck shifting
//! between stages across iterations (Obs. 2).

use lobster_bench::{
    observability_from_args, paper_config, params_from_args, write_observability, BenchParams,
    DatasetKind,
};
use lobster_core::models::resnet50;
use lobster_core::policy_by_name;
use lobster_metrics::{ResultSink, Table};
use lobster_pipeline::{ClusterSim, TraceCollector};
use serde::Serialize;

#[derive(Serialize)]
struct Fig3Result {
    params: BenchParams,
    records: Vec<lobster_pipeline::IterationRecord>,
    imbalanced_fraction_epoch1: f64,
}

fn main() {
    let params = params_from_args(BenchParams {
        scale: 64,
        epochs: 2,
        seed: 42,
    });
    let (ins, trace_out) = observability_from_args();
    println!(
        "Figure 3 — pipeline breakdown, DALI, 8 nodes x 8 GPUs, ImageNet-1K (1/{} scale)\n",
        params.scale
    );
    let cfg = paper_config(DatasetKind::ImageNet1k, 8, resnet50(), params);
    let iters = cfg.iterations_per_epoch() as u64;
    let sim = ClusterSim::new(cfg, policy_by_name("dali").unwrap())
        .with_trace(TraceCollector::figure3(iters))
        .with_instruments(ins.clone());
    let (report, trace) = sim.run();
    let trace = trace.expect("trace requested");

    // The paper's three GPUs: two on Node 1, one on Node 2.
    let mut records = Vec::new();
    for (node, gpu) in [(1usize, 0usize), (1, 1), (2, 0)] {
        println!("-- Node{node} GPU{gpu} --");
        let mut t = Table::new([
            "iter",
            "load(ms)",
            "preproc(ms)",
            "train(ms)",
            "wait-data",
            "wait-strag",
        ]);
        for r in trace.for_gpu(node, gpu) {
            t.row([
                r.iteration.to_string(),
                format!("{:.1}", r.load_s * 1e3),
                format!("{:.1}", r.preproc_s * 1e3),
                format!("{:.1}", r.train_s * 1e3),
                format!("{:.1}", r.wait_data_s * 1e3),
                format!("{:.1}", r.wait_stragglers_s * 1e3),
            ]);
            records.push(r);
        }
        print!("{}", t.render());
        println!();
    }

    let frac =
        report.epochs[1].imbalanced_iterations as f64 / report.epochs[1].iterations.max(1) as f64;
    println!(
        "iterations with load imbalance in epoch 2: {:.1}% (paper reports 65.3% for the baseline)",
        frac * 100.0
    );

    let result = Fig3Result {
        params,
        records,
        imbalanced_fraction_epoch1: frac,
    };
    let path = ResultSink::default_location()
        .write_json("fig03_breakdown", &result)
        .expect("write results");
    println!("results -> {}", path.display());
    write_observability(&ins, trace_out.as_deref());
}
