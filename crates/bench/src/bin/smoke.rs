//! Quick end-to-end smoke run: one scaled single-node comparison, printed.
//! Used while calibrating; kept as a fast sanity entry point
//! (`cargo run --release -p lobster-bench --bin smoke`).
//!
//! With `--trace-out <path>` the runs are instrumented: the Chrome trace
//! plus the `<path>.metrics.json` / `<path>.decisions.jsonl` sidecars are
//! written for `lobster_doctor` (CI diagnoses every smoke run this way).

use lobster_bench::{
    compare_policies_with, observability_from_args, paper_config, params_from_args,
    write_observability, BenchParams, DatasetKind, BASELINE_NAMES,
};
use lobster_core::models::resnet50;
use lobster_metrics::{fmt_pct, fmt_secs, fmt_speedup, Table};

fn main() {
    let params = params_from_args(BenchParams {
        scale: 64,
        epochs: 3,
        seed: 42,
    });
    let (ins, trace_out) = observability_from_args();
    for kind in [DatasetKind::ImageNet1k, DatasetKind::ImageNet22k] {
        println!(
            "== single node, 8 GPUs, {} (1/{} scale) ==",
            kind.label(),
            params.scale
        );
        let rows = compare_policies_with(
            || paper_config(kind, 1, resnet50(), params),
            &BASELINE_NAMES,
            &ins,
        );
        let mut t = Table::new(["loader", "epoch", "speedup", "hit", "util", "imbalanced"]);
        for r in &rows {
            t.row([
                r.policy.clone(),
                fmt_secs(r.mean_epoch_s),
                fmt_speedup(r.speedup_vs_pytorch),
                fmt_pct(r.hit_ratio),
                fmt_pct(r.gpu_utilization),
                fmt_pct(r.imbalance_fraction),
            ]);
        }
        print!("{}", t.render());
        println!();
    }
    write_observability(&ins, trace_out.as_deref());
}
