//! Figure 6: data-preprocessing throughput as a function of thread count.
//! Paper shape: "the preprocessing throughput peaks at 6 threads, after
//! which it flattens and even slightly becomes worse" (Observation 3).
//!
//! Printed twice: the ground-truth model the simulator executes, and the
//! governor's learned piece-wise-linear prediction — demonstrating that the
//! §4.1 regression recovers the knee from noisy measurements.

use lobster_core::{PreprocGovernor, PreprocModel};
use lobster_metrics::{ResultSink, Table};
use lobster_sim::Xoshiro256StarStar;
use serde::Serialize;

#[derive(Serialize)]
struct Fig6Result {
    threads: Vec<u32>,
    truth_samples_per_sec: Vec<f64>,
    predicted_samples_per_sec: Vec<f64>,
    governor_optimal_threads: u32,
}

fn main() {
    println!("Figure 6 — preprocessing throughput vs threads (105 KB samples)\n");
    let truth = PreprocModel::default_imagenet();
    let sample_bytes = 105_000u64;

    // The governor calibrates from noisy measurements (±3%), as the real
    // offline profiler would.
    let mut rng = Xoshiro256StarStar::seed_from_u64(7);
    let governor = PreprocGovernor::calibrate(&[sample_bytes], 16, 1e-9, |b, t| {
        truth.per_sample_secs(b, t) * (1.0 + 0.03 * (rng.next_f64() - 0.5))
    });

    let mut t = Table::new(["threads", "truth (samples/s)", "governor predicts"]);
    let mut threads = Vec::new();
    let mut truth_v = Vec::new();
    let mut pred_v = Vec::new();
    for k in 1..=16u32 {
        let tru = truth.throughput(k) / sample_bytes as f64;
        let pred = 1.0 / governor.predict_per_sample_secs(sample_bytes, k);
        t.row([k.to_string(), format!("{tru:.0}"), format!("{pred:.0}")]);
        threads.push(k);
        truth_v.push(tru);
        pred_v.push(pred);
    }
    print!("{}", t.render());

    let opt = governor.optimal_threads(sample_bytes);
    println!("\ngovernor's minimum-threads-at-peak: {opt} (paper: peak at 6 threads)");

    let result = Fig6Result {
        threads,
        truth_samples_per_sec: truth_v,
        predicted_samples_per_sec: pred_v,
        governor_optimal_threads: opt,
    };
    let path = ResultSink::default_location()
        .write_json("fig06_preproc_threads", &result)
        .expect("write results");
    println!("results -> {}", path.display());
}
