//! `lobster_doctor` — offline diagnosis of an instrumented run.
//!
//! ```text
//! lobster_doctor <trace> [--metrics <file>] [--decisions <file>] [--out-dir <dir>]
//! lobster_doctor --flight <flightdump_*.json | dir> [--out-dir <dir>]
//! ```
//!
//! `<trace>` is a `--trace-out` export (Chrome trace-event document or
//! JSONL). The sidecars written by the bench harness next to the trace
//! (`<trace>.metrics.json`, `<trace>.decisions.jsonl`) are picked up
//! automatically when present; `--metrics` / `--decisions` override.
//!
//! `--flight` ingests a flight-recorder dump instead (DESIGN.md §12) —
//! the last-K event window a crashed, escalating, or diverged run left
//! behind — and emits the same phase diagnosis without needing a full
//! trace. Passing a directory picks the newest `flightdump_*.json` in it.
//!
//! Prints the human-readable diagnosis and writes the machine-readable
//! `results/doctor_<stem>.json`. Exits 1 when the input yields an empty
//! diagnosis, 2 on usage or I/O errors.

use lobster_bench::doctor::{diagnose, diagnose_flight, render};
use lobster_bench::{decisions_sidecar, metrics_sidecar};
use lobster_metrics::{DecisionRecord, MetricsSnapshot, ResultSink};
use std::path::{Path, PathBuf};

fn usage() -> ! {
    eprintln!(
        "usage: lobster_doctor <trace> [--metrics <file>] [--decisions <file>] [--out-dir <dir>]\n\
         \x20      lobster_doctor --flight <flightdump | dir> [--out-dir <dir>]"
    );
    std::process::exit(2);
}

/// Resolve `--flight <arg>`: a file is taken as-is, a directory yields its
/// newest `flightdump_*.json`.
fn resolve_flight_path(arg: &Path) -> PathBuf {
    if !arg.is_dir() {
        return arg.to_path_buf();
    }
    let mut dumps: Vec<PathBuf> = std::fs::read_dir(arg)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("flightdump_") && n.ends_with(".json"))
                })
                .collect()
        })
        .unwrap_or_default();
    dumps.sort();
    dumps.pop().unwrap_or_else(|| {
        eprintln!("error: no flightdump_*.json in {}", arg.display());
        std::process::exit(2);
    })
}

fn read_or_exit(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {}: {e}", path.display());
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut trace_path: Option<PathBuf> = None;
    let mut metrics_path: Option<PathBuf> = None;
    let mut decisions_path: Option<PathBuf> = None;
    let mut out_dir: Option<PathBuf> = None;
    let mut flight_path: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--metrics" | "--decisions" | "--out-dir" | "--flight" => {
                if i + 1 >= args.len() {
                    usage();
                }
                let value = PathBuf::from(&args[i + 1]);
                match args[i].as_str() {
                    "--metrics" => metrics_path = Some(value),
                    "--decisions" => decisions_path = Some(value),
                    "--flight" => flight_path = Some(value),
                    _ => out_dir = Some(value),
                }
                i += 2;
            }
            "--help" | "-h" => usage(),
            arg if arg.starts_with("--") => usage(),
            _ => {
                if trace_path.replace(PathBuf::from(&args[i])).is_some() {
                    usage();
                }
                i += 1;
            }
        }
    }

    // Flight mode: one dump in, same diagnosis machinery out.
    if let Some(flight_arg) = flight_path {
        if trace_path.is_some() {
            usage();
        }
        let dump_path = resolve_flight_path(&flight_arg);
        let dump_text = read_or_exit(&dump_path);
        let diagnosis = match diagnose_flight(&dump_text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };
        if diagnosis.is_empty() {
            eprintln!(
                "error: empty diagnosis ({} flight events but no iterations in the window)",
                diagnosis.events
            );
            std::process::exit(1);
        }
        print!("{}", render(&diagnosis));
        let stem = dump_path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("flight")
            .replace(['.', '-'], "_");
        let sink = out_dir.map_or_else(ResultSink::default_location, ResultSink::new);
        match sink.write_json(&format!("doctor_{stem}"), &diagnosis) {
            Ok(path) => println!("\ndiagnosis -> {}", path.display()),
            Err(e) => {
                eprintln!("error: cannot write diagnosis json: {e}");
                std::process::exit(2);
            }
        }
        return;
    }

    let Some(trace_path) = trace_path else {
        usage()
    };

    let trace_text = read_or_exit(&trace_path);

    // Sidecar discovery: explicit flag, else the harness's conventional
    // path next to the trace.
    let metrics_path = metrics_path.or_else(|| {
        let p = metrics_sidecar(&trace_path);
        p.exists().then_some(p)
    });
    let metrics: Option<MetricsSnapshot> = metrics_path.map(|p| {
        serde_json::from_str(&read_or_exit(&p)).unwrap_or_else(|e| {
            eprintln!("error: malformed metrics snapshot {}: {e:?}", p.display());
            std::process::exit(2);
        })
    });
    let decisions_path = decisions_path.or_else(|| {
        let p = decisions_sidecar(&trace_path);
        p.exists().then_some(p)
    });
    let decisions: Vec<DecisionRecord> = decisions_path.map_or_else(Vec::new, |p| {
        read_or_exit(&p)
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| {
                serde_json::from_str(l).unwrap_or_else(|e| {
                    eprintln!("error: malformed decision line in {}: {e:?}", p.display());
                    std::process::exit(2);
                })
            })
            .collect()
    });

    let diagnosis = match diagnose(&trace_text, metrics.as_ref(), &decisions) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    if diagnosis.is_empty() {
        eprintln!(
            "error: empty diagnosis ({} events parsed but no iterations reconstructed)",
            diagnosis.events
        );
        std::process::exit(1);
    }

    print!("{}", render(&diagnosis));

    let stem = trace_path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("trace")
        .replace(['.', '-'], "_");
    let sink = out_dir.map_or_else(ResultSink::default_location, ResultSink::new);
    match sink.write_json(&format!("doctor_{stem}"), &diagnosis) {
        Ok(path) => println!("\ndiagnosis -> {}", path.display()),
        Err(e) => {
            eprintln!("error: cannot write diagnosis json: {e}");
            std::process::exit(2);
        }
    }
}
