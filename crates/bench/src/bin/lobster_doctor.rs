//! `lobster_doctor` — offline diagnosis of an instrumented run.
//!
//! ```text
//! lobster_doctor <trace> [--metrics <file>] [--decisions <file>]
//!                [--flight <flightdump_*.json | dir>]
//!                [--telemetry <file>] [--slo <specs>] [--out-dir <dir>]
//! lobster_doctor --flight <flightdump_*.json | dir> [--telemetry <file>]
//!                [--slo <specs>] [--out-dir <dir>]
//! ```
//!
//! `<trace>` is a `--trace-out` export (Chrome trace-event document or
//! JSONL). The sidecars written by the bench harness next to the trace
//! (`<trace>.metrics.json`, `<trace>.decisions.jsonl`,
//! `<trace>.telemetry.jsonl`) are picked up automatically when present;
//! `--metrics` / `--decisions` / `--telemetry` override.
//!
//! `--flight` ingests a flight-recorder dump (DESIGN.md §12) — the last-K
//! event window a crashed, escalating, or diverged run left behind — and
//! emits the same phase diagnosis without needing a full trace. Passing a
//! directory picks the newest `flightdump_*.json` in it. When *both* a
//! trace and `--flight` are given, the two diagnoses are merged: the trace
//! is authoritative and the flight dump contributes only what the trace
//! missed, so overlapping fault / membership / anomaly findings appear
//! once instead of once per source.
//!
//! `--telemetry` joins a `--telemetry-out` JSONL stream into the
//! diagnosis: anomalies land on the timeline with phase attribution and
//! SLO verdicts fill the SLO table. `--slo "gap_us<=5000;hit_rate>=0.8@64:10"`
//! additionally (re-)evaluates specs over the stream's frames (DESIGN.md
//! §14 grammar, `;`-separated).
//!
//! Prints the human-readable diagnosis and writes the machine-readable
//! `results/doctor_<stem>.json`. Exits 1 when the input yields an empty
//! diagnosis, 2 on usage or I/O errors.

use lobster_bench::doctor::{attach_telemetry, diagnose, diagnose_flight, merge_diagnoses, render};
use lobster_bench::{decisions_sidecar, metrics_sidecar, telemetry_sidecar};
use lobster_metrics::{
    evaluate_slos, parse_slo_specs, parse_telemetry_stream, DecisionRecord, MetricsSnapshot,
    ResultSink, TelemetryLine, TickFrame,
};
use std::path::{Path, PathBuf};

fn usage() -> ! {
    eprintln!(
        "usage: lobster_doctor <trace> [--metrics <file>] [--decisions <file>]\n\
         \x20                     [--flight <flightdump | dir>] [--telemetry <file>]\n\
         \x20                     [--slo <specs>] [--out-dir <dir>]\n\
         \x20      lobster_doctor --flight <flightdump | dir> [--telemetry <file>]\n\
         \x20                     [--slo <specs>] [--out-dir <dir>]"
    );
    std::process::exit(2);
}

/// Resolve `--flight <arg>`: a file is taken as-is, a directory yields its
/// newest `flightdump_*.json`.
fn resolve_flight_path(arg: &Path) -> PathBuf {
    if !arg.is_dir() {
        return arg.to_path_buf();
    }
    let mut dumps: Vec<PathBuf> = std::fs::read_dir(arg)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("flightdump_") && n.ends_with(".json"))
                })
                .collect()
        })
        .unwrap_or_default();
    dumps.sort();
    dumps.pop().unwrap_or_else(|| {
        eprintln!("error: no flightdump_*.json in {}", arg.display());
        std::process::exit(2);
    })
}

fn read_or_exit(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {}: {e}", path.display());
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut trace_path: Option<PathBuf> = None;
    let mut metrics_path: Option<PathBuf> = None;
    let mut decisions_path: Option<PathBuf> = None;
    let mut out_dir: Option<PathBuf> = None;
    let mut flight_path: Option<PathBuf> = None;
    let mut telemetry_path: Option<PathBuf> = None;
    let mut slo_text: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--metrics" | "--decisions" | "--out-dir" | "--flight" | "--telemetry" | "--slo" => {
                if i + 1 >= args.len() {
                    usage();
                }
                let value = &args[i + 1];
                match args[i].as_str() {
                    "--metrics" => metrics_path = Some(PathBuf::from(value)),
                    "--decisions" => decisions_path = Some(PathBuf::from(value)),
                    "--flight" => flight_path = Some(PathBuf::from(value)),
                    "--telemetry" => telemetry_path = Some(PathBuf::from(value)),
                    "--slo" => slo_text = Some(value.clone()),
                    _ => out_dir = Some(PathBuf::from(value)),
                }
                i += 2;
            }
            "--help" | "-h" => usage(),
            arg if arg.starts_with("--") => usage(),
            _ => {
                if trace_path.replace(PathBuf::from(&args[i])).is_some() {
                    usage();
                }
                i += 1;
            }
        }
    }

    if trace_path.is_none() && flight_path.is_none() {
        usage();
    }

    // Flight diagnosis: standalone, or the merge donor when a trace is
    // also present.
    let flight_diagnosis = flight_path.map(|arg| {
        let dump_path = resolve_flight_path(&arg);
        let dump_text = read_or_exit(&dump_path);
        let d = diagnose_flight(&dump_text).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
        (dump_path, d)
    });

    // Trace diagnosis, with sidecar discovery (explicit flag, else the
    // harness's conventional path next to the trace).
    let trace_diagnosis = trace_path.as_ref().map(|trace_path| {
        let trace_text = read_or_exit(trace_path);
        let metrics_path = metrics_path.clone().or_else(|| {
            let p = metrics_sidecar(trace_path);
            p.exists().then_some(p)
        });
        let metrics: Option<MetricsSnapshot> = metrics_path.map(|p| {
            serde_json::from_str(&read_or_exit(&p)).unwrap_or_else(|e| {
                eprintln!("error: malformed metrics snapshot {}: {e:?}", p.display());
                std::process::exit(2);
            })
        });
        let decisions_path = decisions_path.clone().or_else(|| {
            let p = decisions_sidecar(trace_path);
            p.exists().then_some(p)
        });
        let decisions: Vec<DecisionRecord> = decisions_path.map_or_else(Vec::new, |p| {
            read_or_exit(&p)
                .lines()
                .filter(|l| !l.trim().is_empty())
                .map(|l| {
                    serde_json::from_str(l).unwrap_or_else(|e| {
                        eprintln!("error: malformed decision line in {}: {e:?}", p.display());
                        std::process::exit(2);
                    })
                })
                .collect()
        });
        diagnose(&trace_text, metrics.as_ref(), &decisions).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        })
    });

    let (mut diagnosis, stem_source) = match (trace_diagnosis, flight_diagnosis) {
        (Some(t), Some((_, f))) => (merge_diagnoses(&t, &f), trace_path.clone().unwrap()),
        (Some(t), None) => (t, trace_path.clone().unwrap()),
        (None, Some((p, f))) => (f, p),
        (None, None) => unreachable!("usage() rejected the empty invocation"),
    };

    // Telemetry stream: explicit flag, else the `.telemetry.jsonl` sidecar
    // next to the trace.
    let telemetry_path = telemetry_path.or_else(|| {
        trace_path.as_ref().and_then(|t| {
            let p = telemetry_sidecar(t);
            p.exists().then_some(p)
        })
    });
    if let Some(p) = telemetry_path {
        let mut lines = parse_telemetry_stream(&read_or_exit(&p)).unwrap_or_else(|e| {
            eprintln!("error: malformed telemetry stream {}: {e}", p.display());
            std::process::exit(2);
        });
        if let Some(text) = &slo_text {
            let specs = parse_slo_specs(text).unwrap_or_else(|e| {
                eprintln!("error: bad --slo spec: {e}");
                std::process::exit(2);
            });
            let frames: Vec<TickFrame> = lines
                .iter()
                .filter_map(|l| match l {
                    TelemetryLine::Frame(f) => Some(f.clone()),
                    _ => None,
                })
                .collect();
            if frames.is_empty() {
                eprintln!("error: --slo given but the telemetry stream carries no frames");
                std::process::exit(2);
            }
            lines.extend(
                evaluate_slos(&specs, &frames)
                    .into_iter()
                    .map(TelemetryLine::Slo),
            );
        }
        attach_telemetry(&mut diagnosis, &lines);
    } else if let Some(text) = &slo_text {
        // --slo without any frame source cannot be evaluated.
        let _ = parse_slo_specs(text).unwrap_or_else(|e| {
            eprintln!("error: bad --slo spec: {e}");
            std::process::exit(2);
        });
        eprintln!("error: --slo needs --telemetry (or a .telemetry.jsonl sidecar) to evaluate");
        std::process::exit(2);
    }

    if diagnosis.is_empty() {
        eprintln!(
            "error: empty diagnosis ({} events but no iterations reconstructed)",
            diagnosis.events
        );
        std::process::exit(1);
    }

    print!("{}", render(&diagnosis));

    let stem = stem_source
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("run")
        .replace(['.', '-'], "_");
    let sink = out_dir.map_or_else(ResultSink::default_location, ResultSink::new);
    match sink.write_json(&format!("doctor_{stem}"), &diagnosis) {
        Ok(path) => println!("\ndiagnosis -> {}", path.display()),
        Err(e) => {
            eprintln!("error: cannot write diagnosis json: {e}");
            std::process::exit(2);
        }
    }
}
