//! Extension experiments beyond the paper (DESIGN.md §8):
//!
//! 1. **Slow-node fault injection** — one of four nodes reads I/O at half
//!    speed; how much of each loader's throughput survives?
//! 2. **KV-partitioned distributed cache** — §2 mentions KV-stores as an
//!    alternative distributed-cache organization; compare hash-owner
//!    placement against the paper's consume-side replication.
//! 3. **MinIO never-evict baseline** — the related-work comparator of §6.
//! 4. **Partition schemes** — global shuffle (the paper's setting) vs
//!    node-local shard shuffling: local shuffling collapses reuse distances
//!    to one epoch and transforms cache behaviour.

use lobster_bench::{paper_config, params_from_args, run_policy, BenchParams, DatasetKind};
use lobster_core::models::resnet50;
use lobster_core::policy_by_name;
use lobster_metrics::{fmt_pct, fmt_secs, fmt_speedup, ResultSink, Table};
use serde::Serialize;

#[derive(Serialize)]
struct ExtResult {
    params: BenchParams,
    /// policy -> (nominal epoch_s, slow-node epoch_s, degradation)
    slow_node: Vec<(String, f64, f64, f64)>,
    /// policy -> (replicated epoch_s/hits, kv epoch_s/hits)
    kv: Vec<(String, f64, f64, f64, f64)>,
    /// minio vs pytorch vs lobster hit ratios at two cache sizes
    minio: Vec<(String, u32, f64, f64)>,
}

fn main() {
    let params = params_from_args(BenchParams {
        scale: 64,
        epochs: 4,
        seed: 42,
    });
    println!(
        "Extensions — robustness & cache topology (scale 1/{})\n",
        params.scale
    );
    let mut result = ExtResult {
        params,
        slow_node: vec![],
        kv: vec![],
        minio: vec![],
    };

    // ---- 1. Slow node. ----
    println!("-- slow node: node 2 of 4 at half I/O speed, ImageNet-22K --");
    let mut t = Table::new(["loader", "nominal", "degraded", "slowdown"]);
    for name in ["pytorch", "nopfs", "lobster"] {
        let nominal = run_policy(
            paper_config(DatasetKind::ImageNet22k, 4, resnet50(), params),
            policy_by_name(name).unwrap(),
        )
        .mean_epoch_s();
        let mut cfg = paper_config(DatasetKind::ImageNet22k, 4, resnet50(), params);
        cfg.node_slowdown = vec![1.0, 1.0, 2.0, 1.0];
        let degraded = run_policy(cfg, policy_by_name(name).unwrap()).mean_epoch_s();
        let factor = degraded / nominal;
        t.row([
            name.to_string(),
            fmt_secs(nominal),
            fmt_secs(degraded),
            fmt_speedup(factor),
        ]);
        result
            .slow_node
            .push((name.to_string(), nominal, degraded, factor));
    }
    print!("{}", t.render());
    println!();

    // ---- 2. KV-partitioned cache. ----
    println!("-- distributed-cache topology: replicated vs KV-partitioned, 8 nodes --");
    let mut t = Table::new(["loader", "replicated", "hits", "kv-partitioned", "hits"]);
    for name in ["nopfs", "lobster"] {
        let rep = run_policy(
            paper_config(DatasetKind::ImageNet22k, 8, resnet50(), params),
            policy_by_name(name).unwrap(),
        );
        let mut cfg = paper_config(DatasetKind::ImageNet22k, 8, resnet50(), params);
        cfg.kv_partitioned = true;
        let kv = run_policy(cfg, policy_by_name(name).unwrap());
        t.row([
            name.to_string(),
            fmt_secs(rep.mean_epoch_s()),
            fmt_pct(rep.mean_hit_ratio()),
            fmt_secs(kv.mean_epoch_s()),
            fmt_pct(kv.mean_hit_ratio()),
        ]);
        result.kv.push((
            name.to_string(),
            rep.mean_epoch_s(),
            rep.mean_hit_ratio(),
            kv.mean_epoch_s(),
            kv.mean_hit_ratio(),
        ));
    }
    print!("{}", t.render());
    println!();

    // ---- 3. MinIO. ----
    println!("-- never-evict (MinIO) vs LRU vs Lobster, single node, two cache sizes --");
    let mut t = Table::new(["loader", "scale", "epoch", "hit ratio"]);
    for scale in [params.scale, params.scale * 4] {
        let p = BenchParams { scale, ..params };
        for name in ["pytorch", "minio", "lobster"] {
            let report = run_policy(
                paper_config(DatasetKind::ImageNet1k, 1, resnet50(), p),
                policy_by_name(name).unwrap(),
            );
            t.row([
                name.to_string(),
                format!("1/{scale}"),
                fmt_secs(report.mean_epoch_s()),
                fmt_pct(report.mean_hit_ratio()),
            ]);
            result.minio.push((
                name.to_string(),
                scale,
                report.mean_epoch_s(),
                report.mean_hit_ratio(),
            ));
        }
    }
    print!("{}", t.render());

    println!();

    // ---- 4. Partition schemes. ----
    // ImageNet-1K on 4 nodes: each shard fits the scaled cache, so local
    // shuffling can pin its whole shard while global shuffling cannot.
    println!("-- partition: global shuffle vs node-local shard shuffle, 4 nodes, ImageNet-1K --");
    let mut t = Table::new(["loader", "scheme", "epoch", "hit ratio"]);
    for scheme in [
        lobster_pipeline_partition::GlobalShuffle,
        lobster_pipeline_partition::NodeLocalShuffle,
    ] {
        for name in ["pytorch", "lobster"] {
            let mut cfg = paper_config(DatasetKind::ImageNet1k, 4, resnet50(), params);
            cfg.partition = scheme;
            let report = run_policy(cfg, policy_by_name(name).unwrap());
            t.row([
                name.to_string(),
                format!("{scheme:?}"),
                fmt_secs(report.mean_epoch_s()),
                fmt_pct(report.mean_hit_ratio()),
            ]);
        }
    }
    print!("{}", t.render());

    let path = ResultSink::default_location()
        .write_json("ext_robustness", &result)
        .expect("write results");
    println!("\nresults -> {}", path.display());
}

use lobster_data::PartitionScheme as lobster_pipeline_partition;
