//! Extension experiments beyond the paper (DESIGN.md §8):
//!
//! 1. **Slow-node fault injection** — one of four nodes reads I/O at half
//!    speed; how much of each loader's throughput survives?
//! 2. **KV-partitioned distributed cache** — §2 mentions KV-stores as an
//!    alternative distributed-cache organization; compare hash-owner
//!    placement against the paper's consume-side replication.
//! 3. **MinIO never-evict baseline** — the related-work comparator of §6.
//! 4. **Partition schemes** — global shuffle (the paper's setting) vs
//!    node-local shard shuffling: local shuffling collapses reuse distances
//!    to one epoch and transforms cache behaviour.
//! 5. **Dynamic-straggler fault matrix** — time-varying slowdown profiles
//!    (step, flap, ramp) against pytorch/nopfs/lobster: an adaptive loader
//!    should absorb a *dynamic* straggler at least as well as the static
//!    baseline absorbs a *permanent* one.
//! 6. **Live-engine self-healing** — the real multi-threaded engine under
//!    an injected fault schedule (`--faults` overrides the default mix):
//!    transient errors, corruption, stalls, and a mid-run slowdown, with
//!    delivered-data integrity verified against the fault-free fingerprint.

use lobster_bench::{
    faults_from_args, paper_config, params_from_args, run_policy, BenchParams, DatasetKind,
};
use lobster_core::models::resnet50;
use lobster_core::policy_by_name;
use lobster_metrics::{fmt_pct, fmt_secs, fmt_speedup, Instruments, ResultSink, Table};
use lobster_pipeline::ExperimentConfig;
use lobster_runtime::{expected_integrity, run_with, EngineConfig, SyntheticStore};
use lobster_storage::{FaultSpec, SlowdownProfile};
use serde::Serialize;
use std::sync::Arc;
use std::time::Duration;

#[derive(Serialize)]
struct ExtResult {
    params: BenchParams,
    /// policy -> (nominal epoch_s, slow-node epoch_s, degradation)
    slow_node: Vec<(String, f64, f64, f64)>,
    /// policy -> (replicated epoch_s/hits, kv epoch_s/hits)
    kv: Vec<(String, f64, f64, f64, f64)>,
    /// minio vs pytorch vs lobster hit ratios at two cache sizes
    minio: Vec<(String, u32, f64, f64)>,
    /// profile -> policy -> (nominal epoch_s, degraded epoch_s, factor)
    fault_matrix: Vec<(String, String, f64, f64, f64)>,
    /// lobster's worst dynamic-straggler factor vs pytorch's static factor
    /// (the robustness headline: the first must not exceed the second).
    lobster_dynamic_worst: f64,
    pytorch_static_factor: f64,
    /// Live-engine self-healing run.
    engine: EngineFaultSummary,
}

#[derive(Serialize)]
struct EngineFaultSummary {
    spec: FaultSpec,
    delivered: u64,
    retries: u64,
    corruptions_detected: u64,
    deadline_exceeded: u64,
    worker_panics: u64,
    integrity_ok: bool,
}

fn main() {
    let params = params_from_args(BenchParams {
        scale: 64,
        epochs: 4,
        seed: 42,
    });
    println!(
        "Extensions — robustness & cache topology (scale 1/{})\n",
        params.scale
    );
    let mut result = ExtResult {
        params,
        slow_node: vec![],
        kv: vec![],
        minio: vec![],
        fault_matrix: vec![],
        lobster_dynamic_worst: 0.0,
        pytorch_static_factor: 0.0,
        engine: EngineFaultSummary {
            spec: FaultSpec::default(),
            delivered: 0,
            retries: 0,
            corruptions_detected: 0,
            deadline_exceeded: 0,
            worker_panics: 0,
            integrity_ok: false,
        },
    };

    // ---- 1. Slow node. ----
    println!("-- slow node: node 2 of 4 at half I/O speed, ImageNet-22K --");
    let mut t = Table::new(["loader", "nominal", "degraded", "slowdown"]);
    let mut nominals: Vec<(String, f64)> = vec![];
    for name in ["pytorch", "nopfs", "lobster"] {
        let nominal = run_policy(
            paper_config(DatasetKind::ImageNet22k, 4, resnet50(), params),
            policy_by_name(name).unwrap(),
        )
        .mean_epoch_s();
        nominals.push((name.to_string(), nominal));
        let mut cfg = paper_config(DatasetKind::ImageNet22k, 4, resnet50(), params);
        cfg.node_slowdown = SlowdownProfile::constants(&[1.0, 1.0, 2.0, 1.0]);
        let degraded = run_policy(cfg, policy_by_name(name).unwrap()).mean_epoch_s();
        let factor = degraded / nominal;
        t.row([
            name.to_string(),
            fmt_secs(nominal),
            fmt_secs(degraded),
            fmt_speedup(factor),
        ]);
        result
            .slow_node
            .push((name.to_string(), nominal, degraded, factor));
    }
    print!("{}", t.render());
    println!();

    // ---- 2. KV-partitioned cache. ----
    println!("-- distributed-cache topology: replicated vs KV-partitioned, 8 nodes --");
    let mut t = Table::new(["loader", "replicated", "hits", "kv-partitioned", "hits"]);
    for name in ["nopfs", "lobster"] {
        let rep = run_policy(
            paper_config(DatasetKind::ImageNet22k, 8, resnet50(), params),
            policy_by_name(name).unwrap(),
        );
        let mut cfg = paper_config(DatasetKind::ImageNet22k, 8, resnet50(), params);
        cfg.kv_partitioned = true;
        let kv = run_policy(cfg, policy_by_name(name).unwrap());
        t.row([
            name.to_string(),
            fmt_secs(rep.mean_epoch_s()),
            fmt_pct(rep.mean_hit_ratio()),
            fmt_secs(kv.mean_epoch_s()),
            fmt_pct(kv.mean_hit_ratio()),
        ]);
        result.kv.push((
            name.to_string(),
            rep.mean_epoch_s(),
            rep.mean_hit_ratio(),
            kv.mean_epoch_s(),
            kv.mean_hit_ratio(),
        ));
    }
    print!("{}", t.render());
    println!();

    // ---- 3. MinIO. ----
    println!("-- never-evict (MinIO) vs LRU vs Lobster, single node, two cache sizes --");
    let mut t = Table::new(["loader", "scale", "epoch", "hit ratio"]);
    for scale in [params.scale, params.scale * 4] {
        let p = BenchParams { scale, ..params };
        for name in ["pytorch", "minio", "lobster"] {
            let report = run_policy(
                paper_config(DatasetKind::ImageNet1k, 1, resnet50(), p),
                policy_by_name(name).unwrap(),
            );
            t.row([
                name.to_string(),
                format!("1/{scale}"),
                fmt_secs(report.mean_epoch_s()),
                fmt_pct(report.mean_hit_ratio()),
            ]);
            result.minio.push((
                name.to_string(),
                scale,
                report.mean_epoch_s(),
                report.mean_hit_ratio(),
            ));
        }
    }
    print!("{}", t.render());

    println!();

    // ---- 4. Partition schemes. ----
    // ImageNet-1K on 4 nodes: each shard fits the scaled cache, so local
    // shuffling can pin its whole shard while global shuffling cannot.
    println!("-- partition: global shuffle vs node-local shard shuffle, 4 nodes, ImageNet-1K --");
    let mut t = Table::new(["loader", "scheme", "epoch", "hit ratio"]);
    for scheme in [
        lobster_pipeline_partition::GlobalShuffle,
        lobster_pipeline_partition::NodeLocalShuffle,
    ] {
        for name in ["pytorch", "lobster"] {
            let mut cfg = paper_config(DatasetKind::ImageNet1k, 4, resnet50(), params);
            cfg.partition = scheme;
            let report = run_policy(cfg, policy_by_name(name).unwrap());
            t.row([
                name.to_string(),
                format!("{scheme:?}"),
                fmt_secs(report.mean_epoch_s()),
                fmt_pct(report.mean_hit_ratio()),
            ]);
        }
    }
    print!("{}", t.render());
    println!();

    // ---- 5. Dynamic-straggler fault matrix. ----
    // Time scales derive from the measured nominal run: a "step" hits node
    // 2 halfway through, a "flap" oscillates with a one-epoch period, a
    // "ramp" degrades linearly over the whole run. Each entry is the
    // slowdown the loader suffers relative to its own nominal run.
    println!("-- dynamic stragglers: time-varying node-2 slowdown, ImageNet-22K, 4 nodes --");
    let nominal_epoch = nominals
        .iter()
        .map(|(_, s)| *s)
        .fold(f64::INFINITY, f64::min);
    let total_s = nominal_epoch * params.epochs as f64;
    let profiles: Vec<(&str, SlowdownProfile)> = vec![
        ("static ×2", SlowdownProfile::Constant(2.0)),
        (
            "step ×2 @ mid-run",
            SlowdownProfile::Step {
                at_s: total_s / 2.0,
                factor: 2.0,
            },
        ),
        (
            "flap 1↔2 / epoch",
            SlowdownProfile::Flap {
                period_s: nominal_epoch.max(1e-6),
                lo: 1.0,
                hi: 2.0,
            },
        ),
        (
            "ramp 1→2 over run",
            SlowdownProfile::Ramp {
                from: 1.0,
                to: 2.0,
                over_s: total_s.max(1e-6),
            },
        ),
    ];
    let mut t = Table::new(["profile", "pytorch", "nopfs", "lobster"]);
    for (label, profile) in &profiles {
        let mut row = vec![label.to_string()];
        for (name, nominal) in &nominals {
            let mut cfg: ExperimentConfig =
                paper_config(DatasetKind::ImageNet22k, 4, resnet50(), params);
            cfg.node_slowdown = vec![
                SlowdownProfile::NOMINAL,
                SlowdownProfile::NOMINAL,
                *profile,
                SlowdownProfile::NOMINAL,
            ];
            let degraded = run_policy(cfg, policy_by_name(name).unwrap()).mean_epoch_s();
            let factor = degraded / nominal;
            row.push(fmt_speedup(factor));
            result
                .fault_matrix
                .push((label.to_string(), name.clone(), *nominal, degraded, factor));
        }
        t.row(row);
    }
    print!("{}", t.render());
    // The robustness headline: lobster under any *dynamic* straggler must
    // not degrade more than the static pytorch baseline under a *permanent*
    // one (the adaptive re-assignment absorbs time-varying pressure).
    let pytorch_static = result
        .fault_matrix
        .iter()
        .find(|(p, n, ..)| p.starts_with("static") && n == "pytorch")
        .map(|&(.., f)| f)
        .unwrap_or(f64::NAN);
    let lobster_dynamic_worst = result
        .fault_matrix
        .iter()
        .filter(|(p, n, ..)| !p.starts_with("static") && n == "lobster")
        .map(|&(.., f)| f)
        .fold(0.0f64, f64::max);
    result.pytorch_static_factor = pytorch_static;
    result.lobster_dynamic_worst = lobster_dynamic_worst;
    println!(
        "lobster worst dynamic factor {} vs pytorch static factor {} -> {}",
        fmt_speedup(lobster_dynamic_worst),
        fmt_speedup(pytorch_static),
        if lobster_dynamic_worst <= pytorch_static {
            "ok (dynamic ≤ static baseline)"
        } else {
            "REGRESSION"
        }
    );
    println!();

    // ---- 6. Live-engine self-healing. ----
    // A real multi-threaded run under the default fault mix (override with
    // `--faults transient=...,corrupt=...,slow=0:step:2:0.2,...`): ≥5%
    // transient errors, corruption, stalls, and a step slowdown at 200 ms.
    let spec = faults_from_args(
        FaultSpec::parse(
            "transient=0.05,corrupt=0.02,stall=0.02,stall-ms=5,seed=1042,slow=0:step:2:0.2",
        )
        .expect("default fault spec parses"),
    );
    println!("-- live engine under faults: {spec:?} --");
    let dataset = lobster_data::Dataset::generate(
        "ext-engine-faults",
        256,
        lobster_data::SizeDistribution::Uniform {
            lo: 4_000,
            hi: 16_000,
        },
        params.seed,
    );
    let cfg = EngineConfig {
        consumers: 2,
        batch_size: 8,
        loader_threads: 3,
        preproc_threads: 2,
        epochs: 2,
        seed: params.seed,
        train: Duration::from_micros(500),
        ..EngineConfig::default()
    };
    let expected = expected_integrity(&dataset, &cfg);
    let plan = spec.compile().expect("fault spec compiles");
    let store = Arc::new(SyntheticStore::with_faults(
        dataset,
        Duration::from_micros(100),
        200e6,
        plan,
    ));
    let ins = Instruments::enabled();
    let report = run_with(Arc::clone(&store), cfg, ins.clone());
    let integrity_ok = report.integrity == expected && !report.aborted;
    let mut t = Table::new([
        "delivered",
        "retries",
        "corruptions",
        "deadlines",
        "panics",
        "integrity",
    ]);
    t.row([
        report.delivered.to_string(),
        report.retries.to_string(),
        report.corruptions_detected.to_string(),
        report.deadline_exceeded.to_string(),
        report.worker_panics.to_string(),
        if integrity_ok {
            "ok".into()
        } else {
            "CORRUPT".to_string()
        },
    ]);
    print!("{}", t.render());
    let snap = ins.metrics_snapshot();
    println!(
        "exported counters: engine.retries={} engine.corruptions_detected={}",
        snap.get("engine.retries").unwrap_or(0),
        snap.get("engine.corruptions_detected").unwrap_or(0),
    );
    result.engine = EngineFaultSummary {
        spec,
        delivered: report.delivered,
        retries: report.retries,
        corruptions_detected: report.corruptions_detected,
        deadline_exceeded: report.deadline_exceeded,
        worker_panics: report.worker_panics,
        integrity_ok,
    };

    let path = ResultSink::default_location()
        .write_json("ext_robustness", &result)
        .expect("write results");
    println!("\nresults -> {}", path.display());
}

use lobster_data::PartitionScheme as lobster_pipeline_partition;
